"""Microbenchmark: bulk blob ingest + repeated per-flow metric queries.

The analytics half of the pipeline is the collector bulk-ingesting
packed ring-buffer blobs into the columnar TraceDB, then the metrics
layer querying the same tables over and over (every figure script asks
for latency/decomposition/throughput repeatedly).  This scenario drives
both halves through engine events: per-node shipment blobs arrive in
sequence (with periodic retry duplicates for the dedup path), and query
rounds run interleaved with ingest so the sorted indexes are repeatedly
invalidated and rebuilt -- the worst realistic case for the lazy-index
design, gated on events/s against the committed baseline.
"""

from repro.core.collector import RawDataCollector
from repro.core.records import TraceRecord
from repro.core.tracedb import TraceDB
from repro.sim.engine import Engine

FULL_TRACES = 5_000
BATCH_TRACES = 50  # traces per shipment blob (=> 100 records per node blob)
QUERY_EVERY = 4  # run a query round after every Nth batch arrival
DUP_EVERY = 10  # every Nth shipment is delivered twice (dedup path)

# Two nodes, two tracepoints each: the quickstart chain's shape.
_LABELS = {0: "send", 1: "nic-out", 2: "nic-in", 3: "deliver"}
_CHAIN = ("send", "nic-out", "nic-in", "deliver")
_HOP_NS = (9_000, 27_000, 9_500)
_RX_SKEW_NS = -1_500_000  # rx clock runs ahead; insert-time alignment


def _blobs(first_trace: int) -> "dict[str, bytes]":
    """One shipment window: packed per-node blobs for BATCH_TRACES traces."""
    tx = bytearray()
    rx = bytearray()
    for trace_id in range(first_trace, first_trace + BATCH_TRACES):
        base = 1_000_000 + trace_id * 40_000
        cpu = trace_id % 4
        tx += TraceRecord(trace_id, 0, base, 1500, cpu).pack()
        tx += TraceRecord(trace_id, 1, base + _HOP_NS[0], 1500, cpu).pack()
        rx_base = base + _HOP_NS[0] + _HOP_NS[1] - _RX_SKEW_NS
        rx += TraceRecord(trace_id, 2, rx_base, 1500, cpu).pack()
        rx += TraceRecord(trace_id, 3, rx_base + _HOP_NS[2], 1500, cpu).pack()
    return {"tx": bytes(tx), "rx": bytes(rx)}


def _build(total_traces: int) -> dict:
    from repro.core import metrics

    engine = Engine()
    db = TraceDB()
    db.set_clock_skew("rx", _RX_SKEW_NS)
    collector = RawDataCollector(engine, db)
    collector.register_labels(_LABELS)

    queries = {"rounds": 0, "latencies": 0, "rows_scanned": 0}

    def ingest(first_trace: int, seq: int, duplicate: bool) -> None:
        blobs = _blobs(first_trace)
        for node in ("tx", "rx"):
            collector.receive_batch(node, blobs[node], seq=seq)
            if duplicate:  # retry of the same shipment; must dedup
                collector.receive_batch(node, blobs[node], seq=seq)

    def query_round(upto_trace: int) -> None:
        queries["rounds"] += 1
        latencies = metrics.latency_between(db, "send", "deliver")
        queries["latencies"] += len(latencies)
        segments = metrics.decompose_latency(db, _CHAIN)
        queries["rows_scanned"] += sum(len(s.latencies_ns) for s in segments)
        metrics.throughput_at(db, "deliver")
        metrics.event_rate(db, "send")
        metrics.per_cpu_distribution(db, "deliver")
        # Per-flow point lookups: a sample of individual traces.
        for trace_id in range(max(1, upto_trace - 25), upto_trace + 1):
            queries["rows_scanned"] += len(db.rows_for_trace(trace_id))

    seq = 0
    for first in range(1, total_traces + 1, BATCH_TRACES):
        seq += 1
        at_ns = seq * 1_000
        engine.schedule(at_ns, ingest, first, seq, seq % DUP_EVERY == 0)
        if seq % QUERY_EVERY == 0:
            engine.schedule(at_ns + 500, query_round, first + BATCH_TRACES - 1)
    engine.run()
    query_round(total_traces)

    throughput = metrics.throughput_at(db, "deliver")
    return {
        "rows_inserted": db.rows_inserted,
        "deduped_batches": db.deduped_batches,
        "query_rounds": queries["rounds"],
        "latencies_matched": queries["latencies"],
        "rows_scanned": queries["rows_scanned"],
        "deliver_mbps": round(throughput.bits_per_second / 1e6, 1),
    }


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    return _build(scale_count(preset, FULL_TRACES, floor=500))


def test_micro_tracedb_query(benchmark, once, report):
    results = once(_build, 1_000)
    report(
        "Micro: blob ingest + repeated metric queries",
        {
            "rows inserted": results["rows_inserted"],
            "deduped batches": results["deduped_batches"],
            "query rounds": results["query_rounds"],
            "latencies matched": results["latencies_matched"],
        },
    )
    assert results["rows_inserted"] == 4_000
    assert results["deduped_batches"] == 2 * (20 // DUP_EVERY)
    assert results["latencies_matched"] > 0
    assert results["deliver_mbps"] > 0
