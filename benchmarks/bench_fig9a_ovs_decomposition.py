"""Fig. 9(a): latency decomposition inside the OVS data path.

Paper: the OVS segment dominates and grows with congestion; the gap
between II and II+ stays flat (ingress queue already saturated) while
III -> III+ grows (more busy ingress ports stretch the switching).
"""

from repro.experiments.ovs_case import run_fig9a

DURATION_NS = 300_000_000


def test_fig9a_latency_decomposition(benchmark, once, report):
    results = once(run_fig9a, duration_ns=DURATION_NS)
    rows = {}
    for case, decomposition in results.items():
        sender = decomposition["sender_stack"].avg_ns / 1e3
        ovs = decomposition["ovs"].avg_ns / 1e3
        receiver = decomposition["receiver_stack"].avg_ns / 1e3
        rows[f"Case {case} (sender/OVS/receiver us)"] = (
            f"{sender:.1f} / {ovs:.1f} / {receiver:.1f}"
        )
    report("Fig 9(a): sender-stack / OVS / receiver-stack decomposition", rows)

    ovs_avg = {case: d["ovs"].avg_ns for case, d in results.items()}
    # OVS dominates whenever congested.
    assert ovs_avg["II"] > 10 * results["II"]["sender_stack"].avg_ns
    # II -> II+ flat (same saturated ingress queue).
    assert abs(ovs_avg["II+"] - ovs_avg["II"]) < 0.25 * ovs_avg["II"]
    # III adds processing delay; III+ adds more.
    assert ovs_avg["III"] > 1.5 * ovs_avg["II"]
    assert ovs_avg["III+"] > ovs_avg["III"]

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    results = run_fig9a(duration_ns=scale_duration(preset, DURATION_NS))
    return {
        f"case_{case}_{segment}_avg_us": round(summary.avg_ns / 1e3, 1)
        for case, decomposition in results.items()
        for segment, summary in decomposition.items()
    }
