"""Microbenchmark: cross-service RPC correlation cost.

The rpc_case scenario (docs/SERVICES.md) exercises the full
correlation path: parent IDs embedded on the wire, links read back at
every receiver, collected rows joined into one span forest per root
request.  This scenario prices that pipeline end to end -- requests
traced per second of wall time, and the link/span volume produced --
so a regression in the embed, the join, or the forest assembly shows
up as a throughput drop.

The runner resolves through the ScenarioSpec registry (the same table
the CLI and the determinism CI use), not a direct import.
"""

FULL_REQUESTS = 60


def _correlate(requests: int) -> dict:
    from repro.experiments import get_scenario
    from repro.experiments.rpc_case import deterministic_doc

    run_case = get_scenario("rpc_case").run_fn()
    result = run_case(seed=21, requests=requests, shards=1)
    doc = deterministic_doc(result)
    latencies = result.deployment.client_latencies
    return {
        "requests_completed": doc["completed_requests"],
        "links_recorded": len(doc["links"]),
        "trees": doc["trees"],
        "spans": doc["spans"],
        "avg_request_latency_us": round(
            sum(latencies) / len(latencies) / 1e3, 3
        ),
        "db_rows": result.tracer.db.rows_inserted,
    }


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    return _correlate(scale_count(preset, FULL_REQUESTS, floor=12))


def test_micro_rpc_correlate(benchmark, once, report):
    results = once(_correlate, 12)
    report(
        "Micro: RPC parent-link correlation and forest assembly",
        {
            "requests completed": results["requests_completed"],
            "parent links recorded": results["links_recorded"],
            "spans assembled": results["spans"],
            "avg request latency (us)": results["avg_request_latency_us"],
        },
    )
    assert results["requests_completed"] == 12
    assert results["trees"] == 12
    # 9 parented packets per root request through the default graph.
    assert results["links_recorded"] == 12 * 9
    assert results["spans"] > results["links_recorded"]
