"""Ablation: filter selectivity.

A per-flow filter means non-matching packets exit the script after a
few comparisons; a match-everything script pays the full record path on
every packet.  Measures the throughput tax of an unselective probe on
the netperf receive path.
"""

from repro.core import ActionSpec, FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.experiments.topologies import build_netperf_xen
from repro.net.packet import IPPROTO_TCP
from repro.workloads.netperf import NetperfClient, NetperfServer

DURATION_NS = 250_000_000


def _run(rule, duration_ns: int = DURATION_NS) -> float:
    scene = build_netperf_xen(seed=11, link_gbps=10.0)
    engine = scene.engine
    server = NetperfServer(scene.server_vm.node, scene.vm_ip, cpu_index=0)
    client = NetperfClient(scene.client_host.node, scene.client_ip, scene.vm_ip,
                           gso_bytes=65160)
    if rule is not None:
        tracer = VNetTracer(engine)
        tracer.add_agent(scene.server_vm.node)
        spec = TracingSpec(
            rule=rule,
            tracepoints=[
                TracepointSpec(node=scene.server_vm.node.name,
                               hook="kretprobe:tcp_recvmsg",
                               label="recvmsg", id_mode="tcp-option"),
            ],
        )
        tracer.deploy(spec)
    client.start(duration_ns)
    # Warm-up cutoff: restart the measurement window once the first 20%
    # of the run is done.  Scaled with the duration -- a fixed offset
    # past a short preset's traffic would reset an already-idle server
    # and report 0 goodput (the stale-baseline bug).
    engine.schedule(duration_ns // 5, server.reset_window)
    engine.run(until=duration_ns + 100_000_000)
    return server.goodput_bps()


def test_ablation_filter_selectivity(benchmark, once, report):
    def scenario():
        return {
            "untraced": _run(None),
            "selective (miss: other flow)": _run(
                FilterRule(dst_port=9999, protocol=IPPROTO_TCP)
            ),
            "match-all (full record path)": _run(FilterRule()),
        }

    results = once(scenario)
    rows = {
        name: f"{bps / 1e6:.0f} Mbps" for name, bps in results.items()
    }
    report("Ablation: filter selectivity on a 10G netperf receive path", rows)

    untraced = results["untraced"]
    selective = results["selective (miss: other flow)"]
    match_all = results["match-all (full record path)"]
    # A non-matching filter is nearly free; match-all costs more.
    assert selective > 0.97 * untraced
    assert match_all <= selective

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    duration_ns = scale_duration(preset, DURATION_NS)
    return {
        "untraced_mbps": round(_run(None, duration_ns) / 1e6, 1),
        "selective_mbps": round(
            _run(FilterRule(dst_port=9999, protocol=IPPROTO_TCP), duration_ns) / 1e6, 1
        ),
        "match_all_mbps": round(_run(FilterRule(), duration_ns) / 1e6, 1),
    }
