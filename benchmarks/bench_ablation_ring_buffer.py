"""Ablation: kernel ring-buffer size vs record loss.

The paper's footnote bounds the buffer at 32 B .. 128 KB-16 (kmalloc).
An undersized buffer drops records between flushes; this sweep shows
where the cliff sits for a 2000-records/s probe at a 10 ms flush period.
"""

from repro.core import FilterRule, GlobalConfig, TracepointSpec, TracingSpec, VNetTracer
from repro.experiments.topologies import build_two_host_kvm
from repro.net.packet import IPPROTO_UDP
from repro.workloads.sockperf import SockperfClient, SockperfServer

SIZES = (64, 256, 1024, 16 * 1024)
DURATION_NS = 300_000_000


def _run(ring_bytes: int, duration_ns: int = DURATION_NS) -> tuple:
    scene = build_two_host_kvm(seed=9)
    engine = scene.engine
    SockperfServer(scene.vm2.node, scene.vm2_ip)
    client = SockperfClient(scene.vm1.node, scene.vm1_ip, scene.vm2_ip, mps=2000)
    tracer = VNetTracer(engine)
    tracer.add_agent(scene.vm1.node)
    spec = TracingSpec(
        rule=FilterRule(dst_port=11111, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=scene.vm1.node.name, hook="kprobe:udp_send_skb",
                           label="send"),
        ],
        global_config=GlobalConfig(ring_buffer_bytes=ring_bytes,
                                   flush_interval_ns=10_000_000),
    )
    tracer.deploy(spec)
    client.start(duration_ns, start_delay_ns=5_000_000)
    engine.run(until=duration_ns + 100_000_000)
    tracer.collect()
    agent = tracer.agents[scene.vm1.node.name]
    return client.sent, tracer.db.count("send"), agent.dropped_records()


def test_ablation_ring_buffer_sweep(benchmark, once, report):
    def sweep():
        return {size: _run(size) for size in SIZES}

    results = once(sweep)
    rows = {}
    for size, (sent, recorded, dropped) in results.items():
        rows[f"ring {size}B"] = (
            f"sent {sent}, recorded {recorded}, dropped {dropped} "
            f"({100 * dropped / max(1, sent):.1f}%)"
        )
    report("Ablation: ring-buffer size vs record loss (2000 rec/s, 10ms flush)", rows)

    # 64B (2 records) must drop heavily; 16KB must capture everything.
    assert results[64][2] > 0
    assert results[16 * 1024][2] == 0
    assert results[16 * 1024][1] == results[16 * 1024][0]

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    duration_ns = scale_duration(preset, DURATION_NS)
    sizes = (64, 16 * 1024) if preset == "smoke" else SIZES
    out = {}
    for size in sizes:
        sent, recorded, dropped = _run(size, duration_ns)
        out[f"ring_{size}b_sent"] = sent
        out[f"ring_{size}b_recorded"] = recorded
        out[f"ring_{size}b_dropped"] = dropped
    return out
