"""Ablation: online vs offline trace collection.

§III-C: online collection feeds the collector in real time but "could
consume additional CPU and network bandwidth"; offline defers the
transfer until after the experiment.  Compares agent-side CPU spent and
the traced application's latency under both modes.
"""

from repro.core import FilterRule, GlobalConfig, TracepointSpec, TracingSpec, VNetTracer
from repro.experiments.topologies import build_two_host_kvm
from repro.net.packet import IPPROTO_UDP
from repro.workloads.sockperf import SockperfClient, SockperfServer

DURATION_NS = 400_000_000


def _run(online: bool, duration_ns: int = DURATION_NS) -> dict:
    scene = build_two_host_kvm(seed=21)
    engine = scene.engine
    SockperfServer(scene.vm2.node, scene.vm2_ip)
    client = SockperfClient(scene.vm1.node, scene.vm1_ip, scene.vm2_ip, mps=5000)
    tracer = VNetTracer(engine)
    tracer.add_agent(scene.vm1.node)
    tracer.add_agent(scene.vm2.node)
    spec = TracingSpec(
        rule=FilterRule(dst_port=11111, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=scene.vm1.node.name, hook="kprobe:udp_send_skb",
                           label="send"),
            TracepointSpec(node=scene.vm2.node.name,
                           hook="kprobe:skb_copy_datagram_iovec", label="recv"),
        ],
        global_config=GlobalConfig(online_collection=online,
                                   flush_interval_ns=5_000_000),
    )
    tracer.deploy(spec)
    cpu0 = scene.vm1.node.cpus[0]
    busy_before = cpu0.busy_ns
    client.start(duration_ns, start_delay_ns=5_000_000)
    engine.run(until=duration_ns + 200_000_000)
    rows_before_collect = tracer.db.rows_inserted
    tracer.collect()
    return {
        "avg_us": client.summary().avg_ns / 1e3,
        "agent_cpu0_busy_us": (cpu0.busy_ns - busy_before) / 1e3,
        "rows_live": rows_before_collect,
        "rows_total": tracer.db.rows_inserted,
    }


def test_ablation_online_vs_offline(benchmark, once, report):
    def scenario():
        return {"offline": _run(False), "online": _run(True)}

    results = once(scenario)
    rows = {}
    for mode, r in results.items():
        rows[f"{mode} sockperf avg (us)"] = f"{r['avg_us']:.2f}"
        rows[f"{mode} agent cpu0 busy (us)"] = f"{r['agent_cpu0_busy_us']:.0f}"
        rows[f"{mode} rows before/after collect"] = f"{r['rows_live']} / {r['rows_total']}"
    report("Ablation: online vs offline collection", rows)

    # Online streams rows during the run; offline only at collect().
    assert results["online"]["rows_live"] > 0
    assert results["offline"]["rows_live"] == 0
    # Online costs more agent CPU.
    assert results["online"]["agent_cpu0_busy_us"] > results["offline"]["agent_cpu0_busy_us"]
    assert results["online"]["rows_total"] == results["offline"]["rows_total"]

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    duration_ns = scale_duration(preset, DURATION_NS)
    out = {}
    for mode, online in (("offline", False), ("online", True)):
        r = _run(online, duration_ns=duration_ns)
        out[f"{mode}_avg_us"] = round(r["avg_us"], 3)
        out[f"{mode}_agent_cpu0_busy_us"] = round(r["agent_cpu0_busy_us"], 1)
        out[f"{mode}_rows_total"] = r["rows_total"]
    return out
