"""Macro benchmark: the 1000-node fleet on one plain Engine.

The status-quo leg of the fleet-scaling gate: identical workload and
deterministic metrics to ``macro_fleet`` (16 shards), so the committed
baseline documents the sharded substrate's speedup as the events/sec
ratio between the two scenarios.
"""

from repro.experiments.macro_fleet import FleetConfig, run_macro_fleet

FULL_TICKS = 100
SMOKE_TICKS = 10


def _fleet(ticks: int) -> dict:
    result = run_macro_fleet(FleetConfig(ticks=ticks), shards=1)
    return dict(result.metrics)


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    return _fleet(scale_count(preset, FULL_TICKS, floor=SMOKE_TICKS))


def test_macro_fleet_single_engine(benchmark, once, report):
    metrics = once(_fleet, SMOKE_TICKS)
    report(
        "Macro: 1000-node fleet, single engine",
        {
            "rows inserted": metrics["rows_inserted"],
            "boundary messages": metrics["boundary_messages"],
            "rtt avg (ns)": metrics["rtt_avg_ns"],
            "digest": metrics["digest16"],
        },
    )
    assert metrics["shards"] == 1
    assert metrics["workers"] == 0
    assert metrics["rounds"] == 0  # no coordinator on this leg
    assert metrics["rtt_avg_ns"] == 2_000_014
