"""Ablation: eBPF interpreter vs JIT per-probe cost.

§II: "the JIT compiling minimizes the execution overhead of the eBPF
code".  Measures the simulated per-invocation cost of a realistic
vNetTracer script (filter + ID extraction + record emission) in both
execution modes, and its effect on a traced sockperf run.
"""

from repro.core.compiler import compile_script
from repro.core.config import ActionSpec, FilterRule, TracepointSpec
from repro.ebpf.context import build_skb_context
from repro.ebpf.maps import PerfEventArray
from repro.ebpf.vm import ExecutionEnv
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import IPPROTO_UDP, make_udp_packet


def _script_cost(jit: bool) -> tuple:
    perf = PerfEventArray(num_cpus=2)
    tracepoint = TracepointSpec(node="n", hook="dev:x")
    program, maps = compile_script(
        FilterRule(dst_port=11111, protocol=IPPROTO_UDP),
        tracepoint,
        ActionSpec(record=True),
        perf_map=perf,
        jit=jit,
    )
    load_cost = program.load()
    packet = make_udp_packet(
        MACAddress.from_index(1), MACAddress.from_index(2),
        IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"), 1, 11111, b"x" * 60,
    )
    ctx, data = build_skb_context(packet)
    result = program.run(ExecutionEnv(maps=maps), ctx, data)
    return load_cost, result.cost_ns, result.insns_executed


def test_ablation_interpreter_vs_jit(benchmark, once, report):
    def scenario():
        return {"interp": _script_cost(jit=False), "jit": _script_cost(jit=True)}

    results = once(scenario)
    interp_load, interp_cost, insns = results["interp"]
    jit_load, jit_cost, _ = results["jit"]
    report(
        "Ablation: per-probe cost, interpreter vs JIT",
        {
            "instructions executed (matching packet)": insns,
            "interpreter per-hit cost (ns)": interp_cost,
            "JIT per-hit cost (ns)": jit_cost,
            "speedup": f"{interp_cost / jit_cost:.2f}x",
            "interpreter load cost (ns)": interp_load,
            "JIT load cost (ns, incl. compile)": jit_load,
        },
    )
    assert jit_cost < interp_cost          # execution is cheaper
    assert jit_load > interp_load          # but loading pays compilation

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    interp_load, interp_cost, insns = _script_cost(jit=False)
    jit_load, jit_cost, _ = _script_cost(jit=True)
    return {
        "insns_executed": insns,
        "interp_cost_ns": interp_cost,
        "jit_cost_ns": jit_cost,
        "interp_load_ns": interp_load,
        "jit_load_ns": jit_load,
    }
