"""Ablation: eBPF interpreter vs JIT per-probe cost.

§II: "the JIT compiling minimizes the execution overhead of the eBPF
code".  Measures the simulated per-invocation cost of a realistic
vNetTracer script (filter + ID extraction + record emission) in both
execution modes, and its effect on a traced sockperf run.

Each mode compiles and loads its program once, then fires it
``STEADY_RUNS`` times against the same packet.  One-shot runs made the
harness's ``ns_per_probe`` (wall / probe fires, at probe_fires=2)
setup-dominated -- it reported the millisecond-scale compile+load cost
as if it were per-probe.  The steady loop amortizes setup to noise, so
the gated figure now tracks dispatch cost, which is what the paper's
per-packet overhead claim is about.  The simulated costs reported in
``metrics`` still come from single runs and stay deterministic.
"""

from repro.core.compiler import compile_script
from repro.core.config import ActionSpec, FilterRule, TracepointSpec
from repro.ebpf.context import build_skb_context
from repro.ebpf.maps import PerfEventArray
from repro.ebpf.vm import ExecutionEnv
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import IPPROTO_UDP, make_udp_packet

# Steady-state probe fires per mode.  Large enough that load/compile
# amortizes below the measurement floor, small enough to keep the smoke
# suite quick.
STEADY_RUNS = 400


def _script_cost(jit: bool, steady_runs: int = STEADY_RUNS) -> tuple:
    perf = PerfEventArray(num_cpus=2)
    tracepoint = TracepointSpec(node="n", hook="dev:x")
    program, maps = compile_script(
        FilterRule(dst_port=11111, protocol=IPPROTO_UDP),
        tracepoint,
        ActionSpec(record=True),
        perf_map=perf,
        jit=jit,
    )
    load_cost = program.load()
    packet = make_udp_packet(
        MACAddress.from_index(1), MACAddress.from_index(2),
        IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"), 1, 11111, b"x" * 60,
    )
    ctx, data = build_skb_context(packet)
    env = ExecutionEnv(maps=maps)
    # First fire supplies the deterministic simulated costs; the rest
    # keep the loaded program hot so wall-clock divides over dispatches,
    # not over the one-time compile+load.
    result = program.run(env, ctx, data)
    for _ in range(steady_runs - 1):
        program.run(env, ctx, data)
    return load_cost, result.cost_ns, result.insns_executed


def test_ablation_interpreter_vs_jit(benchmark, once, report):
    from repro.ebpf.vm import BPFProgram

    fires_before = BPFProgram.global_runs()

    def scenario():
        return {"interp": _script_cost(jit=False), "jit": _script_cost(jit=True)}

    results = once(scenario)
    interp_load, interp_cost, insns = results["interp"]
    jit_load, jit_cost, _ = results["jit"]
    report(
        "Ablation: per-probe cost, interpreter vs JIT",
        {
            "instructions executed (matching packet)": insns,
            "interpreter per-hit cost (ns)": interp_cost,
            "JIT per-hit cost (ns)": jit_cost,
            "speedup": f"{interp_cost / jit_cost:.2f}x",
            "interpreter load cost (ns)": interp_load,
            "JIT load cost (ns, incl. compile)": jit_load,
        },
    )
    assert jit_cost < interp_cost          # execution is cheaper
    assert jit_load > interp_load          # but loading pays compilation
    # Steady-state regression guard: the harness's ns_per_probe is only
    # meaningful if each mode actually fires its program in a loop.
    assert BPFProgram.global_runs() - fires_before >= 2 * STEADY_RUNS


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    interp_load, interp_cost, insns = _script_cost(jit=False)
    jit_load, jit_cost, _ = _script_cost(jit=True)
    return {
        "insns_executed": insns,
        "interp_cost_ns": interp_cost,
        "jit_cost_ns": jit_cost,
        "interp_load_ns": interp_load,
        "jit_load_ns": jit_load,
        "steady_runs_per_mode": STEADY_RUNS,
    }
