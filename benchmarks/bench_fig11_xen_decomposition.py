"""Fig. 11: per-packet latency decomposition across the Xen path.

Paper: alone, the client-to-server transmission dominates; sharing the
core, the vif1.0 -> eth1 segment absorbs >90 % of the one-way latency
as a 0..1000 us scheduling sawtooth, and jitter explodes from
(-7.2, 9.2) us to (-117.8, 1041.4) us.
"""

from repro.experiments.xen_case import run_fig11_condition

PACKETS = 400
SCHED_SEGMENT = "dom0:vif1.0 to vm:eth1"


def test_fig11_decomposition_sawtooth(benchmark, once, report):
    def scenario():
        return {
            "baseline": run_fig11_condition("baseline", packets=PACKETS),
            "shared": run_fig11_condition("shared", packets=PACKETS),
        }

    results = once(scenario)
    rows = {}
    for condition, result in results.items():
        for key, summary in result.segment_summaries.items():
            s = summary.scaled()
            rows[f"{condition} | {key} avg/max (us)"] = f"{s['avg']:.1f} / {s['max']:.1f}"
        low, high = result.one_way_jitter_range_us
        rows[f"{condition} | jitter range (us)"] = f"({low:.1f}, {high:.1f})"
    rows["clock skew estimate (ms)"] = (
        f"{results['shared'].clock_skew_estimate_ns / 1e6:+.3f}"
    )
    report("Fig 11: eth0 -> xenbr0 -> vif1.0 -> eth1 -> veth decomposition", rows)

    shared_sched = results["shared"].segment_summaries[SCHED_SEGMENT]
    baseline_sched = results["baseline"].segment_summaries[SCHED_SEGMENT]
    # The scheduling segment dominates under contention...
    other = sum(
        s.avg_ns
        for key, s in results["shared"].segment_summaries.items()
        if key != SCHED_SEGMENT
    )
    assert shared_sched.avg_ns > 5 * other
    # ... reaching (but not exceeding) the 1000us rate limit,
    assert 900_000 < shared_sched.max_ns < 1_200_000
    # ... while contributing little when the VM runs alone.
    assert baseline_sched.max_ns < 100_000
    # Jitter range explodes under sharing.
    b_low, b_high = results["baseline"].one_way_jitter_range_us
    s_low, s_high = results["shared"].one_way_jitter_range_us
    assert (s_high - s_low) > 20 * (b_high - b_low)

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    packets = scale_count(preset, PACKETS, floor=100)
    out = {"packets": packets}
    for condition in ("baseline", "shared"):
        result = run_fig11_condition(condition, packets=packets)
        sched = result.segment_summaries[SCHED_SEGMENT]
        out[f"{condition}_sched_segment_avg_us"] = round(sched.avg_ns / 1e3, 1)
        out[f"{condition}_sched_segment_max_us"] = round(sched.max_ns / 1e3, 1)
    return out
