"""Microbenchmark: ring-buffer append/flush path with metrics attached.

Every trace record crosses the kernel ring buffer, and the
self-observability contract (docs/OBSERVABILITY.md) watches it do so --
so the per-append cost including its metrics export is a first-order
term in traced-scenario runtime.  Appends records at a fixed virtual
rate with the periodic flush and a live MetricsRegistry, then drains
flush batches through the batch record decoder agents use.
"""

from repro.core.records import TraceRecord, unpack_batch
from repro.core.ringbuffer import TraceRingBuffer
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine

FULL_RECORDS = 200_000
APPEND_PERIOD_NS = 2_000
FLUSH_INTERVAL_NS = 1_000_000


def _churn(total_records: int) -> dict:
    engine = Engine()
    registry = MetricsRegistry()
    decoded = [0]

    def on_flush(batch):
        decoded[0] += len(unpack_batch(batch))

    ring = TraceRingBuffer(
        engine,
        capacity_bytes=64 * 1024,
        flush_interval_ns=FLUSH_INTERVAL_NS,
        on_flush=on_flush,
        name="bench/ring",
        registry=registry,
        node="bench",
    )
    ring.start()
    record = TraceRecord(1, 2, 3, 64, 0).pack()

    def producer():
        for _ in range(total_records):
            ring.append(record)
            yield APPEND_PERIOD_NS

    engine.process(producer(), name="producer")
    engine.run(until=total_records * APPEND_PERIOD_NS + 2 * FLUSH_INTERVAL_NS)
    ring.flush()
    ring.stop()
    return {
        "appended": ring.total_appended,
        "dropped": ring.total_dropped,
        "flushes": ring.flushes,
        "decoded": decoded[0],
        "metric_appended": registry.total("vnt_ring_appended_total"),
        "metric_flushes": registry.total("vnt_ring_flushes_total"),
        "hwm_bytes": ring.occupancy_hwm_bytes,
    }


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    return _churn(scale_count(preset, FULL_RECORDS, floor=20_000))


def test_micro_ringbuffer_churn(benchmark, once, report):
    results = once(_churn, 20_000)
    report(
        "Micro: ring append/flush with metrics registry attached",
        {
            "appended": results["appended"],
            "flushes": results["flushes"],
            "hwm (bytes)": results["hwm_bytes"],
        },
    )
    assert results["appended"] == results["decoded"] == 20_000
    assert results["dropped"] == 0
    # The metrics contract sees exactly what the ring saw.
    assert results["metric_appended"] == results["appended"]
    assert results["metric_flushes"] == results["flushes"]
