"""Macro benchmark: the 1000-node fleet at 4 shards.

The middle point of the fleet-scaling curve (1 / 4 / 16 shards); see
``bench_macro_fleet.py`` for the gate design.
"""

from repro.experiments.macro_fleet import FleetConfig, run_macro_fleet

FULL_TICKS = 100
SMOKE_TICKS = 10
SHARDS = 4


def _fleet(ticks: int) -> dict:
    result = run_macro_fleet(FleetConfig(ticks=ticks), shards=SHARDS)
    return dict(result.metrics)


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    return _fleet(scale_count(preset, FULL_TICKS, floor=SMOKE_TICKS))


def test_macro_fleet_four_shards(benchmark, once, report):
    metrics = once(_fleet, SMOKE_TICKS)
    report(
        "Macro: 1000-node fleet, 4 shards",
        {
            "rows inserted": metrics["rows_inserted"],
            "boundary messages": metrics["boundary_messages"],
            "rounds": metrics["rounds"],
            "digest": metrics["digest16"],
        },
    )
    assert metrics["shards"] == SHARDS
    assert metrics["rounds"] > 0
    assert metrics["rtt_avg_ns"] == 2_000_014
