"""Fig. 10(b): Data Caching (memcached) latency under Xen contention.

Paper: at a fixed 5000 rps (GET:SET 4:1, 4 workers x 20 connections),
average and tail latency increase 4.7x and 7.5x on the shared core;
ratelimit 0 restores them.
"""

from repro.experiments.xen_case import run_fig10b

DURATION_NS = 500_000_000


def test_fig10b_memcached_ratelimit(benchmark, once, report):
    results = once(run_fig10b, duration_ns=DURATION_NS)
    base = results["baseline"].latency
    rows = {}
    for condition, result in results.items():
        s = result.latency.scaled()
        rows[f"{condition} avg (us)"] = f"{s['avg']:.1f}"
        rows[f"{condition} p99.9 (us)"] = f"{s['p99.9']:.1f}"
    avg_ratio = results["shared"].latency.avg_ns / base.avg_ns
    tail_ratio = results["shared"].latency.p999_ns / base.p999_ns
    rows["shared avg blowup [paper: 4.7x]"] = f"{avg_ratio:.1f}x"
    rows["shared p99.9 blowup [paper: 7.5x]"] = f"{tail_ratio:.1f}x"
    report("Fig 10(b): memcached at 5000 rps under credit2 contention", rows)

    assert 2.0 < avg_ratio < 12.0
    assert 4.0 < tail_ratio < 25.0
    fixed = results["shared+ratelimit0"].latency
    assert fixed.avg_ns < 1.5 * base.avg_ns

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    results = run_fig10b(duration_ns=scale_duration(preset, DURATION_NS))
    return {
        f"{condition.replace('+', '_')}_{stat}_us": round(value, 1)
        for condition, result in results.items()
        for stat, value in (("avg", result.latency.avg_ns / 1e3),
                            ("p999", result.latency.p999_ns / 1e3))
    }
