"""Microbenchmark: eBPF dispatch cost, compiled vs interpreter rates.

Probes execute per packet, so the host-side cost of one program
invocation bounds how fast any traced scenario can simulate.  Runs a
realistic vNetTracer script (filter + ID extraction + record emission)
thousands of times in both cost modes, and redeploys the same bytecode
repeatedly the way agents do on reconfiguration -- the path the
verified+compiled program cache accelerates.
"""

from repro.core.compiler import compile_script
from repro.core.config import ActionSpec, FilterRule, TracepointSpec
from repro.ebpf.context import build_skb_context
from repro.ebpf.maps import PerfEventArray
from repro.ebpf.vm import ExecutionEnv
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import IPPROTO_UDP, make_udp_packet

FULL_RUNS = 40_000
REDEPLOYS = 50


def _build(jit: bool, tracepoint=None):
    perf = PerfEventArray(num_cpus=2)
    perf.set_consumer(lambda _cpu, _record: None)
    if tracepoint is None:
        tracepoint = TracepointSpec(node="n", hook="dev:x")
    program, maps = compile_script(
        FilterRule(dst_port=11111, protocol=IPPROTO_UDP),
        tracepoint,
        ActionSpec(record=True),
        perf_map=perf,
        jit=jit,
    )
    program.load()
    packet = make_udp_packet(
        MACAddress.from_index(1), MACAddress.from_index(2),
        IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"), 1, 11111, b"x" * 60,
    )
    ctx, data = build_skb_context(packet)
    return program, ExecutionEnv(maps=maps), ctx, data


def _dispatch(runs: int, redeploys: int) -> dict:
    out = {}
    for mode, jit in (("jit", True), ("interp", False)):
        program, env, ctx, data = _build(jit)
        sim_cost = 0
        for _ in range(runs):
            sim_cost += program.run(env, ctx, data).cost_ns
        out[f"{mode}_runs"] = program.run_count
        out[f"{mode}_sim_ns_per_run"] = round(sim_cost / runs, 2)
    # Agent redeploy pattern: the same control package is reinstalled
    # (same script, fresh maps) on every reconfiguration -- the path the
    # verified+compiled program cache serves.
    tracepoint = TracepointSpec(node="redeploy", hook="dev:x")
    for _ in range(redeploys):
        _build(jit=True, tracepoint=tracepoint)
    out["redeploys"] = redeploys
    return out


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    return _dispatch(scale_count(preset, FULL_RUNS, floor=4_000), REDEPLOYS)


def test_micro_dispatch_modes(benchmark, once, report):
    results = once(_dispatch, 2_000, 10)
    report(
        "Micro: per-invocation dispatch, jit vs interpreter rates",
        {
            "jit simulated ns/run": results["jit_sim_ns_per_run"],
            "interp simulated ns/run": results["interp_sim_ns_per_run"],
        },
    )
    assert results["jit_runs"] == results["interp_runs"] == 2_000
    # The simulated cost model must keep the JIT cheaper per run.
    assert results["jit_sim_ns_per_run"] < results["interp_sim_ns_per_run"]
