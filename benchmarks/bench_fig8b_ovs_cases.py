"""Fig. 8(b): Sockperf latency through OVS under congestion cases.

Paper: "the tail latency of Sockperf in Case II and Case III increased
significantly compared to the latency in the uncongested network."
"""

from repro.experiments.ovs_case import run_fig8b

DURATION_NS = 400_000_000


def test_fig8b_sockperf_latency_cases(benchmark, once, report):
    results = once(run_fig8b, duration_ns=DURATION_NS)
    rows = {}
    for case, summary in results.items():
        s = summary.scaled()
        rows[f"Case {case} avg (us)"] = f"{s['avg']:.1f}"
        rows[f"Case {case} p99.9 (us)"] = f"{s['p99.9']:.1f}"
    report("Fig 8(b): sockperf latency, Cases I/II/III", rows)
    assert results["II"].avg_ns > 5 * results["I"].avg_ns
    assert results["III"].avg_ns > results["II"].avg_ns

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    results = run_fig8b(duration_ns=scale_duration(preset, DURATION_NS))
    return {
        f"case_{case}_{stat}_us": round(value, 1)
        for case, summary in results.items()
        for stat, value in (("avg", summary.avg_ns / 1e3),
                            ("p999", summary.p999_ns / 1e3))
    }
