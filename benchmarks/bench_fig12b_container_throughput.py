"""Fig. 12(b): VM-to-VM vs container-overlay throughput.

Paper: "the Netperf TCP and UDP throughput between containers were just
16.8% and 22.9% of that between VMs".
"""

from repro.experiments.container_case import run_fig12b

DURATION_NS = 300_000_000


def test_fig12b_overlay_throughput_collapse(benchmark, once, report):
    results = once(run_fig12b, duration_ns=DURATION_NS)
    rows = {}
    for name, pair in results.items():
        rows[f"{name} VM (Gbps)"] = f"{pair.vm_bps / 1e9:.2f}"
        rows[f"{name} containers (Gbps)"] = f"{pair.container_bps / 1e9:.2f}"
        paper = "16.8%" if "tcp" in name else "22.9%"
        rows[f"{name} ratio [paper: {paper}]"] = f"{pair.ratio * 100:.1f}%"
    report("Fig 12(b): netperf throughput, VM path vs overlay path", rows)

    tcp, udp = results["netperf_tcp"], results["netperf_udp"]
    # Shape: a small fraction of the VM numbers, UDP somewhat better.
    assert 0.05 < tcp.ratio < 0.35
    assert 0.10 < udp.ratio < 0.45
    assert udp.ratio > tcp.ratio

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    results = run_fig12b(duration_ns=scale_duration(preset, DURATION_NS))
    out = {}
    for name, pair in results.items():
        out[f"{name}_vm_gbps"] = round(pair.vm_bps / 1e9, 3)
        out[f"{name}_container_gbps"] = round(pair.container_bps / 1e9, 3)
        out[f"{name}_ratio_pct"] = round(pair.ratio * 100, 2)
    return out
