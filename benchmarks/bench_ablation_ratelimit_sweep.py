"""Ablation/extension: sweeping the credit2 context-switch rate limit.

The paper flips the knob from 1000 us to 0 and reports the fix; this
sweep maps the whole trade-off an operator tunes: tail latency of the
I/O VM vs the context-switch churn the rate limit exists to suppress.
Expected monotonic shape: p99.9 latency grows with the rate limit;
context switches shrink with it; the hog's CPU share stays ~fair.
"""

from repro.experiments.xen_case import run_ratelimit_sweep

DURATION_NS = 300_000_000


def test_ablation_ratelimit_sweep(benchmark, once, report):
    points = once(run_ratelimit_sweep, values_us=(0, 250, 1000, 2000),
                  duration_ns=DURATION_NS)
    rows = {}
    for point in points:
        s = point.sockperf.scaled()
        rows[f"ratelimit {point.ratelimit_us:4d} us"] = (
            f"avg {s['avg']:7.1f} us, p99.9 {s['p99.9']:7.1f} us, "
            f"ctx-switches {point.context_switches}, hog share "
            f"{point.hog_share * 100:.0f}%"
        )
    report("Ablation: credit2 rate-limit sweep (sockperf under contention)", rows)

    by_limit = {p.ratelimit_us: p for p in points}
    # Latency grows with the rate limit...
    assert (by_limit[0].sockperf.p999_ns
            < by_limit[250].sockperf.p999_ns
            < by_limit[1000].sockperf.p999_ns)
    assert by_limit[2000].sockperf.p999_ns > by_limit[250].sockperf.p999_ns
    # ... while the rate limit does its job of cutting switch churn
    # (at 5000 rps, a 1-2 ms minimum slice batches several wakes).
    assert by_limit[2000].context_switches < 0.7 * by_limit[0].context_switches
    # The hog keeps the vast majority of the CPU in every setting.
    assert all(p.hog_share > 0.9 for p in points)

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    values_us = (0, 1000) if preset == "smoke" else (0, 250, 1000, 2000)
    points = run_ratelimit_sweep(
        values_us=values_us,
        duration_ns=scale_duration(preset, DURATION_NS),
    )
    out = {}
    for point in points:
        out[f"ratelimit_{point.ratelimit_us}us_p999_us"] = round(
            point.sockperf.p999_ns / 1e3, 1
        )
        out[f"ratelimit_{point.ratelimit_us}us_ctx_switches"] = point.context_switches
    return out
