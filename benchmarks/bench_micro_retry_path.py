"""Microbenchmark: the resilient delivery layer's no-fault happy path.

Every deploy now rides the ack/retry dispatcher and every online batch
carries a sequence number through the collector's resequencer + dedup
(docs/FAULTS.md).  Fault-free runs pay that machinery on every control
package and every shipped batch, so its happy-path cost is the price
of resilience -- this scenario measures it in isolation: a burst of
full deploy/ack round-trips, then a stream of sequence-numbered batch
shipments with their acks, no fault plan attached.
"""

from repro.core import FilterRule, GlobalConfig, TracepointSpec, TracingSpec
from repro.core.records import TraceRecord
from repro.core.vnettracer import VNetTracer
from repro.net.packet import IPPROTO_UDP
from repro.net.stack import KernelNode
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine

FULL_DEPLOYS = 60
FULL_BATCHES = 1_500
RECORDS_PER_BATCH = 64
SHIP_PERIOD_NS = 500_000


def _churn(deploys: int, batches: int) -> dict:
    engine = Engine()
    registry = MetricsRegistry()
    node = KernelNode(engine, "bench", num_cpus=2)
    tracer = VNetTracer(engine, registry=registry)
    tracer.add_agent(node)

    spec = TracingSpec(
        rule=FilterRule(dst_port=9000, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node="bench", hook="kprobe:udp_send_skb", label="tx"),
        ],
        global_config=GlobalConfig(
            online_collection=True,
            # Manual flushes below; keep the periodic timer out of the way.
            flush_interval_ns=3_600_000_000_000,
            ring_buffer_bytes=64 * 1024,
        ),
    )

    # Deploy churn: each iteration is a full control-plane round trip
    # (attempt -> deliver -> install -> ack) through the retry machinery.
    # Heartbeats run indefinitely, so every drain is bounded by `until`.
    acked = 0
    for _ in range(deploys):
        report = tracer.deploy(spec)
        engine.run(until=engine.now + 10_000_000)  # deliver, install, ack
        acked += len(report.acked_nodes)

    # Shipment churn: sequence-numbered batches through the collector's
    # resequencer, with the ack leg of each in flight while the next
    # batch ships.
    agent = tracer.agents["bench"]
    tracepoint_id = agent.package.tracepoints[0].tracepoint_id
    payload = TraceRecord(1, tracepoint_id, 0, 64, 0).pack()

    def producer():
        for _ in range(batches):
            for _ in range(RECORDS_PER_BATCH):
                agent.ring.append(payload)
            agent.ring.flush()
            yield SHIP_PERIOD_NS

    engine.process(producer(), name="shipper")
    # Past the last ship by several ack round-trips + backoff timers.
    engine.run(until=engine.now + batches * SHIP_PERIOD_NS + 50_000_000)

    return {
        "deploys_acked": acked,
        "rows": tracer.db.rows_inserted,
        "deploy_attempts": int(registry.total("vnt_retry_deploy_attempts_total")),
        "deploy_retries": int(registry.total("vnt_retry_deploy_retries_total")),
        "ship_attempts": int(registry.total("vnt_retry_ship_attempts_total")),
        "ship_retries": int(registry.total("vnt_retry_ship_retries_total")),
        "deduped_batches": tracer.db.deduped_batches,
        "pending_ships": len(agent._pending_ships),
    }


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    return _churn(
        scale_count(preset, FULL_DEPLOYS, floor=10),
        scale_count(preset, FULL_BATCHES, floor=200),
    )


def test_micro_retry_path(benchmark, once, report):
    results = once(_churn, 10, 200)
    report(
        "Micro: no-fault deploy/ship round trips through the retry layer",
        {
            "deploys acked": results["deploys_acked"],
            "ship attempts": results["ship_attempts"],
            "rows": results["rows"],
        },
    )
    # Happy path: one attempt per deploy and per batch, nothing retried,
    # nothing deduped, nothing left pending, and every record landed.
    assert results["deploys_acked"] == results["deploy_attempts"] == 10
    assert results["deploy_retries"] == 0
    assert results["ship_attempts"] == 200
    assert results["ship_retries"] == 0
    assert results["deduped_batches"] == 0
    assert results["pending_ships"] == 0
    assert results["rows"] == 200 * RECORDS_PER_BATCH
