"""Benchmark harness helpers.

Each ``bench_figXX_*.py`` regenerates one table/figure of the paper.
Scenario runs are deterministic simulations, so every benchmark executes
its scenario once (``rounds=1``) -- the interesting output is the
*measured shape* printed next to the paper's numbers, recorded into the
pytest-benchmark ``extra_info`` so ``--benchmark-json`` captures it.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a deterministic scenario exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture
def report(benchmark):
    """Print a paper-vs-measured block and attach it to the benchmark."""

    def _report(title: str, rows: dict) -> None:
        print(f"\n=== {title} ===")
        for key, value in rows.items():
            print(f"  {key}: {value}")
            benchmark.extra_info[key] = str(value)

    return _report
