"""Fig. 9(b): OVS ingress policing restores Sockperf latency.

Paper: with ingress_policing_rate=1e5 kbps and burst=1e4 kb on vnet0 and
vnet1, "both the average and tail latency of Sockperf decreased
significantly".
"""

from repro.experiments.ovs_case import run_case, run_fig9b

DURATION_NS = 400_000_000


def test_fig9b_rate_limit_mitigation(benchmark, once, report):
    results = once(run_fig9b, duration_ns=DURATION_NS)
    baseline = run_case("I", duration_ns=DURATION_NS).sockperf
    rows = {"Case I baseline avg (us)": f"{baseline.avg_ns / 1e3:.1f}"}
    for key, summary in results.items():
        s = summary.scaled()
        rows[f"{key} avg (us)"] = f"{s['avg']:.1f}"
        rows[f"{key} p99.9 (us)"] = f"{s['p99.9']:.1f}"
    report("Fig 9(b): sockperf latency with OVS ingress policing", rows)
    for case in ("II", "III"):
        congested = results[case].avg_ns
        limited = results[f"{case}+ratelimit"].avg_ns
        assert limited < congested / 5
        assert limited < 3 * baseline.avg_ns

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    results = run_fig9b(duration_ns=scale_duration(preset, DURATION_NS))
    return {
        f"{key.replace('+', '_')}_avg_us": round(summary.avg_ns / 1e3, 1)
        for key, summary in results.items()
    }
