"""Microbenchmark: packed-blob fan-in with streaming windows on vs off.

Three nodes ship packed shipment blobs into one collector through the
sequence-numbered at-least-once path -- the exact ingest fan-in the
streaming query layer taps (docs/STREAMING.md).  The scenario runs the
identical ingest twice: plain (windows disabled, the status quo) and
with a :class:`~repro.streaming.StreamingAggregator` attached over the
four-point chain, then enforces the documented budgets:

* **Ingest budget** -- the windowed leg's ingest wall time (the engine
  run: resequencer, TraceDB inserts, and the streaming tap folding
  every record into open windows) must stay within
  ``STREAMING_OVERHEAD_BUDGET``x of plain ingest.  This is the bound
  that protects the collector hot path.
* **Drain budget** -- closing every accumulated window at end of run
  (the deferred hop joins, sketches, jitter, top-K, and frame
  emission) must cost no more than ``DRAIN_BUDGET``x of one plain
  ingest pass.  Live runs pay this incrementally at watermark
  advances; the bound keeps the whole frame-emission side cheaper
  than re-reading the data.

``run()`` raises on a violation, which fails the CI bench-smoke job
loudly; the wall-clock ratios themselves are deliberately *not*
reported (bench metrics must be simulation-deterministic), only the
budget verdicts are.
"""

import gc
import time

from repro.core.collector import RawDataCollector
from repro.core.records import TraceRecord
from repro.core.tracedb import TraceDB
from repro.sim.engine import Engine
from repro.streaming import StreamingAggregator, StreamingConfig

FULL_TRACES = 6_000
# Traces per shipment blob per node.  150 traces = 3.6 KB of packed
# records on the two-tracepoint middle hop -- the page-scale ring-buffer
# flush agents actually ship; per-shipment fixed costs (scheduling, the
# resequencer, cursor diffs) amortize over the blob on both legs.
BATCH_TRACES = 150
REPS = 3  # alternating timed repetitions; min-of wins
WINDOW_NS = 1_000_000
STREAMING_OVERHEAD_BUDGET = 1.3  # windowed ingest <= 1.3x plain ingest
DRAIN_BUDGET = 0.75  # closing all windows <= 0.75x one plain ingest

# Three nodes, four tracepoints: sender, a forwarding middle hop
# carrying two tracepoints (one packed blob holds both), receiver.
_LABELS = {0: "send", 1: "fwd-in", 2: "fwd-out", 3: "deliver"}
_CHAIN = ("send", "fwd-in", "fwd-out", "deliver")
_HOP_NS = (9_000, 27_000, 9_500)
_RX_SKEW_NS = -1_500_000  # receiver clock runs ahead; aligned at ingest


def _blobs(first_trace: int) -> "dict[str, bytes]":
    """One shipment window: packed per-node blobs for BATCH_TRACES traces."""
    tx = bytearray()
    mid = bytearray()
    rx = bytearray()
    for trace_id in range(first_trace, first_trace + BATCH_TRACES):
        # 4 us packet spacing = 250k pps: a realistic per-flow rate for
        # OVS-path tracing, putting ~250 packets in each 1 ms window.
        base = 1_000_000 + trace_id * 4_000
        cpu = trace_id % 4
        tx += TraceRecord(trace_id, 0, base, 1500, cpu).pack()
        mid += TraceRecord(trace_id, 1, base + _HOP_NS[0], 1500, cpu).pack()
        mid += TraceRecord(
            trace_id, 2, base + _HOP_NS[0] + _HOP_NS[1], 1500, cpu
        ).pack()
        rx_base = base + sum(_HOP_NS) - _RX_SKEW_NS
        rx += TraceRecord(trace_id, 3, rx_base, 1400, cpu).pack()
    return {"tx": bytes(tx), "mid": bytes(mid), "rx": bytes(rx)}


def _ingest(total_traces: int, windowed: bool) -> "tuple[float, float, dict]":
    """One full fan-in; returns (ingest secs, drain secs, result fields)."""
    engine = Engine()
    db = TraceDB()
    db.set_clock_skew("rx", _RX_SKEW_NS)
    collector = RawDataCollector(engine, db)
    collector.register_labels(_LABELS)
    aggregator = None
    if windowed:
        aggregator = StreamingAggregator(
            StreamingConfig(chain=_CHAIN, window_ns=WINDOW_NS)
        ).attach(collector)

    seq = 0
    for first in range(1, total_traces + 1, BATCH_TRACES):
        seq += 1
        blobs = _blobs(first)
        engine.schedule(
            seq * 1_000,
            lambda blobs=blobs, seq=seq: [
                collector.receive_batch(node, blobs[node], seq=seq)
                for node in ("tx", "mid", "rx")
            ],
        )

    gc.collect()  # same heap state for both legs
    started = time.perf_counter()
    engine.run()
    ingested = time.perf_counter()
    if aggregator is not None:
        aggregator.close_all()
    drained = time.perf_counter() - ingested
    return ingested - started, drained, {
        "rows_inserted": db.rows_inserted,
        "windows_closed": aggregator.windows_closed if aggregator else 0,
        "stream_records": aggregator.records if aggregator else 0,
        "late_records": aggregator.late_records if aggregator else 0,
    }


def _build(total_traces: int) -> dict:
    # Alternate the legs and keep each one's best time: min-of-REPS is
    # robust against one-off scheduler hiccups, alternation cancels any
    # drift between the first and last measurement.
    plain_s = windowed_s = drain_s = float("inf")
    plain = windowed = {}
    for _ in range(REPS):
        elapsed, _drain, plain = _ingest(total_traces, windowed=False)
        plain_s = min(plain_s, elapsed)
        elapsed, drain, windowed = _ingest(total_traces, windowed=True)
        windowed_s = min(windowed_s, elapsed)
        drain_s = min(drain_s, drain)

    ratio = windowed_s / plain_s if plain_s else 1.0
    if ratio > STREAMING_OVERHEAD_BUDGET:
        raise RuntimeError(
            f"streaming ingest overhead {ratio:.2f}x exceeds the "
            f"{STREAMING_OVERHEAD_BUDGET}x budget (plain {plain_s * 1e3:.1f} ms, "
            f"windowed {windowed_s * 1e3:.1f} ms; docs/STREAMING.md)"
        )
    drain_ratio = drain_s / plain_s if plain_s else 0.0
    if drain_ratio > DRAIN_BUDGET:
        raise RuntimeError(
            f"window drain cost {drain_ratio:.2f}x of plain ingest exceeds "
            f"the {DRAIN_BUDGET}x budget (drain {drain_s * 1e3:.1f} ms, "
            f"plain {plain_s * 1e3:.1f} ms; docs/STREAMING.md)"
        )
    return {
        "rows_inserted": windowed["rows_inserted"],
        "stream_records": windowed["stream_records"],
        "windows_closed": windowed["windows_closed"],
        "late_records": windowed["late_records"],
        "within_budget": True,  # run() raised otherwise
    }


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    return _build(scale_count(preset, FULL_TRACES, floor=1_000))


def test_micro_streaming_agg(benchmark, once, report):
    results = once(_build, 1_500)
    report(
        "Micro: packed-blob fan-in, streaming windows on vs off",
        {
            "rows inserted": results["rows_inserted"],
            "streamed records": results["stream_records"],
            "windows closed": results["windows_closed"],
            "within budgets": results["within_budget"],
        },
    )
    assert results["rows_inserted"] == 1_500 * 4
    assert results["stream_records"] == results["rows_inserted"]
    assert results["windows_closed"] >= 5  # 1500 traces at 4 us span ~6 ms
    assert results["late_records"] == 0
