"""Microbenchmark: span-tree assembly throughput.

The `repro timeline` verb folds every collected trace into a span tree
(`repro.tracing.reconstruct`), so assembly cost scales with rows in the
TraceDB.  This scenario drives record ingestion through engine events
(per-node batch arrivals as packed shipment blobs over
`TraceDB.insert_packed` -- the collector's shape since the columnar
rewrite), then reconstructs the full forest and serializes it to Chrome
trace JSON -- the whole timeline hot path, gated on events/s against
the committed baseline.
"""

from repro.core.records import RECORD_STRUCT
from repro.core.tracedb import TraceDB
from repro.sim.engine import Engine

FULL_TRACES = 8_000
BATCH = 50

# Two nodes, two tracepoints each: packet > device/hop/wire shape.
_CHAIN = (
    ("tx", "send"),
    ("tx", "nic-out"),
    ("rx", "nic-in"),
    ("rx", "deliver"),
)
_HOP_NS = (9_000, 27_000, 9_500)
_LABELS = {index: label for index, (_, label) in enumerate(_CHAIN)}


def _build(total_traces: int) -> dict:
    from repro.tracing.export import chrome_trace_json
    from repro.tracing.reconstruct import SpanAssembler

    engine = Engine()
    db = TraceDB()
    db.set_clock_skew("rx", -1_500_000)

    def ingest(first_trace: int) -> None:
        # One "batch arrival": BATCH traces' worth of rows per node,
        # shipped as one packed blob each (what an agent flush sends).
        pack = RECORD_STRUCT.pack
        blobs = {"tx": [], "rx": []}
        for trace_id in range(first_trace, first_trace + BATCH):
            base = 1_000_000 + trace_id * 40_000
            ts = base
            for index, (node, label) in enumerate(_CHAIN):
                blobs[node].append(pack(trace_id, index, ts, 64, 0))
                if index < len(_HOP_NS):
                    ts += _HOP_NS[index]
        for node, records in blobs.items():
            db.insert_packed(node, b"".join(records), _LABELS)

    for first in range(1, total_traces + 1, BATCH):
        engine.schedule(first * 1_000, ingest, first)
    engine.run()

    chain = [label for _, label in _CHAIN]
    assembler = SpanAssembler(db)
    forest = assembler.forest(chain=chain, complete_only=True)
    anomalies = assembler.anomalies(forest)
    document = chrome_trace_json(forest)
    return {
        "rows_inserted": db.rows_inserted,
        "trees_built": assembler.trees_built,
        "spans_built": assembler.spans_built,
        "orphan_records": assembler.orphan_records,
        "anomalies": len(anomalies),
        "chrome_bytes": len(document),
    }


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    return _build(scale_count(preset, FULL_TRACES, floor=500))


def test_micro_span_reconstruct(benchmark, once, report):
    results = once(_build, 1_000)
    report(
        "Micro: span-tree assembly + Chrome export",
        {
            "rows inserted": results["rows_inserted"],
            "trees built": results["trees_built"],
            "spans built": results["spans_built"],
            "chrome bytes": results["chrome_bytes"],
        },
    )
    assert results["trees_built"] == 1_000
    # packet + 2 devices + 2 hops + 1 wire per trace, nothing orphaned.
    assert results["spans_built"] == 6_000
    assert results["orphan_records"] == 0
    assert results["anomalies"] == 0
