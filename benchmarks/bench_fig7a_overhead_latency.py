"""Fig. 7(a): Sockperf latency with vs. without vNetTracer.

Paper: "the average latency with vNetTracer increased less than 1%",
no tail blowup, no added packet loss.
"""

from repro.experiments.overhead import run_fig7a

DURATION_NS = 500_000_000


def test_fig7a_sockperf_overhead(benchmark, once, report):
    result = once(run_fig7a, duration_ns=DURATION_NS, mps=1000)
    report(
        "Fig 7(a): sockperf latency overhead",
        {
            "baseline avg (us)": f"{result.baseline.avg_ns / 1e3:.2f}",
            "traced avg (us)": f"{result.traced.avg_ns / 1e3:.2f}",
            "avg overhead (%) [paper: <1%]": f"{result.avg_overhead_pct:.2f}",
            "baseline p99.9 (us)": f"{result.baseline.p999_ns / 1e3:.2f}",
            "traced p99.9 (us)": f"{result.traced.p999_ns / 1e3:.2f}",
            "p99.9 overhead (%) [paper: no burst]": f"{result.p999_overhead_pct:.2f}",
            "added loss [paper: none]": result.traced_loss - result.baseline_loss,
            "records collected": result.records_collected,
        },
    )
    assert result.avg_overhead_pct < 2.0
    assert result.traced_loss == result.baseline_loss == 0

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    result = run_fig7a(duration_ns=scale_duration(preset, DURATION_NS), mps=1000)
    return {
        "baseline_avg_us": round(result.baseline.avg_ns / 1e3, 2),
        "traced_avg_us": round(result.traced.avg_ns / 1e3, 2),
        "avg_overhead_pct": round(result.avg_overhead_pct, 3),
        "records_collected": result.records_collected,
    }
