"""Microbenchmark: raw discrete-event engine throughput.

Every substrate (network stack, schedulers, eBPF cost model) runs on
the one shared engine, so schedule/run/cancel cost bounds every
scenario in this repo.  The churn below exercises exactly the hot
paths `repro bench` gates: zero-delay scheduling (signal wakeups),
self-rescheduling timers, and cancel-heavy workloads (retransmit
timers that almost never fire).
"""

from repro.sim.engine import Engine

FULL_EVENTS = 300_000
LANES = 8


def _noop() -> None:
    return None


def _churn(total_events: int) -> dict:
    """Timer lanes that reschedule themselves; each tick also schedules
    and immediately cancels a shadow event (the retransmit-timer
    pattern) and fires a zero-delay wakeup."""
    engine = Engine()
    per_lane = total_events // LANES
    cancelled = [0]

    def tick(remaining: int, interval: int) -> None:
        shadow = engine.schedule(interval + 3, _noop)
        shadow.cancel()
        cancelled[0] += 1
        engine.schedule(0, _noop)
        if remaining > 1:
            engine.schedule(interval, tick, remaining - 1, interval)

    for lane in range(LANES):
        engine.schedule(lane + 1, tick, per_lane, 11 + lane)
    executed = engine.run()
    return {
        "events_executed": executed,
        "cancelled_events": cancelled[0],
        "final_now_ns": engine.now,
        "pending_after_run": engine.pending(),
    }


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    return _churn(scale_count(preset, FULL_EVENTS, floor=10_000))


def test_micro_engine_churn(benchmark, once, report):
    results = once(_churn, 50_000)
    report(
        "Micro: engine schedule/run/cancel churn",
        {
            "events executed": results["events_executed"],
            "cancelled events": results["cancelled_events"],
            "pending after run": results["pending_after_run"],
        },
    )
    # Each lane tick executes itself + one zero-delay wakeup; cancelled
    # shadows never fire and never linger.
    assert results["events_executed"] > 50_000
    assert results["cancelled_events"] > 6_000
    assert results["pending_after_run"] == 0
