"""Fig. 10(a): Sockperf latency under Xen credit2 contention.

Paper: 99.9th percentile latency increases ~22x when the I/O VM shares
the pCPU with a CPU-bound VM; with ratelimit_us=0 latency is "close to
the baseline".
"""

from repro.experiments.xen_case import run_fig10a

DURATION_NS = 500_000_000


def test_fig10a_sockperf_ratelimit_tail(benchmark, once, report):
    results = once(run_fig10a, duration_ns=DURATION_NS)
    base = results["baseline"].sockperf
    rows = {}
    for condition, result in results.items():
        s = result.sockperf.scaled()
        rows[f"{condition} avg (us)"] = f"{s['avg']:.1f}"
        rows[f"{condition} p99.9 (us)"] = f"{s['p99.9']:.1f}"
        rows[f"{condition} jitter range (us)"] = (
            f"({result.jitter_range_us[0]:.1f}, {result.jitter_range_us[1]:.1f})"
        )
    ratio = results["shared"].sockperf.p999_ns / base.p999_ns
    rows["shared p99.9 blowup [paper: ~22x]"] = f"{ratio:.1f}x"
    report("Fig 10(a): sockperf under credit2 rate-limit contention", rows)

    assert ratio > 8.0
    fixed = results["shared+ratelimit0"].sockperf
    assert fixed.p999_ns < 2 * base.p999_ns

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    results = run_fig10a(duration_ns=scale_duration(preset, DURATION_NS))
    return {
        f"{condition.replace('+', '_')}_p999_us": round(
            result.sockperf.p999_ns / 1e3, 1
        )
        for condition, result in results.items()
    }
