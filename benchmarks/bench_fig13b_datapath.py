"""Fig. 13(b): the packet data path, VM vs container overlay.

Paper: "the data path in container networks is far more complex than
that in VMs ... the packets travel across different layers repeatedly".
The hop sequences below are reconstructed purely from vNetTracer
records ordered by timestamp (scripts strip the VXLAN header to match
the inner flow).
"""

from repro.experiments.container_case import run_fig13b


def test_fig13b_datapath_depth(benchmark, once, report):
    results = once(run_fig13b)
    vm, container = results["vm"], results["container"]
    report(
        "Fig 13(b): receive-side data path",
        {
            "VM path": " -> ".join(vm.hops),
            "container path": " -> ".join(container.hops),
            "VM hops": len(vm.hops),
            "container hops": len(container.hops),
        },
    )
    assert len(container.hops) >= len(vm.hops) + 3
    assert any("vxlan" in hop for hop in container.hops)
    assert any("br-" in hop for hop in container.hops)
    assert any("veth" in hop for hop in container.hops)

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    results = run_fig13b()
    return {
        "vm_hops": len(results["vm"].hops),
        "container_hops": len(results["container"].hops),
    }
