"""Fig. 7(b): Netperf throughput under no tracing / vNetTracer / SystemTap.

Paper: vNetTracer degrades throughput "insignificantly"; SystemTap costs
~10 % on the 1 G link and 26.5 % on the 10 G link.
"""

import pytest

from repro.experiments.overhead import run_fig7b

DURATION_NS = 300_000_000


@pytest.mark.parametrize("link_gbps,paper_stap_loss", [(1.0, "10%"), (10.0, "26.5%")])
def test_fig7b_netperf_tracer_overhead(benchmark, once, report, link_gbps, paper_stap_loss):
    result = once(run_fig7b, link_gbps=link_gbps, duration_ns=DURATION_NS)
    report(
        f"Fig 7(b): netperf TCP into a Xen VM over {link_gbps:g}G",
        {
            "baseline (Mbps)": f"{result.baseline_bps / 1e6:.0f}",
            "vNetTracer (Mbps)": f"{result.vnettracer_bps / 1e6:.0f}",
            "SystemTap (Mbps)": f"{result.systemtap_bps / 1e6:.0f}",
            "vNetTracer loss (%) [paper: ~0]": f"{result.vnettracer_loss_pct:.2f}",
            f"SystemTap loss (%) [paper: {paper_stap_loss}]":
                f"{result.systemtap_loss_pct:.2f}",
        },
    )
    # Shape: vNetTracer nearly free; SystemTap clearly worse.
    assert result.vnettracer_loss_pct < 5.0
    assert result.systemtap_loss_pct > result.vnettracer_loss_pct + 5.0

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    duration_ns = scale_duration(preset, DURATION_NS)
    links = (10.0,) if preset == "smoke" else (1.0, 10.0)
    out = {}
    for link_gbps in links:
        result = run_fig7b(link_gbps=link_gbps, duration_ns=duration_ns)
        key = f"{link_gbps:g}g"
        out[f"{key}_baseline_mbps"] = round(result.baseline_bps / 1e6, 1)
        out[f"{key}_vnettracer_loss_pct"] = round(result.vnettracer_loss_pct, 2)
        out[f"{key}_systemtap_loss_pct"] = round(result.systemtap_loss_pct, 2)
    return out
