"""Macro benchmark: 1000-node fleet on the sharded substrate, 16 shards.

The fleet-scaling gate: the same 1000-node scenario also runs as
``macro_fleet_single`` (one Engine) and ``macro_fleet_shards4``; the
committed baseline pins all three so a regression in the shard
coordinator -- or in the plain engine -- shows up as an events/sec drop.
The three scenarios report identical deterministic metrics (same
``digest16``), which the CI determinism job byte-diffs.
"""

from repro.experiments.macro_fleet import FleetConfig, run_macro_fleet

FULL_TICKS = 100
SMOKE_TICKS = 10
SHARDS = 16


def _fleet(ticks: int, shards: int) -> dict:
    result = run_macro_fleet(FleetConfig(ticks=ticks), shards=shards)
    return dict(result.metrics)


def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_count

    return _fleet(scale_count(preset, FULL_TICKS, floor=SMOKE_TICKS), SHARDS)


def test_macro_fleet_sharded(benchmark, once, report):
    metrics = once(_fleet, SMOKE_TICKS, SHARDS)
    report(
        "Macro: 1000-node fleet, 16 shards",
        {
            "rows inserted": metrics["rows_inserted"],
            "boundary messages": metrics["boundary_messages"],
            "rounds": metrics["rounds"],
            "rtt avg (ns)": metrics["rtt_avg_ns"],
            "digest": metrics["digest16"],
        },
    )
    assert metrics["shards"] == SHARDS
    assert metrics["rows_inserted"] > 0
    assert metrics["skew_racks_recovered"] == metrics["racks"] - 1
    # Symmetric wire latency: every probe/reply RTT is exactly 2x wire.
    assert metrics["rtt_avg_ns"] == 2_000_014
