"""Fig. 13(a): softirq rate and distribution on the receiving VM.

Paper: the net_rx_action execution rate in containers is 4.54x that of
VMs (despite far lower throughput); 99.7% of invocations land on CPU 0
for VMs vs 62.9% for containers.
"""

from repro.experiments.container_case import run_fig13a

DURATION_NS = 300_000_000


def test_fig13a_softirq_rate_and_distribution(benchmark, once, report):
    results = once(run_fig13a, duration_ns=DURATION_NS)
    vm, container = results["vm"], results["container"]
    ratio = container.net_rx_rate_per_s / vm.net_rx_rate_per_s
    rows = {
        "VM goodput (Gbps)": f"{vm.goodput_bps / 1e9:.2f}",
        "container goodput (Gbps)": f"{container.goodput_bps / 1e9:.2f}",
        "VM net_rx_action rate (/s)": f"{vm.net_rx_rate_per_s:.0f}",
        "container net_rx_action rate (/s)": f"{container.net_rx_rate_per_s:.0f}",
        "rate ratio [paper: 4.54x]": f"{ratio:.2f}x",
        "VM cpu0 share [paper: 99.7%]":
            f"{vm.cpu_distribution.get(0, 0) * 100:.1f}%",
        "container cpu0 share [paper: 62.9%]":
            f"{container.cpu_distribution.get(0, 0) * 100:.1f}%",
    }
    report("Fig 13(a): net_rx_action rate + get_rps_cpu distribution", rows)

    assert ratio > 2.5  # many more softirqs per delivered byte
    assert vm.cpu_distribution.get(0, 0) > 0.95
    assert 0.5 < container.cpu_distribution.get(0, 0) < 0.95

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    results = run_fig13a(duration_ns=scale_duration(preset, DURATION_NS))
    out = {}
    for path, r in results.items():
        out[f"{path}_goodput_gbps"] = round(r.goodput_bps / 1e9, 3)
        out[f"{path}_net_rx_rate_per_s"] = round(r.net_rx_rate_per_s, 1)
    return out
