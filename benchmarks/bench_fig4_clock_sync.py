"""§III-B / Fig. 4: Cristian's-algorithm skew estimation accuracy.

The paper samples 100 ping-pongs and takes the minimum one-way time to
cancel network interference.  The benchmark sweeps configured clock
offsets/drifts, idle and with bulk background traffic on the link.
"""

from repro.experiments.clocksync_case import run_fig4_sweep


def test_fig4_cristian_accuracy(benchmark, once, report):
    results = once(run_fig4_sweep)
    rows = {}
    for r in results:
        key = (f"offset {r.configured_offset_ns / 1e6:+.1f}ms "
               f"drift {r.configured_drift_ppm:+.0f}ppm "
               f"{'loaded' if r.background_load else 'idle'}")
        rows[key] = (f"true {r.true_skew_ns}ns, est {r.estimated_skew_ns}ns, "
                     f"err {r.error_ns}ns (owt {r.one_way_ns / 1e3:.1f}us)")
    report("Fig 4: clock-skew estimation (min of 100 samples)", rows)

    for r in results:
        assert r.error_ns < 20_000  # within tens of us even under load
        assert r.one_way_ns > 0

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    results = run_fig4_sweep()
    return {
        "sweep_points": len(results),
        "max_error_ns": max(r.error_ns for r in results),
        "min_one_way_us": round(min(r.one_way_ns for r in results) / 1e3, 1),
    }
