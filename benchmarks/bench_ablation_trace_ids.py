"""Ablation: per-packet trace-ID embedding cost.

§III-B claims the ID operations "only involve tens of nanoseconds
overhead [and] do not harm the microsecond level application latency".
Compares sockperf latency with the trace-ID kernel patch enabled vs a
pristine kernel (no agents at all), isolating the embed/trim cost from
probe execution.
"""

from repro.experiments.topologies import build_two_host_kvm
from repro.net.traceid import EMBED_COST_NS, STRIP_COST_NS, enable_trace_ids
from repro.workloads.sockperf import SockperfClient, SockperfServer

DURATION_NS = 400_000_000


def _run(with_ids: bool, duration_ns: int = DURATION_NS) -> float:
    scene = build_two_host_kvm(seed=31)
    engine = scene.engine
    if with_ids:
        for node in (scene.vm1.node, scene.vm2.node):
            enable_trace_ids(node)
    SockperfServer(scene.vm2.node, scene.vm2_ip)
    client = SockperfClient(scene.vm1.node, scene.vm1_ip, scene.vm2_ip, mps=2000)
    client.start(duration_ns, start_delay_ns=5_000_000)
    engine.run(until=duration_ns + 100_000_000)
    return client.summary().avg_ns


def test_ablation_trace_id_cost(benchmark, once, report):
    def scenario():
        return {"plain": _run(False), "with-ids": _run(True)}

    results = once(scenario)
    delta = results["with-ids"] - results["plain"]
    report(
        "Ablation: trace-ID embed/trim cost",
        {
            "plain kernel avg (us)": f"{results['plain'] / 1e3:.3f}",
            "patched kernel avg (us)": f"{results['with-ids'] / 1e3:.3f}",
            "delta (ns) [paper: tens of ns]": f"{delta:.0f}",
            "modeled embed+strip (ns)": EMBED_COST_NS + STRIP_COST_NS,
        },
    )
    # Tens to a few hundred ns on a ~50us latency: well under 1%.
    assert 0 <= delta < 1_000

def run(preset: str = "smoke") -> dict:
    """Benchmark-harness entry point (see docs/BENCHMARKS.md)."""
    from repro.bench.presets import scale_duration

    duration_ns = scale_duration(preset, DURATION_NS)
    plain = _run(False, duration_ns)
    with_ids = _run(True, duration_ns)
    return {
        "plain_avg_us": round(plain / 1e3, 3),
        "with_ids_avg_us": round(with_ids / 1e3, 3),
        "delta_ns": round(with_ids - plain, 1),
    }
