"""Small units not covered elsewhere: cost model, stats plumbing,
engine/process odds and ends."""

import pytest

from repro.net.costs import CostModel, DEFAULT_COSTS, gbps_to_ns_per_byte
from repro.net.device import DeviceStats, VethDevice
from repro.net.packet import (
    EthernetHeader,
    IPv4Header,
    IPPROTO_UDP,
    Packet,
    UDPHeader,
    VXLANHeader,
)
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.stack import KernelNode
from repro.sim.engine import Engine


class TestCostModel:
    def test_with_overrides_copies(self):
        base = CostModel()
        tuned = base.with_overrides(ovs_switch_ns=9999)
        assert tuned.ovs_switch_ns == 9999
        assert base.ovs_switch_ns != 9999
        assert tuned.ip_rcv_ns == base.ip_rcv_ns

    def test_default_instance_shared(self):
        assert DEFAULT_COSTS.napi_budget == 64

    def test_gbps_conversion(self):
        assert gbps_to_ns_per_byte(1.0) == pytest.approx(8.0)
        assert gbps_to_ns_per_byte(10.0) == pytest.approx(0.8)

    def test_noise_respects_zero_sigma(self, engine):
        node = KernelNode(engine, "n", costs=CostModel(timer_noise_sigma=0.0))
        assert node.noisy(1000) == 1000

    def test_noise_jitters_with_sigma(self, engine):
        node = KernelNode(engine, "n")
        draws = {node.noisy(10_000) for _ in range(50)}
        assert len(draws) > 10
        assert all(5_000 < value < 20_000 for value in draws)


class TestDeviceStats:
    def test_as_dict_complete(self):
        stats = DeviceStats()
        stats.tx_packets = 3
        as_dict = stats.as_dict()
        assert as_dict["tx_packets"] == 3
        assert set(as_dict) == {
            "tx_packets", "tx_bytes", "tx_dropped",
            "rx_packets", "rx_bytes", "rx_dropped",
        }


class TestDoubleEncapsulation:
    def test_innermost_follows_two_levels(self):
        mac = MACAddress.from_index(1)
        inner = Packet(
            [EthernetHeader(mac, mac),
             IPv4Header(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"), IPPROTO_UDP),
             UDPHeader(1, 2)],
            b"core",
        )
        mid = Packet(
            [EthernetHeader(mac, mac),
             IPv4Header(IPv4Address("20.0.0.1"), IPv4Address("20.0.0.2"), IPPROTO_UDP),
             UDPHeader(3, 4789), VXLANHeader(1)],
            inner,
        )
        outer = Packet(
            [EthernetHeader(mac, mac),
             IPv4Header(IPv4Address("30.0.0.1"), IPv4Address("30.0.0.2"), IPPROTO_UDP),
             UDPHeader(5, 4789), VXLANHeader(2)],
            mid,
        )
        assert outer.innermost is inner
        assert outer.total_length == inner.total_length + 2 * 50

    def test_nested_clone_clones_inner(self):
        mac = MACAddress.from_index(1)
        inner = Packet(
            [EthernetHeader(mac, mac),
             IPv4Header(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"), IPPROTO_UDP),
             UDPHeader(1, 2)],
            b"core",
        )
        outer = Packet(
            [EthernetHeader(mac, mac),
             IPv4Header(IPv4Address("20.0.0.1"), IPv4Address("20.0.0.2"), IPPROTO_UDP),
             UDPHeader(3, 4789), VXLANHeader(1)],
            inner,
        )
        clone = outer.clone()
        assert clone.inner is not inner
        assert clone.inner.payload == b"core"


class TestSoftirqIntrospection:
    def test_invocation_distribution_sums_to_one(self, engine):
        node = KernelNode(engine, "n", num_cpus=2)
        veth_a, veth_b = VethDevice.create_pair(node, "a0", node, "a1")
        from repro.net.packet import make_udp_packet

        for _ in range(4):
            veth_b.receive(
                make_udp_packet(veth_a.mac, veth_b.mac, IPv4Address("10.0.0.1"),
                                IPv4Address("10.0.0.2"), 1, 2, b"")
            )
        engine.run()
        distribution = node.softirq.invocation_distribution()
        assert sum(distribution) == pytest.approx(1.0)

    def test_empty_distribution(self, engine):
        node = KernelNode(engine, "n", num_cpus=2)
        assert node.softirq.invocation_distribution() == [0.0, 0.0]


class TestEngineAccounting:
    def test_events_executed_counter(self, engine):
        for i in range(5):
            engine.schedule(i, lambda: None)
        engine.run()
        assert engine.events_executed == 5

    def test_repr_smoke(self, engine):
        assert "Engine" in repr(engine)
        from repro.sim.cpu import CPU

        assert "CPU" in repr(CPU(engine))
