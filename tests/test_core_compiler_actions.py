"""Compiler extensions: prefix filters, size histograms, sampling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compiler import HISTOGRAM_BUCKETS, compile_script, histogram_bucket
from repro.core.config import ActionSpec, ConfigError, FilterRule, ID_MODE_NONE, TracepointSpec
from repro.ebpf.context import build_skb_context
from repro.ebpf.maps import PerCPUArrayMap, PerfEventArray
from repro.ebpf.vm import ExecutionEnv
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import IPPROTO_UDP, make_udp_packet

MAC_A, MAC_B = MACAddress.from_index(1), MACAddress.from_index(2)


def _build(rule=None, action=None, num_cpus=2):
    perf = PerfEventArray(num_cpus=num_cpus)
    counter = PerCPUArrayMap(8, 1, num_cpus)
    hist = PerCPUArrayMap(8, HISTOGRAM_BUCKETS, num_cpus)
    tracepoint = TracepointSpec(node="n", hook="dev:x", id_mode=ID_MODE_NONE)
    program, maps = compile_script(
        rule or FilterRule(),
        tracepoint,
        action or ActionSpec(record=True),
        perf_map=perf,
        counter_map=counter,
        histogram_map=hist,
    )
    program.load()
    return program, ExecutionEnv(maps=maps), perf, counter, hist


def _packet(src="10.1.2.3", dst="10.9.8.7", payload=b"x" * 50):
    return make_udp_packet(MAC_A, MAC_B, IPv4Address(src), IPv4Address(dst),
                           1000, 2000, payload)


def _run(program, env, packet):
    ctx, data = build_skb_context(packet)
    return program.run(env, ctx, data)


class TestPrefixFilters:
    @pytest.mark.parametrize("prefix,src,matches", [
        (24, "10.1.2.99", True),
        (24, "10.1.3.99", False),
        (16, "10.1.200.1", True),
        (16, "10.2.0.1", False),
        (8, "10.255.255.255", True),
        (8, "11.0.0.0", False),
        (32, "10.1.2.3", True),
        (32, "10.1.2.4", False),
    ])
    def test_src_prefix_matching(self, prefix, src, matches):
        rule = FilterRule(src_ip=IPv4Address("10.1.2.3"), src_prefix_len=prefix)
        program, env, *_ = _build(rule=rule)
        assert bool(_run(program, env, _packet(src=src)).r0) == matches

    def test_zero_prefix_matches_everything(self):
        rule = FilterRule(dst_ip=IPv4Address("10.9.8.7"), dst_prefix_len=0,
                          protocol=IPPROTO_UDP)
        program, env, *_ = _build(rule=rule)
        assert _run(program, env, _packet(dst="99.99.99.99")).r0 == 1

    def test_bad_prefix_rejected(self):
        with pytest.raises(ConfigError):
            FilterRule(src_ip=IPv4Address("1.1.1.1"), src_prefix_len=33)

    @settings(max_examples=40, deadline=None)
    @given(prefix=st.integers(min_value=0, max_value=32),
           ip=st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_prefix_matches_reference_subnet_check(self, prefix, ip):
        network = IPv4Address("172.16.32.7")
        rule = FilterRule(dst_ip=network, dst_prefix_len=prefix)
        program, env, *_ = _build(rule=rule)
        candidate = IPv4Address(ip)
        packet = _packet(dst=str(candidate))
        expected = candidate.in_subnet(network, prefix)
        assert bool(_run(program, env, packet).r0) == expected


class TestSizeHistogram:
    def test_reference_bucketing(self):
        assert histogram_bucket(0) == 0
        assert histogram_bucket(1) == 1
        assert histogram_bucket(2) == 2
        assert histogram_bucket(255) == 8
        assert histogram_bucket(256) == 9
        assert histogram_bucket(65535) == 16

    @settings(max_examples=40, deadline=None)
    @given(size=st.integers(min_value=0, max_value=1400))
    def test_in_kernel_bucket_matches_reference(self, size):
        action = ActionSpec(record=False, size_histogram=True)
        program, env, perf, counter, hist = _build(action=action)
        packet = _packet(payload=bytes(size))
        _run(program, env, packet)
        expected_bucket = histogram_bucket(packet.total_length)
        buckets = [hist.sum_u64(i) for i in range(HISTOGRAM_BUCKETS)]
        assert buckets[expected_bucket] == 1
        assert sum(buckets) == 1

    def test_histogram_accumulates(self):
        action = ActionSpec(record=False, size_histogram=True)
        program, env, perf, counter, hist = _build(action=action)
        for size in (10, 10, 1000):
            _run(program, env, _packet(payload=bytes(size)))
        buckets = [hist.sum_u64(i) for i in range(HISTOGRAM_BUCKETS)]
        assert sum(buckets) == 3

    def test_histogram_requires_map(self):
        tp = TracepointSpec(node="n", hook="dev:x")
        with pytest.raises(ValueError):
            compile_script(FilterRule(), tp, ActionSpec(size_histogram=True),
                           perf_map=PerfEventArray(num_cpus=1))


class TestSampling:
    def test_sampled_program_records_fraction(self):
        action = ActionSpec(record=True, sample_shift=2)  # ~1/4
        program, env, perf, *_ = _build(action=action)
        draws = iter(range(1000))
        env.prandom_u32 = lambda: next(draws)  # 0,1,2,3,... -> every 4th hits
        for _ in range(100):
            _run(program, env, _packet())
        assert perf.events_emitted == 25

    def test_sampled_out_returns_2(self):
        action = ActionSpec(record=True, sample_shift=1)
        program, env, perf, *_ = _build(action=action)
        env.prandom_u32 = lambda: 1  # always sampled out
        result = _run(program, env, _packet())
        assert result.r0 == 2
        assert perf.events_emitted == 0

    def test_sampling_cheaper_when_skipping(self):
        action = ActionSpec(record=True, sample_shift=1)
        program, env, perf, *_ = _build(action=action)
        env.prandom_u32 = lambda: 1
        skip_cost = _run(program, env, _packet()).cost_ns
        env.prandom_u32 = lambda: 0
        hit_cost = _run(program, env, _packet()).cost_ns
        assert skip_cost < hit_cost

    def test_bad_shift_rejected(self):
        with pytest.raises(ConfigError):
            ActionSpec(sample_shift=17)

    def test_action_must_do_something_still_enforced(self):
        with pytest.raises(ConfigError):
            ActionSpec(record=False, count=False, size_histogram=False)


class TestAgentIntegration:
    def test_histogram_via_full_pipeline(self, engine, two_nodes):
        from repro.core import GlobalConfig, TracingSpec, VNetTracer

        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        spec = TracingSpec(
            rule=FilterRule(dst_port=9000, protocol=IPPROTO_UDP),
            tracepoints=[
                TracepointSpec(node=node_a.name, hook="kprobe:udp_send_skb",
                               label="send", id_mode=ID_MODE_NONE),
            ],
            action=ActionSpec(record=True, count=True, size_histogram=True),
        )
        tracer.deploy(spec)
        node_b.bind_udp(ip_b, 9000)
        client = node_a.bind_udp(ip_a, 9001)
        for i, size in enumerate((10, 10, 500, 500, 500)):
            engine.schedule(1_000_000 * (i + 1), client.sendto, ip_b, 9000,
                            bytes(size))
        engine.run(until=100_000_000)
        assert tracer.counter(node_a.name, "send") == 5
        histogram = tracer.size_histogram(node_a.name, "send")
        assert sum(histogram) == 5
        assert len([b for b in histogram if b]) == 2  # two size classes
