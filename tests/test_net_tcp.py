"""TCP: handshake, streaming, windows, retransmission."""

import pytest

from repro.net.addressing import IPv4Address
from repro.net.tcp import MSS, TCPConnection
from repro.net.traceid import enable_trace_ids
from repro.sim.engine import Engine


def _serve(node_b, ip_b, port=5000, gso_bytes=MSS):
    state = {"conn": None, "bytes": 0}

    def on_conn(conn):
        state["conn"] = conn
        conn.on_data = lambda c, n, p: state.__setitem__("bytes", state["bytes"] + n)

    node_b.tcp.listen(ip_b, port, on_connection=on_conn, gso_bytes=gso_bytes)
    return state


class TestHandshake:
    def test_three_way_establishes_both_ends(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        state = _serve(node_b, ip_b)
        established = []
        conn = node_a.tcp.connect(ip_a, ip_b, 5000)
        conn.on_established = lambda c: established.append(engine.now)
        engine.run()
        assert conn.state == TCPConnection.ESTABLISHED
        assert state["conn"].state == TCPConnection.ESTABLISHED
        assert established and established[0] > 0

    def test_syn_to_closed_port_ignored(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        conn = node_a.tcp.connect(ip_a, ip_b, 4444)
        engine.run()
        assert conn.state == TCPConnection.SYN_SENT

    def test_duplicate_listen_rejected(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        node_b.tcp.listen(ip_b, 5000)
        with pytest.raises(ValueError):
            node_b.tcp.listen(ip_b, 5000)

    def test_ephemeral_ports_unique(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        node_b.tcp.listen(ip_b, 5000)
        c1 = node_a.tcp.connect(ip_a, ip_b, 5000)
        c2 = node_a.tcp.connect(ip_a, ip_b, 5000)
        assert c1.local_port != c2.local_port


class TestDataTransfer:
    def test_bytes_delivered_exactly(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        state = _serve(node_b, ip_b)
        conn = node_a.tcp.connect(ip_a, ip_b, 5000)
        conn.on_established = lambda c: c.send_app_bytes(10_000)
        engine.run()
        assert state["bytes"] == 10_000
        assert state["conn"].bytes_delivered == 10_000

    def test_large_transfer_with_gso(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        state = _serve(node_b, ip_b)
        conn = node_a.tcp.connect(ip_a, ip_b, 5000, gso_bytes=20 * MSS)
        conn.on_established = lambda c: c.send_app_bytes(500_000)
        engine.run()
        assert state["bytes"] == 500_000
        # GSO: far fewer segments than payload/MSS.
        assert conn.segments_sent < 500_000 // MSS

    def test_in_flight_respects_window(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        _serve(node_b, ip_b)
        conn = node_a.tcp.connect(ip_a, ip_b, 5000)
        conn.on_established = lambda c: c.send_app_bytes(10_000_000)
        engine.run(until=2_000_000)
        assert conn.in_flight <= min(conn.cwnd, conn.rwnd)

    def test_cwnd_grows_during_transfer(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        _serve(node_b, ip_b)
        conn = node_a.tcp.connect(ip_a, ip_b, 5000)
        initial_cwnd = conn.cwnd
        conn.on_established = lambda c: c.send_app_bytes(2_000_000)
        engine.run()
        assert conn.cwnd > initial_cwnd

    def test_bidirectional_request_response(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        replies = []

        def on_conn(server_conn):
            server_conn.on_data = lambda c, n, p: c.send_app_bytes(n * 2)

        node_b.tcp.listen(ip_b, 5000, on_connection=on_conn)
        conn = node_a.tcp.connect(ip_a, ip_b, 5000)
        conn.on_data = lambda c, n, p: replies.append(n)
        conn.on_established = lambda c: c.send_app_bytes(100)
        engine.run()
        assert sum(replies) == 200


class TestLossRecovery:
    def _lossy_link(self, engine, two_nodes, drop_uids):
        """Drop specific data segments at the receiving veth."""
        node_a, node_b, ip_a, ip_b = two_nodes
        veth_b = node_b.device("veth0")
        original = veth_b.receive
        counter = {"n": 0}

        def flaky(packet):
            if packet.payload_length > 0 and packet.tcp is not None:
                counter["n"] += 1
                if counter["n"] in drop_uids:
                    return  # dropped on the floor
            original(packet)

        veth_b.receive = flaky
        return node_a, node_b, ip_a, ip_b

    def test_fast_retransmit_recovers_single_loss(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = self._lossy_link(engine, two_nodes, {3})
        state = _serve(node_b, ip_b)
        conn = node_a.tcp.connect(ip_a, ip_b, 5000)
        conn.on_established = lambda c: c.send_app_bytes(40 * MSS)
        engine.run()
        assert state["bytes"] == 40 * MSS
        assert conn.retransmits >= 1
        assert conn.ssthresh < conn.rwnd  # the loss cut the threshold

    def test_rto_recovers_tail_loss(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = self._lossy_link(engine, two_nodes, {5})
        state = _serve(node_b, ip_b)
        conn = node_a.tcp.connect(ip_a, ip_b, 5000)
        conn.on_established = lambda c: c.send_app_bytes(5 * MSS)  # loss at the tail
        engine.run()
        assert state["bytes"] == 5 * MSS
        assert conn.retransmits >= 1

    def test_out_of_order_segments_reassembled(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        state = _serve(node_b, ip_b)
        conn = node_a.tcp.connect(ip_a, ip_b, 5000)
        conn.on_established = lambda c: c.send_app_bytes(30 * MSS)
        engine.run()
        assert state["bytes"] == 30 * MSS
        # Receiver delivered exactly once, in order.
        assert state["conn"].rcv_nxt != 0


class TestTraceIDsOnTCP:
    def test_options_carry_id_when_enabled(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        enable_trace_ids(node_a)
        captured = []
        from repro.ebpf.probes import CallbackAttachment

        node_b.hooks.attach(
            "dev:veth0",
            CallbackAttachment(lambda ev: captured.append(ev.packet)),
        )
        _serve(node_b, ip_b)
        conn = node_a.tcp.connect(ip_a, ip_b, 5000)
        conn.on_established = lambda c: c.send_app_bytes(100)
        engine.run()
        from repro.net.traceid import extract_trace_id

        data_segments = [p for p in captured if p.payload_length > 0]
        assert data_segments
        assert all(extract_trace_id(p) is not None for p in data_segments)
