"""ICMP echo: message format, responder, the Ping driver."""

import pytest

from repro.net.icmp import (
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMPResponder,
    Ping,
    build_echo,
    parse_echo,
)
from repro.net.checksum import verify_checksum
from repro.net.addressing import IPv4Address


class TestMessageFormat:
    def test_roundtrip(self):
        message = build_echo(ICMP_ECHO_REQUEST, 0x1234, 7, b"payload")
        icmp_type, identifier, sequence, payload = parse_echo(message)
        assert (icmp_type, identifier, sequence, payload) == (
            ICMP_ECHO_REQUEST, 0x1234, 7, b"payload"
        )

    def test_checksum_valid(self):
        message = build_echo(ICMP_ECHO_REPLY, 1, 2, b"x" * 10)
        assert verify_checksum(message)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            parse_echo(b"\x08\x00")


class TestPing:
    def test_ping_across_veth(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        ICMPResponder(node_b)
        ping = Ping(node_a, ip_a, ip_b, interval_ns=1_000_000)
        ping.start(count=10)
        engine.run(until=100_000_000)
        assert ping.received == ping.sent == 10
        assert ping.loss_count == 0
        assert all(5_000 < rtt < 100_000 for rtt in ping.rtts_ns)

    def test_responder_counts_requests(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        responder = ICMPResponder(node_b)
        Ping(node_a, ip_a, ip_b).start(count=3)
        engine.run(until=100_000_000)
        assert responder.requests_answered == 3

    def test_no_responder_means_loss(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        ping = Ping(node_a, ip_a, ip_b)
        ping.start(count=3)
        engine.run(until=100_000_000)
        assert ping.received == 0
        assert ping.loss_count == 3

    def test_concurrent_pings_do_not_cross(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        ICMPResponder(node_b)
        ping1 = Ping(node_a, ip_a, ip_b, interval_ns=500_000)
        ping2 = Ping(node_a, ip_a, ip_b, interval_ns=700_000)
        ping1.start(count=5)
        ping2.start(count=5)
        engine.run(until=100_000_000)
        assert ping1.received == 5 and ping2.received == 5
        assert ping1.identifier != ping2.identifier

    def test_icmp_hook_fires(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        ICMPResponder(node_b)
        Ping(node_a, ip_a, ip_b).start(count=2)
        engine.run(until=100_000_000)
        assert node_b.hooks.fires("kprobe:icmp_rcv") == 2

    def test_ping_through_overlay(self):
        from repro.experiments.topologies import build_overlay_case

        scene = build_overlay_case(seed=5)
        ICMPResponder(scene.container2.node)
        ping = Ping(scene.container1.node, scene.c1_ip, scene.c2_ip)
        ping.start(count=5)
        scene.engine.run(until=200_000_000)
        assert ping.received == 5
