"""Open vSwitch: queueing, round-robin service, policing, HTB, local port."""

import pytest

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.device import VethDevice
from repro.net.packet import make_udp_packet
from repro.net.stack import KernelNode
from repro.sim.engine import Engine
from repro.virt.ovs import HTBShaper, OVSBridge, TokenBucketPolicer

IP_A, IP_B = IPv4Address("10.4.0.1"), IPv4Address("10.4.0.2")


def _switch(engine, ports=2, queue_capacity=None):
    node = KernelNode(engine, "host")
    ovs = OVSBridge(node, "ovs-br1")
    endpoints = []
    for i in range(ports):
        inner, outer = VethDevice.create_pair(node, f"in{i}", node, f"out{i}")
        port = ovs.add_port(inner, queue_capacity=queue_capacity)
        endpoints.append((inner, outer, port))
    return node, ovs, endpoints


def _frame(src_mac, dst_mac, seq=0):
    return make_udp_packet(src_mac, dst_mac, IP_A, IP_B, 1000, 2000, bytes(100), app_seq=seq)


class TestSwitching:
    def test_learned_unicast_forwarding(self, engine):
        node, ovs, eps = _switch(engine)
        (in0, out0, p0), (in1, out1, p1) = eps
        mac_x, mac_y = MACAddress.from_index(100), MACAddress.from_index(101)
        ovs.fdb[mac_y.value] = p1
        ovs.ingress(in0, _frame(mac_x, mac_y), node.cpus[0])
        engine.run()
        assert ovs.switched == 1
        assert in1.stats.tx_packets == 1  # egressed via port 1's device
        assert ovs.fdb[mac_x.value] is p0  # learned the source

    def test_unknown_destination_floods(self, engine):
        node, ovs, eps = _switch(engine, ports=3)
        in0 = eps[0][0]
        ovs.ingress(in0, _frame(MACAddress.from_index(1), MACAddress.from_index(2)),
                    node.cpus[0])
        engine.run()
        assert ovs.flooded == 1
        assert eps[1][0].stats.tx_packets == 1
        assert eps[2][0].stats.tx_packets == 1
        assert eps[0][0].stats.tx_packets == 0

    def test_local_port_delivery(self, engine):
        node, ovs, eps = _switch(engine)
        ovs.ip = IP_B
        got = []
        sock = node.bind_udp(IP_B, 2000)
        sock.on_receive = lambda payload, *r: got.append(payload)
        ovs.ingress(eps[0][0], _frame(MACAddress.from_index(1), ovs.mac), node.cpus[0])
        engine.run()
        assert got == [bytes(100)]

    def test_queue_capacity_drops(self, engine):
        node, ovs, eps = _switch(engine, queue_capacity=4)
        in0, _out0, p0 = eps[0]
        mac_y = MACAddress.from_index(9)
        ovs.fdb[mac_y.value] = eps[1][2]
        for seq in range(50):
            p0.submit(_frame(MACAddress.from_index(1), mac_y, seq))
        assert p0.queue_drops > 0
        assert p0.enqueued + p0.queue_drops == 50

    def test_round_robin_interleaves_busy_ports(self, engine):
        node, ovs, eps = _switch(engine, ports=2)
        mac_y = MACAddress.from_index(9)
        target_inner, target_outer = VethDevice.create_pair(node, "tin", node, "tout")
        target_port = ovs.add_port(target_inner)
        ovs.fdb[mac_y.value] = target_port
        order = []
        original = ovs._switch

        def spy(in_port, packet):
            order.append(in_port.device.name)
            original(in_port, packet)

        ovs._switch = spy
        for seq in range(3):
            eps[0][2].submit(_frame(MACAddress.from_index(1), mac_y, seq))
            eps[1][2].submit(_frame(MACAddress.from_index(2), mac_y, seq))
        engine.run()
        # Strict alternation between the two busy ports.
        assert order[:6] in (["in0", "in1"] * 3, ["in1", "in0"] * 3)

    def test_busy_ports_slow_service(self, engine):
        node = KernelNode(engine, "h")
        costs = node.costs
        # service with 1 busy port vs 2 busy ports differs by the per-port term
        assert costs.ovs_switch_per_busy_port_ns > 0


class TestPolicing:
    def test_burst_then_rate_limit(self, engine):
        policer = TokenBucketPolicer(engine, rate_kbps=8, burst_kb=8)  # 1 KB burst, 1 KB/s
        packet = make_udp_packet(
            MACAddress.from_index(1), MACAddress.from_index(2), IP_A, IP_B, 1, 2, bytes(458)
        )  # 500B total
        assert policer.admit(packet)
        assert policer.admit(packet)
        assert not policer.admit(packet)  # bucket empty
        assert policer.dropped == 1

    def test_tokens_refill_over_time(self, engine):
        policer = TokenBucketPolicer(engine, rate_kbps=8_000, burst_kb=8)  # 1 MB/s
        packet = make_udp_packet(
            MACAddress.from_index(1), MACAddress.from_index(2), IP_A, IP_B, 1, 2, bytes(958)
        )
        assert policer.admit(packet)
        assert not policer.admit(packet)
        engine.schedule(2_000_000, lambda: None)  # 2ms -> ~2KB of tokens
        engine.run()
        assert policer.admit(packet)

    def test_port_policing_drops_before_queue(self, engine):
        node, ovs, eps = _switch(engine)
        in0, _o, p0 = eps[0]
        p0.set_policing(rate_kbps=8, burst_kb=1)
        for _ in range(10):
            p0.submit(_frame(MACAddress.from_index(1), MACAddress.from_index(2)))
        assert p0.policer_drops > 0
        assert len(p0.queue) + ovs.switched < 10


class TestHTB:
    def test_classified_traffic_shaped(self, engine):
        released = []
        shaper = HTBShaper(engine, release=lambda p: released.append(engine.now))
        shaper.add_class(lambda p: p.app == "bulk", rate_kbps=8_000)  # 1 MB/s
        for _ in range(3):
            packet = make_udp_packet(
                MACAddress.from_index(1), MACAddress.from_index(2), IP_A, IP_B, 1, 2,
                bytes(958),
            )
            packet.app = "bulk"
            shaper.submit(packet)
        engine.run()
        # 1000B at 1MB/s -> 1ms apart.
        assert released == [1_000_000, 2_000_000, 3_000_000]

    def test_unclassified_passes_through(self, engine):
        released = []
        shaper = HTBShaper(engine, release=lambda p: released.append(engine.now))
        shaper.add_class(lambda p: False, rate_kbps=1)
        packet = make_udp_packet(
            MACAddress.from_index(1), MACAddress.from_index(2), IP_A, IP_B, 1, 2, b"x"
        )
        shaper.submit(packet)
        assert released == [0]

    def test_class_queue_cap(self, engine):
        shaper = HTBShaper(engine, release=lambda p: None)
        cls = shaper.add_class(lambda p: True, rate_kbps=1, ceil_packets=2)
        for _ in range(5):
            shaper.submit(make_udp_packet(
                MACAddress.from_index(1), MACAddress.from_index(2), IP_A, IP_B, 1, 2, b"x"
            ))
        assert cls.dropped == 3
