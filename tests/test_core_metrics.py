"""Offline metric computation on synthetic trace rows."""

import pytest

from repro.core.metrics import (
    decompose_latency,
    event_rate,
    jitter_of,
    latency_between,
    latency_pairs,
    packet_loss,
    per_cpu_distribution,
    throughput_at,
)
from repro.core.records import TraceRecord
from repro.core.tracedb import TraceDB


def _fill(db, label, rows, node="n"):
    for trace_id, ts, length, cpu in rows:
        db.insert(node, label, TraceRecord(trace_id, 1, ts, length, cpu))


class TestThroughput:
    def test_formula_subtracts_id_bytes(self):
        db = TraceDB()
        # 3 packets of 104 bytes over 2 us -> sum(S_i - 4) * 8 / window
        _fill(db, "a", [(1, 0, 104, 0), (2, 1_000, 104, 0), (3, 2_000, 104, 0)])
        result = throughput_at(db, "a")
        assert result.packets == 3
        assert result.payload_bytes == 300
        assert result.bits_per_second == pytest.approx(300 * 8 * 1e9 / 2_000)

    def test_without_id_subtraction(self):
        db = TraceDB()
        _fill(db, "a", [(1, 0, 100, 0), (2, 1_000, 100, 0)])
        result = throughput_at(db, "a", subtract_id_bytes=False)
        assert result.payload_bytes == 200

    def test_single_record_no_throughput(self):
        db = TraceDB()
        _fill(db, "a", [(1, 0, 100, 0)])
        assert throughput_at(db, "a").bits_per_second == 0.0

    def test_windowed(self):
        db = TraceDB()
        _fill(db, "a", [(1, 0, 104, 0), (2, 1_000, 104, 0), (3, 100_000, 104, 0)])
        result = throughput_at(db, "a", end_ns=2_000)
        assert result.packets == 2


class TestLatency:
    def test_matched_by_trace_id(self):
        db = TraceDB()
        _fill(db, "a", [(1, 100, 64, 0), (2, 200, 64, 0)])
        _fill(db, "b", [(2, 260, 64, 0), (1, 150, 64, 0)])
        assert sorted(latency_between(db, "a", "b")) == [50, 60]

    def test_unmatched_ids_skipped(self):
        db = TraceDB()
        _fill(db, "a", [(1, 100, 64, 0), (3, 300, 64, 0)])
        _fill(db, "b", [(1, 140, 64, 0)])
        assert latency_between(db, "a", "b") == [40]

    def test_cross_node_skew_applied(self):
        db = TraceDB()
        db.set_clock_skew("remote", -1_000)
        _fill(db, "a", [(1, 100, 64, 0)], node="master")
        _fill(db, "b", [(1, 1_160, 64, 0)], node="remote")
        assert latency_between(db, "a", "b") == [60]

    def test_pairs_sorted_by_start(self):
        db = TraceDB()
        _fill(db, "a", [(2, 500, 64, 0), (1, 100, 64, 0)])
        _fill(db, "b", [(1, 150, 64, 0), (2, 590, 64, 0)])
        assert latency_pairs(db, "a", "b") == [(100, 50), (500, 90)]


class TestDecomposition:
    def test_segments_sum_to_end_to_end(self):
        db = TraceDB()
        _fill(db, "a", [(1, 0, 64, 0)])
        _fill(db, "b", [(1, 30, 64, 0)])
        _fill(db, "c", [(1, 100, 64, 0)])
        segments = decompose_latency(db, ["a", "b", "c"])
        assert [s.latencies_ns for s in segments] == [[30], [70]]

    def test_incomplete_traces_excluded(self):
        db = TraceDB()
        _fill(db, "a", [(1, 0, 64, 0), (2, 10, 64, 0)])
        _fill(db, "b", [(1, 30, 64, 0)])  # trace 2 missed point b
        _fill(db, "c", [(1, 90, 64, 0), (2, 95, 64, 0)])
        segments = decompose_latency(db, ["a", "b", "c"])
        assert all(len(s.latencies_ns) == 1 for s in segments)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            decompose_latency(TraceDB(), ["only"])


class TestOtherMetrics:
    def test_jitter_definition(self):
        assert jitter_of([100, 150, 120]) == [50, -30]
        assert jitter_of([5]) == []

    def test_packet_loss(self):
        db = TraceDB()
        _fill(db, "tx", [(i, i * 10, 64, 0) for i in range(1, 11)])
        _fill(db, "rx", [(i, i * 10 + 5, 64, 0) for i in range(1, 8)])
        loss = packet_loss(db, "tx", "rx")
        assert (loss.sent, loss.received, loss.lost) == (10, 7, 3)
        assert loss.rate == pytest.approx(0.3)

    def test_loss_never_negative(self):
        db = TraceDB()
        _fill(db, "tx", [(1, 0, 64, 0)])
        _fill(db, "rx", [(1, 5, 64, 0), (2, 6, 64, 0)])
        assert packet_loss(db, "tx", "rx").lost == 0

    def test_cpu_distribution(self):
        db = TraceDB()
        _fill(db, "a", [(1, 0, 64, 0), (2, 1, 64, 0), (3, 2, 64, 1), (4, 3, 64, 0)])
        dist = per_cpu_distribution(db, "a")
        assert dist == {0: 0.75, 1: 0.25}
        assert per_cpu_distribution(db, "empty") == {}

    def test_event_rate(self):
        db = TraceDB()
        _fill(db, "a", [(i, i * 1_000_000, 64, 0) for i in range(11)])  # 1 per ms
        assert event_rate(db, "a") == pytest.approx(1000.0)
        assert event_rate(db, "none") == 0.0
