"""pcap capture: wire format round trips, filtering, live capture."""

import io
import struct

import pytest

from repro.core.config import FilterRule
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import IPPROTO_UDP, Packet, make_udp_packet
from repro.net.pcap import (
    GLOBAL_HEADER,
    LINKTYPE_ETHERNET,
    PCAP_MAGIC,
    PacketCapture,
    PcapError,
    PcapReader,
    PcapWriter,
)

MAC_A, MAC_B = MACAddress.from_index(1), MACAddress.from_index(2)
IP_A, IP_B = IPv4Address("10.1.0.1"), IPv4Address("10.1.0.2")


def _packet(payload=b"capture-me", dst_port=9000):
    return make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1000, dst_port, payload)


class TestWireFormat:
    def test_global_header_fields(self):
        buffer = io.BytesIO()
        PcapWriter(buffer, snaplen=1234)
        (magic, major, minor, _tz, _sig, snaplen, linktype) = GLOBAL_HEADER.unpack(
            buffer.getvalue()[: GLOBAL_HEADER.size]
        )
        assert magic == PCAP_MAGIC
        assert (major, minor) == (2, 4)
        assert snaplen == 1234
        assert linktype == LINKTYPE_ETHERNET

    def test_roundtrip_single_packet(self):
        buffer = io.BytesIO()
        wire = _packet().to_bytes()
        with PcapWriter(buffer) as writer:
            writer.write_packet(wire, 1_500_000_000 + 42_000)
        buffer.seek(0)
        records = list(PcapReader(buffer))
        assert len(records) == 1
        timestamp_ns, data = records[0]
        assert data == wire
        assert timestamp_ns == 1_500_000_000 + 42_000

    def test_roundtrip_many_packets_order_preserved(self):
        buffer = io.BytesIO()
        wires = [_packet(payload=bytes([i]) * (i + 1)).to_bytes() for i in range(10)]
        with PcapWriter(buffer) as writer:
            for index, wire in enumerate(wires):
                writer.write_packet(wire, index * 1_000_000)
        buffer.seek(0)
        read_back = [data for _ts, data in PcapReader(buffer)]
        assert read_back == wires

    def test_snaplen_truncates_but_keeps_orig_len(self):
        buffer = io.BytesIO()
        wire = _packet(payload=b"x" * 500).to_bytes()
        with PcapWriter(buffer, snaplen=60) as writer:
            writer.write_packet(wire, 0)
        raw = buffer.getvalue()
        _s, _us, incl_len, orig_len = struct.unpack_from(
            "<IIII", raw, GLOBAL_HEADER.size
        )
        assert incl_len == 60
        assert orig_len == len(wire)

    def test_bad_magic_rejected(self):
        buffer = io.BytesIO(b"\x00" * GLOBAL_HEADER.size)
        with pytest.raises(PcapError, match="magic"):
            PcapReader(buffer)

    def test_truncated_record_rejected(self):
        buffer = io.BytesIO()
        with PcapWriter(buffer) as writer:
            writer.write_packet(b"\x01\x02\x03\x04", 0)
        truncated = io.BytesIO(buffer.getvalue()[:-2])
        with pytest.raises(PcapError, match="truncated"):
            list(PcapReader(truncated))

    def test_file_path_roundtrip(self, tmp_path):
        path = str(tmp_path / "cap.pcap")
        wire = _packet().to_bytes()
        with PcapWriter(path) as writer:
            writer.write_packet(wire, 7_000)
        reader = PcapReader(path)
        assert [data for _ts, data in reader] == [wire]
        reader.close()


class TestLiveCapture:
    def test_capture_on_device_hook(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        capture = PacketCapture(node_b)
        node_b.hooks.attach("dev:veth0", capture)
        node_b.bind_udp(ip_b, 9000)
        client = node_a.bind_udp(ip_a, 9001)
        for i in range(3):
            engine.schedule(i * 1_000_000, client.sendto, ip_b, 9000, b"pkt")
        engine.run()
        assert len(capture.records) == 3
        parsed = capture.packets()
        assert all(p.udp.dst_port == 9000 for p in parsed)

    def test_capture_filter(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        rule = FilterRule(dst_port=9000, protocol=IPPROTO_UDP)
        capture = PacketCapture(node_b, rule=rule)
        node_b.hooks.attach("dev:veth0", capture)
        node_b.bind_udp(ip_b, 9000)
        node_b.bind_udp(ip_b, 9100)
        client = node_a.bind_udp(ip_a, 9001)
        client.sendto(ip_b, 9000, b"match")
        client.sendto(ip_b, 9100, b"no-match")
        engine.run()
        assert len(capture.records) == 1

    def test_max_packets_cap(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        capture = PacketCapture(node_b, max_packets=2)
        node_b.hooks.attach("dev:veth0", capture)
        node_b.bind_udp(ip_b, 9000)
        client = node_a.bind_udp(ip_a, 9001)
        for i in range(5):
            engine.schedule(i * 1_000_000, client.sendto, ip_b, 9000, b"x")
        engine.run()
        assert len(capture.records) == 2
        assert capture.dropped == 3

    def test_save_and_reload(self, engine, two_nodes, tmp_path):
        node_a, node_b, ip_a, ip_b = two_nodes
        capture = PacketCapture(node_b)
        node_b.hooks.attach("dev:veth0", capture)
        node_b.bind_udp(ip_b, 9000)
        node_a.bind_udp(ip_a, 9001).sendto(ip_b, 9000, b"persist")
        engine.run()
        path = str(tmp_path / "live.pcap")
        assert capture.save(path) == 1
        (timestamp_ns, wire), = list(PcapReader(path))
        packet = Packet.from_bytes(wire)
        assert packet.payload == b"persist"
        # pcap resolution is microseconds; timestamps survive to that grain.
        assert timestamp_ns % 1000 == 0

    def test_capture_costs_time(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        capture = PacketCapture(node_b)
        from repro.ebpf.probes import ProbeEvent

        cost = capture.handle(ProbeEvent(hook="dev:veth0", node="n", packet=_packet()))
        assert cost > 0
