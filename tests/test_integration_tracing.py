"""End-to-end integration: vNetTracer measurements vs ground truth on
the full two-host KVM topology."""

import pytest

from repro.core import FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.experiments.topologies import build_two_host_kvm
from repro.net.packet import IPPROTO_UDP
from repro.workloads.sockperf import SockperfClient, SockperfServer


@pytest.fixture(scope="module")
def traced_run():
    """One traced sockperf run shared by the assertions below."""
    scene = build_two_host_kvm(seed=3)
    engine = scene.engine
    SockperfServer(scene.vm2.node, scene.vm2_ip)
    client = SockperfClient(scene.vm1.node, scene.vm1_ip, scene.vm2_ip, mps=2000)

    tracer = VNetTracer(engine)
    for kernel in (scene.host1.node, scene.host2.node, scene.vm1.node, scene.vm2.node):
        tracer.add_agent(kernel)
    # Align host2's (and its guest's) clock with host1 via Cristian.
    sync = tracer.synchronize_clocks(
        scene.host1.node, scene.host1_ip, "dev:eth0",
        scene.host2.node, scene.host2_ip, "dev:eth0",
    )

    chain = ["vm1:send", "h1:nic", "h2:nic", "vm2:recv"]
    spec = TracingSpec(
        rule=FilterRule(dst_port=11111, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=scene.vm1.node.name, hook="kprobe:udp_send_skb",
                           label="vm1:send"),
            TracepointSpec(node=scene.host1.node.name, hook="dev:eth0", label="h1:nic"),
            TracepointSpec(node=scene.host2.node.name, hook="dev:eth0", label="h2:nic"),
            TracepointSpec(node=scene.vm2.node.name,
                           hook="kprobe:skb_copy_datagram_iovec", label="vm2:recv"),
        ],
    )

    ground_truth = []
    original = client.socket.on_receive

    def start_traced_phase(estimate) -> None:
        # The guest on host2 books time on host2's clock domain as well.
        tracer.db.set_clock_skew(scene.vm2.node.name, estimate.skew_ns)
        tracer.deploy(spec)
        client.start(100_000_000, start_delay_ns=5_000_000)

    previous = sync.on_done

    def on_done(estimate):
        if previous:
            previous(estimate)
        start_traced_phase(estimate)

    sync.on_done = on_done
    engine.run(until=3_000_000_000)
    tracer.collect()
    return scene, tracer, client, chain


class TestEndToEnd:
    def test_all_points_recorded(self, traced_run):
        scene, tracer, client, chain = traced_run
        assert client.received > 100
        for label in chain:
            assert tracer.db.count(label) >= client.received

    def test_end_to_end_latency_plausible(self, traced_run):
        scene, tracer, client, chain = traced_run
        latencies = tracer.latencies(chain[0], chain[-1])
        assert len(latencies) > 100
        # One-way request latency: all positive, tens of microseconds.
        assert all(0 < lat < 500_000 for lat in latencies)

    def test_decomposition_sums_to_end_to_end(self, traced_run):
        scene, tracer, client, chain = traced_run
        segments = tracer.decompose(chain)
        total = tracer.latencies(chain[0], chain[-1])
        reconstructed = [
            sum(parts) for parts in zip(*(s.latencies_ns for s in segments))
        ]
        assert sorted(reconstructed) == sorted(total)[: len(reconstructed)]

    def test_wire_segment_dominated_by_propagation(self, traced_run):
        scene, tracer, client, chain = traced_run
        segments = tracer.decompose(chain)
        wire = segments[1]  # h1:nic -> h2:nic
        summary = wire.summary()
        # 20us propagation + serialization + switch datapath.
        assert 20_000 < summary.avg_ns < 60_000

    def test_cross_node_latency_needs_skew_correction(self, traced_run):
        scene, tracer, client, chain = traced_run
        # Without alignment the 1.5ms configured offset would swamp the
        # ~30us wire latency; with Cristian it does not.
        estimate = tracer.clock_estimates[scene.host2.node.name]
        assert abs(estimate.skew_ns) > 1_000_000  # the skew was real
        wire = tracer.latencies("h1:nic", "h2:nic")
        assert all(0 < lat < 100_000 for lat in wire)

    def test_no_packet_loss_reported(self, traced_run):
        scene, tracer, client, chain = traced_run
        loss = tracer.loss(chain[0], chain[-1])
        assert loss.lost <= 1  # at most a trailing in-flight packet

    def test_throughput_at_point_consistent(self, traced_run):
        scene, tracer, client, chain = traced_run
        result = tracer.throughput(chain[0])
        # 2000 msg/s of 56B payloads (+headers +id), order microseconds:
        assert result.packets >= client.received
        assert result.bits_per_second > 100_000
