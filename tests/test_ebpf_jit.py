"""Differential tests: the JIT (pre-decoded closures) must match the
interpreter bit for bit -- results, registers via r0, costs, and counts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compiler import compile_script
from repro.core.config import ActionSpec, FilterRule, TracepointSpec
from repro.ebpf import isa
from repro.ebpf.assembler import Assembler
from repro.ebpf.context import build_skb_context
from repro.ebpf.isa import R0, R1, R2, R3, R4, R5, R10
from repro.ebpf.maps import PerCPUArrayMap, PerfEventArray
from repro.ebpf.vm import (
    BPFProgram,
    ExecutionEnv,
    clear_program_cache,
    program_cache_stats,
)
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import IPPROTO_UDP, make_udp_packet

MAC_A, MAC_B = MACAddress.from_index(1), MACAddress.from_index(2)

# Random straight-line ALU programs over pre-initialized registers.
ALU_OPS = ("add", "sub", "mul", "div", "mod", "and", "or", "lsh", "rsh")

alu_steps = st.lists(
    st.tuples(
        st.sampled_from(ALU_OPS),
        st.integers(min_value=0, max_value=5),      # dst register
        st.integers(min_value=-(2**31), max_value=2**31 - 1),  # immediate
    ),
    min_size=1,
    max_size=40,
)
init_values = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1), min_size=6, max_size=6
)


def _build_random_program(inits, steps):
    asm = Assembler()
    for reg, value in enumerate(inits):
        asm.mov_imm(reg, value)
    for op, dst, imm in steps:
        if op in ("lsh", "rsh"):
            imm = abs(imm) % 64
        if op in ("div", "mod") and imm == 0:
            imm = 7
        getattr(asm, f"{op}_imm")(dst, imm)
    asm.mov_reg(R0, 0)  # result already in r0; keep explicit
    asm.exit_()
    return asm.assemble()


def _run(insns, jit):
    # jit=False runs the genuine interpreter loop (precompile off);
    # jit=True the pre-decoded closures -- that is the differential pair,
    # since by default both cost modes dispatch through closures.
    program = BPFProgram(list(insns), name="diff", jit=jit, precompile=jit)
    program.load()
    return program.run(ExecutionEnv(clock=lambda: 123456), bytearray(64))


class TestDifferentialALU:
    @settings(max_examples=80, deadline=None)
    @given(inits=init_values, steps=alu_steps)
    def test_random_alu_programs_agree(self, inits, steps):
        insns = _build_random_program(inits, steps)
        interp = _run(insns, jit=False)
        compiled = _run(insns, jit=True)
        assert compiled.r0 == interp.r0
        assert compiled.insns_executed == interp.insns_executed

    def test_branching_program_agrees(self):
        asm = Assembler()
        asm.mov_imm(R2, 300)
        asm.jgt_imm(R2, 255, "big")
        asm.mov_imm(R0, 1)
        asm.exit_()
        asm.label("big")
        asm.mov_imm(R0, 2)
        asm.exit_()
        insns = asm.assemble()
        assert _run(insns, jit=True).r0 == _run(insns, jit=False).r0 == 2

    def test_signed_compare_agrees(self):
        for value in (-5, 5):
            asm = Assembler()
            asm.mov_imm(R2, value)
            asm._jmp(isa.BPF_JSLT, "neg", dst=R2, imm=0)
            asm.mov_imm(R0, 0)
            asm.exit_()
            asm.label("neg")
            asm.mov_imm(R0, 1)
            asm.exit_()
            insns = asm.assemble()
            assert _run(insns, jit=True).r0 == _run(insns, jit=False).r0

    def test_ld_imm64_agrees(self):
        asm = Assembler()
        asm.ld_imm64(R0, 0xFEDCBA9876543210)
        asm.exit_()
        insns = asm.assemble()
        interp, compiled = _run(insns, jit=False), _run(insns, jit=True)
        assert compiled.r0 == interp.r0 == 0xFEDCBA9876543210
        assert compiled.insns_executed == interp.insns_executed

    def test_memory_roundtrip_agrees(self):
        asm = Assembler()
        asm.mov_imm(R2, -1)
        asm.stx_dw(R10, R2, -16)
        asm.ldx_w(R0, R10, -16)
        asm.exit_()
        insns = asm.assemble()
        assert _run(insns, jit=True).r0 == _run(insns, jit=False).r0 == 0xFFFFFFFF


class TestDifferentialCompiledScripts:
    """Every compiler-emitted script shape, both engines, same packets."""

    def _script(self, action, jit):
        perf = PerfEventArray(num_cpus=2)
        counter = PerCPUArrayMap(8, 1, 2)
        hist = PerCPUArrayMap(8, 17, 2)
        tracepoint = TracepointSpec(node="n", hook="dev:x")
        program, maps = compile_script(
            FilterRule(dst_port=4000, protocol=IPPROTO_UDP),
            tracepoint,
            action,
            perf_map=perf,
            counter_map=counter,
            histogram_map=hist,
            jit=jit,
        )
        program.precompile = jit  # non-jit side must run the real interpreter
        program.load()
        env = ExecutionEnv(maps=maps, clock=lambda: 999, prandom_u32=lambda: 0)
        return program, env, perf

    @pytest.mark.parametrize("action", [
        ActionSpec(record=True),
        ActionSpec(record=True, count=True),
        ActionSpec(record=False, count=True, size_histogram=True),
        ActionSpec(record=True, sample_shift=2),
    ])
    @pytest.mark.parametrize("dst_port", [4000, 5000])
    def test_script_shapes_agree(self, action, dst_port):
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, dst_port, b"data!")
        outcomes = []
        for jit in (False, True):
            program, env, perf = self._script(action, jit)
            ctx, data = build_skb_context(packet)
            result = program.run(env, ctx, data)
            outcomes.append((result.r0, result.insns_executed,
                             result.helper_calls, perf.events_emitted))
        assert outcomes[0] == outcomes[1]

    def _redeploy(self, tracepoint, action=ActionSpec(record=True)):
        """One agent install of ``tracepoint``: same script, fresh maps."""
        perf = PerfEventArray(num_cpus=2)
        perf.set_consumer(lambda _cpu, _record: None)
        program, maps = compile_script(
            FilterRule(dst_port=4000, protocol=IPPROTO_UDP),
            tracepoint, action, perf_map=perf, jit=True,
        )
        program.load()
        return program, ExecutionEnv(maps=maps, clock=lambda: 999), perf

    def test_program_cache_hit_on_redeploy(self):
        """Redeploying an unchanged script (same tracepoint, fresh maps
        with fresh fds) must reuse the verified+compiled steps."""
        clear_program_cache()
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 4000, b"data!")
        tracepoint = TracepointSpec(node="n", hook="dev:x")
        emitted = []
        for _ in range(3):
            program, env, perf = self._redeploy(tracepoint)
            ctx, data = build_skb_context(packet)
            program.run(env, ctx, data)
            emitted.append(perf.events_emitted)
        stats = program_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["size"] == 1
        # The patched map-load steps hit each redeploy's own fresh maps.
        assert emitted == [1, 1, 1]

    def test_program_cache_miss_on_different_bytecode(self):
        clear_program_cache()
        tracepoint = TracepointSpec(node="n", hook="dev:x")
        self._redeploy(tracepoint)
        self._redeploy(tracepoint, ActionSpec(record=True, sample_shift=2))
        stats = program_cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 0

    def test_precompile_off_bypasses_the_cache(self):
        clear_program_cache()
        asm = Assembler()
        asm.mov_imm(R0, 1)
        asm.exit_()
        insns = asm.assemble()
        _run(insns, jit=False)  # precompile off -> genuine interpreter
        stats = program_cache_stats()
        assert stats["misses"] == 0 and stats["size"] == 0

    def test_jit_charged_cheaper_per_run(self):
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 4000, b"data!")
        costs = {}
        for jit in (False, True):
            program, env, perf = self._script(ActionSpec(record=True), jit)
            ctx, data = build_skb_context(packet)
            costs[jit] = program.run(env, ctx, data).cost_ns
        assert costs[True] < costs[False]
