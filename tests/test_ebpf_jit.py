"""Differential tests: the compiled tier must match the interpreter
oracle bit for bit -- exit codes, registers, counts, costs, map state,
and perf-event output."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compiler import compile_script
from repro.core.config import ActionSpec, FilterRule, TracepointSpec
from repro.ebpf import isa
from repro.ebpf.assembler import Assembler
from repro.ebpf.context import build_skb_context
from repro.ebpf.helpers import (
    HELPER_GET_PRANDOM_U32,
    HELPER_GET_SMP_PROCESSOR_ID,
    HELPER_KTIME_GET_NS,
    HELPER_MAP_DELETE_ELEM,
    HELPER_MAP_LOOKUP_ELEM,
    HELPER_MAP_UPDATE_ELEM,
    HELPER_PERF_EVENT_OUTPUT,
)
from repro.ebpf.isa import R0, R1, R2, R3, R4, R5, R10
from repro.ebpf.maps import HashMap, PerCPUArrayMap, PerfEventArray
from repro.ebpf.vm import (
    BPFProgram,
    ExecutionEnv,
    ShadowMismatch,
    clear_program_cache,
    program_cache_stats,
)
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import IPPROTO_UDP, make_udp_packet

MAC_A, MAC_B = MACAddress.from_index(1), MACAddress.from_index(2)

# Random straight-line ALU programs over pre-initialized registers.
ALU_OPS = ("add", "sub", "mul", "div", "mod", "and", "or", "lsh", "rsh")

alu_steps = st.lists(
    st.tuples(
        st.sampled_from(ALU_OPS),
        st.integers(min_value=0, max_value=5),      # dst register
        st.integers(min_value=-(2**31), max_value=2**31 - 1),  # immediate
    ),
    min_size=1,
    max_size=40,
)
init_values = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1), min_size=6, max_size=6
)


def _build_random_program(inits, steps):
    asm = Assembler()
    for reg, value in enumerate(inits):
        asm.mov_imm(reg, value)
    for op, dst, imm in steps:
        if op in ("lsh", "rsh"):
            imm = abs(imm) % 64
        if op in ("div", "mod") and imm == 0:
            imm = 7
        getattr(asm, f"{op}_imm")(dst, imm)
    asm.mov_reg(R0, 0)  # result already in r0; keep explicit
    asm.exit_()
    return asm.assemble()


def _run(insns, jit):
    # jit=False runs the genuine interpreter loop (precompile off);
    # jit=True the pre-decoded closures -- that is the differential pair,
    # since by default both cost modes dispatch through closures.
    program = BPFProgram(list(insns), name="diff", jit=jit, precompile=jit)
    program.load()
    return program.run(ExecutionEnv(clock=lambda: 123456), bytearray(64))


class TestDifferentialALU:
    @settings(max_examples=80, deadline=None)
    @given(inits=init_values, steps=alu_steps)
    def test_random_alu_programs_agree(self, inits, steps):
        insns = _build_random_program(inits, steps)
        interp = _run(insns, jit=False)
        compiled = _run(insns, jit=True)
        assert compiled.r0 == interp.r0
        assert compiled.insns_executed == interp.insns_executed

    def test_branching_program_agrees(self):
        asm = Assembler()
        asm.mov_imm(R2, 300)
        asm.jgt_imm(R2, 255, "big")
        asm.mov_imm(R0, 1)
        asm.exit_()
        asm.label("big")
        asm.mov_imm(R0, 2)
        asm.exit_()
        insns = asm.assemble()
        assert _run(insns, jit=True).r0 == _run(insns, jit=False).r0 == 2

    def test_signed_compare_agrees(self):
        for value in (-5, 5):
            asm = Assembler()
            asm.mov_imm(R2, value)
            asm._jmp(isa.BPF_JSLT, "neg", dst=R2, imm=0)
            asm.mov_imm(R0, 0)
            asm.exit_()
            asm.label("neg")
            asm.mov_imm(R0, 1)
            asm.exit_()
            insns = asm.assemble()
            assert _run(insns, jit=True).r0 == _run(insns, jit=False).r0

    def test_ld_imm64_agrees(self):
        asm = Assembler()
        asm.ld_imm64(R0, 0xFEDCBA9876543210)
        asm.exit_()
        insns = asm.assemble()
        interp, compiled = _run(insns, jit=False), _run(insns, jit=True)
        assert compiled.r0 == interp.r0 == 0xFEDCBA9876543210
        assert compiled.insns_executed == interp.insns_executed

    def test_memory_roundtrip_agrees(self):
        asm = Assembler()
        asm.mov_imm(R2, -1)
        asm.stx_dw(R10, R2, -16)
        asm.ldx_w(R0, R10, -16)
        asm.exit_()
        insns = asm.assemble()
        assert _run(insns, jit=True).r0 == _run(insns, jit=False).r0 == 0xFFFFFFFF


# -- whole-subset random programs ---------------------------------------------
#
# Each generated program is a sequence of verifier-safe "steps" over
# r0-r5 plus the stack, conditional forward jumps (always to the exit
# block, keeping the CFG a DAG by construction), and helper-call blocks
# that re-initialize the caller-saved registers they clobber.  Both
# tiers run it against identical deterministic environments; everything
# observable must agree.

_STEP = st.one_of(
    st.tuples(
        st.just("alu"),
        st.sampled_from(ALU_OPS + ("xor_reg", "mov_reg", "add_reg", "sub_reg")),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
    ),
    st.tuples(
        st.just("stack"),
        st.sampled_from(("w", "dw")),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=63),  # slot: fp-8*slot
    ),
    st.tuples(
        st.just("branch"),
        st.sampled_from(("jeq", "jne", "jgt", "jlt", "jle", "jset")),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=-64, max_value=64),
    ),
    st.tuples(
        st.just("call"),
        st.sampled_from(
            ("ktime", "prandom", "smp", "lookup", "update", "delete", "perf")
        ),
        st.integers(min_value=0, max_value=3),  # map key selector
        st.integers(min_value=0, max_value=0),
    ),
)

random_steps = st.lists(_STEP, min_size=1, max_size=25)
random_inits = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1), min_size=6, max_size=6
)


def _assemble_subset_program(inits, steps, hash_fd, perf_fd):
    asm = Assembler()
    for reg, value in enumerate(inits):
        asm.mov_imm(reg, value)
    for kind, what, a, b in steps:
        if kind == "alu":
            if what in ("lsh", "rsh"):
                b = abs(b) % 64
            if what in ("div", "mod") and b == 0:
                b = 13
            if what.endswith("_reg"):
                getattr(asm, what)(a, (a + 1) % 6)
            else:
                getattr(asm, f"{what}_imm")(a, b)
        elif kind == "stack":
            offset = -8 * b
            if what == "dw":
                asm.stx_dw(R10, a, offset)
                asm.ldx_dw(a, R10, offset)
            else:
                asm.stx_w(R10, a, offset)
                asm.ldx_w(a, R10, offset)
        elif kind == "branch":
            getattr(asm, f"{what}_imm")(a, b, "end")
        elif kind == "call":
            if what == "ktime":
                asm.call(HELPER_KTIME_GET_NS)
            elif what == "prandom":
                asm.call(HELPER_GET_PRANDOM_U32)
            elif what == "smp":
                asm.call(HELPER_GET_SMP_PROCESSOR_ID)
            elif what in ("lookup", "update", "delete"):
                asm.st_imm(4, R10, -8, a)  # 4-byte key in fp-8
                asm.ld_map_fd(R1, hash_fd)
                asm.mov_reg(R2, R10)
                asm.add_imm(R2, -8)
                if what == "update":
                    asm.stx_dw(R10, R3, -16)  # 8-byte value from r3
                    asm.mov_reg(R3, R10)
                    asm.add_imm(R3, -16)
                    asm.mov_imm(R4, 0)
                    asm.call(HELPER_MAP_UPDATE_ELEM)
                elif what == "lookup":
                    asm.call(HELPER_MAP_LOOKUP_ELEM)
                else:
                    asm.call(HELPER_MAP_DELETE_ELEM)
            else:  # perf
                asm.stx_dw(R10, R0, -24)
                asm.ld_map_fd(R2, perf_fd)
                asm.mov_imm(R3, 0)  # explicit CPU 0
                asm.mov_reg(R4, R10)
                asm.add_imm(R4, -24)
                asm.mov_imm(R5, 8)
                asm.call(HELPER_PERF_EVENT_OUTPUT)
            # Calls clobber r1-r5; restore the invariant that r0-r5
            # are always initialized.
            for reg in (R1, R2, R3, R4, R5):
                asm.mov_imm(reg, reg)
    asm.ja("end")
    asm.label("end")
    asm.exit_()
    return asm.assemble()


def _deterministic_env(maps):
    ticks = [1_000_000]

    def clock():
        ticks[0] += 111
        return ticks[0]

    printks = []
    env = ExecutionEnv(maps=maps, clock=clock, cpu=1, printk_sink=printks.append)
    return env, printks


def _run_subset(insns, precompile):
    hash_map = HashMap(4, 8, 16)
    perf_map = PerfEventArray(num_cpus=2)
    insns = _rebind_map_fds(insns, hash_map.fd, perf_map.fd)
    maps = {hash_map.fd: hash_map, perf_map.fd: perf_map}
    program = BPFProgram(list(insns), name="subset", jit=True, precompile=precompile)
    program.load()
    env, printks = _deterministic_env(maps)
    result = program.run(env, bytearray(64))
    return result, hash_map.state_snapshot(), list(perf_map.pending), printks


# Placeholder fds baked into generated programs, rebound per run.
_HASH_TAG = 901
_PERF_TAG = 902


def _rebind_map_fds(insns, hash_fd, perf_fd):
    """Point the program's map references at this run's fresh maps."""
    fds = {_HASH_TAG: hash_fd, _PERF_TAG: perf_fd}
    out = list(insns)
    for index, insn in enumerate(out):
        if insn.insn_class == isa.BPF_LD and insn.src == isa.BPF_PSEUDO_MAP_FD:
            out[index] = insn._replace(imm=fds[insn.imm])
    return out


class TestDifferentialSubset:
    @settings(max_examples=60, deadline=None)
    @given(inits=random_inits, steps=random_steps)
    def test_random_subset_programs_agree(self, inits, steps):
        insns = _assemble_subset_program(inits, steps, _HASH_TAG, _PERF_TAG)
        interp, i_maps, i_perf, i_printk = _run_subset(insns, precompile=False)
        compiled, c_maps, c_perf, c_printk = _run_subset(insns, precompile=True)
        assert compiled.r0 == interp.r0
        assert compiled.regs == interp.regs
        assert compiled.insns_executed == interp.insns_executed
        assert compiled.cost_ns == interp.cost_ns
        assert compiled.helper_calls == interp.helper_calls
        assert c_maps == i_maps
        assert c_perf == i_perf
        assert c_printk == i_printk


class TestShadowMode:
    def _shadow_program(self, shadow=True):
        hash_map = HashMap(4, 8, 16)
        perf_map = PerfEventArray(num_cpus=2)
        asm = Assembler()
        asm.call(HELPER_KTIME_GET_NS)
        asm.stx_dw(R10, R0, -8)
        asm.call(HELPER_GET_PRANDOM_U32)
        asm.stx_w(R10, R0, -12)
        asm.st_imm(4, R10, -16, 7)
        asm.ld_map_fd(R1, hash_map.fd)
        asm.mov_reg(R2, R10)
        asm.add_imm(R2, -16)
        asm.mov_reg(R3, R10)
        asm.add_imm(R3, -8)
        asm.mov_imm(R4, 0)
        asm.call(HELPER_MAP_UPDATE_ELEM)
        asm.mov_imm(R1, 0)
        asm.ld_map_fd(R2, perf_map.fd)
        asm.mov_imm(R3, 0)
        asm.mov_reg(R4, R10)
        asm.add_imm(R4, -16)
        asm.mov_imm(R5, 4)
        asm.call(HELPER_PERF_EVENT_OUTPUT)
        asm.mov_imm(R0, 0)
        asm.exit_()
        program = BPFProgram(asm.assemble(), name="shadowed", shadow=shadow)
        program.load()
        maps = {hash_map.fd: hash_map, perf_map.fd: perf_map}
        env, _ = _deterministic_env(maps)
        return program, env, hash_map, perf_map

    def test_shadow_agreement_passes_and_counts_once(self):
        program, env, hash_map, perf_map = self._shadow_program()
        for _ in range(3):
            result = program.run(env, bytearray(64))
            assert result.r0 == 0
        # Externally the shadowed runs count once each, against the
        # real maps only.
        assert program.run_count == 3
        assert len(perf_map.pending) == 3
        assert len(hash_map.state_snapshot()) == 1

    def test_shadow_mismatch_raises(self):
        program, env, _hash_map, _perf_map = self._shadow_program()
        native = program._native

        def corrupted(state, stack, ctx, packet):
            return native(state, stack, ctx, packet) + 1  # wrong insn count

        program._native = corrupted
        with pytest.raises(ShadowMismatch):
            program.run(env, bytearray(64))

    def test_attachment_shadow_flag_arms_the_program(self):
        from repro.ebpf.probes import EBPFAttachment

        asm = Assembler()
        asm.mov_imm(R0, 1)
        asm.exit_()
        program = BPFProgram(asm.assemble(), name="plain")
        program.load()
        EBPFAttachment(program, ExecutionEnv())
        assert program.shadow is False
        EBPFAttachment(program, ExecutionEnv(), shadow=True)
        assert program.shadow is True


class TestDifferentialCompiledScripts:
    """Every compiler-emitted script shape, both engines, same packets."""

    def _script(self, action, jit):
        perf = PerfEventArray(num_cpus=2)
        counter = PerCPUArrayMap(8, 1, 2)
        hist = PerCPUArrayMap(8, 17, 2)
        tracepoint = TracepointSpec(node="n", hook="dev:x")
        program, maps = compile_script(
            FilterRule(dst_port=4000, protocol=IPPROTO_UDP),
            tracepoint,
            action,
            perf_map=perf,
            counter_map=counter,
            histogram_map=hist,
            jit=jit,
        )
        program.precompile = jit  # non-jit side must run the real interpreter
        program.load()
        env = ExecutionEnv(maps=maps, clock=lambda: 999, prandom_u32=lambda: 0)
        return program, env, perf

    @pytest.mark.parametrize("action", [
        ActionSpec(record=True),
        ActionSpec(record=True, count=True),
        ActionSpec(record=False, count=True, size_histogram=True),
        ActionSpec(record=True, sample_shift=2),
    ])
    @pytest.mark.parametrize("dst_port", [4000, 5000])
    def test_script_shapes_agree(self, action, dst_port):
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, dst_port, b"data!")
        outcomes = []
        for jit in (False, True):
            program, env, perf = self._script(action, jit)
            ctx, data = build_skb_context(packet)
            result = program.run(env, ctx, data)
            outcomes.append((result.r0, result.insns_executed,
                             result.helper_calls, perf.events_emitted))
        assert outcomes[0] == outcomes[1]

    def _redeploy(self, tracepoint, action=ActionSpec(record=True)):
        """One agent install of ``tracepoint``: same script, fresh maps."""
        perf = PerfEventArray(num_cpus=2)
        perf.set_consumer(lambda _cpu, _record: None)
        program, maps = compile_script(
            FilterRule(dst_port=4000, protocol=IPPROTO_UDP),
            tracepoint, action, perf_map=perf, jit=True,
        )
        program.load()
        return program, ExecutionEnv(maps=maps, clock=lambda: 999), perf

    def test_program_cache_hit_on_redeploy(self):
        """Redeploying an unchanged script (same tracepoint, fresh maps
        with fresh fds) must reuse the verified+compiled steps."""
        clear_program_cache()
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 4000, b"data!")
        tracepoint = TracepointSpec(node="n", hook="dev:x")
        emitted = []
        for _ in range(3):
            program, env, perf = self._redeploy(tracepoint)
            ctx, data = build_skb_context(packet)
            program.run(env, ctx, data)
            emitted.append(perf.events_emitted)
        stats = program_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["size"] == 1
        # The patched map-load steps hit each redeploy's own fresh maps.
        assert emitted == [1, 1, 1]

    def test_program_cache_miss_on_different_bytecode(self):
        clear_program_cache()
        tracepoint = TracepointSpec(node="n", hook="dev:x")
        self._redeploy(tracepoint)
        self._redeploy(tracepoint, ActionSpec(record=True, sample_shift=2))
        stats = program_cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 0

    def test_precompile_off_bypasses_the_cache(self):
        clear_program_cache()
        asm = Assembler()
        asm.mov_imm(R0, 1)
        asm.exit_()
        insns = asm.assemble()
        _run(insns, jit=False)  # precompile off -> genuine interpreter
        stats = program_cache_stats()
        assert stats["misses"] == 0 and stats["size"] == 0

    def test_jit_charged_cheaper_per_run(self):
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 4000, b"data!")
        costs = {}
        for jit in (False, True):
            program, env, perf = self._script(ActionSpec(record=True), jit)
            ctx, data = build_skb_context(packet)
            costs[jit] = program.run(env, ctx, data).cost_ns
        assert costs[True] < costs[False]
