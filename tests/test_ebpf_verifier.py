"""The verifier's accept/reject catalogue."""

import pytest

from repro.ebpf import isa
from repro.ebpf.assembler import Assembler
from repro.ebpf.isa import Instruction, R0, R1, R2, R3, R5, R6, R9, R10
from repro.ebpf.verifier import VerifierError, verify


def _minimal():
    asm = Assembler()
    asm.mov_imm(R0, 0)
    asm.exit_()
    return asm


class TestAccepts:
    def test_minimal_program(self):
        verify(_minimal().assemble())

    def test_branching_program(self):
        asm = Assembler()
        asm.ldx_w(R2, R1, 0)
        asm.jeq_imm(R2, 1, "yes")
        asm.mov_imm(R0, 0)
        asm.exit_()
        asm.label("yes")
        asm.mov_imm(R0, 1)
        asm.exit_()
        verify(asm.assemble())

    def test_helper_call_with_args(self):
        asm = Assembler()
        asm.call(5)  # ktime: zero args
        asm.exit_()
        verify(asm.assemble())

    def test_stack_access_within_frame(self):
        asm = Assembler()
        asm.mov_imm(R2, 7)
        asm.stx_dw(R10, R2, -8)
        asm.ldx_dw(R0, R10, -512)
        asm.exit_()
        verify(asm.assemble())

    def test_ld_imm64(self):
        asm = Assembler()
        asm.ld_imm64(R0, 1 << 40)
        asm.exit_()
        verify(asm.assemble())


class TestRejects:
    def test_empty_program(self):
        with pytest.raises(VerifierError, match="empty"):
            verify([])

    def test_too_large_program(self):
        asm = Assembler()
        for _ in range(isa.MAX_INSNS):
            asm.mov_imm(R0, 0)
        asm.exit_()
        with pytest.raises(VerifierError, match="too large"):
            verify(asm.assemble())

    def test_exactly_4096_allowed(self):
        asm = Assembler()
        for _ in range(isa.MAX_INSNS - 2):
            asm.mov_imm(R0, 0)
        asm.mov_imm(R0, 1)
        asm.exit_()
        verify(asm.assemble())

    def test_fallthrough_off_end(self):
        with pytest.raises(VerifierError, match="falls off"):
            verify([Instruction(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, dst=R0, imm=0)])

    def test_backward_jump(self):
        insns = [
            Instruction(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, dst=R0, imm=0),
            Instruction(isa.BPF_JMP | isa.BPF_JA, offset=-2),
        ]
        with pytest.raises(VerifierError, match="backward"):
            verify(insns)

    def test_jump_out_of_bounds(self):
        insns = [
            Instruction(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, dst=R0, imm=0),
            Instruction(isa.BPF_JMP | isa.BPF_JA, offset=5),
            Instruction(isa.BPF_JMP | isa.BPF_EXIT),
        ]
        with pytest.raises(VerifierError, match="out of bounds|falls off"):
            verify(insns)

    def test_unreachable_code(self):
        asm = Assembler()
        asm.mov_imm(R0, 0)
        asm.exit_()
        asm.mov_imm(R0, 1)  # dead
        asm.exit_()
        with pytest.raises(VerifierError, match="unreachable"):
            verify(asm.assemble())

    def test_write_to_frame_pointer(self):
        insns = [
            Instruction(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, dst=R10, imm=0),
        ]
        with pytest.raises(VerifierError, match="frame pointer"):
            verify(insns)

    def test_uninitialized_register_read(self):
        asm = Assembler()
        asm.mov_reg(R0, R6)  # R6 never written
        asm.exit_()
        with pytest.raises(VerifierError, match="uninitialized"):
            verify(asm.assemble())

    def test_r0_uninitialized_at_exit(self):
        asm = Assembler()
        asm.mov_imm(R2, 1)
        asm.exit_()
        with pytest.raises(VerifierError, match="R0 at exit"):
            verify(asm.assemble())

    def test_merge_requires_init_on_all_paths(self):
        asm = Assembler()
        asm.jeq_imm(R1, 0, "skip")  # one path initializes R6, one does not
        asm.mov_imm(R6, 5)
        asm.label("skip")
        asm.mov_reg(R0, R6)
        asm.exit_()
        with pytest.raises(VerifierError, match="uninitialized"):
            verify(asm.assemble())

    def test_call_clobbers_caller_saved(self):
        asm = Assembler()
        asm.mov_imm(R2, 1)
        asm.call(5)
        asm.mov_reg(R0, R2)  # R2 was clobbered by the call
        asm.exit_()
        with pytest.raises(VerifierError, match="uninitialized"):
            verify(asm.assemble())

    def test_call_preserves_callee_saved(self):
        asm = Assembler()
        asm.mov_imm(R6, 1)
        asm.call(5)
        asm.mov_reg(R0, R6)
        asm.exit_()
        verify(asm.assemble())

    def test_unknown_helper(self):
        asm = Assembler()
        asm.call(9999)
        asm.exit_()
        with pytest.raises(VerifierError, match="unknown helper"):
            verify(asm.assemble())

    def test_helper_args_must_be_initialized(self):
        asm = Assembler()
        asm.call(1)  # map_lookup needs R1, R2; R2 is uninitialized
        asm.exit_()
        with pytest.raises(VerifierError, match="helper arg"):
            verify(asm.assemble())

    def test_division_by_constant_zero(self):
        asm = Assembler()
        asm.mov_imm(R0, 4)
        asm.div_imm(R0, 0)
        asm.exit_()
        with pytest.raises(VerifierError, match="division"):
            verify(asm.assemble())

    def test_shift_amount_out_of_range(self):
        asm = Assembler()
        asm.mov_imm(R0, 1)
        asm.lsh_imm(R0, 64)
        asm.exit_()
        with pytest.raises(VerifierError, match="shift"):
            verify(asm.assemble())

    def test_stack_out_of_frame(self):
        asm = Assembler()
        asm.mov_imm(R2, 0)
        asm.stx_w(R10, R2, -516)
        asm.mov_imm(R0, 0)
        asm.exit_()
        with pytest.raises(VerifierError, match="outside the 512-byte frame"):
            verify(asm.assemble())

    def test_stack_positive_offset_rejected(self):
        asm = Assembler()
        asm.ldx_w(R0, R10, 8)
        asm.exit_()
        with pytest.raises(VerifierError, match="outside the 512-byte frame"):
            verify(asm.assemble())

    def test_jump_into_ld_imm64_pair(self):
        insns = [
            Instruction(isa.BPF_JMP | isa.BPF_JA, offset=1),  # into second slot
            Instruction(isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW, dst=R0, imm=1),
            Instruction(0, imm=0),
            Instruction(isa.BPF_JMP | isa.BPF_EXIT),
        ]
        with pytest.raises(VerifierError):
            verify(insns)

    def test_ld_imm64_missing_second_slot(self):
        insns = [Instruction(isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW, dst=R0, imm=1)]
        with pytest.raises(VerifierError, match="second slot"):
            verify(insns)

    def test_malformed_second_slot(self):
        insns = [
            Instruction(isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW, dst=R0, imm=1),
            Instruction(0, dst=R3, imm=0),
            Instruction(isa.BPF_JMP | isa.BPF_EXIT),
        ]
        with pytest.raises(VerifierError, match="malformed"):
            verify(insns)

    def test_register_out_of_range(self):
        with pytest.raises(VerifierError, match="register out of range"):
            verify([Instruction(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, dst=12, imm=0)])
