"""The fault-equivalence experiment (docs/FAULTS.md).

The headline invariant of the resilient delivery layer:

* with retries enabled, a faulty run ends byte-identical to the
  fault-free run (same rows, same decomposition, same timeline export);
* with retries disabled, every missing row is accounted for exactly in
  ``vnt_fault_records_lost_total``.
"""

import pytest

from repro.experiments.fault_case import (
    default_fault_plan,
    run_fault_case,
    run_fault_equivalence,
)

PACKETS = 60


@pytest.fixture(scope="module")
def equivalence():
    return run_fault_equivalence(seed=7, packets=PACKETS)


class TestEquivalenceInvariant:
    def test_baseline_observes_every_packet(self, equivalence):
        baseline = equivalence.baseline
        assert baseline.rows == 2 * PACKETS
        assert baseline.rows_by_label == {"recv": PACKETS, "send": PACKETS}
        assert baseline.records_lost == 0

    def test_faults_actually_fired(self, equivalence):
        faulty = equivalence.faulty
        assert faulty.metrics["control_injected"] > 0
        assert faulty.metrics["shipment_injected"] > 0
        assert faulty.deploy_retries > 0
        assert faulty.ship_retries > 0
        assert faulty.deduped_batches > 0

    def test_retries_make_faults_invisible(self, equivalence):
        assert equivalence.rows_match
        assert equivalence.decomposition_match
        assert equivalence.timeline_match
        assert equivalence.equivalent
        assert equivalence.faulty.records_lost == 0
        assert equivalence.faulty.deploy_report.complete

    def test_loss_accounted_exactly_without_retries(self, equivalence):
        lossy = equivalence.lossy_no_retries
        assert lossy.rows < equivalence.baseline.rows  # loss really happened
        assert equivalence.loss_accounted
        assert (
            equivalence.baseline.rows - lossy.rows == lossy.records_lost
        )
        # Retries disabled: every loss is a shipment loss, nothing else.
        assert set(lossy.records_lost_by_reason) == {"shipment"}
        assert lossy.ship_retries == 0


class TestDeterminism:
    def test_same_seed_and_plan_byte_identical(self):
        """Satellite invariant: two runs under the same FaultPlan produce
        byte-identical timeline exports and identical stats."""
        first = run_fault_case(
            seed=7, plan=default_fault_plan(7), packets=PACKETS)
        second = run_fault_case(
            seed=7, plan=default_fault_plan(7), packets=PACKETS)
        assert first.timeline_json == second.timeline_json
        assert first.rows == second.rows
        assert first.rows_by_label == second.rows_by_label
        assert first.decomposition == second.decomposition
        assert first.deploy_retries == second.deploy_retries
        assert first.ship_retries == second.ship_retries
        assert first.metrics == second.metrics


class TestFaultsCLI:
    def test_json_report_is_canonical_and_passing(self, capsys):
        import json

        from repro.cli import main

        assert main(["faults", "--seed", "7",
                     "--packets", str(PACKETS), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["invariants"] == {
            "rows_match": True,
            "decomposition_match": True,
            "timeline_match": True,
            "streaming_match": True,
            "loss_accounted": True,
        }
        legs = doc["legs"]
        assert legs["baseline"]["rows"] == legs["faulty_with_retries"]["rows"]
        assert legs["lossy_no_retries"]["records_lost"] > 0
