"""VXLAN devices, the overlay network, containers, etcd sync."""

import pytest

from repro.experiments.topologies import build_overlay_case
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.bridge import BridgeDevice
from repro.net.stack import KernelNode
from repro.net.vxlan import VXLAN_UDP_PORT, VXLANDevice
from repro.virt.container import Container
from repro.virt.overlay import EtcdStore, OverlayNetwork
from repro.sim.engine import Engine


class TestEtcdStore:
    def test_put_get(self):
        store = EtcdStore()
        store.put("/a/b", "1")
        assert store.get("/a/b") == "1"
        assert store.get("/missing") is None

    def test_prefix_listing(self):
        store = EtcdStore()
        store.put("/x/1", "a")
        store.put("/x/2", "b")
        store.put("/y/1", "c")
        assert store.list_prefix("/x/") == {"/x/1": "a", "/x/2": "b"}

    def test_watch_fires_on_matching_puts(self):
        store = EtcdStore()
        seen = []
        store.watch_prefix("/w/", lambda k, v: seen.append((k, v)))
        store.put("/w/key", "v")
        store.put("/other", "n")
        assert seen == [("/w/key", "v")]


class TestOverlayControlPlane:
    def test_container_records_published(self):
        scene = build_overlay_case(seed=5)
        records = scene.etcd.list_prefix("/overlay/ovnet/containers/")
        assert len(records) == 2

    def test_remote_fdb_programmed_on_both_members(self):
        scene = build_overlay_case(seed=5)
        # member1 must know c2's MAC -> vxlan port and c2 MAC -> VTEP(vm2).
        c2_mac = scene.container2.mac
        assert scene.member1.bridge.fdb[c2_mac.value] is scene.member1.vxlan
        assert scene.member1.vxlan.vtep_fdb[c2_mac.value] == scene.vm2_ip

    def test_local_containers_not_tunnelled(self):
        scene = build_overlay_case(seed=5)
        c1_mac = scene.container1.mac
        # c1 is local to member1: its MAC must not map to the vxlan port.
        assert scene.member1.bridge.fdb.get(c1_mac.value) is not scene.member1.vxlan

    def test_late_joiner_syncs_existing_containers(self):
        scene = build_overlay_case(seed=5)
        vm3 = scene.host.create_kvm_vm("vm3")
        ip3 = IPv4Address("192.168.3.13")
        fe3, be3 = vm3.attach_virtio_nic(ip3, frontend_name="eth0")
        member3 = scene.overlay.join(vm3.node, ip3)
        c2_mac = scene.container2.mac
        assert member3.vxlan.vtep_fdb[c2_mac.value] == scene.vm2_ip


class TestOverlayDataPath:
    def test_container_to_container_udp(self):
        scene = build_overlay_case(seed=5)
        engine = scene.engine
        server = scene.container2.bind_udp(7000)
        got = []
        server.on_receive = lambda payload, src, sport, pkt: got.append((payload, str(src)))
        client = scene.container1.bind_udp(7001)
        client.sendto(scene.c2_ip, 7000, b"over-the-overlay")
        engine.run()
        assert got == [(b"over-the-overlay", "10.32.0.2")]

    def test_packets_are_vxlan_encapsulated_on_the_underlay(self):
        scene = build_overlay_case(seed=5)
        engine = scene.engine
        captured = []
        from repro.ebpf.probes import CallbackAttachment

        scene.vm2.node.hooks.attach(
            "dev:eth0", CallbackAttachment(lambda ev: captured.append(ev.packet))
        )
        server = scene.container2.bind_udp(7000)
        scene.container1.bind_udp(7001).sendto(scene.c2_ip, 7000, b"x")
        engine.run()
        encapsulated = [p for p in captured if p.vxlan is not None]
        assert encapsulated
        outer = encapsulated[0]
        assert outer.udp.dst_port == VXLAN_UDP_PORT
        assert outer.ip.dst == scene.vm2_ip
        assert outer.innermost.ip.dst == scene.c2_ip

    def test_vxlan_counters(self):
        scene = build_overlay_case(seed=5)
        engine = scene.engine
        scene.container2.bind_udp(7000)
        scene.container1.bind_udp(7001).sendto(scene.c2_ip, 7000, b"x")
        engine.run()
        assert scene.member1.vxlan.encapsulated == 1
        assert scene.member2.vxlan.decapsulated == 1

    def test_tcp_across_overlay(self):
        scene = build_overlay_case(seed=5)
        engine = scene.engine
        received = []

        def on_conn(conn):
            conn.on_data = lambda c, n, p: received.append(n)

        scene.container2.tcp_listen(8080, on_connection=on_conn)
        conn = scene.container1.tcp_connect(scene.c2_ip, 8080, gso_bytes=20 * 1448)
        conn.on_established = lambda c: c.send_app_bytes(100_000)
        engine.run()
        assert sum(received) == 100_000

    def test_unknown_destination_dropped(self):
        scene = build_overlay_case(seed=5)
        engine = scene.engine
        ghost_ip = IPv4Address("10.32.0.99")
        ghost_mac = MACAddress.from_index(999)
        scene.vm1.node.add_neighbor(ghost_ip, ghost_mac)
        scene.member1.bridge.fdb[ghost_mac.value] = scene.member1.vxlan
        scene.container1.bind_udp(7001).sendto(ghost_ip, 7000, b"x")
        engine.run()
        assert scene.member1.vxlan.unknown_dst_drops == 1


class TestContainer:
    def test_container_wiring(self, engine):
        node = KernelNode(engine, "vm")
        bridge = BridgeDevice(node, "docker0", ip=IPv4Address("172.17.0.1"))
        container = Container(node, "c", IPv4Address("172.17.0.2"), bridge)
        assert container.veth_outside.master is bridge
        assert container.veth_inside.ip == container.ip
        assert bridge.fdb[container.mac.value] is container.veth_outside

    def test_host_veth_name_generated_docker_style(self, engine):
        node = KernelNode(engine, "vm")
        bridge = BridgeDevice(node, "docker0")
        container = Container(node, "c", IPv4Address("172.17.0.3"), bridge)
        assert container.host_veth_name.startswith("veth")
