"""Hosts, VMs, virtio and xen split-driver pairs."""

import pytest

from repro.net.addressing import IPv4Address
from repro.net.packet import make_udp_packet
from repro.sim.engine import Engine
from repro.sim.rng import SeededRNG
from repro.virt.machine import PhysicalHost
from repro.virt.virtio import create_virtio_pair
from repro.virt.xen import create_vif_pair


@pytest.fixture
def host(engine):
    return PhysicalHost(engine, "h1", rng=SeededRNG(1, "h"))


class TestVirtio:
    def test_guest_to_host_delivery(self, engine, host):
        vm = host.create_kvm_vm("vm1")
        ip = IPv4Address("192.168.9.10")
        fe, be = vm.attach_virtio_nic(ip)
        host_ip = IPv4Address("192.168.9.1")
        be.ip = host_ip  # pretend the backend is an L3 endpoint for the test
        got = []
        sock = host.node.bind_udp(host_ip, 1000)
        sock.on_receive = lambda payload, *r: got.append(payload)
        vm.node.add_neighbor(host_ip, be.mac)
        client = vm.node.bind_udp(ip, 2000)
        client.sendto(host_ip, 1000, b"up")
        engine.run()
        assert got == [b"up"]

    def test_host_to_guest_delivery(self, engine, host):
        vm = host.create_kvm_vm("vm1")
        ip = IPv4Address("192.168.9.10")
        fe, be = vm.attach_virtio_nic(ip)
        got = []
        sock = vm.node.bind_udp(ip, 1000)
        sock.on_receive = lambda payload, *r: got.append(payload)
        packet = make_udp_packet(be.mac, fe.mac, IPv4Address("192.168.9.1"), ip, 1, 1000, b"down")
        be.transmit(packet, None)
        engine.run()
        assert got == [b"down"]

    def test_per_byte_cost_scales_tx(self, engine, host):
        vm = host.create_kvm_vm("vm1")
        fe, be = vm.attach_virtio_nic(IPv4Address("192.168.9.10"))
        small = make_udp_packet(be.mac, fe.mac, IPv4Address("1.1.1.1"),
                                IPv4Address("192.168.9.10"), 1, 2, bytes(10))
        large = make_udp_packet(be.mac, fe.mac, IPv4Address("1.1.1.1"),
                                IPv4Address("192.168.9.10"), 1, 2, bytes(60000))
        assert be._tx_cost_ns(large) > be._tx_cost_ns(small) + 30_000

    def test_backend_names_unique(self, engine, host):
        vm1 = host.create_kvm_vm("vm1")
        vm2 = host.create_kvm_vm("vm2")
        _, be1 = vm1.attach_virtio_nic(IPv4Address("192.168.9.10"))
        _, be2 = vm2.attach_virtio_nic(IPv4Address("192.168.9.11"))
        assert be1.name != be2.name


class TestXenVM:
    def test_guest_clock_shares_host_clocksource(self, engine, host):
        vm = host.create_xen_vm("vm1")
        assert vm.node.clock is host.clock

    def test_independent_clock_when_requested(self, engine, host):
        vm = host.create_xen_vm("vm2", clock_offset_ns=123)
        assert vm.node.clock is not host.clock

    def test_vcpus_registered_with_scheduler(self, engine, host):
        vm = host.create_xen_vm("vm1", pcpu_index=0)
        sched = host.schedulers[0]
        assert vm.vcpus[0] in sched.vcpus

    def test_same_pcpu_shares_scheduler(self, engine, host):
        vm1 = host.create_xen_vm("vm1", pcpu_index=0)
        vm2 = host.create_xen_vm("vm2", pcpu_index=0)
        assert host.schedulers[0] is host.xen_scheduler(0)
        assert len(host.schedulers[0].vcpus) == 2

    def test_delivery_waits_for_scheduling(self, engine, host):
        io_vm = host.create_xen_vm("vm1", pcpu_index=0, ratelimit_us=1000)
        hog = host.create_xen_vm("vm2", pcpu_index=0, cpu_hog=True, ratelimit_us=1000)
        ip = IPv4Address("192.168.9.20")
        fe, be = io_vm.attach_vif_nic(ip)
        got = []
        sent = []
        sock = io_vm.node.bind_udp(ip, 1000)
        sock.on_receive = lambda payload, *r: got.append(engine.now)

        def send() -> None:
            sent.append(engine.now)
            be.transmit(
                make_udp_packet(be.mac, fe.mac, IPv4Address("192.168.9.1"), ip, 1, 1000, b"x"),
                None,
            )

        # First packet restarts the hog's rate-limit window after the io
        # VM blocks again; the second lands inside that fresh window.
        engine.schedule(2_000_000, send)
        engine.schedule(2_300_000, send)
        engine.run(until=20_000_000)
        assert len(got) == 2
        second_delay = got[1] - sent[1]
        # The hog's rate-limit window gates delivery into the guest.
        assert second_delay > 400_000

    def test_delivery_fast_without_contention(self, engine, host):
        io_vm = host.create_xen_vm("vm1", pcpu_index=0)
        ip = IPv4Address("192.168.9.20")
        fe, be = io_vm.attach_vif_nic(ip)
        got = []
        sock = io_vm.node.bind_udp(ip, 1000)
        sock.on_receive = lambda payload, *r: got.append(engine.now)
        be.transmit(
            make_udp_packet(be.mac, fe.mac, IPv4Address("192.168.9.1"), ip, 1, 1000, b"x"),
            None,
        )
        engine.run(until=20_000_000)
        assert got and got[0] < 100_000
