"""Streaming under faults (docs/STREAMING.md + docs/FAULTS.md).

The tap sits downstream of the resilient delivery layer, so its fault
semantics are inherited, not reimplemented: with retries on, a faulty
run's windows are byte-identical to the fault-free run's; with retries
off, every abandoned shipment surfaces as a gap notice.  The unit-level
rules (dedup, lateness, gap metrics) live in ``test_streaming.py``;
these tests exercise them through the full fault experiment.
"""

import json

import pytest

from repro.experiments.fault_case import (
    default_fault_plan,
    run_fault_case,
    run_fault_equivalence,
)
from repro.faults.plan import ChannelFaults, FaultPlan

PACKETS = 60


@pytest.fixture(scope="module")
def baseline():
    return run_fault_case(seed=7, plan=None, packets=PACKETS)


class TestRetriesMakeWindowsIdentical:
    def test_faulty_summary_matches_baseline_byte_for_byte(self, baseline):
        faulty = run_fault_case(
            seed=7, plan=default_fault_plan(7), packets=PACKETS, retries=True
        )
        assert faulty.deduped_batches > 0  # duplicates really reached ingest
        assert faulty.streaming_summary == baseline.streaming_summary
        assert faulty.streaming_gaps == 0

    def test_equivalence_experiment_carries_the_invariant(self):
        equivalence = run_fault_equivalence(seed=7, packets=PACKETS)
        assert equivalence.streaming_match
        assert equivalence.equivalent


class TestLossSurfacesAsGaps:
    def test_lossy_no_retries_run_reports_gap_notices(self, baseline):
        lossy = run_fault_case(
            seed=7,
            plan=FaultPlan(seed=7, shipment=ChannelFaults(loss_prob=0.3)),
            packets=PACKETS,
            retries=False,
        )
        assert lossy.rows < baseline.rows  # loss really happened
        assert lossy.streaming_gaps > 0
        summary = json.loads(lossy.streaming_summary)
        assert summary["gap_notices"] == lossy.streaming_gaps
        # Gaps are whole shipments that never arrived -- the records the
        # aggregator did see are still never double- or mis-counted.
        assert summary["records"] == lossy.rows
        assert summary["late_records"] == 0
