"""BPF map semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.ebpf.maps import (
    ArrayMap,
    HashMap,
    MapError,
    PerCPUArrayMap,
    PerfEventArray,
)


class TestHashMap:
    def test_update_lookup_delete_cycle(self):
        m = HashMap(4, 8, 16)
        key, value = b"\x01\x00\x00\x00", b"\x09" + b"\x00" * 7
        assert m.lookup(key) is None
        m.update(key, value)
        assert bytes(m.lookup(key)) == value
        assert m.delete(key)
        assert m.lookup(key) is None
        assert not m.delete(key)

    def test_update_overwrites_in_place(self):
        m = HashMap(4, 4, 4)
        m.update(b"aaaa", b"1111")
        slot = m.lookup(b"aaaa")
        m.update(b"aaaa", b"2222")
        assert bytes(slot) == b"2222"  # same storage mutated

    def test_capacity_enforced(self):
        m = HashMap(4, 4, 2)
        m.update(b"aaaa", b"xxxx")
        m.update(b"bbbb", b"xxxx")
        with pytest.raises(MapError, match="full"):
            m.update(b"cccc", b"xxxx")
        m.update(b"aaaa", b"yyyy")  # existing key still updatable

    def test_key_size_checked(self):
        m = HashMap(4, 4, 2)
        with pytest.raises(MapError, match="key size"):
            m.lookup(b"toolongkey")

    def test_value_size_checked(self):
        m = HashMap(4, 4, 2)
        with pytest.raises(MapError, match="value size"):
            m.update(b"aaaa", b"xy")

    def test_items_iteration(self):
        m = HashMap(1, 1, 8)
        m.update(b"a", b"1")
        m.update(b"b", b"2")
        assert dict(m.items()) == {b"a": b"1", b"b": b"2"}

    @given(st.dictionaries(st.binary(min_size=4, max_size=4),
                           st.binary(min_size=8, max_size=8), max_size=16))
    def test_behaves_like_dict(self, model):
        m = HashMap(4, 8, 32)
        for k, v in model.items():
            m.update(k, v)
        for k, v in model.items():
            assert bytes(m.lookup(k)) == v
        assert len(m) == len(model)


class TestArrayMap:
    def test_preallocated_zeroes(self):
        m = ArrayMap(8, 4)
        assert bytes(m.lookup((2).to_bytes(4, "little"))) == b"\x00" * 8

    def test_index_bounds(self):
        m = ArrayMap(8, 4)
        assert m.lookup((4).to_bytes(4, "little")) is None

    def test_update(self):
        m = ArrayMap(4, 2)
        m.update((1).to_bytes(4, "little"), b"abcd")
        assert m.value_at(1) == b"abcd"

    def test_delete_unsupported(self):
        m = ArrayMap(4, 2)
        with pytest.raises(MapError):
            m.delete((0).to_bytes(4, "little"))


class TestPerCPUArrayMap:
    def test_slots_isolated_per_cpu(self):
        m = PerCPUArrayMap(8, 1, num_cpus=4)
        key = (0).to_bytes(4, "little")
        m.update(key, (5).to_bytes(8, "little"), cpu=0)
        m.update(key, (7).to_bytes(8, "little"), cpu=2)
        assert int.from_bytes(m.lookup(key, cpu=0), "little") == 5
        assert int.from_bytes(m.lookup(key, cpu=2), "little") == 7
        assert int.from_bytes(m.lookup(key, cpu=1), "little") == 0

    def test_sum_u64_aggregates(self):
        m = PerCPUArrayMap(8, 1, num_cpus=3)
        key = (0).to_bytes(4, "little")
        for cpu, val in enumerate((1, 10, 100)):
            m.update(key, val.to_bytes(8, "little"), cpu=cpu)
        assert m.sum_u64(0) == 111


class TestPerfEventArray:
    def test_pending_without_consumer(self):
        perf = PerfEventArray(num_cpus=2)
        perf.output(1, b"rec")
        assert perf.pending == [(1, b"rec")]
        assert perf.events_emitted == 1

    def test_consumer_receives_directly(self):
        perf = PerfEventArray(num_cpus=2)
        got = []
        perf.set_consumer(lambda cpu, rec: got.append((cpu, rec)))
        perf.output(0, b"a")
        assert got == [(0, b"a")] and perf.pending == []

    def test_no_data_map_interface(self):
        perf = PerfEventArray(num_cpus=1)
        assert perf.lookup(b"\x00" * 4) is None
        with pytest.raises(MapError):
            perf.update(b"\x00" * 4, b"\x00" * 4)

    def test_fds_unique(self):
        a, b = HashMap(4, 4, 4), ArrayMap(4, 4)
        assert a.fd != b.fd
