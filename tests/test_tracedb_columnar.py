"""Differential equivalence suite for the columnar TraceDB (PR 5).

The trace store was rewritten from per-row ``TraceRow`` lists to
per-column arrays, the agents now ship packed blobs end-to-end, and the
metric kernels iterate columns instead of rows.  Nothing externally
visible may change: every query result, metric value, decomposition
table, and exported timeline must be identical to what the legacy row
store produced.

``LegacyTraceDB`` below is a verbatim port of the pre-columnar
implementation (plus the ``record_count_for_trace`` accessor the span
layer now uses), and the ``legacy_*`` kernels are the pre-columnar
metric functions.  ``ShadowDB`` subclasses the real columnar store and
mirrors every mutation into a legacy twin, so monkeypatching it into
``repro.core.vnettracer`` runs full scenarios -- quickstart, OVS
congestion, fault-injected collection -- against both stores at once.

The hypothesis tests at the bottom drive interleaved
insert / bulk-ingest / query / dedup sequences: queries force the lazy
sorted indexes to build, the next insert must invalidate them, and the
stores must agree at every step.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.vnettracer as vnettracer_module
from repro.analysis.reports import decomposition_table
from repro.core import metrics
from repro.core.records import RECORD_STRUCT, TraceRecord
from repro.core.tracedb import TraceDB, TraceRow
from repro.tracing.export import chrome_trace_json, otlp_json
from repro.tracing.reconstruct import SpanAssembler
from repro.workloads.stats import LatencySummary, summarize_latencies

# ---------------------------------------------------------------------------
# The legacy row store, ported verbatim from the pre-columnar tracedb.py.
# ---------------------------------------------------------------------------


class LegacyTraceDB:
    """Row-list TraceDB as it existed before the columnar rewrite."""

    def __init__(self, table_prefix: str = "vnettracer"):
        self.table_prefix = table_prefix
        self._tables: Dict[str, List[TraceRow]] = {}
        self._by_trace_id: Dict[int, List[TraceRow]] = {}
        self._skew_ns: Dict[str, int] = {}
        self.rows_inserted = 0
        self._seen_batches: set = set()
        self.deduped_batches = 0

    def set_clock_skew(self, node: str, skew_ns: int) -> None:
        self._skew_ns[node] = int(skew_ns)

    def clock_skew(self, node: str) -> int:
        return self._skew_ns.get(node, 0)

    def clock_offsets(self) -> Dict[str, int]:
        return dict(self._skew_ns)

    def insert(self, node: str, label: str, record: TraceRecord) -> TraceRow:
        aligned = record.timestamp_ns + self._skew_ns.get(node, 0)
        row = TraceRow(
            trace_id=record.trace_id,
            tracepoint_id=record.tracepoint_id,
            timestamp_ns=aligned,
            raw_timestamp_ns=record.timestamp_ns,
            packet_len=record.packet_len,
            cpu=record.cpu,
            node=node,
            label=label,
        )
        self._tables.setdefault(label, []).append(row)
        if record.trace_id:
            self._by_trace_id.setdefault(record.trace_id, []).append(row)
        self.rows_inserted += 1
        return row

    def mark_batch(self, node: str, seq: int) -> bool:
        key = (node, seq)
        if key in self._seen_batches:
            self.deduped_batches += 1
            return False
        self._seen_batches.add(key)
        return True

    def tables(self) -> List[str]:
        return list(self._tables)

    def table(self, label: str) -> List[TraceRow]:
        return list(self._tables.get(label, []))

    def rows_for_trace(self, trace_id: int) -> List[TraceRow]:
        return sorted(self._by_trace_id.get(trace_id, []), key=lambda r: r.timestamp_ns)

    def record_count_for_trace(self, trace_id: int) -> int:
        return len(self._by_trace_id.get(trace_id, []))

    def trace_ids(self) -> List[int]:
        return list(self._by_trace_id)

    def trace_ids_at(self, label: str) -> Dict[int, TraceRow]:
        result: Dict[int, TraceRow] = {}
        for row in self._tables.get(label, []):
            if row.trace_id and row.trace_id not in result:
                result[row.trace_id] = row
        return result

    def time_range(
        self, label: str, start_ns: Optional[int] = None, end_ns: Optional[int] = None
    ) -> List[TraceRow]:
        rows = self._tables.get(label, [])
        return [
            row
            for row in rows
            if (start_ns is None or row.timestamp_ns >= start_ns)
            and (end_ns is None or row.timestamp_ns <= end_ns)
        ]

    def count(self, label: str) -> int:
        return len(self._tables.get(label, []))

    def incomplete_traces(self, required_labels: Iterable[str]) -> List[int]:
        required = list(required_labels)
        incomplete = []
        for trace_id, rows in self._by_trace_id.items():
            seen = {row.label for row in rows}
            if any(label not in seen for label in required):
                incomplete.append(trace_id)
        return incomplete

    def complete_traces(self, required_labels: Iterable[str]) -> List[int]:
        required = list(required_labels)
        complete = []
        for trace_id, rows in self._by_trace_id.items():
            seen = {row.label for row in rows}
            if all(label in seen for label in required):
                complete.append(trace_id)
        return complete


# ---------------------------------------------------------------------------
# The legacy metric kernels, ported verbatim from the pre-columnar
# metrics.py (they iterate materialized rows, not columns).
# ---------------------------------------------------------------------------


def legacy_throughput_at(
    db,
    label: str,
    subtract_id_bytes: bool = True,
    start_ns: Optional[int] = None,
    end_ns: Optional[int] = None,
) -> metrics.ThroughputResult:
    rows = db.time_range(label, start_ns, end_ns)
    if len(rows) < 2:
        return metrics.ThroughputResult(0.0, len(rows), 0, 0)
    rows = sorted(rows, key=lambda r: r.timestamp_ns)
    overhead = metrics.TRACE_ID_BYTES if subtract_id_bytes else 0
    payload = sum(max(0, row.packet_len - overhead) for row in rows)
    window = rows[-1].timestamp_ns - rows[0].timestamp_ns
    if window <= 0:
        return metrics.ThroughputResult(0.0, len(rows), payload, 0)
    return metrics.ThroughputResult(payload * 8 * 1e9 / window, len(rows), payload, window)


def legacy_latency_between(db, from_label: str, to_label: str) -> List[int]:
    first = db.trace_ids_at(from_label)
    second = db.trace_ids_at(to_label)
    latencies = []
    for trace_id, row_a in first.items():
        row_b = second.get(trace_id)
        if row_b is not None:
            latencies.append(row_b.timestamp_ns - row_a.timestamp_ns)
    return latencies


def legacy_latency_pairs(db, from_label: str, to_label: str) -> List[tuple]:
    first = db.trace_ids_at(from_label)
    second = db.trace_ids_at(to_label)
    pairs = []
    for trace_id, row_a in first.items():
        row_b = second.get(trace_id)
        if row_b is not None:
            pairs.append((row_a.timestamp_ns, row_b.timestamp_ns - row_a.timestamp_ns))
    pairs.sort()
    return pairs


def legacy_decompose_latency(db, chain: Sequence[str]) -> List[metrics.SegmentLatency]:
    if len(chain) < 2:
        raise ValueError("decomposition needs at least two tracepoints")
    complete_ids = set(db.complete_traces(chain))
    per_label: Dict[str, Dict[int, int]] = {
        label: {
            trace_id: row.timestamp_ns
            for trace_id, row in db.trace_ids_at(label).items()
            if trace_id in complete_ids
        }
        for label in chain
    }
    segments = []
    for from_label, to_label in zip(chain, chain[1:]):
        latencies = [
            per_label[to_label][trace_id] - per_label[from_label][trace_id]
            for trace_id in sorted(
                per_label[from_label].keys() & per_label[to_label].keys(),
                key=lambda t: per_label[from_label][t],
            )
        ]
        segments.append(metrics.SegmentLatency(from_label, to_label, latencies))
    return segments


def legacy_per_cpu_distribution(db, label: str) -> Dict[int, float]:
    rows = db.table(label)
    if not rows:
        return {}
    counts: Dict[int, int] = {}
    for row in rows:
        counts[row.cpu] = counts.get(row.cpu, 0) + 1
    total = len(rows)
    return {cpu: count / total for cpu, count in sorted(counts.items())}


def legacy_event_rate(db, label: str) -> float:
    rows = sorted(db.table(label), key=lambda r: r.timestamp_ns)
    if len(rows) < 2:
        return 0.0
    window = rows[-1].timestamp_ns - rows[0].timestamp_ns
    if window <= 0:
        return 0.0
    return (len(rows) - 1) * 1e9 / window


def legacy_packet_loss(db, from_label: str, to_label: str) -> metrics.LossResult:
    sent = db.count(from_label)
    received = db.count(to_label)
    lost = max(0, sent - received)
    rate = lost / sent if sent else 0.0
    return metrics.LossResult(sent, received, lost, rate)


# ---------------------------------------------------------------------------
# ShadowDB: the columnar store with a legacy twin riding along.
# ---------------------------------------------------------------------------


class ShadowDB(TraceDB):
    """Columnar TraceDB that mirrors every mutation into a legacy twin."""

    def __init__(self, table_prefix: str = "vnettracer", registry=None):
        super().__init__(table_prefix=table_prefix, registry=registry)
        self.legacy = LegacyTraceDB(table_prefix)

    def set_clock_skew(self, node: str, skew_ns: int) -> None:
        super().set_clock_skew(node, skew_ns)
        self.legacy.set_clock_skew(node, skew_ns)

    def insert(self, node: str, label: str, record: TraceRecord) -> TraceRow:
        self.legacy.insert(node, label, record)
        return super().insert(node, label, record)

    def insert_packed(self, node: str, blob, labels: Dict[int, str]):
        for fields in RECORD_STRUCT.iter_unpack(bytes(blob)):
            record = TraceRecord(*fields)
            label = labels.get(record.tracepoint_id)
            if label is None:
                label = f"tracepoint-{record.tracepoint_id}"
            self.legacy.insert(node, label, record)
        return super().insert_packed(node, blob, labels)

    def mark_batch(self, node: str, seq: int) -> bool:
        self.legacy.mark_batch(node, seq)
        return super().mark_batch(node, seq)


def assert_db_equivalent(db: TraceDB, legacy: LegacyTraceDB) -> None:
    """Every query surface of the columnar store matches the row store,
    including iteration order (the determinism contract)."""
    assert db.rows_inserted == legacy.rows_inserted
    assert db.deduped_batches == legacy.deduped_batches
    assert db.tables() == legacy.tables()
    assert db.trace_ids() == legacy.trace_ids()
    assert db.clock_offsets() == legacy.clock_offsets()
    for label in legacy.tables():
        assert db.count(label) == legacy.count(label)
        assert db.table(label) == legacy.table(label)
        first_new = db.trace_ids_at(label)
        first_old = legacy.trace_ids_at(label)
        assert list(first_new) == list(first_old)  # insertion order matters
        assert first_new == first_old
        assert db.first_ts_at(label) == {
            trace_id: row.timestamp_ns for trace_id, row in first_old.items()
        }
        rows = legacy.table(label)
        assert db.time_range(label) == legacy.time_range(label)
        if rows:
            timestamps = sorted(row.timestamp_ns for row in rows)
            mid = timestamps[len(timestamps) // 2]
            assert db.time_range(label, start_ns=mid) == legacy.time_range(label, start_ns=mid)
            assert db.time_range(label, end_ns=mid) == legacy.time_range(label, end_ns=mid)
            assert db.time_range(label, timestamps[0], mid) == legacy.time_range(
                label, timestamps[0], mid
            )
            assert db.ts_minmax(label) == (timestamps[0], timestamps[-1])
            # The lazy sorted index really is a sort of the column.
            column = db.columns(label).timestamp_ns
            assert [column[i] for i in db.ts_index(label)] == timestamps
    for trace_id in legacy.trace_ids():
        assert db.rows_for_trace(trace_id) == legacy.rows_for_trace(trace_id)
        assert db.record_count_for_trace(trace_id) == legacy.record_count_for_trace(trace_id)
    labels = legacy.tables()
    assert db.incomplete_traces(labels) == legacy.incomplete_traces(labels)
    assert db.complete_traces(labels) == legacy.complete_traces(labels)
    if labels:
        assert db.incomplete_traces(labels[:1]) == legacy.incomplete_traces(labels[:1])
        assert db.complete_traces(labels[:1]) == legacy.complete_traces(labels[:1])


def assert_metrics_equivalent(db: TraceDB, legacy: LegacyTraceDB) -> None:
    """The columnar kernels on the columnar store produce exactly what
    the row kernels produced on the row store."""
    labels = legacy.tables()
    for label in labels:
        assert metrics.throughput_at(db, label) == legacy_throughput_at(legacy, label)
        assert metrics.throughput_at(db, label, subtract_id_bytes=False) == legacy_throughput_at(
            legacy, label, subtract_id_bytes=False
        )
        rows = legacy.table(label)
        if rows:
            mid = sorted(row.timestamp_ns for row in rows)[len(rows) // 2]
            assert metrics.throughput_at(db, label, start_ns=mid) == legacy_throughput_at(
                legacy, label, start_ns=mid
            )
            assert metrics.throughput_at(db, label, end_ns=mid) == legacy_throughput_at(
                legacy, label, end_ns=mid
            )
        assert metrics.event_rate(db, label) == legacy_event_rate(legacy, label)
        assert metrics.per_cpu_distribution(db, label) == legacy_per_cpu_distribution(
            legacy, label
        )
    for from_label, to_label in zip(labels, labels[1:]):
        assert metrics.latency_between(db, from_label, to_label) == legacy_latency_between(
            legacy, from_label, to_label
        )
        assert metrics.latency_pairs(db, from_label, to_label) == legacy_latency_pairs(
            legacy, from_label, to_label
        )
        assert metrics.packet_loss(db, from_label, to_label) == legacy_packet_loss(
            legacy, from_label, to_label
        )
    if len(labels) >= 2:
        assert metrics.decompose_latency(db, labels) == legacy_decompose_latency(legacy, labels)


def assert_exports_equivalent(db: TraceDB, legacy: LegacyTraceDB, chain: Sequence[str]) -> None:
    """Rendered tables and exported timelines are byte-identical."""
    segments_new = metrics.decompose_latency(db, chain)
    segments_old = legacy_decompose_latency(legacy, chain)
    assert segments_new == segments_old
    assert decomposition_table(segments_new) == decomposition_table(segments_old)
    forest_new = SpanAssembler(db).forest(chain=chain)
    forest_old = SpanAssembler(legacy).forest(chain=chain)
    assert chrome_trace_json(forest_new) == chrome_trace_json(forest_old)
    assert otlp_json(forest_new) == otlp_json(forest_old)


@pytest.fixture
def shadow_instances(monkeypatch):
    """Swap the TraceDB every VNetTracer builds for a ShadowDB and hand
    the test the list of created instances."""
    created: List[ShadowDB] = []

    def factory(*args, **kwargs):
        db = ShadowDB(*args, **kwargs)
        created.append(db)
        return db

    monkeypatch.setattr(vnettracer_module, "TraceDB", factory)
    return created


# ---------------------------------------------------------------------------
# Scenario-level differentials: real end-to-end runs through the
# packed-blob shipment path, compared store-for-store.
# ---------------------------------------------------------------------------


class TestScenarioEquivalence:
    def test_quickstart_scenario(self, shadow_instances):
        from repro.obs.scenario import QUICKSTART_CHAIN, run_quickstart_scenario

        run_quickstart_scenario(seed=42, duration_ns=250_000_000)
        dbs = [db for db in shadow_instances if db.rows_inserted]
        assert dbs, "quickstart scenario stored no trace records"
        for db in dbs:
            assert db.bulk_batches > 0  # blobs really took the packed path
            assert_db_equivalent(db, db.legacy)
            assert_metrics_equivalent(db, db.legacy)
        assert_exports_equivalent(dbs[0], dbs[0].legacy, QUICKSTART_CHAIN)

    def test_ovs_congestion_case(self, shadow_instances):
        from repro.experiments.ovs_case import run_case

        run_case("I", duration_ns=100_000_000, trace=True)
        dbs = [db for db in shadow_instances if db.rows_inserted]
        assert dbs, "OVS case stored no trace records"
        for db in dbs:
            assert_db_equivalent(db, db.legacy)
            assert_metrics_equivalent(db, db.legacy)

    def test_fault_injected_collection(self, shadow_instances):
        from repro.experiments.fault_case import run_fault_case
        from repro.faults.plan import ChannelFaults, FaultPlan

        plan = FaultPlan(seed=5, shipment=ChannelFaults(loss_prob=0.2, dup_prob=0.3))
        run_fault_case(seed=7, plan=plan, packets=80)
        dbs = [db for db in shadow_instances if db.rows_inserted]
        assert dbs, "fault case stored no trace records"
        deduped = sum(db.deduped_batches for db in dbs)
        assert deduped > 0, "fault plan produced no duplicate shipments to dedup"
        for db in dbs:
            assert_db_equivalent(db, db.legacy)
            assert_metrics_equivalent(db, db.legacy)


# ---------------------------------------------------------------------------
# Direct API differentials (no scenario machinery).
# ---------------------------------------------------------------------------

_LABELS = {0: "send", 1: "nic-out", 2: "nic-in", 3: "deliver"}


def _blob(records: Sequence[TraceRecord]) -> bytes:
    return b"".join(record.pack() for record in records)


class TestDirectEquivalence:
    def test_unknown_tracepoints_land_in_fallback_tables(self):
        db = ShadowDB()
        records = [
            TraceRecord(trace_id=1, tracepoint_id=0, timestamp_ns=10, packet_len=100, cpu=0),
            TraceRecord(trace_id=1, tracepoint_id=9, timestamp_ns=20, packet_len=100, cpu=1),
            TraceRecord(trace_id=0, tracepoint_id=9, timestamp_ns=30, packet_len=64, cpu=1),
        ]
        count, unknown = db.insert_packed("tx", _blob(records), _LABELS)
        assert (count, unknown) == (3, 2)
        assert db.tables() == ["send", "tracepoint-9"]
        assert_db_equivalent(db, db.legacy)

    def test_negative_skew_alignment(self):
        db = ShadowDB()
        db.set_clock_skew("rx", -1_500_000)
        db.insert_packed(
            "rx",
            _blob([TraceRecord(7, 2, 2_000_000, 128, 0)]),
            _LABELS,
        )
        row = db.table("nic-in")[0]
        assert row.timestamp_ns == 500_000 and row.raw_timestamp_ns == 2_000_000
        assert_db_equivalent(db, db.legacy)

    def test_dedup_counters_stay_in_sync(self):
        db = ShadowDB()
        assert db.mark_batch("tx", 1) is True
        assert db.mark_batch("tx", 1) is False
        assert db.mark_batch("rx", 1) is True
        assert db.deduped_batches == db.legacy.deduped_batches == 1

    def test_index_rebuilds_only_after_invalidation(self):
        db = ShadowDB()
        db.insert_packed("tx", _blob([TraceRecord(1, 0, 30, 100, 0)]), _LABELS)
        db.insert_packed("tx", _blob([TraceRecord(2, 0, 10, 100, 0)]), _LABELS)
        assert db.index_rebuilds == 0
        first = db.ts_index("send")
        assert db.index_rebuilds == 1
        assert db.ts_index("send") is first  # cached: no rebuild on re-query
        assert db.index_rebuilds == 1
        db.insert_packed("tx", _blob([TraceRecord(3, 0, 20, 100, 0)]), _LABELS)
        rebuilt = db.ts_index("send")
        assert db.index_rebuilds == 2
        column = db.columns("send").timestamp_ns
        assert [column[i] for i in rebuilt] == [10, 20, 30]
        assert_db_equivalent(db, db.legacy)

    def test_rows_for_trace_cache_invalidation(self):
        db = ShadowDB()
        db.insert("tx", "send", TraceRecord(5, 0, 100, 64, 0))
        assert [row.timestamp_ns for row in db.rows_for_trace(5)] == [100]
        db.insert("rx", "nic-in", TraceRecord(5, 2, 50, 64, 1))
        # The cached per-trace view must be invalidated by the insert.
        assert [row.timestamp_ns for row in db.rows_for_trace(5)] == [50, 100]
        assert_db_equivalent(db, db.legacy)

    def test_timestamp_ties_keep_insertion_order(self):
        db = ShadowDB()
        db.insert("tx", "send", TraceRecord(9, 0, 100, 10, 0))
        db.insert("rx", "nic-in", TraceRecord(9, 2, 100, 20, 1))
        db.insert("tx", "nic-out", TraceRecord(9, 1, 100, 30, 0))
        rows = db.rows_for_trace(9)
        assert [row.packet_len for row in rows] == [10, 20, 30]  # stable sort
        assert rows == db.legacy.rows_for_trace(9)


# ---------------------------------------------------------------------------
# Property tests: interleaved insert / bulk-ingest / query / dedup.
# ---------------------------------------------------------------------------

_record_st = st.builds(
    TraceRecord,
    trace_id=st.integers(min_value=0, max_value=12),
    tracepoint_id=st.integers(min_value=0, max_value=5),  # 4, 5 are unknown
    timestamp_ns=st.integers(min_value=0, max_value=10**9),
    packet_len=st.integers(min_value=0, max_value=2_000),
    cpu=st.integers(min_value=0, max_value=3),
)

_node_st = st.sampled_from(["tx", "rx"])

_op_st = st.one_of(
    st.tuples(st.just("insert"), _node_st, _record_st),
    st.tuples(
        st.just("packed"), _node_st, st.lists(_record_st, min_size=1, max_size=6)
    ),
    st.tuples(st.just("mark"), _node_st, st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("query"), st.integers(min_value=0, max_value=12), st.just(None)),
)


class TestInterleavedProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(_op_st, max_size=30),
        skew=st.integers(min_value=-(10**6), max_value=10**6),
    )
    def test_interleaved_ops_stay_equivalent(self, ops, skew):
        db = ShadowDB()
        db.set_clock_skew("rx", skew)
        for kind, arg_a, arg_b in ops:
            if kind == "insert":
                record = arg_b
                label = _LABELS.get(
                    record.tracepoint_id, f"tracepoint-{record.tracepoint_id}"
                )
                db.insert(arg_a, label, record)
            elif kind == "packed":
                db.insert_packed(arg_a, _blob(arg_b), _LABELS)
            elif kind == "mark":
                db.mark_batch(arg_a, arg_b)
                assert db.deduped_batches == db.legacy.deduped_batches
            else:
                # Queries build the lazy indexes mid-stream; later
                # inserts must invalidate them, not serve stale views.
                assert db.rows_for_trace(arg_a) == db.legacy.rows_for_trace(arg_a)
                for label in db.tables():
                    column = db.columns(label).timestamp_ns
                    assert [column[i] for i in db.ts_index(label)] == sorted(column)
        assert_db_equivalent(db, db.legacy)
        assert_metrics_equivalent(db, db.legacy)

    @settings(max_examples=40, deadline=None)
    @given(batches=st.lists(st.lists(_record_st, min_size=1, max_size=5), max_size=8))
    def test_packed_ingest_matches_per_record_insert(self, batches):
        packed = ShadowDB()
        for seq, batch in enumerate(batches):
            if packed.mark_batch("tx", seq):
                packed.insert_packed("tx", _blob(batch), _LABELS)
        # The legacy twin ingested record-by-record; the packed path
        # must be indistinguishable from it.
        assert_db_equivalent(packed, packed.legacy)

    @settings(max_examples=40, deadline=None)
    @given(
        records=st.lists(_record_st, min_size=2, max_size=12),
        split=st.integers(min_value=1, max_value=11),
    )
    def test_query_between_batches_sees_all_rows(self, records, split):
        split = min(split, len(records) - 1)
        db = ShadowDB()
        db.insert_packed("tx", _blob(records[:split]), _LABELS)
        summaries_before = {
            label: metrics.throughput_at(db, label) for label in db.tables()
        }
        assert summaries_before  # index built, caches warm
        db.insert_packed("rx", _blob(records[split:]), _LABELS)
        assert_db_equivalent(db, db.legacy)
        assert_metrics_equivalent(db, db.legacy)


def test_latency_summary_sanity():
    """Anchor: SegmentLatency.summary still summarizes the same list."""
    segment = metrics.SegmentLatency("a", "b", [10, 20, 30])
    assert isinstance(segment.summary(), LatencySummary)
    assert segment.summary() == summarize_latencies([10, 20, 30])
