"""Kernel node: sockets, routing, UDP end-to-end over veth, trace IDs."""

import pytest

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.device import VethDevice
from repro.net.stack import KernelNode, StackError
from repro.net.traceid import enable_trace_ids, extract_trace_id
from repro.sim.engine import Engine


class TestRouting:
    def test_longest_prefix_match(self, node):
        dev_wide = VethDevice(node, "wide")
        dev_narrow = VethDevice(node, "narrow")
        node.add_route(IPv4Address("10.0.0.0"), 8, dev_wide)
        node.add_route(IPv4Address("10.1.0.0"), 16, dev_narrow)
        assert node.route_lookup(IPv4Address("10.1.2.3")).device is dev_narrow
        assert node.route_lookup(IPv4Address("10.9.2.3")).device is dev_wide

    def test_no_route_raises(self, node):
        with pytest.raises(StackError, match="no route"):
            node.route_lookup(IPv4Address("8.8.8.8"))

    def test_neighbor_resolution_defaults_to_broadcast(self, node):
        assert node.resolve_mac(IPv4Address("10.0.0.9")).is_broadcast()
        mac = MACAddress.from_index(77)
        node.add_neighbor(IPv4Address("10.0.0.9"), mac)
        assert node.resolve_mac(IPv4Address("10.0.0.9")) == mac


class TestSockets:
    def test_duplicate_bind_rejected(self, node):
        node.bind_udp(IPv4Address("10.0.0.1"), 80)
        with pytest.raises(StackError, match="already bound"):
            node.bind_udp(IPv4Address("10.0.0.1"), 80)

    def test_wildcard_lookup(self, node):
        sock = node.bind_udp(IPv4Address(0), 53)
        assert node.lookup_udp(IPv4Address("1.2.3.4"), 53) is sock

    def test_close_unbinds(self, node):
        sock = node.bind_udp(IPv4Address("10.0.0.1"), 80)
        sock.close()
        assert node.lookup_udp(IPv4Address("10.0.0.1"), 80) is None
        node.bind_udp(IPv4Address("10.0.0.1"), 80)

    def test_duplicate_device_name_rejected(self, node):
        VethDevice(node, "v0")
        with pytest.raises(StackError, match="duplicate device"):
            VethDevice(node, "v0")


class TestUDPEndToEnd:
    def test_datagram_delivery(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        server = node_b.bind_udp(ip_b, 9000)
        got = []
        server.on_receive = lambda payload, src, sport, pkt: got.append(
            (payload, str(src), sport)
        )
        client = node_a.bind_udp(ip_a, 9001)
        client.sendto(ip_b, 9000, b"hello")
        engine.run()
        assert got == [(b"hello", "10.1.0.1", 9001)]

    def test_delivery_takes_simulated_time(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        server = node_b.bind_udp(ip_b, 9000)
        times = []
        server.on_receive = lambda *a: times.append(engine.now)
        node_a.bind_udp(ip_a, 9001).sendto(ip_b, 9000, b"x")
        engine.run()
        assert 2_000 < times[0] < 60_000  # a few microseconds of stack work

    def test_unbound_port_drops_silently(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        node_a.bind_udp(ip_a, 9001).sendto(ip_b, 4242, b"x")
        engine.run()  # must not raise

    def test_recv_signal_process_style(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        server = node_b.bind_udp(ip_b, 9000)
        results = []

        def reader():
            yield server.recv_signal()
            results.append(server.recv_queue.pop(0)[0])

        engine.process(reader())
        node_a.bind_udp(ip_a, 9001).sendto(ip_b, 9000, b"data")
        engine.run()
        assert results == [b"data"]

    def test_kernel_hooks_fire_along_path(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        node_b.bind_udp(ip_b, 9000)
        node_a.bind_udp(ip_a, 9001).sendto(ip_b, 9000, b"x")
        engine.run()
        assert node_a.hooks.fires("kprobe:udp_send_skb") == 1
        assert node_a.hooks.fires("kprobe:ip_output") == 1
        assert node_b.hooks.fires("kprobe:udp_rcv") == 1
        assert node_b.hooks.fires("kprobe:net_rx_action") >= 1
        assert node_b.hooks.fires("kprobe:skb_copy_datagram_iovec") == 1


class TestTraceIDs:
    def test_udp_id_embedded_and_stripped_transparently(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        enable_trace_ids(node_a)
        enable_trace_ids(node_b)
        server = node_b.bind_udp(ip_b, 9000)
        got = []
        server.on_receive = lambda payload, *rest: got.append(payload)
        node_a.bind_udp(ip_a, 9001).sendto(ip_b, 9000, b"app-data")
        engine.run()
        # Application transparency: the app sees exactly its bytes.
        assert got == [b"app-data"]
        assert node_a.traceid.ids_embedded == 1
        assert node_b.traceid.ids_stripped == 1

    def test_id_visible_on_the_wire(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        enable_trace_ids(node_a)
        captured = []
        from repro.ebpf.probes import CallbackAttachment

        node_b.hooks.attach(
            "dev:veth0", CallbackAttachment(lambda ev: captured.append(ev.packet))
        )
        node_b.bind_udp(ip_b, 9000)
        node_a.bind_udp(ip_a, 9001).sendto(ip_b, 9000, b"app-data")
        engine.run()
        trace_id = extract_trace_id(captured[0])
        assert trace_id is not None
        assert trace_id == captured[0].metadata["trace_id"]

    def test_enable_idempotent(self, node):
        first = enable_trace_ids(node)
        assert enable_trace_ids(node) is first


class TestForwarding:
    def test_weak_host_delivery_without_forwarding(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        other_ip = IPv4Address("172.16.0.5")
        server = node_b.bind_udp(other_ip, 9000)  # IP not on any device
        got = []
        server.on_receive = lambda payload, *rest: got.append(payload)
        node_a.add_route(IPv4Address("172.16.0.0"), 16, node_a.device("veth0"))
        node_a.add_neighbor(other_ip, node_b.device("veth0").mac)
        node_a.bind_udp(ip_a, 9001).sendto(other_ip, 9000, b"x")
        engine.run()
        assert got == [b"x"]  # ip_forward off -> weak-host model delivers

    def test_forwarding_routes_to_owning_device(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        node_b.ip_forward = True
        # A second leg on node_b owning the target IP.
        leg_b, leg_c = VethDevice.create_pair(node_b, "leg0", node_b, "leg1")
        target_ip = IPv4Address("172.16.0.5")
        leg_c.ip = target_ip
        node_b.add_route(target_ip, 32, leg_b)
        node_b.add_neighbor(target_ip, leg_c.mac)
        server = node_b.bind_udp(target_ip, 9000)
        got = []
        server.on_receive = lambda payload, src, sport, pkt: got.append(pkt)
        node_a.add_route(IPv4Address("172.16.0.0"), 16, node_a.device("veth0"))
        node_a.add_neighbor(target_ip, node_b.device("veth0").mac)
        node_a.bind_udp(ip_a, 9001).sendto(target_ip, 9000, b"x")
        engine.run()
        assert len(got) == 1
        # The packet's ground-truth path shows the extra veth hop.
        points = [point for _node, point in got[0].path_summary()]
        assert "dev:leg0:tx" in points and "dev:leg1:rx" in points
