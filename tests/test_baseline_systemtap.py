"""The SystemTap-style baseline tracer."""

import pytest

from repro.baselines.systemtap import (
    COMPILE_DELAY_NS,
    SystemTapSession,
)
from repro.ebpf.probes import ProbeEvent


class TestSystemTap:
    def test_start_arms_after_compile_delay(self, engine, node):
        session = SystemTapSession(node)
        session.add_probe("kprobe:tcp_recvmsg")
        session.start()
        engine.run(until=COMPILE_DELAY_NS - 1)
        assert not session.active
        engine.run(until=COMPILE_DELAY_NS + 1)
        assert session.active
        assert node.hooks.has_attachments("kprobe:tcp_recvmsg")

    def test_per_event_cost_much_higher_than_ebpf(self, engine, node):
        session = SystemTapSession(node, no_overload=True)
        script = session.add_probe("kprobe:x")
        session.active = True
        cost = script.handle(ProbeEvent(hook="kprobe:x", node=node.name))
        # Several microseconds per event (vs ~0.1-0.3us for eBPF).
        assert cost > 4_000

    def test_records_captured(self, engine, node):
        session = SystemTapSession(node, no_overload=True)
        script = session.add_probe("kprobe:x")
        session.active = True
        for _ in range(3):
            script.handle(ProbeEvent(hook="kprobe:x", node=node.name, cpu=1))
        assert script.events == 3
        assert len(script.records) == 3
        assert script.records[0].cpu == 1

    def test_inactive_session_costs_nothing(self, engine, node):
        session = SystemTapSession(node)
        script = session.add_probe("kprobe:x")
        assert script.handle(ProbeEvent(hook="kprobe:x", node=node.name)) == 0

    def test_overload_protection_detaches(self, engine, node):
        session = SystemTapSession(node, no_overload=False)
        script = session.add_probe("kprobe:x")
        session.active = True
        node.hooks.attach("kprobe:x", script)
        # Hammer events within one accounting interval.
        for _ in range(200_000):
            if not session.active:
                break
            script.handle(ProbeEvent(hook="kprobe:x", node=node.name))
        assert session.overload_trips == 1
        assert not session.active
        assert not node.hooks.has_attachments("kprobe:x")

    def test_no_overload_flag_never_detaches(self, engine, node):
        session = SystemTapSession(node, no_overload=True)
        script = session.add_probe("kprobe:x")
        session.active = True
        for _ in range(200_000):
            script.handle(ProbeEvent(hook="kprobe:x", node=node.name))
        assert session.overload_trips == 0
        assert session.active

    def test_stop_detaches(self, engine, node):
        session = SystemTapSession(node)
        session.add_probe("kprobe:x")
        session.start()
        engine.run(until=COMPILE_DELAY_NS + 1)
        session.stop()
        assert not node.hooks.has_attachments("kprobe:x")
