"""Physical NICs, links: serialization, propagation, TSO/GRO."""

import pytest

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.nic import Link, PhysicalNIC, connect_hosts
from repro.net.packet import make_tcp_packet, make_udp_packet
from repro.net.stack import KernelNode
from repro.sim.engine import Engine

IP_A, IP_B = IPv4Address("10.3.0.1"), IPv4Address("10.3.0.2")


def _hosts(engine, rate_gbps=1.0, propagation_ns=10_000, **nic_kwargs):
    node_a = KernelNode(engine, "ha")
    node_b = KernelNode(engine, "hb")
    nic_a, nic_b, link = connect_hosts(
        engine, node_a, "eth0", node_b, "eth0",
        rate_gbps=rate_gbps, propagation_ns=propagation_ns, **nic_kwargs,
    )
    nic_a.ip, nic_b.ip = IP_A, IP_B
    node_a.add_route(IPv4Address("10.3.0.0"), 24, nic_a, src_ip=IP_A)
    node_b.add_route(IPv4Address("10.3.0.0"), 24, nic_b, src_ip=IP_B)
    node_a.add_neighbor(IP_B, nic_b.mac)
    node_b.add_neighbor(IP_A, nic_a.mac)
    return node_a, node_b, nic_a, nic_b, link


class TestLinkTiming:
    def test_arrival_includes_serialization_and_propagation(self, engine):
        node_a, node_b, nic_a, nic_b, link = _hosts(engine, rate_gbps=1.0,
                                                    propagation_ns=10_000)
        packet = make_udp_packet(nic_a.mac, nic_b.mac, IP_A, IP_B, 1, 2, bytes(958))
        # total 958+42=1000 bytes -> 8000 ns at 1 Gbps.
        arrivals = []
        original = nic_b.link_receive
        nic_b.link_receive = lambda p: arrivals.append(engine.now) or original(p)
        link.send(nic_a, packet)
        engine.run()
        assert arrivals == [8_000 + 10_000]

    def test_back_to_back_serialize_fifo(self, engine):
        node_a, node_b, nic_a, nic_b, link = _hosts(engine, rate_gbps=1.0,
                                                    propagation_ns=0)
        arrivals = []
        original = nic_b.link_receive
        nic_b.link_receive = lambda p: arrivals.append(engine.now) or original(p)
        for _ in range(3):
            link.send(nic_a, make_udp_packet(nic_a.mac, nic_b.mac, IP_A, IP_B, 1, 2, bytes(958)))
        engine.run()
        assert arrivals == [8_000, 16_000, 24_000]

    def test_directions_independent(self, engine):
        node_a, node_b, nic_a, nic_b, link = _hosts(engine, rate_gbps=1.0, propagation_ns=0)
        times = []
        for nic in (nic_b, nic_a):
            original = nic.link_receive
            nic.link_receive = (lambda orig: lambda p: times.append(engine.now) or orig(p))(
                original
            )
        link.send(nic_a, make_udp_packet(nic_a.mac, nic_b.mac, IP_A, IP_B, 1, 2, bytes(958)))
        link.send(nic_b, make_udp_packet(nic_b.mac, nic_a.mac, IP_B, IP_A, 1, 2, bytes(958)))
        engine.run()
        assert times == [8_000, 8_000]  # no shared queueing

    def test_faster_link_is_faster(self, engine):
        node_a, node_b, nic_a, nic_b, link = _hosts(engine, rate_gbps=10.0, propagation_ns=0)
        arrivals = []
        original = nic_b.link_receive
        nic_b.link_receive = lambda p: arrivals.append(engine.now) or original(p)
        link.send(nic_a, make_udp_packet(nic_a.mac, nic_b.mac, IP_A, IP_B, 1, 2, bytes(958)))
        engine.run()
        assert arrivals == [800]

    def test_unattached_sender_rejected(self, engine):
        node = KernelNode(engine, "x")
        nic = PhysicalNIC(node, "ethX")
        link = Link(engine)
        with pytest.raises(ValueError):
            link.send(nic, make_udp_packet(nic.mac, nic.mac, IP_A, IP_B, 1, 2, b""))


class TestTSOGRO:
    def test_tso_segments_super_packets_on_wire(self, engine):
        node_a, node_b, nic_a, nic_b, link = _hosts(engine, gro_batch=0)
        wire = []
        original = nic_b.link_receive
        nic_b.link_receive = lambda p: wire.append(p.payload_length) or original(p)
        big = make_tcp_packet(nic_a.mac, nic_b.mac, IP_A, IP_B, 1, 2, bytes(5000), seq=0)
        nic_a._egress(big, None)
        engine.run()
        assert wire == [1448, 1448, 1448, 656]

    def test_tso_disabled_sends_whole(self, engine):
        node_a, node_b, nic_a, nic_b, link = _hosts(engine, tso=False, gro_batch=0)
        wire = []
        original = nic_b.link_receive
        nic_b.link_receive = lambda p: wire.append(p.payload_length) or original(p)
        big = make_tcp_packet(nic_a.mac, nic_b.mac, IP_A, IP_B, 1, 2, bytes(5000), seq=0)
        nic_a._egress(big, None)
        engine.run()
        assert wire == [5000]

    def test_gro_coalesces_dense_arrivals(self, engine):
        # 10G: wire gaps ~1.2us < the 5us GRO window -> coalescing.
        node_a, node_b, nic_a, nic_b, link = _hosts(engine, rate_gbps=10.0)
        delivered = []
        original_receive = nic_b.receive

        def spy(packet):
            delivered.append(packet.payload_length)
            original_receive(packet)

        nic_b.receive = spy
        big = make_tcp_packet(nic_a.mac, nic_b.mac, IP_A, IP_B, 1, 2, bytes(8 * 1448), seq=0)
        nic_a._egress(big, None)
        engine.run()
        assert len(delivered) < 8
        assert sum(delivered) == 8 * 1448

    def test_gro_does_not_merge_sparse_arrivals(self, engine):
        # 0.1G: gaps ~120us >> window -> no merging.
        node_a, node_b, nic_a, nic_b, link = _hosts(engine, rate_gbps=0.1)
        delivered = []
        original_receive = nic_b.receive
        nic_b.receive = lambda p: delivered.append(p.payload_length) or original_receive(p)
        big = make_tcp_packet(nic_a.mac, nic_b.mac, IP_A, IP_B, 1, 2, bytes(4 * 1448), seq=0)
        nic_a._egress(big, None)
        engine.run()
        assert delivered == [1448, 1448, 1448, 1448]
