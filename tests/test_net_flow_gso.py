"""Flow hashing / RPS and GSO segmentation / GRO coalescing."""

from hypothesis import given, strategies as st

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.flow import FiveTuple, flow_hash, packet_five_tuple, rps_cpu
from repro.net.gso import GROEngine, gso_segs, segment_packet
from repro.net.packet import IPPROTO_TCP, IPPROTO_UDP, make_tcp_packet, make_udp_packet
from repro.sim.engine import Engine

MAC_A, MAC_B = MACAddress.from_index(1), MACAddress.from_index(2)
IP_A, IP_B = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")


def _flow(sp=1000, dp=2000, proto=IPPROTO_TCP):
    return FiveTuple(IP_A, IP_B, sp, dp, proto)


class TestFlow:
    def test_packet_five_tuple_udp(self):
        packet = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 7, 8, b"")
        flow = packet_five_tuple(packet)
        assert flow == FiveTuple(IP_A, IP_B, 7, 8, IPPROTO_UDP)

    def test_packet_five_tuple_tcp(self):
        packet = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 7, 8, b"")
        assert packet_five_tuple(packet).protocol == IPPROTO_TCP

    def test_reversed_swaps_endpoints(self):
        flow = _flow()
        rev = flow.reversed()
        assert rev.src_ip == flow.dst_ip and rev.src_port == flow.dst_port

    def test_hash_deterministic(self):
        assert flow_hash(_flow()) == flow_hash(_flow())

    def test_hash_differs_across_flows(self):
        assert flow_hash(_flow(sp=1000)) != flow_hash(_flow(sp=1001))

    def test_rps_disabled_pins_cpu0(self):
        assert rps_cpu(_flow(), 8, rps_enabled=False) == 0

    def test_rps_single_cpu(self):
        assert rps_cpu(_flow(), 1) == 0

    @given(sp=st.integers(min_value=1, max_value=65535))
    def test_rps_stable_per_flow(self, sp):
        flow = _flow(sp=sp)
        assert rps_cpu(flow, 4) == rps_cpu(flow, 4)
        assert 0 <= rps_cpu(flow, 4) < 4


class TestSegmentation:
    def test_small_packet_passthrough(self):
        packet = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"x" * 100)
        assert segment_packet(packet, 1448) == [packet]

    def test_tcp_super_segment_split(self):
        packet = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, bytes(5000), seq=1000)
        segments = segment_packet(packet, 1448)
        assert [len(s.payload) for s in segments] == [1448, 1448, 1448, 656]
        assert [s.tcp.seq for s in segments] == [1000, 2448, 3896, 5344]

    def test_udp_fragmentation_split(self):
        packet = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, bytes(4000))
        segments = segment_packet(packet, 1398)
        assert sum(len(s.payload) for s in segments) == 4000
        assert len(segments) == 3

    def test_non_l4_passthrough(self):
        from repro.net.packet import EthernetHeader, Packet

        packet = Packet([EthernetHeader(MAC_B, MAC_A)], bytes(5000))
        assert segment_packet(packet, 1448) == [packet]

    @given(size=st.integers(min_value=1, max_value=20000),
           mss=st.integers(min_value=100, max_value=2000))
    def test_segments_cover_payload_exactly(self, size, mss):
        packet = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, bytes(size), seq=0)
        segments = segment_packet(packet, mss)
        assert sum(len(s.payload) for s in segments) == size
        assert all(len(s.payload) <= mss for s in segments)
        # contiguous sequence space
        expected = 0
        for seg in segments:
            assert seg.tcp.seq == expected
            expected += len(seg.payload)


class TestGRO:
    def _engine_and_sink(self):
        engine = Engine()
        out = []
        gro = GROEngine(engine, deliver=lambda p, c: out.append(p), flush_batch=4,
                        window_ns=10_000)
        return engine, gro, out

    def _segments(self, count, size=100, start_seq=0):
        packets = []
        seq = start_seq
        for _ in range(count):
            packets.append(
                make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, bytes(size), seq=seq)
            )
            seq += size
        return packets

    def test_batch_flush_merges(self):
        engine, gro, out = self._engine_and_sink()
        for seg in self._segments(4):
            gro.push(seg, None)
        assert len(out) == 1
        assert len(out[0].payload) == 400
        assert gso_segs(out[0]) == 4

    def test_timer_flush(self):
        engine, gro, out = self._engine_and_sink()
        for seg in self._segments(2):
            gro.push(seg, None)
        assert out == []
        engine.run()
        assert len(out) == 1 and len(out[0].payload) == 200

    def test_gap_flushes_then_restarts(self):
        engine, gro, out = self._engine_and_sink()
        segs = self._segments(2)
        gro.push(segs[0], None)
        # Sequence gap: not contiguous with the buffered segment.
        late = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, bytes(100), seq=5000)
        gro.push(late, None)
        assert len(out) == 1 and out[0].payload == bytes(100)  # first flushed alone
        engine.run()
        assert len(out) == 2

    def test_udp_passthrough(self):
        engine, gro, out = self._engine_and_sink()
        packet = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"u")
        gro.push(packet, None)
        assert out == [packet]

    def test_pure_ack_flushes_same_flow_first(self):
        engine, gro, out = self._engine_and_sink()
        gro.push(self._segments(1)[0], None)
        ack = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"", seq=100)
        gro.push(ack, None)
        # data flushed before the ack to preserve ordering
        assert [len(p.payload) if isinstance(p.payload, bytes) else -1 for p in out] == [100, 0]

    def test_flows_buffer_independently(self):
        engine, gro, out = self._engine_and_sink()
        a = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, bytes(100), seq=0)
        b = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 3, 4, bytes(100), seq=0)
        gro.push(a, None)
        gro.push(b, None)
        assert out == []
        gro.flush_all()
        assert len(out) == 2
