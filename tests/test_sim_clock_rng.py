"""Node clocks and deterministic RNG streams."""

import pytest

from repro.sim.clock import NodeClock
from repro.sim.engine import Engine
from repro.sim.rng import SeededRNG


class TestNodeClock:
    def test_base_reading_at_time_zero(self, engine):
        clock = NodeClock(engine)
        assert clock.monotonic_ns() == NodeClock.BASE_NS

    def test_offset_shifts_reading(self, engine):
        clock = NodeClock(engine, offset_ns=5_000)
        assert clock.monotonic_ns() == NodeClock.BASE_NS + 5_000

    def test_reading_tracks_engine_time(self, engine):
        clock = NodeClock(engine)
        engine.schedule(1_000_000, lambda: None)
        engine.run()
        assert clock.monotonic_ns() == NodeClock.BASE_NS + 1_000_000

    def test_drift_scales_elapsed_time(self, engine):
        clock = NodeClock(engine, drift_ppm=100.0)  # 1e-4
        engine.schedule(10_000_000, lambda: None)
        engine.run()
        expected = NodeClock.BASE_NS + int(10_000_000 * 1.0001)
        assert clock.monotonic_ns() == expected

    def test_negative_offset_stays_positive(self, engine):
        clock = NodeClock(engine, offset_ns=-4_000_000)
        assert clock.monotonic_ns() > 0

    def test_skew_versus_combines_offset_and_drift(self, engine):
        fast = NodeClock(engine, offset_ns=1_000, drift_ppm=50.0)
        slow = NodeClock(engine, offset_ns=0, drift_ppm=0.0)
        engine.schedule(100_000_000, lambda: None)
        engine.run()
        expected = 1_000 + int(100_000_000 * 50e-6)
        assert fast.skew_versus(slow) == expected

    def test_at_matches_monotonic_at_now(self, engine):
        clock = NodeClock(engine, offset_ns=7, drift_ppm=3.0)
        engine.schedule(123_456, lambda: None)
        engine.run()
        assert clock.at(engine.now) == clock.monotonic_ns()


class TestSeededRNG:
    def test_same_seed_same_stream(self):
        a = SeededRNG(99, "x")
        b = SeededRNG(99, "x")
        assert [a.randint(0, 1000) for _ in range(20)] == [
            b.randint(0, 1000) for _ in range(20)
        ]

    def test_different_names_decorrelate(self):
        a = SeededRNG(99, "x")
        b = SeededRNG(99, "y")
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_fork_is_deterministic(self):
        a = SeededRNG(7).fork("child")
        b = SeededRNG(7).fork("child")
        assert a.random_u32() == b.random_u32()

    def test_fork_does_not_disturb_parent(self):
        parent = SeededRNG(7)
        first = parent.randint(0, 10**9)
        parent2 = SeededRNG(7)
        parent2.fork("noise")  # forking must not consume parent draws
        assert parent2.randint(0, 10**9) == first

    def test_random_u32_in_range(self):
        rng = SeededRNG(3)
        for _ in range(100):
            value = rng.random_u32()
            assert 0 <= value <= 0xFFFFFFFF

    def test_distribution_helpers_nonnegative(self):
        rng = SeededRNG(3)
        for _ in range(50):
            assert rng.exponential_ns(1000) >= 0
            assert rng.normal_ns(1000, 400) >= 0
            assert rng.lognormal_ns(1000, 0.5) >= 0
            assert rng.pareto_ns(100, 1.5) >= 0

    def test_bernoulli_extremes(self):
        rng = SeededRNG(3)
        assert not any(rng.bernoulli(0.0) for _ in range(20))
        assert all(rng.bernoulli(1.0) for _ in range(20))

    def test_lognormal_centers_near_median(self):
        rng = SeededRNG(5)
        samples = [rng.lognormal_ns(1000, 0.05) for _ in range(500)]
        assert 950 < sorted(samples)[250] < 1050
