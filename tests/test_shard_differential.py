"""Differential suite: existing scenarios on Engine vs. ShardedEngine.

The compat tier promises byte-identical results for *any* scenario, so
this suite runs the repo's three flagship scenarios -- quickstart, OVS
congestion Case III, and the fault-injection case -- on the plain
engine and on ShardedEngines of several widths, and compares everything
observable: workload counters, collected rows, decompositions, clock
estimates, final virtual time, and event counts.

One normalization: tracepoint IDs are allocated from a process-global
counter, so two runs *in the same process* hand out different IDs even
on identical engines (labels, and everything else, are stable).  Row
comparisons therefore key on labels and zero the ``tracepoint_id``
field -- the same field a cross-process byte-diff (CI's determinism
job) compares directly.
"""

from __future__ import annotations

import pytest

from repro.experiments.fault_case import run_fault_case
from repro.experiments.ovs_case import run_case
from repro.obs.scenario import QUICKSTART_CHAIN, run_quickstart_scenario
from repro.sim import ShardedEngine, engine_factory

QUICKSTART_NS = 400_000_000
OVS_NS = 300_000_000
FAULT_PACKETS = 60


def normalized_tables(db):
    """Label-keyed rows with the process-global tracepoint ID zeroed."""
    return {
        label: [row._replace(tracepoint_id=0) for row in db.table(label)]
        for label in sorted(db.tables())
    }


def quickstart_digest(result):
    tracer = result.tracer
    return {
        "sent": result.client.sent,
        "received": result.client.received,
        "latency": result.client.summary(),
        "rows": tracer.db.rows_inserted,
        "tables": normalized_tables(tracer.db),
        "offsets": tracer.db.clock_offsets(),
        "decomposition": [
            (seg.from_label, seg.to_label, tuple(seg.latencies_ns))
            for seg in tracer.decompose(QUICKSTART_CHAIN)
        ],
        "spans": len(result.forest),
        "now": result.engine.now,
        "events": result.engine.events_executed,
    }


def ovs_digest(result):
    return {
        "sockperf": result.sockperf,
        "decomposition": result.decomposition,
        "goodputs": result.iperf_goodputs_bps,
        "policer_drops": result.policer_drops,
        "queue_drops": result.queue_drops,
        "rows": result.tracer.db.rows_inserted,
        "tables": normalized_tables(result.tracer.db),
    }


def fault_digest(result):
    return {
        "packets_sent": result.packets_sent,
        "rows": result.rows,
        "rows_by_label": result.rows_by_label,
        "decomposition": [
            (seg.from_label, seg.to_label, tuple(seg.latencies_ns))
            for seg in result.decomposition
        ],
        "records_lost": result.records_lost,
        "lost_by_reason": result.records_lost_by_reason,
        "deploy_retries": result.deploy_retries,
        "ship_retries": result.ship_retries,
        "deduped": result.deduped_batches,
    }


class TestQuickstartDifferential:
    @pytest.fixture(scope="class")
    def plain(self):
        return quickstart_digest(
            run_quickstart_scenario(duration_ns=QUICKSTART_NS, shards=0)
        )

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_byte_identical(self, plain, shards):
        sharded = quickstart_digest(
            run_quickstart_scenario(duration_ns=QUICKSTART_NS, shards=shards)
        )
        assert sharded == plain

    def test_plain_rerun_identical(self, plain):
        """Control: the scenario itself is deterministic in-process, so
        any differential failure above is the engine's fault."""
        again = quickstart_digest(
            run_quickstart_scenario(duration_ns=QUICKSTART_NS, shards=0)
        )
        assert again == plain


class TestOVSCaseDifferential:
    @pytest.fixture(scope="class")
    def plain(self):
        return ovs_digest(run_case("III", duration_ns=OVS_NS, trace=True))

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_byte_identical(self, plain, shards):
        with engine_factory(lambda: ShardedEngine(shards=shards)):
            sharded = ovs_digest(run_case("III", duration_ns=OVS_NS, trace=True))
        assert sharded == plain


class TestFaultCaseDifferential:
    @pytest.fixture(scope="class")
    def plain(self):
        return fault_digest(run_fault_case(packets=FAULT_PACKETS))

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_byte_identical(self, plain, shards):
        with engine_factory(lambda: ShardedEngine(shards=shards)):
            sharded = fault_digest(run_fault_case(packets=FAULT_PACKETS))
        assert sharded == plain

    def test_faulty_leg_byte_identical(self):
        """The lossy leg exercises retries, crashes, and dedup -- the
        scheduling-heaviest paths in the repo."""
        from repro.experiments.fault_case import default_fault_plan

        plan = default_fault_plan(seed=11)
        plain = fault_digest(run_fault_case(plan=plan, packets=FAULT_PACKETS))
        with engine_factory(lambda: ShardedEngine(shards=3)):
            sharded = fault_digest(run_fault_case(plan=plan, packets=FAULT_PACKETS))
        assert sharded == plain
