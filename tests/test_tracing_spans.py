"""Span-tree reconstruction, critical-path analysis, and exporters.

Acceptance properties (docs/TIMELINES.md):

* the top-level children of every packet span *partition* it, so their
  durations telescope to the end-to-end latency exactly -- pinned to
  the nanosecond against ``analysis``'s decomposition on a two-node
  overlay flow;
* the Chrome trace-event export is byte-identical across two runs of
  the same seeded scenario;
* the assembler drives the ``tracing`` stage of the metrics contract.
"""

import json

import pytest

from repro.core import FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.core.metrics import decompose_latency
from repro.core.records import TraceRecord
from repro.core.tracedb import TraceDB
from repro.experiments.topologies import build_two_host_kvm
from repro.net.addressing import IPv4Address
from repro.net.packet import IPPROTO_UDP
from repro.obs.registry import MetricsRegistry
from repro.tracing import (
    Span,
    SpanAssembler,
    aggregate_hops,
    build_control_root,
    build_span_tree,
    chrome_trace_dict,
    chrome_trace_json,
    critical_path,
    flag_anomalies,
    otlp_dict,
    otlp_json,
    segments_from_forest,
    span_tree_text,
    timeline_text,
)
from repro.virt.overlay import OverlayNetwork

CHAIN = ["n1:a", "n1:b", "n2:c", "n2:d"]


def _record(trace_id, ts, tracepoint=1, cpu=0):
    return TraceRecord(trace_id, tracepoint, ts, 64, cpu)


def _populate(db, trace_id, stamps=(100, 250, 900, 1_000)):
    """One trace crossing n1 (two points) then n2 (two points)."""
    nodes = ("n1", "n1", "n2", "n2")
    for label, node, ts in zip(CHAIN, nodes, stamps):
        db.insert(node, label, _record(trace_id, ts))


class TestSpanModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown span kind"):
            Span("x", "banana", "n1", 0, 1)

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            Span("x", "hop", "n1", 10, 5)

    def test_walk_is_preorder(self):
        root = Span("r", "packet", "n1", 0, 10)
        a = root.add_child(Span("a", "device", "n1", 0, 5))
        a.add_child(Span("a1", "hop", "n1", 0, 5))
        root.add_child(Span("b", "device", "n1", 5, 10))
        assert [s.name for s in root.walk()] == ["r", "a", "a1", "b"]


class TestReconstruct:
    def test_single_record_trace_yields_none(self):
        db = TraceDB()
        db.insert("n1", CHAIN[0], _record(1, 100))
        assert build_span_tree(db, 1) is None

    def test_unknown_trace_yields_none(self):
        assert build_span_tree(TraceDB(), 404) is None

    def test_tree_shape_two_nodes(self):
        db = TraceDB()
        _populate(db, 1)
        tree = build_span_tree(db, 1)
        kinds = [s.kind for s in tree.spans()]
        # packet > [device(n1) > hop, wire, device(n2) > hop]
        assert kinds == ["packet", "device", "hop", "wire", "device", "hop"]
        wire = next(s for s in tree.spans() if s.kind == "wire")
        assert wire.name == "n1:b -> n2:c"
        assert wire.duration_ns == 650
        assert wire.attributes["from_node"] == "n1"

    def test_top_level_children_partition_the_root(self):
        db = TraceDB()
        _populate(db, 1)
        root = build_span_tree(db, 1).root
        assert root.children[0].start_ns == root.start_ns
        assert root.children[-1].end_ns == root.end_ns
        for left, right in zip(root.children, root.children[1:]):
            assert left.end_ns == right.start_ns  # no gaps, no overlap
        assert sum(c.duration_ns for c in root.children) == root.duration_ns

    def test_duplicates_counted_not_folded(self):
        db = TraceDB()
        _populate(db, 1)
        db.insert("n1", CHAIN[0], _record(1, 120))  # retransmit-style dup
        tree = build_span_tree(db, 1)
        assert tree.duplicate_records == 1
        assert tree.root.start_ns == 100  # earliest observation wins

    def test_chain_filter_ignores_other_labels(self):
        db = TraceDB()
        _populate(db, 1)
        db.insert("n3", "noise:x", _record(1, 500))
        tree = build_span_tree(db, 1, chain=CHAIN)
        assert all("noise" not in s.name for s in tree.spans())
        assert tree.duplicate_records == 0

    def test_device_span_carries_clock_offset(self):
        db = TraceDB()
        db.set_clock_skew("n2", -1_500)
        _populate(db, 1)
        devices = {
            s.node: s.attributes["clock_offset_ns"]
            for s in build_span_tree(db, 1).spans()
            if s.kind == "device"
        }
        assert devices == {"n1": 0, "n2": -1_500}

    def test_out_of_order_ingest_is_reordered(self):
        # Rows arrive per-node batch, so cross-node timestamp order is
        # never ingest order; the tree must sort by aligned time.
        db = TraceDB()
        db.insert("n2", CHAIN[2], _record(1, 900))
        db.insert("n1", CHAIN[0], _record(1, 100))
        db.insert("n2", CHAIN[3], _record(1, 1_000))
        db.insert("n1", CHAIN[1], _record(1, 250))
        tree = build_span_tree(db, 1)
        stamps = [s.start_ns for s in tree.root.children]
        assert stamps == sorted(stamps)
        assert tree.root.duration_ns == 900


class TestControlRoot:
    def test_empty_logs_yield_none(self):
        assert build_control_root([], []) is None

    def test_children_sorted_and_enveloped(self):
        root = build_control_root(
            deploy_spans=[(50, 250, "n2"), (50, 200, "n1")],
            ship_spans=[(300, 400, "n1", 12)],
        )
        assert [c.name for c in root.children] == [
            "deploy:n1", "deploy:n2", "ship:n1",
        ]
        assert (root.start_ns, root.end_ns) == (50, 400)
        assert root.children[-1].attributes["records"] == 12


class TestAssembler:
    def test_forest_counts_orphans_and_metrics(self):
        db = TraceDB()
        _populate(db, 1)
        _populate(db, 2)
        db.insert("n1", CHAIN[0], _record(3, 5_000))  # single-point trace
        registry = MetricsRegistry()
        assembler = SpanAssembler(db, registry=registry)
        forest = assembler.forest(chain=CHAIN)
        assert len(forest) == 2
        assert forest.orphan_records == 1
        assert registry.total("vnt_span_trees_built_total") == 2
        assert registry.total("vnt_span_spans_total") == forest.span_count()
        assert registry.total("vnt_span_orphan_records_total") == 1

    def test_complete_only_drops_partial_traces(self):
        db = TraceDB()
        _populate(db, 1)
        for label, node, ts in zip(CHAIN[:2], ("n1", "n1"), (100, 260)):
            db.insert(node, label, _record(9, ts))  # lost after n1
        assembler = SpanAssembler(db)
        strict = assembler.forest(chain=CHAIN, complete_only=True)
        assert [t.trace_id for t in strict.trees] == [1]
        assert strict.orphan_records == 2
        loose = assembler.forest(chain=CHAIN, complete_only=False)
        assert [t.trace_id for t in loose.trees] == [1, 9]

    def test_anomaly_pass_drives_metric(self):
        db = TraceDB()
        for trace_id in (1, 2, 3):
            _populate(db, trace_id, stamps=(100, 250, 900, 1_000))
        _populate(db, 4, stamps=(100, 250, 90_000, 90_100))  # slow wire
        registry = MetricsRegistry()
        assembler = SpanAssembler(db, registry=registry)
        found = assembler.anomalies(assembler.forest(chain=CHAIN), factor=3.0)
        assert [a.trace_id for a in found] == [4]
        assert found[0].name == "n1:b -> n2:c"
        assert registry.total("vnt_span_anomalous_total") == 1


class TestCriticalPath:
    def _forest(self):
        db = TraceDB()
        for trace_id in (1, 2):
            _populate(db, trace_id)
        return SpanAssembler(db).forest(chain=CHAIN)

    def test_path_follows_longest_child(self):
        forest = self._forest()
        path = critical_path(forest.trees[0])
        assert path[0].kind == "packet"
        assert path[1].kind == "wire"  # the 650 ns gap dominates

    def test_hop_stats_cover_every_leaf(self):
        stats = aggregate_hops(self._forest())
        assert [s.name for s in stats] == [
            "n1:a -> n1:b", "n1:b -> n2:c", "n2:c -> n2:d",
        ]
        wire = stats[1]
        assert wire.kind == "wire"
        assert wire.count == 2 and wire.p50_ns == 650

    def test_segments_match_decompose(self):
        db = TraceDB()
        for trace_id in (1, 2):
            _populate(db, trace_id)
        forest = SpanAssembler(db).forest(chain=CHAIN)
        assert segments_from_forest(forest, CHAIN) == decompose_latency(db, CHAIN)

    def test_anomaly_factor_validated(self):
        with pytest.raises(ValueError):
            flag_anomalies(self._forest(), factor=0)


class TestExporters:
    def _forest(self):
        db = TraceDB()
        _populate(db, 1)
        control = build_control_root([(10, 60, "n1")], [])
        return SpanAssembler(db).forest(chain=CHAIN, control_root=control)

    def test_chrome_dict_shape(self):
        doc = chrome_trace_dict(self._forest())
        assert doc["displayTimeUnit"] == "ns"
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 8  # 6 packet-tree spans + control root + leg
        assert meta  # process/thread names for Perfetto's track labels
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)

    def test_chrome_json_parses_and_is_canonical(self):
        text = chrome_trace_json(self._forest())
        doc = json.loads(text)
        assert doc["otherData"]["trees"] == 1
        assert text == chrome_trace_json(self._forest())  # stable bytes

    def test_otlp_ids_and_times(self):
        doc = otlp_dict(self._forest())
        scope = doc["resourceSpans"][0]["scopeSpans"][0]
        spans = scope["spans"]
        root = spans[0]
        assert len(root["traceId"]) == 32 and len(root["spanId"]) == 16
        assert root["parentSpanId"] == ""
        children = [s for s in spans if s["parentSpanId"] == root["spanId"]]
        assert children  # tree structure survives the flattening
        for span in spans:
            assert int(span["endTimeUnixNano"]) >= int(span["startTimeUnixNano"])
        assert json.loads(otlp_json(self._forest())) == doc

    def test_text_rendering_mentions_every_span(self):
        forest = self._forest()
        text = timeline_text(forest)
        tree_text = span_tree_text(forest.trees[0])
        for span in forest.trees[0].spans():
            assert span.name in tree_text
        assert "control-plane" in text


@pytest.fixture(scope="module")
def overlay_flow():
    """A two-node overlay flow traced at four points: container egress
    and VXLAN device on vm1, VXLAN device and container delivery on vm2
    (the §III-A walkthrough with enough tracepoints for device spans)."""
    scene = build_two_host_kvm(seed=99)
    engine = scene.engine
    overlay = OverlayNetwork("flannel", vni=7, subnet=IPv4Address("10.32.0.0"))
    member1 = overlay.join(scene.vm1.node, scene.vm1_ip)
    member2 = overlay.join(scene.vm2.node, scene.vm2_ip)
    c1 = overlay.create_container(member1, "c1", IPv4Address("10.32.0.2"))
    c2 = overlay.create_container(member2, "c2", IPv4Address("10.32.0.3"))

    tracer = VNetTracer(engine)
    tracer.add_agent(scene.vm1.node)
    tracer.add_agent(scene.vm2.node)
    sync = tracer.synchronize_clocks(
        scene.host1.node, scene.host1_ip, "dev:eth0",
        scene.host2.node, scene.host2_ip, "dev:eth0",
    )
    previous = sync.on_done
    sync.on_done = lambda est: (
        previous(est),
        tracer.db.set_clock_skew(scene.vm2.node.name, est.skew_ns),
    )
    engine.run(until=150_000_000)

    chain = ["egress", "flannel_i", "flannel_j", "deliver"]
    spec = TracingSpec(
        rule=FilterRule(dst_ip=c2.ip, dst_port=7100, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=scene.vm1.node.name,
                           hook="kprobe:udp_send_skb", label="egress"),
            TracepointSpec(node=scene.vm1.node.name,
                           hook=f"dev:{member1.vxlan.name}",
                           label="flannel_i", strip_vxlan=True),
            TracepointSpec(node=scene.vm2.node.name,
                           hook=f"dev:{member2.vxlan.name}",
                           label="flannel_j", strip_vxlan=True),
            TracepointSpec(node=scene.vm2.node.name,
                           hook="kprobe:skb_copy_datagram_iovec",
                           label="deliver"),
        ],
    )
    tracer.deploy(spec)
    server = c2.bind_udp(7100)
    server.on_receive = lambda *a: None
    client = c1.bind_udp(7101)
    start = engine.now
    for i in range(25):
        engine.schedule(1_000_000 * (i + 1), client.sendto, c2.ip, 7100,
                        b"payload", "span-acceptance", i)
    engine.run(until=start + 150_000_000)
    tracer.collect()
    return tracer, chain


class TestOverlayAcceptance:
    """ISSUE acceptance: span durations vs the metric-layer decomposition."""

    def test_span_durations_telescope_to_end_to_end_latency(self, overlay_flow):
        tracer, chain = overlay_flow
        forest = tracer.span_forest(chain, include_control=False)
        assert len(forest) == 25

        segments = decompose_latency(tracer.db, chain)
        end_to_end = {}  # trace_id -> summed segment latency, per packet
        order = sorted(
            tracer.db.complete_traces(chain),
            key=lambda t: tracer.db.trace_ids_at(chain[0])[t].timestamp_ns,
        )
        for index, trace_id in enumerate(order):
            end_to_end[trace_id] = sum(
                segment.latencies_ns[index] for segment in segments
            )
        for tree in forest:
            spans_sum = sum(c.duration_ns for c in tree.root.children)
            # Exact: top-level children partition the packet span.
            assert spans_sum == tree.duration_ns
            assert abs(spans_sum - end_to_end[tree.trace_id]) <= 1

    def test_device_spans_have_positive_time_on_each_node(self, overlay_flow):
        tracer, chain = overlay_flow
        forest = tracer.span_forest(chain, include_control=False)
        tree = forest.trees[0]
        devices = [s for s in tree.root.children if s.kind == "device"]
        assert len(devices) == 2  # vm1 run, vm2 run
        assert all(d.duration_ns > 0 for d in devices)
        wires = [s for s in tree.root.children if s.kind == "wire"]
        assert len(wires) == 1
        assert wires[0].name == "flannel_i -> flannel_j"

    def test_control_root_present_with_deploy_legs(self, overlay_flow):
        tracer, chain = overlay_flow
        forest = tracer.span_forest(chain)
        assert forest.control_root is not None
        names = [c.name for c in forest.control_root.children]
        assert any(name.startswith("deploy:") for name in names)
