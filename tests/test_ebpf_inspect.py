"""Program introspection (bpftool analog)."""

from repro.core.compiler import compile_script
from repro.core.config import ActionSpec, FilterRule, TracepointSpec
from repro.ebpf.context import build_skb_context
from repro.ebpf.inspect import dump_program, inspect_program
from repro.ebpf.maps import PerCPUArrayMap, PerfEventArray
from repro.ebpf.vm import ExecutionEnv
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import IPPROTO_UDP, make_udp_packet


def _loaded_script():
    perf = PerfEventArray(num_cpus=2)
    counter = PerCPUArrayMap(8, 1, 2)
    program, maps = compile_script(
        FilterRule(dst_port=4000, protocol=IPPROTO_UDP),
        TracepointSpec(node="n", hook="dev:x"),
        ActionSpec(record=True, count=True),
        perf_map=perf,
        counter_map=counter,
    )
    program.load()
    return program, maps, perf, counter


class TestInspect:
    def test_counts_match_program_shape(self):
        program, maps, perf, counter = _loaded_script()
        info = inspect_program(program)
        assert info.instructions == len(program.insns)
        assert info.alu_ops > 0 and info.jumps > 0
        assert info.loads > 0 and info.stores > 0
        total = info.alu_ops + info.jumps + info.loads + info.stores
        # LD_IMM64 second slots are part of their first slot.
        assert total == info.instructions - sum(
            1 for insn in program.insns if insn.opcode == 0
        )

    def test_helper_and_map_discovery(self):
        program, maps, perf, counter = _loaded_script()
        info = inspect_program(program)
        assert info.helper_calls.get("perf_event_output") == 1
        assert info.helper_calls.get("ktime_get_ns") == 1
        assert info.helper_calls.get("map_lookup_elem") == 1
        assert set(info.map_fds) == set(maps)

    def test_cost_bounds_order(self):
        program, *_ = _loaded_script()
        info = inspect_program(program)
        assert 0 < info.max_cost_ns_jit < info.max_cost_ns_interp

    def test_runtime_stats_reflected(self):
        program, maps, perf, counter = _loaded_script()
        packet = make_udp_packet(
            MACAddress.from_index(1), MACAddress.from_index(2),
            IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), 1, 4000, b"x",
        )
        ctx, data = build_skb_context(packet)
        program.run(ExecutionEnv(maps=maps), ctx, data)
        info = inspect_program(program)
        assert info.run_count == 1
        assert info.total_cost_ns > 0
        # Worst case bounds the observed cost.
        assert info.total_cost_ns <= info.max_cost_ns_jit + 1

    def test_dump_renders(self):
        program, *_ = _loaded_script()
        listing = dump_program(program)
        assert "program" in listing
        assert "exit" in listing
        assert "call helper#25" in listing
