"""Property-style invariants of the hypervisor scheduler.

Randomized wake/work patterns must never violate:
* work conservation -- every submitted job eventually completes;
* bounded wake latency -- no job waits longer than the rate limit plus
  a generous context-switch allowance;
* single occupancy -- at most one vCPU runs at any time.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.cpu import GatedCPU
from repro.sim.engine import Engine
from repro.virt.xen import CreditScheduler, VCPU, VCPUState

job_patterns = st.lists(
    st.tuples(
        st.integers(min_value=10_000, max_value=900_000),   # gap to next job (ns)
        st.integers(min_value=1_000, max_value=120_000),    # job service (ns)
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=30, deadline=None)
@given(pattern=job_patterns, ratelimit_us=st.sampled_from([0, 200, 1000]))
def test_all_jobs_complete_with_bounded_latency(pattern, ratelimit_us):
    engine = Engine()
    sched = CreditScheduler(engine, ratelimit_us=ratelimit_us)
    io_cpu = GatedCPU(engine, name="io", start_paused=True)
    io = VCPU("io", io_cpu)
    sched.add_vcpu(io)
    hog_cpu = GatedCPU(engine, name="hog", start_paused=True)
    hog = VCPU("hog", hog_cpu, always_busy=True)
    sched.add_vcpu(hog)

    completions = []
    submit_times = []
    now = [1_000_000]

    def submit(service_ns, at_ns):
        def fire():
            submit_times.append(engine.now)
            io_cpu.submit(service_ns, lambda: completions.append(engine.now))
        engine.schedule(at_ns, fire)

    at = 1_000_000
    for gap, service in pattern:
        submit(service, at)
        at += gap

    engine.run(until=at + 100_000_000)

    assert len(completions) == len(pattern)  # work conservation
    # Bounded latency: each job finishes within ratelimit + its own
    # service + queued predecessors' service + switching slack.
    total_service = sum(service for _gap, service in pattern)
    bound = ratelimit_us * 1000 + total_service + 200_000
    for submitted, completed in zip(sorted(submit_times), sorted(completions)):
        assert completed - submitted <= bound


@settings(max_examples=20, deadline=None)
@given(pattern=job_patterns)
def test_single_occupancy_invariant(pattern):
    engine = Engine()
    sched = CreditScheduler(engine, ratelimit_us=500)
    cpus = []
    for name in ("a", "b", "c"):
        cpu = GatedCPU(engine, name=name, start_paused=True)
        vcpu = VCPU(name, cpu)
        sched.add_vcpu(vcpu)
        cpus.append((vcpu, cpu))

    violations = []

    def check():
        running = [v for v, _c in cpus if v.state is VCPUState.RUNNING]
        if len(running) > 1:
            violations.append([v.name for v in running])
        engine.schedule(50_000, check)

    engine.schedule(0, check)
    at = 100_000
    for index, (gap, service) in enumerate(pattern):
        vcpu, cpu = cpus[index % 3]
        engine.schedule(at, cpu.submit, service)
        at += gap
    engine.run(until=at + 20_000_000)
    assert violations == []
