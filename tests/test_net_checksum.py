"""RFC 1071 checksum + the pskb_trim_rcsum incremental update."""

from hypothesis import given, strategies as st

from repro.net.checksum import (
    checksum_remove_trailing,
    internet_checksum,
    ones_complement_sum,
    verify_checksum,
)


class TestChecksumBasics:
    def test_known_vector(self):
        # Classic example from RFC 1071 discussions.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_empty_buffer(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")

    def test_verify_with_embedded_checksum(self):
        payload = b"hello world!"
        csum = internet_checksum(payload)
        with_csum = payload + csum.to_bytes(2, "big")
        assert verify_checksum(with_csum)

    @given(st.binary(min_size=0, max_size=256))
    def test_checksum_in_16bit_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF

    @given(st.binary(min_size=0, max_size=128))
    def test_sum_is_order_sensitive_but_bounded(self, data):
        assert 0 <= ones_complement_sum(data) <= 0xFFFF


class TestTrailingRemoval:
    @given(st.binary(min_size=2, max_size=128).filter(lambda b: len(b) % 2 == 0),
           st.binary(min_size=4, max_size=4))
    def test_incremental_matches_recompute(self, body, trailer):
        full = body + trailer
        csum_full = internet_checksum(full)
        updated = checksum_remove_trailing(csum_full, trailer)
        assert updated == internet_checksum(body)

    def test_odd_trailer_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            checksum_remove_trailing(0, b"\x01")
