"""The resilient control/data planes under injected faults.

Covers the delivery machinery pieces (docs/FAULTS.md) in isolation:
dispatcher ack/retry, idempotent installs, the collector's resequencer
and dedup, ring-buffer degradation policies, crash/restart accounting,
and the typed deploy/collect reports' backward compatibility.
"""

import pytest

from repro.core import FilterRule, GlobalConfig, TracepointSpec, TracingSpec
from repro.core.collector import RawDataCollector
from repro.core.dispatcher import DispatchError
from repro.core.records import TraceRecord
from repro.core.reports import CollectReport, DeployReport
from repro.core.ringbuffer import TraceRingBuffer
from repro.core.vnettracer import VNetTracer
from repro.faults import ChannelFaults, CrashEvent, FaultPlan
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine
from repro.sim.rng import SeededRNG


def _record(tracepoint_id=1, trace_id=1):
    return TraceRecord(trace_id, tracepoint_id, 0, 64, 0)


def _spec(node_name, **config):
    return TracingSpec(
        rule=FilterRule(dst_port=9000),
        tracepoints=[
            TracepointSpec(node=node_name, hook="kprobe:udp_send_skb", label="tx")
        ],
        global_config=GlobalConfig(**config),
    )


class TestResequencer:
    def test_out_of_order_batches_apply_in_sequence(self, engine):
        collector = RawDataCollector(engine)
        collector.register_labels({1: "tx"})
        collector.receive_batch("n", [_record(trace_id=2)], seq=2)
        assert collector.pending_batches("n") == 1
        assert collector.db.rows_inserted == 0
        collector.receive_batch("n", [_record(trace_id=1)], seq=1)
        assert collector.pending_batches("n") == 0
        rows = collector.db.table("tx")
        assert [row.trace_id for row in rows] == [1, 2]

    def test_duplicate_batch_discarded(self, engine):
        registry = MetricsRegistry()
        collector = RawDataCollector(engine, registry=registry)
        collector.register_labels({1: "tx"})
        assert collector.receive_batch("n", [_record()], seq=1)
        assert not collector.receive_batch("n", [_record()], seq=1)
        assert collector.db.rows_inserted == 1
        assert collector.db.deduped_batches == 1
        assert registry.total("vnt_fault_shipment_deduped_total") == 1

    def test_gap_notice_releases_held_batches(self, engine):
        collector = RawDataCollector(engine)
        collector.register_labels({1: "tx"})
        collector.receive_batch("n", [_record(trace_id=3)], seq=3)
        collector.receive_batch("n", [_record(trace_id=2)], seq=2)
        assert collector.db.rows_inserted == 0  # wedged behind seq 1
        collector.skip_shipment("n", 1)
        assert collector.db.rows_inserted == 2
        assert [row.trace_id for row in collector.db.table("tx")] == [2, 3]

    def test_skip_after_arrival_is_a_noop(self, engine):
        collector = RawDataCollector(engine)
        collector.register_labels({1: "tx"})
        collector.receive_batch("n", [_record()], seq=1)
        collector.skip_shipment("n", 1)  # already applied: nothing to skip
        collector.receive_batch("n", [_record(trace_id=2)], seq=2)
        assert collector.db.rows_inserted == 2

    def test_nodes_resequence_independently(self, engine):
        collector = RawDataCollector(engine)
        collector.register_labels({1: "tx"})
        collector.receive_batch("a", [_record(trace_id=1)], seq=1)
        collector.receive_batch("b", [_record(trace_id=9)], seq=2)
        assert collector.db.rows_inserted == 1
        assert collector.pending_batches("b") == 1


def _ring(engine, policy, capacity=96, sample_prob=0.5, flushed=None,
          fault_metrics=None):
    return TraceRingBuffer(
        engine,
        capacity_bytes=capacity,  # four 24-byte records
        flush_interval_ns=1_000_000,
        on_flush=(flushed.extend if flushed is not None else (lambda b: None)),
        policy=policy,
        sample_prob=sample_prob,
        rng=SeededRNG(1, "ring-test"),
        fault_metrics=fault_metrics,
    )


class TestRingPolicies:
    def _fill(self, ring, count=4):
        for i in range(count):
            assert ring.append(_record(trace_id=i).pack())

    def test_drop_newest_rejects_arrivals(self, engine):
        flushed = []
        ring = _ring(engine, "drop-newest", flushed=flushed)
        self._fill(ring)
        assert not ring.append(_record(trace_id=99).pack())
        assert ring.total_dropped == 1
        ring.flush()
        assert [TraceRecord.unpack(r).trace_id for r in flushed] == [0, 1, 2, 3]

    def test_drop_oldest_evicts_from_head(self, engine):
        flushed = []
        ring = _ring(engine, "drop-oldest", flushed=flushed)
        self._fill(ring)
        assert ring.append(_record(trace_id=99).pack())
        assert ring.total_dropped == 1
        ring.flush()
        assert [TraceRecord.unpack(r).trace_id for r in flushed] == [1, 2, 3, 99]

    def test_sample_policy_extremes(self, engine):
        always = _ring(engine, "sample", sample_prob=1.0)
        self._fill(always)
        assert always.append(_record().pack())  # certain admit: drop-oldest
        never = _ring(engine, "sample", sample_prob=0.0)
        self._fill(never)
        assert not never.append(_record().pack())  # certain reject
        assert always.total_dropped == never.total_dropped == 1

    def test_pressure_reserve_and_release(self, engine):
        ring = _ring(engine, "drop-newest")
        assert ring.reserve(80) == 80
        assert ring.effective_capacity_bytes == 16
        # Nothing fits under the squeeze; the drop is counted, the
        # buffer is not wedged.
        assert not ring.append(_record().pack())
        assert ring.total_dropped == 1
        ring.release(80)
        assert ring.effective_capacity_bytes == 96
        assert ring.append(_record().pack())
        # Over-reserve clamps to capacity; over-release clamps to zero.
        assert ring.reserve(10_000) == 96
        ring.release(10_000)
        assert ring.effective_capacity_bytes == 96

    def test_discard_does_not_count_as_policy_drop(self, engine):
        ring = _ring(engine, "drop-newest")
        self._fill(ring, count=3)
        assert ring.discard() == 3
        assert ring.total_dropped == 0
        assert ring.used_bytes == 0

    def test_exact_loss_accounting(self, engine):
        from repro.faults.metrics import FaultMetrics

        registry = MetricsRegistry()
        ring = _ring(engine, "drop-oldest",
                     fault_metrics=FaultMetrics(registry))
        ring.node = "n1"
        self._fill(ring)
        for i in range(5):
            ring.append(_record(trace_id=100 + i).pack())
        metric = registry.get("vnt_fault_records_lost_total")
        assert dict(metric.samples()) == {("n1", "ring_policy"): 5.0}
        assert ring.total_dropped == 5


class TestControlPlaneRetries:
    def test_certain_loss_exhausts_budget_and_raises(self, engine, node):
        tracer = VNetTracer(engine)
        tracer.add_agent(node)
        tracer.set_fault_plan(
            FaultPlan(seed=3, control=ChannelFaults(loss_prob=1.0)))
        report = tracer.deploy(
            _spec(node.name, deploy_max_attempts=3, deploy_ack_timeout_ns=50_000))
        with pytest.raises(DispatchError, match="unacked after 3 attempts"):
            engine.run(until=1_000_000_000)
        assert report.failed_nodes == [node.name]
        assert report.attempts == 3 and report.retries == 2
        assert not report.complete

    def test_retries_disabled_fails_quietly(self, engine, node):
        registry = MetricsRegistry()
        tracer = VNetTracer(engine, registry=registry)
        tracer.add_agent(node)
        tracer.set_fault_plan(
            FaultPlan(seed=3, control=ChannelFaults(loss_prob=1.0)))
        report = tracer.deploy(
            _spec(node.name, deploy_max_attempts=1, deploy_ack_timeout_ns=50_000))
        engine.run(until=1_000_000_000)  # must not raise
        assert report.failed_nodes == [node.name]
        assert not tracer.agents[node.name].scripts
        assert registry.total("vnt_retry_deploy_attempts_total") == 1
        assert registry.total("vnt_retry_deploy_retries_total") == 0

    def test_lossy_control_plane_recovers(self, engine, node):
        tracer = VNetTracer(engine)
        tracer.add_agent(node)
        tracer.set_fault_plan(
            FaultPlan(seed=7, control=ChannelFaults(loss_prob=0.5)))
        report = tracer.deploy(
            _spec(node.name, deploy_max_attempts=10,
                  deploy_ack_timeout_ns=50_000))
        engine.run(until=2_000_000_000)
        assert report.complete
        assert report.retries >= 1  # seed 7 drops the first attempt
        assert report.acked_nodes == [node.name]
        assert tracer.agents[node.name].scripts

    def test_duplicate_delivery_installs_once(self, engine, node):
        tracer = VNetTracer(engine)
        tracer.add_agent(node)
        tracer.set_fault_plan(
            FaultPlan(seed=3, control=ChannelFaults(dup_prob=1.0)))
        report = tracer.deploy(_spec(node.name))
        engine.run(until=1_000_000_000)
        assert report.complete and report.retries == 0
        # The duplicate copy acks but does not reinstall.
        assert len(tracer.dispatcher.deploy_log) == 1

    def test_install_is_idempotent(self, engine, node):
        tracer = VNetTracer(engine)
        tracer.add_agent(node)
        agent = tracer.agents[node.name]
        package = tracer.dispatcher.build_packages(_spec(node.name))[0]
        assert agent.install(package, deploy_id=5) == "installed"
        assert agent.install(package, deploy_id=5) == "duplicate"
        assert agent.install(package, deploy_id=4) == "stale"
        agent.crash()
        assert agent.install(package, deploy_id=6) == "down"


class TestShipmentRetries:
    def _online_tracer(self, engine, node, plan, ship_max_attempts=4):
        tracer = VNetTracer(engine, registry=MetricsRegistry())
        tracer.add_agent(node)
        tracer.set_fault_plan(plan)
        tracer.deploy(_spec(
            node.name,
            online_collection=True,
            flush_interval_ns=3_600_000_000_000,  # manual flushes only
            ship_max_attempts=ship_max_attempts,
            ship_ack_timeout_ns=100_000,
        ))
        engine.run(until=10_000_000)
        agent = tracer.agents[node.name]
        assert agent.scripts  # deploy settled (no control faults in plan)
        return tracer, agent

    def _ship_batch(self, engine, agent, count=5):
        tracepoint_id = agent.package.tracepoints[0].tracepoint_id
        for i in range(count):
            agent.ring.append(
                TraceRecord(i + 1, tracepoint_id, 0, 64, 0).pack())
        agent.ring.flush()
        engine.run(until=engine.now + 100_000_000)

    def test_lossy_shipment_retries_until_acked(self, engine, node):
        plan = FaultPlan(seed=5, shipment=ChannelFaults(loss_prob=0.6))
        tracer, agent = self._online_tracer(engine, node, plan,
                                            ship_max_attempts=12)
        self._ship_batch(engine, agent)
        assert tracer.db.rows_inserted == 5
        assert not agent._pending_ships
        registry = tracer.obs
        assert registry.total("vnt_retry_ship_attempts_total") >= 1
        assert registry.total("vnt_fault_records_lost_total") == 0

    def test_exhausted_budget_accounts_loss_and_posts_gap(self, engine, node):
        plan = FaultPlan(seed=5, shipment=ChannelFaults(loss_prob=1.0))
        tracer, agent = self._online_tracer(engine, node, plan,
                                            ship_max_attempts=2)
        self._ship_batch(engine, agent)
        assert tracer.db.rows_inserted == 0
        assert not agent._pending_ships
        metric = tracer.obs.get("vnt_fault_records_lost_total")
        assert dict(metric.samples()) == {(node.name, "shipment"): 5.0}
        # The gap notice keeps the resequencer live: a later clean batch
        # still applies even though seq 1 never arrived.
        tracer.set_fault_plan(None)
        self._ship_batch(engine, agent)
        assert tracer.db.rows_inserted == 5

    def test_duplicated_shipment_deduped(self, engine, node):
        plan = FaultPlan(seed=5, shipment=ChannelFaults(dup_prob=1.0))
        tracer, agent = self._online_tracer(engine, node, plan)
        self._ship_batch(engine, agent)
        assert tracer.db.rows_inserted == 5  # the duplicate copy discarded
        assert tracer.db.deduped_batches >= 1


class TestCrashRestart:
    def test_planned_crash_accounts_buffered_records(self, engine, node):
        registry = MetricsRegistry()
        tracer = VNetTracer(engine, registry=registry)
        tracer.add_agent(node)
        tracer.deploy(_spec(node.name, flush_interval_ns=3_600_000_000_000))
        engine.run(until=10_000_000)
        agent = tracer.agents[node.name]
        tracepoint_id = agent.package.tracepoints[0].tracepoint_id
        for i in range(3):
            agent.ring.append(TraceRecord(i, tracepoint_id, 0, 64, 0).pack())
        agent.local_store.extend([b"x"] * 2)
        tracer.set_fault_plan(FaultPlan(
            seed=1,
            crashes=[CrashEvent(node.name, at_ns=engine.now + 1_000,
                                restart_after_ns=5_000)],
        ))
        engine.run(until=engine.now + 2_000)
        assert agent.crashed and not agent.scripts
        metric = registry.get("vnt_fault_records_lost_total")
        assert dict(metric.samples()) == {
            (node.name, "crash_ring"): 3.0,
            (node.name, "crash_store"): 2.0,
        }
        engine.run(until=engine.now + 10_000)
        assert not agent.crashed and agent.scripts  # restarted + reinstalled
        assert registry.total("vnt_fault_agent_crashes_total") == 1
        assert registry.total("vnt_fault_agent_restarts_total") == 1

    def test_offline_collection_skips_crashed_agents(self, engine, two_nodes):
        node_a, node_b, _, _ = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(TracingSpec(
            rule=FilterRule(dst_port=9000),
            tracepoints=[
                TracepointSpec(node=node_a.name, hook="kprobe:udp_send_skb",
                               label="a"),
                TracepointSpec(node=node_b.name, hook="kprobe:udp_send_skb",
                               label="b"),
            ],
        ))
        engine.run(until=10_000_000)
        tracer.agents[node_b.name].crash()
        report = tracer.collect()
        assert report.skipped_nodes == [node_b.name]


class TestReportCompatibility:
    def test_deploy_report_quacks_like_package_list(self, engine, node):
        tracer = VNetTracer(engine)
        tracer.add_agent(node)
        report = tracer.deploy(_spec(node.name))
        packages = report.packages
        assert report == packages  # old callers compared the list
        assert list(report) == packages
        assert len(report) == 1
        assert report[0] is packages[0]
        assert packages[0] in report
        assert report != packages + packages

    def test_collect_report_quacks_like_int(self):
        report = CollectReport(records=42, batches=3)
        assert report == 42
        assert 42 == report
        assert report != 41
        assert report > 40 and report >= 42 and report < 43 and report <= 42
        assert int(report) == 42
        assert report + 1 == 43 and 1 + report == 43
        assert report - 2 == 40 and 50 - report == 8
        assert bool(report) and not bool(CollectReport())
        assert f"{report}" == "42" and f"{report:05d}" == "00042"
        assert str(report) == "42"
        assert ["x"] * 2 and list(range(report))[-1] == 41  # __index__
        assert hash(report) == hash(42)

    def test_deploy_report_completeness(self):
        report = DeployReport(packages=[], deploy_id=1)
        assert report.complete  # vacuously: nothing to ack
        report = DeployReport(packages=[object()], deploy_id=1)
        assert not report.complete
        report.acked_nodes.append("n")
        assert report.complete
        report.failed_nodes.append("m")
        assert not report.complete
