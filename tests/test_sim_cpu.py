"""CPUs: serialized service, queue bounds, gating, idle callbacks."""

from repro.sim.cpu import CPU, GatedCPU
from repro.sim.engine import Engine


class TestCPU:
    def test_jobs_serialize(self, engine):
        cpu = CPU(engine)
        done = []
        cpu.submit(100, lambda: done.append(engine.now))
        cpu.submit(50, lambda: done.append(engine.now))
        engine.run()
        assert done == [100, 150]

    def test_submit_front_preempts_queue_order(self, engine):
        cpu = CPU(engine)
        done = []
        cpu.submit(10, lambda: done.append("first"))
        cpu.submit(10, lambda: done.append("queued"))
        cpu.submit_front(10, lambda: done.append("front"))
        engine.run()
        # "first" is already in service; "front" jumps ahead of "queued".
        assert done == ["first", "front", "queued"]

    def test_queue_limit_drops(self, engine):
        cpu = CPU(engine, queue_limit=2)
        accepted = [cpu.submit(10) for _ in range(4)]
        # First job starts service immediately; two fit in the queue.
        assert accepted == [True, True, True, False]
        assert cpu.jobs_dropped == 1

    def test_busy_time_accounting(self, engine):
        cpu = CPU(engine)
        cpu.submit(300)
        cpu.submit(200)
        engine.run()
        assert cpu.busy_ns == 500
        assert cpu.jobs_completed == 2

    def test_utilization_fraction(self, engine):
        cpu = CPU(engine)
        cpu.submit(250)
        engine.schedule(1000, lambda: None)
        engine.run()
        assert abs(cpu.utilization() - 0.25) < 1e-9

    def test_on_idle_fires_when_queue_drains(self, engine):
        cpu = CPU(engine)
        idles = []
        cpu.on_idle = lambda: idles.append(engine.now)
        cpu.submit(10)
        cpu.submit(20)
        engine.run()
        assert idles == [30]

    def test_callback_submitting_more_work_defers_idle(self, engine):
        cpu = CPU(engine)
        idles = []
        cpu.on_idle = lambda: idles.append(engine.now)
        cpu.submit(10, lambda: cpu.submit(5))
        engine.run()
        assert idles == [15]


class TestGatedCPU:
    def test_paused_cpu_holds_jobs(self, engine):
        cpu = GatedCPU(engine, start_paused=True)
        done = []
        cpu.submit(10, lambda: done.append(engine.now))
        engine.run(until=100)
        assert done == []
        cpu.resume()
        engine.run()
        assert done == [110]

    def test_kick_fires_even_while_paused(self, engine):
        cpu = GatedCPU(engine, start_paused=True)
        kicks = []
        cpu.on_work_queued = lambda: kicks.append(engine.now)
        cpu.submit(10)
        assert kicks == [0]

    def test_pause_lets_current_job_finish(self, engine):
        cpu = GatedCPU(engine)
        done = []
        cpu.submit(100, lambda: done.append("a"))
        cpu.submit(100, lambda: done.append("b"))
        engine.schedule(50, cpu.pause)
        engine.run(until=500)
        assert done == ["a"]  # in-flight job completes, next one held
        cpu.resume()
        engine.run()
        assert done == ["a", "b"]

    def test_has_pending_work(self, engine):
        cpu = GatedCPU(engine, start_paused=True)
        assert not cpu.has_pending_work()
        cpu.submit(10)
        assert cpu.has_pending_work()

    def test_resume_idempotent(self, engine):
        cpu = GatedCPU(engine, start_paused=True)
        cpu.resume()
        cpu.resume()
        cpu.submit(10)
        engine.run()
        assert cpu.jobs_completed == 1
