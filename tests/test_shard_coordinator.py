"""Fleet-tier coordinator: boundary contract, round protocol, workers.

Covers the satellite requirements for the multiprocessing path: the
boundary batch pickles round-trip, a crashing worker surfaces as a
clean :class:`ShardWorkerError` (never a hang), and ``shards=1`` is
exactly the in-process coordinator -- no worker pool.
"""

from __future__ import annotations

import functools
import multiprocessing
import pickle

import pytest

from repro.experiments.macro_fleet import FleetConfig, build_fleet_shard, run_macro_fleet
from repro.sim.coordinator import (
    BoundaryBatch,
    BoundaryError,
    BoundaryMessage,
    BoundaryOutbox,
    ShardCoordinator,
    ShardEngine,
    ShardWorkerError,
)
from repro.sim.engine import SimulationError

SMALL = FleetConfig(nodes=60, racks=6, ticks=6)


class TestShardEngine:
    def test_runs_in_time_order_and_advances_to_horizon(self):
        engine = ShardEngine()
        log = []
        engine.schedule(30, log.append, "c")
        engine.schedule(10, log.append, "a")
        engine.schedule_at(20, log.append, "b")
        executed = engine.run_until(25)
        assert log == ["a", "b"]
        assert executed == 2
        assert engine.now == 25  # the round barrier
        assert engine.pending() == 1
        assert engine.next_time() == 30

    def test_schedule_validation(self):
        engine = ShardEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)
        engine.run_until(100)
        with pytest.raises(SimulationError):
            engine.schedule_at(50, lambda: None)

    def test_counts_into_global_counter(self):
        from repro.sim.engine import Engine

        before = Engine.global_events_executed()
        engine = ShardEngine()
        engine.schedule(1, lambda: None)
        engine.run_until(10)
        assert Engine.global_events_executed() == before + 1


class TestBoundaryContract:
    def test_lookahead_violation_raises(self):
        outbox = BoundaryOutbox(shard=0, lookahead_ns=1000)
        with pytest.raises(BoundaryError):
            outbox.send(deliver_ns=1500, dst_shard=1, dst_node=2, send_ns=600)

    def test_send_stamps_monotone_seq(self):
        outbox = BoundaryOutbox(shard=3, lookahead_ns=100)
        first = outbox.send(deliver_ns=200, dst_shard=0, dst_node=1, send_ns=0)
        second = outbox.send(deliver_ns=300, dst_shard=1, dst_node=2, send_ns=0)
        assert (first.seq, second.seq) == (0, 1)
        assert first.src_shard == 3
        assert outbox.drain() == [first, second]
        assert outbox.drain() == []
        assert outbox.sent_total == 2

    def test_boundary_batch_pickle_round_trip(self):
        messages = tuple(
            BoundaryMessage(
                deliver_ns=1_000_000 + i,
                src_shard=1,
                src_node=7,
                dst_shard=2,
                dst_node=9,
                kind=i % 4,
                trace_id=40 + i,
                payload=i * 1000,
                send_ns=i,
                seq=i,
            )
            for i in range(5)
        )
        batch = BoundaryBatch(round_index=3, src_shard=1, messages=messages)
        clone = pickle.loads(pickle.dumps(batch))
        assert clone == batch
        assert isinstance(clone, BoundaryBatch)
        assert all(isinstance(m, BoundaryMessage) for m in clone.messages)

    def test_build_callable_pickles(self):
        build = functools.partial(build_fleet_shard, SMALL)
        clone = pickle.loads(pickle.dumps(build))
        outbox = BoundaryOutbox(shard=0, lookahead_ns=SMALL.lookahead_ns)
        program = clone(0, 2, outbox)
        assert program.engine.next_time() is not None


class TestCoordinator:
    def test_validation(self):
        build = functools.partial(build_fleet_shard, SMALL)
        with pytest.raises(SimulationError):
            ShardCoordinator(0, build)
        with pytest.raises(SimulationError):
            ShardCoordinator(2, build, lookahead_ns=0)

    def test_single_shard_is_in_process_even_with_workers(self):
        """--shards 1 is exactly the in-process coordinator: the worker
        flag is ignored and no process is ever spawned."""
        spawned = []
        original = multiprocessing.get_context

        def tracking_get_context(method=None):
            spawned.append(method)
            return original(method)

        coordinator = ShardCoordinator(
            1, functools.partial(build_fleet_shard, SMALL), workers=True
        )
        assert coordinator.workers is False
        multiprocessing.get_context = tracking_get_context
        try:
            run = coordinator.run(SMALL.end_ns)
        finally:
            multiprocessing.get_context = original
        assert spawned == []  # never touched multiprocessing
        assert run.workers == 0
        assert run.events_executed > 0

    def test_worker_mode_matches_in_process(self):
        in_process = run_macro_fleet(SMALL, shards=3)
        on_workers = run_macro_fleet(
            SMALL, shards=3, workers=True, mp_start_method="fork"
        )
        assert on_workers.digest16 == in_process.digest16
        assert on_workers.metrics["workers"] == 3
        assert in_process.metrics["workers"] == 0
        assert (
            on_workers.metrics["boundary_messages"]
            == in_process.metrics["boundary_messages"]
        )
        assert on_workers.metrics["rounds"] == in_process.metrics["rounds"]

    @pytest.mark.slow
    def test_worker_mode_spawn_matches_in_process(self):
        """The default (spawn) start method: the build callable and all
        boundary traffic must survive a fresh interpreter."""
        in_process = run_macro_fleet(SMALL, shards=2)
        spawned = run_macro_fleet(SMALL, shards=2, workers=True)
        assert spawned.digest16 == in_process.digest16

    def test_worker_crash_surfaces_as_clean_error(self):
        config = SMALL._replace(crash_in_shard=1, crash_at_ns=2_000_000)
        with pytest.raises(ShardWorkerError) as excinfo:
            run_macro_fleet(config, shards=3, workers=True, mp_start_method="fork")
        # The failing shard and the original traceback are in the message.
        assert "shard 1" in str(excinfo.value)
        assert "injected fleet crash" in str(excinfo.value)

    def test_crash_in_process_propagates(self):
        config = SMALL._replace(crash_in_shard=0, crash_at_ns=2_000_000)
        with pytest.raises(RuntimeError, match="injected fleet crash"):
            run_macro_fleet(config, shards=3)

    def test_dead_worker_raises_not_hangs(self):
        """A worker that dies without a protocol reply must raise."""
        coordinator = ShardCoordinator(
            2,
            functools.partial(build_fleet_shard, SMALL),
            worker_timeout_s=5.0,
        )

        class DeadConn:
            def poll(self, timeout):
                return True

            def recv(self):
                raise EOFError

        with pytest.raises(ShardWorkerError, match="died without a reply"):
            coordinator._expect(DeadConn(), shard=0)

    def test_hung_worker_times_out(self):
        coordinator = ShardCoordinator(
            2,
            functools.partial(build_fleet_shard, SMALL),
            worker_timeout_s=0.01,
        )

        class HungConn:
            def poll(self, timeout):
                return False

        with pytest.raises(ShardWorkerError, match="hung"):
            coordinator._expect(HungConn(), shard=1)
