"""The credit2-style scheduler and the rate-limit mechanism."""

import pytest

from repro.sim.cpu import GatedCPU
from repro.sim.engine import Engine
from repro.virt.xen import CONTEXT_SWITCH_NS, CreditScheduler, VCPU, VCPUState


def _setup(engine, ratelimit_us=1000, with_hog=True):
    sched = CreditScheduler(engine, ratelimit_us=ratelimit_us)
    io_cpu = GatedCPU(engine, name="io", start_paused=True)
    io_vcpu = VCPU("io", io_cpu)
    sched.add_vcpu(io_vcpu)
    hog_vcpu = None
    if with_hog:
        hog_cpu = GatedCPU(engine, name="hog", start_paused=True)
        hog_vcpu = VCPU("hog", hog_cpu, always_busy=True)
        sched.add_vcpu(hog_vcpu)
    return sched, io_vcpu, hog_vcpu


class TestBasicScheduling:
    def test_hog_runs_when_alone(self, engine):
        sched, io, hog = _setup(engine)
        engine.run(until=1_000_000)
        assert sched.current is hog
        assert hog.state is VCPUState.RUNNING

    def test_idle_pcpu_runs_woken_vcpu_immediately(self, engine):
        sched, io, _ = _setup(engine, with_hog=False)
        done = []
        engine.schedule(1000, lambda: io.cpu.submit(500, lambda: done.append(engine.now)))
        engine.run(until=1_000_000)
        # wake + context switch + job service
        assert done and done[0] == 1000 + CONTEXT_SWITCH_NS + 500

    def test_vcpu_blocks_when_out_of_work(self, engine):
        sched, io, hog = _setup(engine)
        engine.schedule(5_000_000, lambda: io.cpu.submit(500))
        engine.run(until=20_000_000)
        assert io.state is VCPUState.BLOCKED
        assert sched.current is hog


class TestRateLimit:
    def _measure_wake_delay(self, engine, ratelimit_us, wake_at_ns):
        sched, io, hog = _setup(engine, ratelimit_us=ratelimit_us)
        done = []
        engine.schedule(wake_at_ns, lambda: io.cpu.submit(100, lambda: done.append(engine.now)))
        engine.run(until=wake_at_ns + 30_000_000)
        assert done
        return done[0] - wake_at_ns

    def test_ratelimit_defers_preemption(self, engine):
        # The hog (re)started around t=0; waking at 200us means ~800us wait.
        delay = self._measure_wake_delay(engine, ratelimit_us=1000, wake_at_ns=200_000)
        assert 700_000 < delay < 900_000

    def test_wake_after_ratelimit_preempts_quickly(self, engine):
        delay = self._measure_wake_delay(engine, ratelimit_us=1000, wake_at_ns=5_000_000)
        assert delay < 20_000

    def test_ratelimit_zero_preempts_immediately(self, engine):
        delay = self._measure_wake_delay(engine, ratelimit_us=0, wake_at_ns=200_000)
        assert delay < 20_000

    def test_deferral_counted(self, engine):
        sched, io, hog = _setup(engine, ratelimit_us=1000)
        engine.schedule(100_000, lambda: io.cpu.submit(100))
        engine.run(until=5_000_000)
        assert sched.ratelimit_deferrals >= 1

    def test_repeated_wakes_always_served(self, engine):
        sched, io, hog = _setup(engine, ratelimit_us=1000)
        done = []
        for i in range(50):
            engine.schedule(
                1_000_000 + i * 777_000,
                lambda: io.cpu.submit(200, lambda: done.append(engine.now)),
            )
        engine.run(until=60_000_000)
        assert len(done) == 50  # none parked indefinitely

    def test_no_parking_longer_than_ratelimit_plus_slack(self, engine):
        sched, io, hog = _setup(engine, ratelimit_us=1000)
        delays = []
        for i in range(200):
            at = 500_000 + i * 613_000
            def make(at=at):
                def job():
                    delays.append(engine.now - at)
                engine.schedule(at, lambda: io.cpu.submit(100, job))
            make()
        engine.run(until=200_000_000)
        assert len(delays) == 200
        assert max(delays) < 1_200_000  # bounded by the rate limit + switches


class TestFairness:
    def test_hog_gets_remaining_cpu(self, engine):
        sched, io, hog = _setup(engine, ratelimit_us=0)

        def periodic(n):
            if n <= 0:
                return
            io.cpu.submit(50_000)  # 50us of work
            engine.schedule(100_000, periodic, n - 1)

        periodic(100)  # 50% duty cycle for 10ms
        engine.run(until=20_000_000)
        assert io.total_run_ns > 3_000_000
        assert hog.total_run_ns > 8_000_000  # hog got the rest

    def test_context_switches_counted(self, engine):
        sched, io, hog = _setup(engine, ratelimit_us=0)
        for i in range(5):
            engine.schedule(1_000_000 * (i + 1), lambda: io.cpu.submit(100))
        engine.run(until=10_000_000)
        assert sched.context_switches >= 10  # in and out per wake


class TestSchedulerEdgeCases:
    def test_two_io_vcpus_share(self, engine):
        sched = CreditScheduler(engine, ratelimit_us=0)
        vcpus = []
        for name in ("a", "b"):
            cpu = GatedCPU(engine, name=name, start_paused=True)
            vcpu = VCPU(name, cpu)
            sched.add_vcpu(vcpu)
            vcpus.append(vcpu)
        done = []
        vcpus[0].cpu.submit(1000, lambda: done.append("a"))
        vcpus[1].cpu.submit(1000, lambda: done.append("b"))
        engine.run(until=1_000_000)
        assert sorted(done) == ["a", "b"]

    def test_wake_during_context_switch_not_lost(self, engine):
        sched, io, hog = _setup(engine, ratelimit_us=0)
        done = []
        # Fire a wake exactly one event after a block boundary by
        # queueing work in rapid succession.
        def burst():
            io.cpu.submit(100, lambda: done.append(1))
            engine.schedule(150, lambda: io.cpu.submit(100, lambda: done.append(2)))

        engine.schedule(2_000_000, burst)
        engine.run(until=40_000_000)
        assert done == [1, 2]
