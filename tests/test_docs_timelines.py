"""docs/TIMELINES.md is a contract: the documented tables must match the code.

Same marker-block pattern as the STREAMING.md / OBSERVABILITY.md
contract tests:

* the ``group-row`` table mirrors the tuple layout
  ``TraceDB.trace_group_rows`` actually emits;
* the ``assembler-counters`` table mirrors the counters a
  ``SpanAssembler`` exposes;
* the ``tracing-metrics`` table lists exactly the contract's
  ``tracing``-stage metrics.
"""

import re
from pathlib import Path

from repro.core.records import TraceRecord
from repro.core.tracedb import TraceDB
from repro.obs import contract
from repro.tracing.reconstruct import SpanAssembler

REPO = Path(__file__).resolve().parent.parent
DOC_PATH = REPO / "docs" / "TIMELINES.md"


def _section(name: str) -> str:
    text = DOC_PATH.read_text()
    match = re.search(
        rf"<!-- {name}:begin -->\n(.*?)<!-- {name}:end -->", text, re.DOTALL
    )
    assert match, f"docs/TIMELINES.md is missing the {name} marker block"
    return match.group(1)


def _table_rows(section: str):
    """Yield the cell lists of every data row in a markdown table."""
    for line in section.splitlines():
        line = line.strip()
        if not line.startswith("|") or set(line) <= {"|", "-", " "}:
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if cells and cells[0] in ("position", "counter", "metric", "field"):
            continue  # header row
        yield cells


def test_group_row_table_matches_kernel_output():
    documented = [
        (int(cells[0]), cells[1].strip("`"))
        for cells in _table_rows(_section("group-row"))
    ]
    assert [field for _, field in documented] == [
        "timestamp_ns", "seq", "node", "label", "cpu", "packet_len",
    ]
    assert [position for position, _ in documented] == list(range(6))
    # Pin every documented position against a live kernel row.
    db = TraceDB()
    db.insert(
        "tx",
        "send",
        TraceRecord(
            trace_id=5, tracepoint_id=0, timestamp_ns=123, packet_len=77, cpu=3
        ),
    )
    ((trace_id, rows),) = db.trace_group_rows([5])
    assert trace_id == 5
    (row,) = rows
    assert row[0] == 123  # timestamp_ns
    assert row[1] == 0  # seq: first row of the trace
    assert row[2] == "tx"  # node
    assert row[3] == "send"  # label
    assert row[4] == 3  # cpu
    assert row[5] == 77  # packet_len


def test_assembler_counters_table_matches_attributes():
    documented = [
        cells[0].strip("`") for cells in _table_rows(_section("assembler-counters"))
    ]
    assert documented == [
        "trees_built",
        "spans_built",
        "orphan_records",
        "forest_rebuilds",
        "forest_cache_hits",
        "groups_assembled",
    ]
    assembler = SpanAssembler(TraceDB())
    for name in documented:
        assert getattr(assembler, name) == 0  # exists, starts at zero


def test_tracing_metrics_table_matches_contract_stage():
    documented = {
        cells[0].strip("`") for cells in _table_rows(_section("tracing-metrics"))
    }
    actual = {
        spec.name
        for spec in contract.ALL_METRICS
        if spec.stage == contract.STAGE_TRACING
    }
    assert documented == actual
