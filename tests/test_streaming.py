"""Unit tests for the streaming query layer (docs/STREAMING.md).

Window primitives, the percentile sketch and its shared quantile
estimator, the watermark protocol, and the fault semantics the tap
inherits from the resequencer: duplicates never double-count, late
data within the allowed lateness lands in its proper window, gap
notices surface as ``vnt_stream_late_or_gap_total{kind="gap"}``.
"""

from bisect import bisect_left

import pytest

from repro.core.collector import RawDataCollector
from repro.core.records import TraceRecord
from repro.core.tracedb import TraceDB
from repro.obs import MetricsRegistry
from repro.obs.registry import MetricError, estimate_quantile
from repro.sim.engine import Engine
from repro.streaming import (
    LATENCY_SKETCH_BUCKETS_NS,
    StreamSketch,
    StreamingAggregator,
    StreamingConfig,
    StreamingError,
    TopKSlowest,
    window_indices,
)

LABELS = {0: "send", 1: "recv"}
CHAIN = ("send", "recv")


def _config(**kwargs):
    kwargs.setdefault("chain", CHAIN)
    kwargs.setdefault("window_ns", 100)
    return StreamingConfig(**kwargs)


def _records(label_ts_tid, plen=100):
    """[(tracepoint_id, ts, tid), ...] -> TraceRecord list."""
    return [
        TraceRecord(tid, tp, ts, plen, 0) for tp, ts, tid in label_ts_tid
    ]


class TestConfigValidation:
    def test_defaults_validate(self):
        _config().validate()

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"chain": ("send",)}, "at least two"),
            ({"chain": ("send", "send")}, "unique"),
            ({"window_ns": 0}, "window_ns"),
            ({"slide_ns": 30}, "divide"),
            ({"slide_ns": 200}, "divide"),
            ({"allowed_lateness_ns": -1}, "lateness"),
            ({"top_k": 0}, "top_k"),
            ({"emit_interval_ns": 0}, "emit_interval_ns"),
        ],
    )
    def test_rejects_bad_config(self, kwargs, message):
        with pytest.raises(StreamingError, match=message):
            _config(**kwargs).validate()


class TestWindowIndices:
    def test_tumbling_covers_each_timestamp_once(self):
        assert list(window_indices(250, 100, 100)) == [2]
        assert list(window_indices(0, 100, 100)) == [0]
        assert list(window_indices(99, 100, 100)) == [0]
        assert list(window_indices(100, 100, 100)) == [1]

    def test_negative_timestamps_floor_divide(self):
        # Clock de-skewing can push aligned timestamps below zero; they
        # must still map to a well-defined window.
        assert list(window_indices(-1, 100, 100)) == [-1]
        assert list(window_indices(-100, 100, 100)) == [-1]
        assert list(window_indices(-101, 100, 100)) == [-2]

    def test_sliding_covers_every_overlapping_window(self):
        # Window i spans [i*50, i*50 + 100).
        assert list(window_indices(120, 100, 50)) == [1, 2]
        assert list(window_indices(100, 100, 50)) == [1, 2]
        assert list(window_indices(99, 100, 50)) == [0, 1]

    def test_brute_force_agreement(self):
        window, slide = 90, 30
        for ts in range(-200, 200):
            expected = [
                i
                for i in range(-10, 10)
                if i * slide <= ts < i * slide + window
            ]
            assert list(window_indices(ts, window, slide)) == expected, ts


class TestTopKSlowest:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="k >= 1"):
            TopKSlowest(0)

    def test_under_capacity_never_evicts(self):
        topk = TopKSlowest(3)
        assert topk.push(10, 1) is False
        assert topk.push(30, 2) is False
        assert topk.evictions == 0
        assert topk.items() == [(2, 30), (1, 10)]

    def test_full_heap_keeps_largest_and_counts_evictions(self):
        topk = TopKSlowest(2)
        for latency, tid in ((10, 1), (30, 2), (20, 3), (5, 4)):
            topk.push(latency, tid)
        assert topk.items() == [(2, 30), (3, 20)]
        assert topk.evictions == 2  # the 10 got displaced, the 5 bounced

    def test_equal_latency_smaller_trace_id_wins(self):
        topk = TopKSlowest(1)
        topk.push(50, 7)
        topk.push(50, 3)
        assert topk.items() == [(3, 50)]
        topk2 = TopKSlowest(1)
        topk2.push(50, 3)
        topk2.push(50, 7)
        assert topk2.items() == [(3, 50)]  # arrival order is irrelevant

    def test_extend_matches_per_entry_pushes(self):
        entries = [(lat, -tid) for tid, lat in enumerate(
            (40, 10, 90, 40, 70, 5, 90, 60, 20, 55), start=1)]
        for split in range(len(entries) + 1):
            one = TopKSlowest(4)
            for latency, neg in entries:
                one.push(latency, -neg)
            batched = TopKSlowest(4)
            batched.extend(entries[:split])
            batched.extend(entries[split:])
            assert batched.items() == one.items()
            assert batched.evictions == one.evictions == len(entries) - 4

    def test_extend_lazy_iterable_with_count(self):
        topk = TopKSlowest(2)
        evicted = topk.extend(zip((10, 30, 20), (-1, -2, -3)), 3)
        assert evicted == 1
        assert topk.items() == [(2, 30), (3, 20)]


class TestStreamSketch:
    def test_value_lands_at_or_below_upper_edge(self):
        sketch = StreamSketch((10, 100))
        for value in (1, 10):  # both <= 10: first bucket
            sketch.observe(value)
        sketch.observe(11)  # second bucket
        sketch.observe(101)  # +Inf bucket
        assert sketch.bucket_counts() == (2, 1, 1)
        assert sketch.count == 4

    def test_observe_sorted_matches_observe(self):
        values = sorted((500, 1_000, 1_001, 3_000, 250_000, 400_000_000))
        one = StreamSketch()
        for value in values:
            one.observe(value)
        bulk = StreamSketch()
        bulk.observe_sorted(values)
        assert bulk.bucket_counts() == one.bucket_counts()
        assert bulk.count == one.count

    def test_merge_is_exact_vector_addition(self):
        left, right, joint = StreamSketch(), StreamSketch(), StreamSketch()
        for value in (2_000, 90_000, 2_000_000):
            left.observe(value)
            joint.observe(value)
        for value in (2_500, 500_000_000):
            right.observe(value)
            joint.observe(value)
        left.merge(right)
        assert left.bucket_counts() == joint.bucket_counts()
        assert left.count == joint.count
        # Exactness: quantiles of the merge == quantiles of one sketch
        # fed every value (the run-level merge relies on this).
        for q in (0.0, 0.5, 0.9, 1.0):
            assert left.quantile(q) == joint.quantile(q)

    def test_mismatched_bounds_refuse_to_merge(self):
        with pytest.raises(ValueError, match="different bounds"):
            StreamSketch((10,)).merge(StreamSketch((20,)))

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increase"):
            StreamSketch((10, 10))


class TestEstimateQuantile:
    """Satellite: the shared estimator's documented error bound --
    within the width of the bucket holding the true quantile."""

    BOUNDS = LATENCY_SKETCH_BUCKETS_NS

    def test_empty_histogram_is_none(self):
        assert estimate_quantile(self.BOUNDS, [0] * (len(self.BOUNDS) + 1), 0.5) is None

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(MetricError, match="quantile"):
            estimate_quantile(self.BOUNDS, [1] * (len(self.BOUNDS) + 1), 1.5)

    def test_count_arity_enforced(self):
        with pytest.raises(MetricError, match="bucket counts"):
            estimate_quantile(self.BOUNDS, [1, 2], 0.5)

    def test_inf_bucket_clamps_to_highest_finite_bound(self):
        counts = [0] * len(self.BOUNDS) + [5]
        assert estimate_quantile(self.BOUNDS, counts, 0.99) == float(self.BOUNDS[-1])

    def test_error_bounded_by_bucket_width(self):
        values = [1_500 + 137 * i for i in range(400)]  # spans several buckets
        sketch = StreamSketch(self.BOUNDS)
        for value in values:
            sketch.observe(value)
        ordered = sorted(values)
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            rank = max(0, min(len(ordered) - 1, int(q * len(ordered)) - 1))
            true = ordered[rank]
            i = bisect_left(self.BOUNDS, true)
            lower = self.BOUNDS[i - 1] if i else 0
            width = self.BOUNDS[i] - lower
            estimate = sketch.quantile(q)
            assert abs(estimate - true) <= width, (q, true, estimate)


class TestWatermark:
    def _agg(self, **kwargs):
        agg = StreamingAggregator(_config(**kwargs))
        agg.expect_nodes(["a", "b"])
        return agg

    # Record sets below populate windows [0,100), [100,200), [200,300).
    A = [(0, 10, 1), (0, 150, 2), (0, 260, 3)]
    B = [(1, 30, 1), (1, 170, 2), (1, 280, 3)]

    def test_waits_for_every_expected_node(self):
        agg = self._agg()
        agg.observe_batch("a", _records(self.A), labels=LABELS)
        assert agg.watermark_ns is None
        assert agg.windows_closed == 0
        agg.observe_batch("b", _records(self.B), labels=LABELS)
        assert agg.watermark_ns == 260  # min over nodes, zero lateness
        # Windows [0,100) and [100,200) are closed; [200,300) stays open.
        assert agg.windows_closed == 2
        assert agg.open_windows() == 1

    def test_watermark_is_monotone(self):
        agg = self._agg()
        agg.observe_batch("a", _records([(0, 260, 1)]), labels=LABELS)
        agg.observe_batch("b", _records([(1, 280, 1)]), labels=LABELS)
        assert agg.watermark_ns == 260
        # An older (but not late) record cannot regress the watermark.
        agg.observe_batch("a", _records([(0, 250, 2)]), labels=LABELS)
        assert agg.watermark_ns == 260

    def test_late_record_dropped_and_counted(self):
        agg = self._agg()
        agg.observe_batch("a", _records(self.A), labels=LABELS)
        agg.observe_batch("b", _records(self.B), labels=LABELS)
        assert agg.windows_closed == 2
        agg.observe_batch("a", _records([(0, 40, 9)]), labels=LABELS)
        assert agg.late_records == 1
        # The drop is total: the closed window's throughput is frozen.
        frame = agg.frames[0]
        assert frame.records == 2  # one send + one recv, not the late one

    def test_allowed_lateness_keeps_windows_open(self):
        prompt = self._agg()
        prompt.observe_batch("a", _records(self.A), labels=LABELS)
        prompt.observe_batch("b", _records(self.B), labels=LABELS)
        # Without lateness ts=155's window [100,200) has already closed...
        prompt.observe_batch("a", _records([(0, 155, 9)]), labels=LABELS)
        assert prompt.late_records == 1

        patient = self._agg(allowed_lateness_ns=100)
        patient.observe_batch("a", _records(self.A), labels=LABELS)
        patient.observe_batch("b", _records(self.B), labels=LABELS)
        assert patient.watermark_ns == 160  # 260 - lateness
        assert patient.windows_closed == 1  # only [0,100) closed
        # ...with 100 ns of allowed lateness it lands in its window.
        patient.observe_batch("a", _records([(0, 155, 9)]), labels=LABELS)
        assert patient.late_records == 0
        patient.close_all()
        (window1,) = [f for f in patient.frames if f.index == 1]
        assert window1.throughput["send"]["records"] == 2

    def test_standalone_without_expected_nodes_only_closes_at_end(self):
        agg = StreamingAggregator(_config())
        agg.observe_batch("a", _records([(0, 10, 1), (0, 950, 2)]), labels=LABELS)
        assert agg.windows_closed == 0
        agg.close_all()
        assert agg.windows_closed == 2
        assert agg.open_windows() == 0


def _attached(window_ns=100, registry=None):
    engine = Engine()
    db = TraceDB()
    collector = RawDataCollector(engine, db, registry=registry)
    collector.register_labels(LABELS)
    agg = StreamingAggregator(
        _config(window_ns=window_ns), registry=registry
    ).attach(collector)
    return collector, agg


def _blob(label_ts_tid, plen=100):
    return b"".join(r.pack() for r in _records(label_ts_tid, plen))


class TestResequencerSemantics:
    """The tap sits downstream of the dedup/resequencing pipeline."""

    def test_duplicate_shipment_never_double_counts(self):
        collector, agg = _attached()
        blob = _blob([(0, 10, 1), (0, 20, 2)])
        assert collector.receive_batch("a", blob, seq=1) is True
        assert collector.receive_batch("a", blob, seq=1) is False  # dup
        assert agg.records == 2
        agg.close_all()
        assert agg.frames[0].throughput["send"]["records"] == 2

    def test_reordered_shipments_apply_in_sequence(self):
        collector, agg = _attached()
        collector.receive_batch("a", _blob([(0, 50, 2)]), seq=2)
        assert agg.records == 0  # held behind the gap
        collector.receive_batch("a", _blob([(0, 10, 1)]), seq=1)
        assert agg.records == 2
        agg.close_all()
        assert agg.summary()["late_records"] == 0

    def test_gap_notice_increments_kind_gap(self):
        registry = MetricsRegistry()
        collector, agg = _attached(registry=registry)
        collector.receive_batch("a", _blob([(0, 10, 1)]), seq=1)
        collector.skip_shipment("a", 2)
        collector.receive_batch("a", _blob([(0, 30, 3)]), seq=3)
        assert agg.gap_notices == 1
        assert agg.records == 2  # seq 3 released past the gap
        metric = registry.get("vnt_stream_late_or_gap_total")
        assert metric.value(("gap",)) == 1
        assert metric.value(("late",)) == 0

    def test_skip_of_an_applied_shipment_is_not_a_gap(self):
        collector, agg = _attached()
        collector.receive_batch("a", _blob([(0, 10, 1)]), seq=1)
        collector.skip_shipment("a", 1)  # it did arrive: no notice
        assert agg.gap_notices == 0


class TestFirstOccurrence:
    def test_duplicate_trace_id_keeps_first_arrival_timestamp(self):
        agg = StreamingAggregator(_config(window_ns=1_000))
        agg.observe_batch(
            "a", _records([(0, 10, 1), (0, 50, 1), (1, 100, 1)]), labels=LABELS
        )
        agg.close_all()
        hop = agg.summary()["hops"]["send->recv"]
        assert hop["count"] == 1
        assert hop["sum_ns"] == 90  # 100 - 10, never 100 - 50

    def test_non_monotone_slice_takes_slow_path_correctly(self):
        agg = StreamingAggregator(_config(window_ns=1_000))
        agg.observe_batch(
            "a",
            _records([(0, 50, 2), (0, 10, 1), (0, 30, 3)]),  # out of order
            labels=LABELS,
        )
        agg.observe_batch(
            "b", _records([(1, 110, 1), (1, 150, 2), (1, 130, 3)]), labels=LABELS
        )
        agg.close_all()
        hop = agg.summary()["hops"]["send->recv"]
        assert hop["count"] == 3
        assert hop["sum_ns"] == (110 - 10) + (150 - 50) + (130 - 30)

    def test_non_ascending_ids_fall_back_to_dict_mode(self):
        agg = StreamingAggregator(_config(window_ns=1_000))
        agg.observe_batch("a", _records([(0, 10, 5), (0, 20, 3)]), labels=LABELS)
        agg.observe_batch("b", _records([(1, 40, 3), (1, 60, 5)]), labels=LABELS)
        agg.close_all()
        hop = agg.summary()["hops"]["send->recv"]
        assert hop["count"] == 2
        assert hop["sum_ns"] == (40 - 20) + (60 - 10)

    def test_zero_trace_id_is_untraced_filler(self):
        agg = StreamingAggregator(_config(window_ns=1_000))
        agg.observe_batch(
            "a", _records([(0, 10, 1), (0, 20, 0), (1, 90, 1)]), labels=LABELS
        )
        agg.close_all()
        summary = agg.summary()
        assert summary["throughput"]["send"]["packets"] == 2  # counted there
        assert summary["hops"]["send->recv"]["count"] == 1  # never joined


class TestAggregatorUsage:
    def test_attach_to_second_collector_rejected(self):
        collector, agg = _attached()
        engine, db = Engine(), TraceDB()
        other = RawDataCollector(engine, db)
        with pytest.raises(StreamingError, match="already attached"):
            agg.attach(other)

    def test_sliding_summary_refused(self):
        agg = StreamingAggregator(_config(window_ns=100, slide_ns=50))
        agg.observe_batch("a", _records([(0, 10, 1)]), labels=LABELS)
        agg.close_all()
        assert agg.frames  # frames still come out
        with pytest.raises(StreamingError, match="tumbling"):
            agg.summary()

    def test_sliding_record_lands_in_every_covering_window(self):
        agg = StreamingAggregator(_config(window_ns=100, slide_ns=50))
        agg.observe_batch("a", _records([(0, 120, 1)]), labels=LABELS)
        agg.close_all()
        assert sorted(frame.index for frame in agg.frames) == [1, 2]

    def test_emitter_snapshots_are_virtual_time_only(self):
        engine = Engine()
        db = TraceDB()
        collector = RawDataCollector(engine, db)
        collector.register_labels(LABELS)
        agg = StreamingAggregator(_config(window_ns=100)).attach(collector)
        agg.start_emitter(engine, interval_ns=100)
        blob = _blob([(0, 10, 1), (1, 60, 1)])
        engine.schedule(50, lambda: collector.receive_batch("a", blob, seq=1))
        engine.run(until=350)
        agg.close_all()
        assert [snap["t_ns"] for snap in agg.snapshots] == [100, 200, 300]
        assert agg.snapshots[-1]["records"] == 2
        assert set(agg.snapshots[0]) == {
            "t_ns", "watermark_ns", "open_windows",
            "windows_closed", "records", "late_or_gaps",
        }

    def test_repr_smoke(self):
        assert "StreamingAggregator" in repr(StreamingAggregator(_config()))
