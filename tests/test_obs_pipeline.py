"""The observability layer wired into the real pipeline.

Acceptance properties from the metrics-contract work:

* after the quickstart scenario, every instrumented stage exports
  nonzero metrics through every exporter;
* ``docs/OBSERVABILITY.md`` lists every exported metric name -- this
  file diffs the doc against :data:`repro.obs.contract.ALL_METRICS`
  so documentation and code cannot drift.
"""

import json
import re
from pathlib import Path

import pytest

from repro.core import FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.net.packet import IPPROTO_UDP
from repro.obs import contract
from repro.obs.export import prometheus_text, snapshot_dict
from repro.obs.scenario import run_quickstart_scenario

DOC_PATH = Path(__file__).resolve().parent.parent / "docs" / "OBSERVABILITY.md"


@pytest.fixture(scope="module")
def scenario():
    """One short quickstart run shared by every assertion below."""
    return run_quickstart_scenario(seed=42, duration_ns=250_000_000)


class TestQuickstartScenario:
    def test_traffic_actually_flowed(self, scenario):
        assert scenario.client.sent > 0
        assert scenario.client.received > 0
        assert scenario.tracer.db.rows_inserted > 0

    def test_whole_contract_registered(self, scenario):
        # The quickstart deploys no service graph, so it exports the
        # core contract; the RPC scenario tests assert ALL_METRICS.
        assert scenario.registry.names() == sorted(
            spec.name for spec in contract.CORE_METRICS
        )

    def test_every_stage_emits_nonzero(self, scenario):
        by_stage = {}
        for metric in scenario.registry.metrics():
            by_stage.setdefault(metric.spec.stage, 0.0)
            by_stage[metric.spec.stage] += abs(metric.total())
        assert set(by_stage) == set(contract.CORE_STAGES)
        zero_stages = [stage for stage, total in by_stage.items() if total == 0]
        assert zero_stages == []

    def test_records_conserved_ring_to_collector(self, scenario):
        reg = scenario.registry
        appended = reg.total("vnt_ring_appended_total")
        assert appended > 0
        assert reg.total("vnt_ring_dropped_total") == 0
        assert reg.total("vnt_agent_records_forwarded_total") == appended
        assert reg.total("vnt_collector_records_received_total") == appended
        assert reg.total("vnt_collector_unknown_tracepoint_records_total") == 0

    def test_skew_gauge_tracks_configured_offset(self, scenario):
        # host2 boots +1.5 ms ahead; the correction to ADD is ~-1.5 ms.
        skew = scenario.registry.get("vnt_clocksync_skew_estimate_ns")
        estimate = skew.value(("host2",))
        assert -1_600_000 < estimate < -1_400_000
        residual = scenario.registry.get("vnt_clocksync_residual_error_ns")
        assert 0 < residual.value(("host2",)) < 1_000_000

    def test_ebpf_split_by_dispatch_mode(self, scenario):
        runs = scenario.registry.get("vnt_ebpf_runs_total")
        # Default config JITs tracing scripts; both children exist.
        assert runs.value(("jit",)) > 0
        assert runs.value(("interpreter",)) == 0
        assert scenario.registry.total("vnt_ebpf_programs_loaded") == 8

    def test_sampler_rows_cover_the_run(self, scenario):
        rows = scenario.sampler.rows
        assert len(rows) >= 3
        assert rows[-1]["t_ns"] == scenario.engine.now
        # The derived ingest-rate gauge fired at least once mid-run.
        peak = max(
            row["values"].get("vnt_collector_ingest_rate_per_s", 0.0)
            for row in rows
        )
        assert peak > 0

    def test_json_exporter_nonzero_per_stage(self, scenario):
        snap = snapshot_dict(scenario.registry, t_ns=scenario.engine.now)
        assert snap["t_ns"] == scenario.engine.now
        stage_totals = {}
        for name, entry in snap["metrics"].items():
            total = sum(
                value.get("value", value.get("count", 0.0)) or 0.0
                for value in entry["values"]
            )
            stage_totals.setdefault(entry["stage"], 0.0)
            stage_totals[entry["stage"]] += abs(total)
        assert all(total > 0 for total in stage_totals.values())

    def test_prometheus_exporter_nonzero_per_stage(self, scenario):
        text = prometheus_text(scenario.registry)
        specs_by_name = {spec.name: spec for spec in contract.CORE_METRICS}
        nonzero_stages = set()
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            base = name_part.split("{", 1)[0]
            for suffix in ("_bucket", "_sum", "_count"):
                if base not in specs_by_name and base.endswith(suffix):
                    base = base[: -len(suffix)]
            if base in specs_by_name and float(value) != 0:
                nonzero_stages.add(specs_by_name[base].stage)
        assert nonzero_stages == set(contract.CORE_STAGES)

    def test_pipeline_health_report_renders(self, scenario):
        report = scenario.tracer.pipeline_health()
        for spec in contract.CORE_METRICS:
            assert spec.name in report
        assert "stats series:" in report


class TestDocContract:
    def test_doc_lists_every_exported_metric(self):
        doc = DOC_PATH.read_text()
        documented = set(re.findall(r"`(vnt_[a-z0-9_]+)`", doc))
        exported = {spec.name for spec in contract.ALL_METRICS}
        missing_from_doc = exported - documented
        assert not missing_from_doc, (
            f"metrics exported but not documented in {DOC_PATH.name}: "
            f"{sorted(missing_from_doc)}"
        )
        stale_in_doc = documented - exported
        assert not stale_in_doc, (
            f"metrics documented in {DOC_PATH.name} but not in the contract: "
            f"{sorted(stale_in_doc)}"
        )

    def test_doc_names_every_stage(self):
        doc = DOC_PATH.read_text()
        for stage in contract.ALL_STAGES:
            assert f"`{stage}`" in doc


class TestMonotoneAcrossRedeploy:
    def _spec(self, node, hook, label):
        return TracingSpec(
            rule=FilterRule(dst_port=9000, protocol=IPPROTO_UDP),
            tracepoints=[TracepointSpec(node=node.name, hook=hook, label=label)],
        )

    def test_fires_and_loads_survive_teardown(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.deploy(self._spec(node_a, "kprobe:udp_send_skb", "send"))
        node_b.bind_udp(ip_b, 9000)
        client = node_a.bind_udp(ip_a, 9001)
        for i in range(5):
            engine.schedule(1_000_000 + i * 1_000_000, client.sendto, ip_b, 9000,
                            b"x" * 32, "app", i)
        engine.run(until=50_000_000)

        fires = tracer.obs.get("vnt_agent_probe_fires_total")
        before = fires.value((node_a.name, "send"))
        assert before == 5
        assert tracer.obs.total("vnt_ebpf_programs_loaded") == 1

        # Runtime reconfiguration: the old script is torn down, but its
        # counters must not go backwards (Prometheus semantics).
        tracer.deploy(self._spec(node_a, "kprobe:ip_output", "ip-out"))
        engine.run(until=100_000_000)
        assert fires.value((node_a.name, "send")) == before
        assert tracer.obs.total("vnt_ebpf_programs_loaded") == 2


class TestStatsCLI:
    def test_table_output_lists_every_metric(self, capsys):
        from repro.cli import main

        assert main(["stats", "--duration-ms", "150"]) == 0
        out = capsys.readouterr().out
        for spec in contract.CORE_METRICS:
            assert spec.name in out

    def test_json_output_parses(self, capsys):
        from repro.cli import main

        assert main(["stats", "--duration-ms", "150", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["metrics"]) == {spec.name for spec in contract.CORE_METRICS}
