"""The rule->eBPF compiler: every emitted program verifies; filters
match exactly what a reference matcher matches; IDs extract correctly."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compiler import compile_script
from repro.core.config import (
    ActionSpec,
    FilterRule,
    ID_MODE_NONE,
    ID_MODE_TCP_OPTION,
    ID_MODE_UDP_TRAILER,
    TracepointSpec,
)
from repro.core.records import TraceRecord
from repro.ebpf.context import build_skb_context
from repro.ebpf.maps import PerCPUArrayMap, PerfEventArray
from repro.ebpf.vm import ExecutionEnv
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import IPPROTO_TCP, IPPROTO_UDP, make_tcp_packet, make_udp_packet
from repro.net.traceid import TraceIDEngine
from repro.sim.rng import SeededRNG

MAC_A, MAC_B = MACAddress.from_index(1), MACAddress.from_index(2)

ips = st.sampled_from([IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"), None])
port_opts = st.sampled_from([1000, 2000, None])
protocols = st.sampled_from([IPPROTO_UDP, IPPROTO_TCP, None])

rules = st.builds(
    FilterRule,
    src_ip=ips,
    dst_ip=ips,
    src_port=port_opts,
    dst_port=port_opts,
    protocol=protocols,
)


def _reference_match(rule: FilterRule, packet) -> bool:
    ip, l4 = packet.ip, packet.udp or packet.tcp
    if rule.src_ip is not None and ip.src != rule.src_ip:
        return False
    if rule.dst_ip is not None and ip.dst != rule.dst_ip:
        return False
    if rule.src_port is not None and l4.src_port != rule.src_port:
        return False
    if rule.dst_port is not None and l4.dst_port != rule.dst_port:
        return False
    if rule.protocol is not None and ip.protocol != rule.protocol:
        return False
    return True


def _build(rule, id_mode=ID_MODE_UDP_TRAILER, action=None, num_cpus=2):
    perf = PerfEventArray(num_cpus=num_cpus)
    counter = PerCPUArrayMap(8, 1, num_cpus)
    tracepoint = TracepointSpec(node="n", hook="dev:x", id_mode=id_mode)
    program, maps = compile_script(
        rule, tracepoint, action or ActionSpec(record=True, count=True),
        perf_map=perf, counter_map=counter,
    )
    program.load()  # verifier must accept
    env = ExecutionEnv(maps=maps)
    return program, env, perf, counter, tracepoint


def _run_on(program, env, packet, cpu=0):
    ctx, data = build_skb_context(packet, cpu=cpu)
    env.cpu = cpu
    return program.run(env, ctx, data)


class TestCompilerVsReference:
    @settings(max_examples=60, deadline=None)
    @given(
        rule=rules,
        src_ip=st.sampled_from(["10.0.0.1", "10.0.0.2"]),
        dst_ip=st.sampled_from(["10.0.0.1", "10.0.0.2"]),
        src_port=st.sampled_from([1000, 2000]),
        dst_port=st.sampled_from([1000, 2000]),
        is_tcp=st.booleans(),
    )
    def test_filter_equivalence(self, rule, src_ip, dst_ip, src_port, dst_port, is_tcp):
        maker = make_tcp_packet if is_tcp else make_udp_packet
        packet = maker(
            MAC_A, MAC_B, IPv4Address(src_ip), IPv4Address(dst_ip),
            src_port, dst_port, b"payload",
        )
        program, env, perf, counter, _tp = _build(rule, id_mode=ID_MODE_NONE)
        result = _run_on(program, env, packet)
        assert bool(result.r0) == _reference_match(rule, packet)

    @settings(max_examples=30, deadline=None)
    @given(rule=rules, id_mode=st.sampled_from(
        [ID_MODE_NONE, ID_MODE_UDP_TRAILER, ID_MODE_TCP_OPTION]))
    def test_every_shape_passes_verifier(self, rule, id_mode):
        _build(rule, id_mode=id_mode)  # load() inside raises on failure


class TestRecordEmission:
    def test_record_layout(self):
        rule = FilterRule(dst_port=4000, protocol=IPPROTO_UDP)
        program, env, perf, counter, tp = _build(rule)
        env.clock = lambda: 777_000
        # Zeroed payload tail: the UDP-trailer read yields trace_id 0
        # (untraced flows simply have no ID at data_end-4).
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 4000, bytes(8))
        _run_on(program, env, packet, cpu=1)
        assert len(perf.pending) == 1
        cpu, raw = perf.pending[0]
        record = TraceRecord.unpack(raw)
        assert cpu == 1
        assert record.timestamp_ns == 777_000
        assert record.tracepoint_id == tp.tracepoint_id
        assert record.packet_len == packet.total_length
        assert record.cpu == 1
        assert record.trace_id == 0  # no ID embedded

    def test_non_matching_packet_emits_nothing(self):
        rule = FilterRule(dst_port=4000)
        program, env, perf, counter, _tp = _build(rule)
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 9999, b"")
        _run_on(program, env, packet)
        assert perf.pending == []
        assert counter.sum_u64(0) == 0

    def test_counter_increments_per_cpu(self):
        program, env, perf, counter, _tp = _build(FilterRule(), num_cpus=4)
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 2, b"")
        for cpu in (0, 0, 3):
            _run_on(program, env, packet, cpu=cpu)
        assert counter.sum_u64(0) == 3

    def test_count_only_action(self):
        perf = PerfEventArray(num_cpus=1)
        counter = PerCPUArrayMap(8, 1, 1)
        tp = TracepointSpec(node="n", hook="dev:x", id_mode=ID_MODE_NONE)
        program, maps = compile_script(
            FilterRule(), tp, ActionSpec(record=False, count=True), counter_map=counter
        )
        program.load()
        env = ExecutionEnv(maps=maps)
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 2, b"")
        _run_on(program, env, packet)
        assert counter.sum_u64(0) == 1

    def test_missing_maps_rejected(self):
        tp = TracepointSpec(node="n", hook="dev:x")
        with pytest.raises(ValueError):
            compile_script(FilterRule(), tp, ActionSpec(record=True))


class TestTraceIDExtraction:
    def _id_from_record(self, perf):
        _cpu, raw = perf.pending[-1]
        return TraceRecord.unpack(raw).trace_id

    def test_udp_trailer_id_read_back(self):
        traceid = TraceIDEngine(SeededRNG(7, "ids"))
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 2, b"payload")
        traceid.embed_udp(packet)
        program, env, perf, _c, _tp = _build(FilterRule(), id_mode=ID_MODE_UDP_TRAILER)
        _run_on(program, env, packet)
        embedded = packet.metadata["trace_id"]
        # The program loads the 4 BE bytes little-endian: a fixed
        # permutation, identical at every tracepoint.
        expected = int.from_bytes(struct.pack("!I", embedded), "little")
        assert self._id_from_record(perf) == expected

    def test_udp_without_id_reads_zero_or_payload_tail(self):
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 2, b"\x00" * 8)
        program, env, perf, _c, _tp = _build(FilterRule(), id_mode=ID_MODE_UDP_TRAILER)
        _run_on(program, env, packet)
        assert self._id_from_record(perf) == 0

    def test_tcp_option_id_read_back(self):
        traceid = TraceIDEngine(SeededRNG(7, "ids"))
        packet = make_tcp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 2, b"data")
        traceid.embed_tcp(packet)
        program, env, perf, _c, _tp = _build(FilterRule(), id_mode=ID_MODE_TCP_OPTION)
        _run_on(program, env, packet)
        embedded = packet.metadata["trace_id"]
        expected = int.from_bytes(struct.pack("!I", embedded), "little")
        assert self._id_from_record(perf) == expected

    def test_tcp_without_option_reads_zero(self):
        packet = make_tcp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 2, b"data")
        program, env, perf, _c, _tp = _build(FilterRule(), id_mode=ID_MODE_TCP_OPTION)
        _run_on(program, env, packet)
        assert self._id_from_record(perf) == 0

    def test_same_id_at_two_tracepoints(self):
        traceid = TraceIDEngine(SeededRNG(7, "ids"))
        packet = make_udp_packet(MAC_A, MAC_B, IPv4Address("1.1.1.1"),
                                 IPv4Address("2.2.2.2"), 1, 2, b"payload")
        traceid.embed_udp(packet)
        ids = []
        for _ in range(2):
            program, env, perf, _c, _tp = _build(FilterRule(), id_mode=ID_MODE_UDP_TRAILER)
            _run_on(program, env, packet)
            ids.append(self._id_from_record(perf))
        assert ids[0] == ids[1] != 0
