"""The self-observability layer: registry, sampler, exporters, contract."""

import json

import pytest

from repro.obs import contract
from repro.obs.export import prometheus_text, series_json, snapshot_dict
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricSpec,
    MetricsRegistry,
)
from repro.obs.sampler import StatsSampler
from repro.sim.engine import Engine


class TestMetricSpec:
    def test_valid_specs_pass(self):
        MetricSpec("vnt_x_total", "counter", "help").validate()
        MetricSpec("vnt_x", "gauge", "h", "ns", "agent", ("node",)).validate()
        MetricSpec("vnt_h", "histogram", "h", "ns", "agent", (), (1, 2, 4)).validate()

    @pytest.mark.parametrize(
        "spec",
        [
            MetricSpec("Bad-Name", "counter", "h"),
            MetricSpec("vnt_x", "timer", "h"),
            MetricSpec("vnt_x", "counter", "h", label_names=("Bad Label",)),
            MetricSpec("vnt_h", "histogram", "h"),  # no buckets
            MetricSpec("vnt_h", "histogram", "h", buckets=(4, 2, 1)),  # not increasing
            MetricSpec("vnt_h", "histogram", "h", buckets=(1, 1, 2)),  # duplicate
            MetricSpec("vnt_x", "counter", "h", buckets=(1, 2)),  # buckets on counter
        ],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(MetricError):
            spec.validate()


class TestCounter:
    def test_inc_and_total(self):
        c = Counter(MetricSpec("c_total", "counter", "h"))
        c.inc()
        c.inc(4)
        assert c.value() == 5
        assert c.total() == 5

    def test_negative_inc_rejected(self):
        c = Counter(MetricSpec("c_total", "counter", "h"))
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labeled_children(self):
        c = Counter(MetricSpec("c_total", "counter", "h", label_names=("node",)))
        c.inc(2, labels=("a",))
        c.inc(3, labels=("b",))
        assert c.value(("a",)) == 2
        assert c.total() == 5
        assert c.samples() == [(("a",), 2.0), (("b",), 3.0)]

    def test_label_arity_enforced(self):
        c = Counter(MetricSpec("c_total", "counter", "h", label_names=("node",)))
        with pytest.raises(MetricError):
            c.inc(1)  # missing the node label

    def test_callbacks_merge_with_stored(self):
        c = Counter(MetricSpec("c_total", "counter", "h", label_names=("node",)))
        c.inc(1, labels=("a",))
        c.add_callback(lambda: {("a",): 10, ("b",): 20})
        assert c.value(("a",)) == 11
        assert c.value(("b",)) == 20

    def test_scalar_callback_unlabeled(self):
        c = Counter(MetricSpec("c_total", "counter", "h"))
        c.add_callback(lambda: 7)
        assert c.total() == 7


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge(MetricSpec("g", "gauge", "h"))
        g.set(5)
        g.set(3)
        assert g.value() == 3

    def test_set_max_ratchets(self):
        g = Gauge(MetricSpec("g", "gauge", "h"))
        g.set_max(5)
        g.set_max(3)
        assert g.value() == 5
        g.set_max(9)
        assert g.value() == 9


class TestHistogram:
    def _hist(self):
        return Histogram(
            MetricSpec("h_ns", "histogram", "h", buckets=(10, 100, 1000))
        )

    def test_observations_bucketed(self):
        h = self._hist()
        for value in (5, 10, 11, 5000):
            h.observe(value)
        data = h.data()
        # Bounds are inclusive upper edges; 5000 lands in +Inf.
        assert data.bucket_counts == (2, 1, 0, 1)
        assert data.sum == 5026
        assert data.count == 4
        assert h.total() == 4

    def test_empty_child_reads_zero(self):
        h = self._hist()
        assert h.data().count == 0
        assert h.samples() == []

    def test_labeled_children_independent(self):
        h = Histogram(
            MetricSpec("h_ns", "histogram", "h", label_names=("node",),
                       buckets=(10, 100))
        )
        h.observe(5, labels=("a",))
        h.observe(500, labels=("b",))
        assert h.data(("a",)).count == 1
        assert h.data(("b",)).bucket_counts == (0, 0, 1)


class TestRegistry:
    def test_register_is_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.register_spec(contract.RING_APPENDED)
        b = reg.register_spec(contract.RING_APPENDED)
        assert a is b

    def test_conflicting_respec_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "h")
        with pytest.raises(MetricError):
            reg.gauge("x_total", "h")

    def test_unknown_metric_errors(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.get("nope")
        assert "nope" not in reg

    def test_metrics_ordered_by_stage_then_name(self):
        reg = MetricsRegistry()
        reg.counter("z_total", "h", stage="agent")
        reg.counter("a_total", "h", stage="ringbuffer")
        reg.counter("b_total", "h", stage="agent")
        assert [m.spec.name for m in reg.metrics()] == [
            "b_total", "z_total", "a_total"
        ]
        assert reg.stages() == ["agent", "ringbuffer"]

    def test_flatten_produces_prometheus_keys(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "h", label_names=("node",))
        c.inc(3, labels=("a",))
        h = reg.histogram("h_ns", (10, 100), "h")
        h.observe(7)
        flat = reg.flatten()
        assert flat['c_total{node="a"}'] == 3.0
        assert flat["h_ns_count"] == 1.0
        assert flat["h_ns_sum"] == 7.0


class TestContract:
    def test_every_spec_validates(self):
        for spec in contract.ALL_METRICS:
            spec.validate()

    def test_names_unique_and_prefixed(self):
        names = [spec.name for spec in contract.ALL_METRICS]
        assert len(names) == len(set(names))
        assert all(name.startswith("vnt_") for name in names)

    def test_every_stage_covered(self):
        stages = {spec.stage for spec in contract.ALL_METRICS}
        assert stages == set(contract.ALL_STAGES)

    def test_whole_contract_registers(self):
        reg = MetricsRegistry()
        for spec in contract.ALL_METRICS:
            reg.register_spec(spec)
        assert reg.names() == sorted(s.name for s in contract.ALL_METRICS)


class TestStatsSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            StatsSampler(Engine(), MetricsRegistry(), interval_ns=0)

    def test_periodic_sampling_on_engine_time(self):
        engine = Engine()
        reg = MetricsRegistry()
        sampler = StatsSampler(engine, reg, interval_ns=1000)
        sampler.start()
        engine.run(until=5500)
        sampler.stop()
        engine.run(until=20_000)
        assert len(sampler.rows) == 5  # t=1000..5000, none after stop
        assert [row["t_ns"] for row in sampler.rows] == [1000, 2000, 3000, 4000, 5000]

    def test_rates_computed_between_samples(self):
        engine = Engine()
        reg = MetricsRegistry()
        c = reg.counter("c_total", "h")
        sampler = StatsSampler(engine, reg, interval_ns=1_000_000_000)
        sampler.sample_now()  # baseline at t=0
        c.inc(500)
        engine.run(until=1_000_000_000)
        row = sampler.sample_now()
        assert row["rates_per_s"]["c_total"] == pytest.approx(500.0)

    def test_rate_gauge_derived(self):
        engine = Engine()
        reg = MetricsRegistry()
        c = reg.counter("c_total", "h")
        g = reg.gauge("c_rate", "h")
        sampler = StatsSampler(engine, reg, interval_ns=1_000_000_000)
        sampler.add_rate_gauge(g, "c_total")
        sampler.sample_now()
        assert g.value() == 0.0  # no window yet
        c.inc(250)
        engine.run(until=500_000_000)
        sampler.sample_now()
        assert g.value() == pytest.approx(500.0)  # 250 in 0.5 s

    def test_samples_counter_exported(self):
        engine = Engine()
        reg = MetricsRegistry()
        sampler = StatsSampler(engine, reg, interval_ns=1000)
        sampler.sample_now()
        engine.run(until=1)
        sampler.sample_now()
        assert reg.total(contract.SAMPLER_SAMPLES.name) == 2

    def test_same_instant_resample_replaces_row(self):
        engine = Engine()
        reg = MetricsRegistry()
        c = reg.counter("c_total", "h")
        sampler = StatsSampler(engine, reg, interval_ns=1000)
        sampler.sample_now()  # baseline at t=0
        c.inc(100)
        engine.run(until=1_000_000_000)
        sampler.sample_now()
        c.inc(400)  # e.g. an offline collect() after the run ended
        row = sampler.sample_now()  # same t: replaces, rates over t=0..1s
        assert len(sampler.rows) == 2
        assert reg.total(contract.SAMPLER_SAMPLES.name) == 2
        assert row["rates_per_s"]["c_total"] == pytest.approx(500.0)
        assert row["values"]["c_total"] == 500.0


class TestExporters:
    def _registry(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "count help", unit="records",
                        stage="collector", label_names=("node",))
        c.inc(3, labels=("a",))
        h = reg.histogram("h_ns", (10, 100), "hist help", unit="ns", stage="agent")
        h.observe(7)
        h.observe(5000)
        return reg

    def test_snapshot_dict_shape(self):
        snap = snapshot_dict(self._registry(), t_ns=42)
        assert snap["t_ns"] == 42
        c = snap["metrics"]["c_total"]
        assert c["type"] == "counter"
        assert c["values"] == [{"labels": {"node": "a"}, "value": 3.0}]
        h = snap["metrics"]["h_ns"]
        assert h["buckets"] == [10, 100]
        assert h["values"][0]["bucket_counts"] == [1, 0, 1]
        assert h["values"][0]["count"] == 2

    def test_prometheus_text_format(self):
        text = prometheus_text(self._registry())
        lines = text.splitlines()
        assert "# TYPE c_total counter" in lines
        assert 'c_total{node="a"} 3' in lines
        # Histogram buckets are cumulative and end with +Inf == count.
        assert 'h_ns_bucket{le="10"} 1' in lines
        assert 'h_ns_bucket{le="100"} 1' in lines
        assert 'h_ns_bucket{le="+Inf"} 2' in lines
        assert "h_ns_sum 5007" in lines
        assert "h_ns_count 2" in lines

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "h", label_names=("node",))
        c.inc(1, labels=('we"ird\\node',))
        text = prometheus_text(reg)
        assert r'c_total{node="we\"ird\\node"} 1' in text

    def test_series_json_roundtrips(self):
        engine = Engine()
        reg = MetricsRegistry()
        reg.counter("c_total", "h").inc(2)
        sampler = StatsSampler(engine, reg, interval_ns=1000)
        sampler.sample_now()
        doc = json.loads(series_json(sampler))
        assert doc["interval_ns"] == 1000
        assert doc["rows"][0]["values"]["c_total"] == 2.0
