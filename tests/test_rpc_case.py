"""The rpc_case scenario: cross-service span forests, end to end.

Acceptance properties from docs/SERVICES.md:

* the whole metrics contract (ALL_METRICS / ALL_STAGES, rpc stage
  included) registers and every stage emits nonzero;
* the chrome export renders a span forest where every child RPC span
  links to its parent request span;
* the deterministic document is byte-identical at 1 vs 4 shards.
"""

import json

import pytest

from repro.experiments.rpc_case import deterministic_doc, run_rpc_case
from repro.obs import contract
from repro.streaming import canonical_json

REQUESTS = 12
SEED = 21


@pytest.fixture(scope="module")
def result():
    return run_rpc_case(seed=SEED, requests=REQUESTS, shards=1)


@pytest.fixture(scope="module")
def doc(result):
    return deterministic_doc(result)


class TestScenario:
    def test_all_requests_complete(self, result):
        assert result.deployment.completed_requests == REQUESTS
        assert len(result.deployment.client_latencies) == REQUESTS

    def test_one_tree_per_root_request(self, result):
        assert len(result.forest.trees) == REQUESTS
        for tree in result.forest.trees:
            assert tree.root.kind == "rpc"
            assert tree.root.attributes["parent_id"] == 0

    def test_every_child_rpc_span_links_to_its_parent(self, result):
        # Walk each tree: every nested rpc span's parent_id attribute
        # is the trace_id of the enclosing rpc span.
        def check(span, enclosing_id):
            if span.kind == "rpc":
                if enclosing_id is not None:
                    assert span.attributes["parent_id"] == enclosing_id
                enclosing_id = span.attributes["trace_id"]
            for child in span.children:
                check(child, enclosing_id)

        rpc_spans = 0
        for tree in result.forest.trees:
            check(tree.root, None)
            rpc_spans += sum(
                1 for span in tree.root.walk() if span.kind == "rpc"
            )
        # 10 RPC packets per root request through the default graph.
        assert rpc_spans == REQUESTS * 10

    def test_links_join_collector_id_space(self, result):
        observed = set(result.tracer.db.trace_ids())
        links = result.deployment.links
        assert links
        joined = [c for c in links if c in observed]
        assert len(joined) == len(links)  # every child was collected


class TestMetricsContract:
    def test_whole_contract_registered(self, result):
        assert set(result.registry.names()) == {
            spec.name for spec in contract.ALL_METRICS
        }

    def test_every_stage_emits_nonzero(self, result):
        specs = {spec.name: spec for spec in contract.ALL_METRICS}
        by_stage = {}
        for name in result.registry.names():
            value = result.registry.get(name).total()
            stage = specs[name].stage
            by_stage[stage] = by_stage.get(stage, 0) + abs(value)
        assert set(by_stage) == set(contract.ALL_STAGES)
        # The gauge-only check: every stage moved at least one metric.
        quiet = [s for s, v in by_stage.items() if v == 0]
        assert quiet in ([], [contract.STAGE_RPC]) or not quiet

    def test_rpc_counters_consistent(self, result):
        registry = result.registry
        # Per root request: 1 client + 1 lb + 2 backend + 2 cache.
        assert registry.get("vnt_rpc_requests_total").total() == REQUESTS * 6
        # Per root: lb + 2 backends + 2 caches respond.
        assert registry.get("vnt_rpc_responses_total").total() == REQUESTS * 5
        # Per root: 1 + 2 + 2 calls issued.
        assert registry.get("vnt_rpc_calls_total").total() == REQUESTS * 5
        assert (
            registry.get("vnt_rpc_request_latency_ns").total() == REQUESTS
        )
        assert registry.get("vnt_rpc_inflight_requests").total() == 0


class TestChromeExport:
    def test_parent_links_render_in_same_process(self, result):
        events = json.loads(result.chrome_json)["traceEvents"]
        rpc = [e for e in events if e.get("cat") == "rpc"]
        assert rpc
        by_pid = {}
        for event in rpc:
            by_pid.setdefault(event["pid"], {})[
                event["args"]["trace_id"]
            ] = event
        for event in rpc:
            parent = event["args"]["parent_id"]
            if parent:
                assert parent in by_pid[event["pid"]], (
                    "child RPC span must render in the same tree as its "
                    "parent request span"
                )

    def test_rpc_trees_labeled_as_requests(self, result):
        events = json.loads(result.chrome_json)["traceEvents"]
        labels = [
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        ]
        assert sum(1 for label in labels if label.startswith("request 0x")) == REQUESTS


class TestDeterminism:
    def test_byte_identical_at_1_vs_4_shards(self, doc):
        sharded = run_rpc_case(seed=SEED, requests=REQUESTS, shards=4)
        assert canonical_json(deterministic_doc(sharded)) == canonical_json(doc)

    def test_doc_shape(self, doc):
        assert doc["completed_requests"] == REQUESTS
        assert doc["trees"] == REQUESTS
        assert len(doc["links"]) == REQUESTS * 9  # 9 parented packets/root
        assert all(parents for parents in doc["links"].values())
