"""The ScenarioSpec registry: one discovery table for every scenario.

The CLI (`repro scenarios`, `repro rpc`), the bench harness, and the
determinism CI resolve runners from :data:`repro.experiments.SCENARIOS`;
the historical per-module entry points stay importable (they *are* the
implementations the specs point at).
"""

import pytest

from repro.experiments import (
    SCENARIOS,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    scenario_names,
)

EXPECTED = ("fault_case", "macro_fleet", "ovs_case", "quickstart", "rpc_case")


class TestRegistry:
    def test_expected_scenarios_registered(self):
        assert scenario_names() == EXPECTED

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(KeyError, match="quickstart"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(SCENARIOS["quickstart"])

    def test_malformed_reference_rejected(self):
        spec = ScenarioSpec(
            name="x", title="x", build="no_colon", run="a:b", digest="a:b"
        )
        with pytest.raises(ValueError, match="module:attr"):
            spec.build_fn()

    def test_every_spec_resolves(self):
        for name in scenario_names():
            spec = get_scenario(name)
            assert callable(spec.build_fn())
            assert callable(spec.run_fn())
            assert callable(spec.digest_fn())


class TestResolutionIdentity:
    """The registry resolves to the *same* callables the legacy
    entry-point imports give you -- the specs are pointers, not forks."""

    def test_quickstart(self):
        from repro.obs.scenario import quickstart_digest, run_quickstart_scenario

        assert get_scenario("quickstart").run_fn() is run_quickstart_scenario
        assert get_scenario("quickstart").digest_fn() is quickstart_digest

    def test_ovs_case(self):
        from repro.experiments.ovs_case import run_case

        assert get_scenario("ovs_case").run_fn() is run_case

    def test_fault_case(self):
        from repro.experiments.fault_case import _build_pair, run_fault_case

        assert get_scenario("fault_case").run_fn() is run_fault_case
        # The public alias the registry references is the historical
        # private builder.
        assert get_scenario("fault_case").build_fn() is _build_pair

    def test_macro_fleet(self):
        from repro.experiments.macro_fleet import FleetConfig, run_macro_fleet

        assert get_scenario("macro_fleet").run_fn() is run_macro_fleet
        assert get_scenario("macro_fleet").build_fn() is FleetConfig

    def test_rpc_case(self):
        from repro.experiments.rpc_case import default_service_graph, run_rpc_case

        assert get_scenario("rpc_case").run_fn() is run_rpc_case
        assert get_scenario("rpc_case").build_fn() is default_service_graph


class TestLegacyEntryPoints:
    """The pre-registry import paths keep working verbatim."""

    def test_legacy_imports(self):
        from repro.experiments.fault_case import run_fault_equivalence  # noqa: F401
        from repro.experiments.macro_fleet import run_macro_fleet  # noqa: F401
        from repro.experiments.ovs_case import run_case  # noqa: F401
        from repro.obs.scenario import run_quickstart_scenario  # noqa: F401

    def test_legacy_builders(self):
        from repro.experiments.topologies import (  # noqa: F401
            build_ovs_case,
            build_two_host_kvm,
        )


class TestDigests:
    def test_digest_is_deterministic(self):
        digest = get_scenario("quickstart").digest_fn()
        first = digest(duration_ns=150_000_000)
        second = digest(duration_ns=150_000_000)
        assert first == second
        assert len(first) == 16
        int(first, 16)  # hex
