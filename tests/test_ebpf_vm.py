"""Interpreter semantics: ALU, memory, jumps, helpers, cost accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.ebpf.assembler import Assembler
from repro.ebpf.isa import R0, R1, R2, R3, R4, R5, R6, R10
from repro.ebpf.maps import HashMap, PerfEventArray
from repro.ebpf.vm import (
    BPFProgram,
    ExecutionEnv,
    ExecutionError,
    INTERPRETER_NS_PER_INSN,
    JIT_NS_PER_INSN,
)

U64 = 0xFFFFFFFFFFFFFFFF
u64s = st.integers(min_value=0, max_value=U64)
imm32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)


def run_program(asm, env=None, ctx=None, data=None, jit=True):
    program = BPFProgram(asm.assemble(), name="t", jit=jit)
    program.load()
    return program.run(env or ExecutionEnv(), ctx if ctx is not None else bytearray(64), data)


class TestALU:
    @given(a=imm32, b=imm32)
    def test_add_matches_wrapping_semantics(self, a, b):
        asm = Assembler()
        asm.mov_imm(R0, a)
        asm.add_imm(R0, b)
        asm.exit_()
        result = run_program(asm)
        assert (
            result.r0 == ((a & U64 if a >= 0 else a & U64) + (b & U64 if b >= 0 else b & U64)) & U64
        )

    @given(a=imm32)
    def test_mov_sign_extends(self, a):
        asm = Assembler()
        asm.mov_imm(R0, a)
        asm.exit_()
        assert run_program(asm).r0 == a & U64

    def test_mov32_zero_extends(self):
        asm = Assembler()
        asm.mov32_imm(R0, -1)
        asm.exit_()
        assert run_program(asm).r0 == 0xFFFFFFFF

    def test_sub_wraps(self):
        asm = Assembler()
        asm.mov_imm(R0, 0)
        asm.sub_imm(R0, 1)
        asm.exit_()
        assert run_program(asm).r0 == U64

    def test_mul_div_mod(self):
        asm = Assembler()
        asm.mov_imm(R0, 100)
        asm.mul_imm(R0, 7)     # 700
        asm.div_imm(R0, 3)     # 233
        asm.mod_imm(R0, 10)    # 3
        asm.exit_()
        assert run_program(asm).r0 == 3

    def test_runtime_division_by_zero_yields_zero(self):
        asm = Assembler()
        asm.mov_imm(R0, 7)
        asm.mov_imm(R2, 0)
        asm._alu(0x30, R0, 0x07, src=R2, use_reg=True)  # div r0, r2
        asm.exit_()
        assert run_program(asm).r0 == 0

    def test_bitwise_ops(self):
        asm = Assembler()
        asm.mov_imm(R0, 0b1100)
        asm.and_imm(R0, 0b1010)  # 0b1000
        asm.or_imm(R0, 0b0001)   # 0b1001
        asm.lsh_imm(R0, 4)       # 0b10010000
        asm.rsh_imm(R0, 2)       # 0b100100
        asm.exit_()
        assert run_program(asm).r0 == 0b100100

    def test_neg(self):
        asm = Assembler()
        asm.mov_imm(R0, 5)
        asm.neg(R0)
        asm.exit_()
        assert run_program(asm).r0 == (-5) & U64

    def test_xor_reg_zeroes(self):
        asm = Assembler()
        asm.mov_imm(R0, 12345)
        asm.xor_reg(R0, R0)
        asm.exit_()
        assert run_program(asm).r0 == 0


class TestMemoryAndJumps:
    def test_stack_store_load_roundtrip(self):
        asm = Assembler()
        asm.ld_imm64(R2, 0xDEADBEEFCAFEF00D)
        asm.stx_dw(R10, R2, -8)
        asm.ldx_dw(R0, R10, -8)
        asm.exit_()
        assert run_program(asm).r0 == 0xDEADBEEFCAFEF00D

    def test_byte_halfword_loads(self):
        asm = Assembler()
        asm.mov_imm(R2, 0x1234)
        asm.stx_h(R10, R2, -2)
        asm.ldx_b(R0, R10, -2)  # little endian: low byte first
        asm.exit_()
        assert run_program(asm).r0 == 0x34

    def test_st_imm(self):
        asm = Assembler()
        asm.st_imm(4, R10, -4, 77)
        asm.ldx_w(R0, R10, -4)
        asm.exit_()
        assert run_program(asm).r0 == 77

    def test_ctx_load(self):
        asm = Assembler()
        asm.ldx_w(R0, R1, 8)
        asm.exit_()
        ctx = bytearray(64)
        ctx[8:12] = (4242).to_bytes(4, "little")
        assert run_program(asm, ctx=ctx).r0 == 4242

    def test_out_of_region_access_faults(self):
        asm = Assembler()
        asm.mov_imm(R2, 0x999)
        asm.ldx_w(R0, R2, 0)
        asm.exit_()
        with pytest.raises(Exception):
            run_program(asm)

    def test_conditional_jump_taken_and_not(self):
        def prog(value):
            asm = Assembler()
            asm.mov_imm(R2, value)
            asm.jgt_imm(R2, 10, "big")
            asm.mov_imm(R0, 0)
            asm.exit_()
            asm.label("big")
            asm.mov_imm(R0, 1)
            asm.exit_()
            return run_program(asm).r0

        assert prog(5) == 0
        assert prog(11) == 1

    def test_unsigned_comparison_semantics(self):
        asm = Assembler()
        asm.mov_imm(R2, -1)  # 0xFFFF... unsigned max
        asm.jgt_imm(R2, 100, "big")
        asm.mov_imm(R0, 0)
        asm.exit_()
        asm.label("big")
        asm.mov_imm(R0, 1)
        asm.exit_()
        assert run_program(asm).r0 == 1

    def test_jset(self):
        asm = Assembler()
        asm.mov_imm(R2, 0b100)
        asm.jset_imm(R2, 0b110, "hit")
        asm.mov_imm(R0, 0)
        asm.exit_()
        asm.label("hit")
        asm.mov_imm(R0, 1)
        asm.exit_()
        assert run_program(asm).r0 == 1


class TestHelpersAndMaps:
    def test_ktime_reads_env_clock(self):
        asm = Assembler()
        asm.call(5)
        asm.exit_()
        env = ExecutionEnv(clock=lambda: 987654321)
        assert run_program(asm, env=env).r0 == 987654321

    def test_smp_processor_id(self):
        asm = Assembler()
        asm.call(8)
        asm.exit_()
        env = ExecutionEnv(cpu=3)
        assert run_program(asm, env=env).r0 == 3

    def test_prandom_u32(self):
        asm = Assembler()
        asm.call(7)
        asm.exit_()
        env = ExecutionEnv(prandom_u32=lambda: 0xABCD)
        assert run_program(asm, env=env).r0 == 0xABCD

    def _map_update_lookup_program(self, bpf_map):
        asm = Assembler()
        # key=1 at fp-4; value=99 at fp-12 (8 bytes)
        asm.st_imm(4, R10, -4, 1)
        asm.st_imm(8, R10, -12, 99)
        asm.ld_map_fd(R1, bpf_map.fd)
        asm.mov_reg(R2, R10)
        asm.add_imm(R2, -4)
        asm.mov_reg(R3, R10)
        asm.add_imm(R3, -12)
        asm.mov_imm(R4, 0)
        asm.call(2)  # update
        asm.ld_map_fd(R1, bpf_map.fd)
        asm.mov_reg(R2, R10)
        asm.add_imm(R2, -4)
        asm.call(1)  # lookup
        asm.jne_imm(R0, 0, "found")
        asm.mov_imm(R0, 0)
        asm.exit_()
        asm.label("found")
        asm.ldx_dw(R0, R0, 0)
        asm.exit_()
        return asm

    def test_map_update_then_lookup(self):
        bpf_map = HashMap(key_size=4, value_size=8, max_entries=8)
        asm = self._map_update_lookup_program(bpf_map)
        program = BPFProgram(asm.assemble(), maps={bpf_map.fd: bpf_map}, name="m")
        program.load()
        result = program.run(ExecutionEnv(maps={bpf_map.fd: bpf_map}), bytearray(64))
        assert result.r0 == 99

    def test_store_through_lookup_pointer_persists(self):
        bpf_map = HashMap(key_size=4, value_size=8, max_entries=8)
        bpf_map.update((1).to_bytes(4, "little"), (5).to_bytes(8, "little"))
        asm = Assembler()
        asm.st_imm(4, R10, -4, 1)
        asm.ld_map_fd(R1, bpf_map.fd)
        asm.mov_reg(R2, R10)
        asm.add_imm(R2, -4)
        asm.call(1)
        asm.jeq_imm(R0, 0, "miss")
        asm.ldx_dw(R2, R0, 0)
        asm.add_imm(R2, 1)
        asm.stx_dw(R0, R2, 0)
        asm.mov_imm(R0, 1)
        asm.exit_()
        asm.label("miss")
        asm.mov_imm(R0, 0)
        asm.exit_()
        program = BPFProgram(asm.assemble(), maps={bpf_map.fd: bpf_map}, name="m")
        program.load()
        env = ExecutionEnv(maps={bpf_map.fd: bpf_map})
        program.run(env, bytearray(64))
        program.run(env, bytearray(64))
        value = bpf_map.lookup((1).to_bytes(4, "little"))
        assert int.from_bytes(value, "little") == 7

    def test_perf_event_output_reaches_map(self):
        perf = PerfEventArray(num_cpus=2)
        asm = Assembler()
        asm.mov_reg(R6, R1)
        asm.st_imm(8, R10, -8, 0x1122)
        asm.mov_reg(R1, R6)
        asm.ld_map_fd(R2, perf.fd)
        asm.mov_imm(R3, -1)
        asm.mov_reg(R4, R10)
        asm.add_imm(R4, -8)
        asm.mov_imm(R5, 8)
        asm.call(25)
        asm.exit_()
        program = BPFProgram(asm.assemble(), maps={perf.fd: perf}, name="p")
        program.load()
        program.run(ExecutionEnv(maps={perf.fd: perf}, cpu=1), bytearray(64))
        assert perf.pending == [(1, (0x1122).to_bytes(8, "little"))]


class TestCostModel:
    def test_unloaded_program_cannot_run(self):
        program = BPFProgram(Assembler().mov_imm(R0, 0).exit_().assemble())
        with pytest.raises(ExecutionError):
            program.run(ExecutionEnv(), bytearray(64))

    def test_jit_cheaper_than_interpreter(self):
        def cost(jit):
            asm = Assembler()
            for _ in range(50):
                asm.mov_imm(R0, 1)
            asm.exit_()
            return run_program(asm, jit=jit).cost_ns

        assert cost(jit=True) < cost(jit=False)

    def test_cost_scales_with_instructions_executed(self):
        asm = Assembler()
        asm.mov_imm(R2, 0)
        asm.jeq_imm(R2, 0, "short")  # taken: skips the long block
        for _ in range(100):
            asm.mov_imm(R0, 1)
        asm.label("short")
        asm.mov_imm(R0, 0)
        asm.exit_()
        result = run_program(asm)
        assert result.insns_executed < 10

    def test_helper_costs_included(self):
        asm_plain = Assembler()
        asm_plain.mov_imm(R0, 0)
        asm_plain.exit_()
        asm_helper = Assembler()
        asm_helper.call(5)
        asm_helper.exit_()
        assert run_program(asm_helper).cost_ns > run_program(asm_plain).cost_ns

    def test_load_cost_positive_and_reports_stats(self):
        asm = Assembler()
        asm.mov_imm(R0, 0)
        asm.exit_()
        program = BPFProgram(asm.assemble(), name="s")
        assert program.load() > 0
        program.run(ExecutionEnv(), bytearray(64))
        assert program.run_count == 1
        assert program.total_cost_ns > 0
