"""IPv4/MAC addresses: parsing, formatting, subnets (with hypothesis)."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addressing import AddressError, IPv4Address, MACAddress


class TestIPv4:
    def test_parse_and_format_roundtrip(self):
        assert str(IPv4Address("192.168.1.10")) == "192.168.1.10"

    def test_int_roundtrip(self):
        assert IPv4Address(0xC0A8010A) == IPv4Address("192.168.1.10")

    def test_copy_constructor(self):
        a = IPv4Address("10.0.0.1")
        assert IPv4Address(a) == a

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"])
    def test_malformed_literals_rejected(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)

    def test_subnet_membership(self):
        ip = IPv4Address("10.1.2.3")
        assert ip.in_subnet(IPv4Address("10.1.0.0"), 16)
        assert not ip.in_subnet(IPv4Address("10.2.0.0"), 16)
        assert ip.in_subnet(IPv4Address("0.0.0.0"), 0)
        assert ip.in_subnet(ip, 32)

    def test_bad_prefix_rejected(self):
        with pytest.raises(AddressError):
            IPv4Address("1.1.1.1").in_subnet(IPv4Address("1.1.1.0"), 33)

    def test_hashable_and_ordered(self):
        a, b = IPv4Address("1.0.0.1"), IPv4Address("1.0.0.2")
        assert a < b
        assert len({a, b, IPv4Address("1.0.0.1")}) == 2

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_bytes_roundtrip(self, value):
        ip = IPv4Address(value)
        assert IPv4Address.from_bytes(ip.to_bytes()) == ip

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_string_roundtrip(self, value):
        ip = IPv4Address(value)
        assert IPv4Address(str(ip)) == ip


class TestMAC:
    def test_parse_and_format_roundtrip(self):
        text = "02:00:00:00:00:2a"
        assert str(MACAddress(text)) == text

    def test_dash_separator_accepted(self):
        assert MACAddress("02-00-00-00-00-01") == MACAddress("02:00:00:00:00:01")

    @pytest.mark.parametrize("bad", ["", "02:00", "zz:00:00:00:00:00", "0200.0000.0001"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            MACAddress(bad)

    def test_broadcast(self):
        assert MACAddress.broadcast().is_broadcast()
        assert not MACAddress.from_index(5).is_broadcast()

    def test_from_index_deterministic_and_local(self):
        mac = MACAddress.from_index(7)
        assert mac == MACAddress.from_index(7)
        assert mac.value >> 40 == 0x02  # locally administered prefix

    @given(st.integers(min_value=0, max_value=0xFFFFFFFFFFFF))
    def test_bytes_roundtrip(self, value):
        mac = MACAddress(value)
        assert MACAddress.from_bytes(mac.to_bytes()) == mac
