"""The paper's §III-A walkthrough, end to end.

"Suppose we need to measure the network latency between two VXLAN
layers in the multiple host container network": containers on VMs on
two *physical hosts*, a VXLAN overlay over the inter-host underlay,
tracing scripts attached to the VXLAN devices (flannel_i / flannel_j),
records correlated by the in-packet trace ID, and the latency between
the two VXLAN layers computed offline."""

import pytest

from repro.core import FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.experiments.topologies import build_two_host_kvm
from repro.net.addressing import IPv4Address
from repro.net.packet import IPPROTO_UDP
from repro.virt.overlay import OverlayNetwork


@pytest.fixture(scope="module")
def multihost_overlay():
    scene = build_two_host_kvm(seed=77)
    overlay = OverlayNetwork("flannel", vni=7, subnet=IPv4Address("10.32.0.0"))
    member1 = overlay.join(scene.vm1.node, scene.vm1_ip)
    member2 = overlay.join(scene.vm2.node, scene.vm2_ip)
    c1 = overlay.create_container(member1, "c1", IPv4Address("10.32.0.2"))
    c2 = overlay.create_container(member2, "c2", IPv4Address("10.32.0.3"))

    # The two hosts' clocks disagree by ~1.5 ms; cross-host latency
    # needs the paper's Cristian alignment step (one tracer shared by
    # the tests below so the skew estimate is reused).
    tracer = VNetTracer(scene.engine)
    tracer.add_agent(scene.vm1.node)
    tracer.add_agent(scene.vm2.node)
    sync = tracer.synchronize_clocks(
        scene.host1.node, scene.host1_ip, "dev:eth0",
        scene.host2.node, scene.host2_ip, "dev:eth0",
    )

    def propagate(estimate) -> None:
        # The guests run on their hosts' paravirtual clocksources.
        tracer.db.set_clock_skew(scene.vm2.node.name, estimate.skew_ns)

    previous = sync.on_done
    sync.on_done = lambda est: (previous(est), propagate(est))
    scene.engine.run(until=400_000_000)
    assert scene.vm2.node.name in {  # sync completed
        name for name in tracer.db._skew_ns
    }
    return scene, overlay, member1, member2, c1, c2, tracer


class TestMultiHostOverlay:
    def test_containers_reach_across_physical_hosts(self, multihost_overlay):
        scene, overlay, member1, member2, c1, c2, tracer = multihost_overlay
        engine = scene.engine
        got = []
        server = c2.bind_udp(7000)
        server.on_receive = lambda payload, *rest: got.append(payload)
        client = c1.bind_udp(7001)
        client.sendto(c2.ip, 7000, b"across-hosts")
        engine.run(until=engine.now + 50_000_000)
        assert got == [b"across-hosts"]
        assert member1.vxlan.encapsulated >= 1
        assert member2.vxlan.decapsulated >= 1

    def test_flannel_to_flannel_latency_measured(self, multihost_overlay):
        scene, overlay, member1, member2, c1, c2, tracer = multihost_overlay
        engine = scene.engine
        # §III-A inputs: (1) filter rules -- the containerized app's
        # flow; (2) tracepoints -- device flannel_i / flannel_j;
        # (3) action -- record the time; (4) global config defaults.
        spec = TracingSpec(
            rule=FilterRule(dst_ip=c2.ip, dst_port=7100, protocol=IPPROTO_UDP),
            tracepoints=[
                TracepointSpec(node=scene.vm1.node.name,
                               hook=f"dev:{member1.vxlan.name}",
                               label="flannel_i", strip_vxlan=True),
                TracepointSpec(node=scene.vm2.node.name,
                               hook=f"dev:{member2.vxlan.name}",
                               label="flannel_j", strip_vxlan=True),
            ],
        )
        tracer.deploy(spec)

        server = c2.bind_udp(7100)
        server.on_receive = lambda *a: None
        client = c1.bind_udp(7101)
        start = engine.now
        for i in range(30):
            engine.schedule(1_000_000 * (i + 1), client.sendto, c2.ip, 7100,
                            b"payload", "flannel-walkthrough", i)
        engine.run(until=start + 200_000_000)
        tracer.collect()

        # "we calculate the time from flannel_i to flannel_j to get the
        # network latency between two VXLAN devices"
        latencies = tracer.latencies("flannel_i", "flannel_j")
        assert len(latencies) == 30
        # Crosses the physical link: > propagation, < a millisecond.
        assert all(20_000 < lat < 500_000 for lat in latencies)

    def test_vxlan_hook_sees_inner_flow_fields(self, multihost_overlay):
        """The flannel_i script fires on egress where the frame is still
        the inner packet; flannel_j fires at decap with strip_vxlan
        parsing the inner five-tuple: both must match the same rule."""
        scene, overlay, member1, member2, c1, c2, tracer = multihost_overlay
        engine = scene.engine
        tracer.undeploy()
        spec = TracingSpec(
            rule=FilterRule(src_ip=c1.ip, dst_ip=c2.ip, protocol=IPPROTO_UDP,
                            dst_port=7200),
            tracepoints=[
                TracepointSpec(node=scene.vm2.node.name,
                               hook=f"dev:{member2.vxlan.name}",
                               label="decap-point", strip_vxlan=True),
            ],
        )
        tracer.deploy(spec)
        server = c2.bind_udp(7200)
        server.on_receive = lambda *a: None
        client = c1.bind_udp(7201)
        start = engine.now
        for i in range(5):
            engine.schedule(1_000_000 * (i + 1), client.sendto, c2.ip, 7200, b"x")
        engine.run(until=start + 100_000_000)
        tracer.collect()
        assert tracer.db.count("decap-point") == 5
        rows = tracer.db.table("decap-point")
        assert all(row.trace_id != 0 for row in rows)
