"""The service layer: ServiceGraph builder, compiled wiring, RPC runtime.

docs/SERVICES.md describes the layer; tests/test_rpc_case.py covers the
full traced scenario.  This file covers the builder API's validation
surface, the graph -> engine compilation, and the deterministic RPC
exchange itself (fan-out/fan-in, parent links, metrics).
"""

import pytest

from repro.net.traceid import TraceIDEngine, wire_record_id
from repro.obs import contract
from repro.obs.registry import MetricsRegistry
from repro.services import (
    RPC_PORT,
    RPC_KIND_REQUEST,
    RPC_KIND_RESPONSE,
    ServiceGraph,
    ServiceGraphError,
    unpack_rpc,
)
from repro.sim.engine import Engine


def _linear_graph():
    return (
        ServiceGraph()
        .tier("client", replicas=1, work_ns=1_000)
        .calls("backend", fanout=2, payload_bytes=48)
        .tier("backend", replicas=2, work_ns=2_000)
    )


class TestBuilderValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(ServiceGraphError, match="no tiers"):
            ServiceGraph().validate()

    def test_calls_before_tier_rejected(self):
        with pytest.raises(ServiceGraphError, match="must follow"):
            ServiceGraph().calls("backend")

    def test_duplicate_tier_rejected(self):
        with pytest.raises(ServiceGraphError, match="duplicate"):
            ServiceGraph().tier("a").tier("a")

    def test_non_identifier_name_rejected(self):
        with pytest.raises(ServiceGraphError, match="identifier"):
            ServiceGraph().tier("front-end")

    def test_zero_replicas_rejected(self):
        with pytest.raises(ServiceGraphError, match="replicas"):
            ServiceGraph().tier("a", replicas=0)

    def test_zero_fanout_rejected(self):
        with pytest.raises(ServiceGraphError, match="fanout"):
            ServiceGraph().tier("a").calls("b", fanout=0)

    def test_undeclared_target_rejected(self):
        graph = ServiceGraph().tier("a").calls("ghost")
        with pytest.raises(ServiceGraphError, match="undeclared"):
            graph.validate()

    def test_cycle_rejected_with_path(self):
        graph = (
            ServiceGraph()
            .tier("root")
            .calls("a")
            .tier("a")
            .calls("b")
            .tier("b")
            .calls("a")
        )
        with pytest.raises(ServiceGraphError, match="a -> b -> a"):
            graph.validate()

    def test_no_root_rejected(self):
        graph = ServiceGraph().tier("a").calls("b").tier("b").calls("a")
        with pytest.raises(ServiceGraphError, match="no root tier"):
            graph.validate()

    def test_forward_declared_target_is_fine(self):
        _linear_graph().validate()

    def test_root_tiers_are_uncalled_callers(self):
        graph = _linear_graph()
        assert [t.name for t in graph.root_tiers()] == ["client"]


class TestCompile:
    def test_nodes_and_edges_wired(self):
        engine = Engine()
        deployment = _linear_graph().compile(engine, seed=3)
        assert [n.name for n in deployment.nodes] == [
            "client0", "backend0", "backend1",
        ]
        # One point-to-point edge per (caller replica, callee replica).
        assert len(deployment.edges) == 2
        front = deployment.edge("client0", "backend0")
        assert front.caller_ip != front.callee_ip
        # Each node got a udp_payload trace-ID engine.
        for node in deployment.nodes:
            engine_attached = node.packet_hooks.find(TraceIDEngine)
            assert engine_attached is not None
            assert "udp_payload" in engine_attached.modes

    def test_every_replica_binds_the_rpc_port(self):
        engine = Engine()
        deployment = _linear_graph().compile(engine)
        for tier in deployment.graph.tiers:
            for svc in deployment.services[tier.name]:
                assert svc.tier.port == RPC_PORT

    def test_compile_validates(self):
        with pytest.raises(ServiceGraphError):
            ServiceGraph().tier("a").calls("ghost").compile(Engine())


class TestRPCExchange:
    def _run(self, seed=5, requests=8):
        engine = Engine()
        registry = MetricsRegistry()
        deployment = _linear_graph().compile(engine, seed=seed, registry=registry)
        deployment.start_load(requests, interval_ns=500_000, start_ns=1_000)
        engine.run()
        return deployment, registry

    def test_all_requests_complete_with_fan_in(self):
        deployment, _ = self._run()
        assert deployment.completed_requests == 8
        assert len(deployment.client_latencies) == 8
        assert all(latency > 0 for latency in deployment.client_latencies)
        backends = deployment.services["backend"]
        assert sum(s.requests_handled for s in backends) == 16  # fanout 2
        assert sum(s.responses_sent for s in backends) == 16

    def test_parent_links_recorded_in_collector_id_space(self):
        deployment, _ = self._run()
        # The root tier's own fan-out carries no parent (those requests
        # ARE the roots); every backend response carries exactly one --
        # the request that caused it.
        assert len(deployment.links) == 8 * 2  # fanout-2 responses per root
        for child, parents in deployment.links.items():
            assert len(parents) == 1
            assert child != parents[0]

    def test_record_link_converts_and_dedups(self):
        engine = Engine()
        deployment = _linear_graph().compile(engine)
        deployment.record_link(0x01020304, (0x0A0B0C0D,))
        deployment.record_link(0x01020304, (0xFFFFFFFF,))  # dup child: kept first
        deployment.record_link(None, (1,))
        deployment.record_link(5, ())
        assert deployment.links == {
            wire_record_id(0x01020304): (wire_record_id(0x0A0B0C0D),)
        }

    def test_metrics_registered_and_counted(self):
        _, registry = self._run()
        for spec in contract.ALL_METRICS:
            if spec.stage == contract.STAGE_RPC:
                assert spec.name in registry.names()
        assert registry.get("vnt_rpc_requests_total").total() > 0
        assert registry.get("vnt_rpc_responses_total").total() > 0
        assert registry.get("vnt_rpc_calls_total").total() == 16
        assert registry.get("vnt_rpc_links_recorded_total").total() == 16
        assert registry.get("vnt_rpc_inflight_requests").total() == 0  # drained
        assert registry.get("vnt_rpc_request_latency_ns").total() == 8

    def test_same_seed_same_run(self):
        a, _ = self._run(seed=11)
        b, _ = self._run(seed=11)
        assert a.client_latencies == b.client_latencies
        assert a.links == b.links

    def test_different_seed_different_ids(self):
        a, _ = self._run(seed=11)
        b, _ = self._run(seed=12)
        assert set(a.links) != set(b.links)


class TestFraming:
    def test_rpc_frame_round_trips(self):
        from repro.services.runtime import _pack_rpc

        payload = _pack_rpc(RPC_KIND_REQUEST, 2, 77, payload_bytes=64)
        assert len(payload) == 64
        assert unpack_rpc(payload) == (RPC_KIND_REQUEST, 2, 77)
        small = _pack_rpc(RPC_KIND_RESPONSE, 0, 1, payload_bytes=0)
        assert unpack_rpc(small) == (RPC_KIND_RESPONSE, 0, 1)
