"""Cristian's algorithm: estimation accuracy across skews and load."""

import pytest

from repro.core.clocksync import ClockSynchronizer
from repro.experiments.clocksync_case import run_clock_sync
from repro.net.addressing import IPv4Address


class TestClockSyncUnit:
    def _run(self, engine, two_nodes, offset_ns, drift_ppm=0.0, samples=20):
        node_a, node_b, ip_a, ip_b = two_nodes
        node_b.clock.offset_ns = offset_ns
        node_b.clock.drift_ppm = drift_ppm
        sync = ClockSynchronizer(
            node_a, ip_a, "dev:veth0", node_b, ip_b, "dev:veth0", samples=samples
        )
        sync.start()
        engine.run(until=2_000_000_000)
        assert sync.result is not None
        return sync.result, node_a, node_b

    def test_zero_skew_estimated_near_zero(self, engine, two_nodes):
        result, *_ = self._run(engine, two_nodes, offset_ns=0)
        assert abs(result.skew_ns) < 5_000

    def test_positive_offset_recovered(self, engine, two_nodes):
        result, node_a, node_b = self._run(engine, two_nodes, offset_ns=2_000_000)
        true_skew = node_a.clock.monotonic_ns() - node_b.clock.monotonic_ns()
        assert abs(result.skew_ns - true_skew) < 5_000

    def test_negative_offset_recovered(self, engine, two_nodes):
        result, node_a, node_b = self._run(engine, two_nodes, offset_ns=-3_000_000)
        true_skew = node_a.clock.monotonic_ns() - node_b.clock.monotonic_ns()
        assert abs(result.skew_ns - true_skew) < 5_000

    def test_sample_count_respected(self, engine, two_nodes):
        result, *_ = self._run(engine, two_nodes, offset_ns=0, samples=30)
        assert result.samples == 30

    def test_probes_detached_after_completion(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        self._run(engine, two_nodes, offset_ns=0)
        assert not node_a.hooks.has_attachments("dev:veth0")
        assert not node_b.hooks.has_attachments("dev:veth0")

    def test_one_way_estimate_positive(self, engine, two_nodes):
        result, *_ = self._run(engine, two_nodes, offset_ns=0)
        assert result.one_way_ns > 0
        assert result.rtt_min_ns > result.one_way_ns


@pytest.mark.slow
class TestClockSyncScenario:
    def test_full_topology_accuracy_idle(self):
        result = run_clock_sync(offset_ns=1_500_000, drift_ppm=20.0,
                                background_load=False)
        assert result.error_ns < 10_000

    def test_accuracy_survives_background_load(self):
        result = run_clock_sync(offset_ns=1_500_000, drift_ppm=20.0,
                                background_load=True)
        # min-of-100 filtering keeps the estimate tight under load
        assert result.error_ns < 20_000
