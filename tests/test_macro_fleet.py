"""The macro_fleet scenario: cross-mode identity and physical sanity.

The fleet workload is designed so single-engine, sharded in-process,
and worker-mode runs are *byte-identical* (tie-free timestamp residues,
permutation probe maps, per-node record buffers); these tests assert
that identity plus the physics the records encode: exact Cristian skew
recovery and wire-latency-exact aligned cross-rack timestamps.
"""

from __future__ import annotations

import pytest

from repro.experiments.macro_fleet import (
    FLEET_LABELS,
    FleetConfig,
    TP_PROBE_RX,
    TP_PROBE_TX,
    TP_REPLY_RX,
    fleet_rack_skews,
    run_macro_fleet,
    shard_of_rack,
)

SMALL = FleetConfig(nodes=80, racks=8, ticks=8)


@pytest.fixture(scope="module")
def single_run():
    return run_macro_fleet(SMALL, shards=1)


class TestCrossModeIdentity:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_sharded_matches_single(self, single_run, shards):
        sharded = run_macro_fleet(SMALL, shards=shards)
        assert sharded.digest16 == single_run.digest16
        for key in ("rows_inserted", "rtt_avg_ns", "boundary_messages",
                    "skew_racks_recovered"):
            assert sharded.metrics[key] == single_run.metrics[key]

    def test_worker_mode_matches_single(self, single_run):
        workers = run_macro_fleet(SMALL, shards=4, workers=True,
                                  mp_start_method="fork")
        assert workers.digest16 == single_run.digest16

    def test_coordinator_with_one_shard_matches_single(self, single_run):
        one_shard = run_macro_fleet(SMALL, shards=1, workers=True)
        assert one_shard.digest16 == single_run.digest16
        assert one_shard.metrics["workers"] == 0

    def test_merged_db_identical_not_just_digest(self, single_run):
        sharded = run_macro_fleet(SMALL, shards=4)
        for label in FLEET_LABELS.values():
            assert sharded.db.table(label) == single_run.db.table(label)
        assert sharded.db.clock_offsets() == single_run.db.clock_offsets()


class TestPhysics:
    def test_sync_recovers_exact_rack_skews(self, single_run):
        expected = fleet_rack_skews(SMALL)
        assert set(single_run.skews) == set(range(1, SMALL.racks))
        for rack, estimate in single_run.skews.items():
            # Symmetric wire + pure offsets: Cristian is exact here.
            assert estimate == expected[rack]

    def test_aligned_cross_rack_latency_is_wire_exact(self, single_run):
        """After de-skewing, rx - tx across racks is exactly wire_ns --
        the property the whole clock-sync pipeline exists to deliver."""
        db = single_run.db
        tx_rows = {r.trace_id: r for r in db.table(FLEET_LABELS[TP_PROBE_TX])}
        rx_rows = db.table(FLEET_LABELS[TP_PROBE_RX])
        assert rx_rows
        for rx in rx_rows:
            tx = tx_rows[rx.trace_id]
            assert rx.timestamp_ns - tx.timestamp_ns == SMALL.wire_ns
        reply_rows = db.table(FLEET_LABELS[TP_REPLY_RX])
        assert reply_rows
        for reply in reply_rows:
            tx = tx_rows[reply.trace_id]
            assert reply.timestamp_ns - tx.timestamp_ns == 2 * SMALL.wire_ns

    def test_raw_timestamps_are_skewed(self, single_run):
        """The raw column keeps the node-local clock; rack-0 nodes (skew
        zero) aside, raw and aligned must differ by the rack skew."""
        skews = fleet_rack_skews(SMALL)
        per_rack = SMALL.per_rack
        found_nonzero = False
        for row in single_run.db.table(FLEET_LABELS[TP_PROBE_TX]):
            node = int(row.node.split("-")[1])
            skew = skews[node // per_rack]
            assert row.raw_timestamp_ns - row.timestamp_ns == skew
            found_nonzero = found_nonzero or skew != 0
        assert found_nonzero

    def test_rtt_is_twice_wire(self, single_run):
        assert single_run.metrics["rtt_avg_ns"] == 2 * SMALL.wire_ns


class TestConfig:
    def test_rack_placement_is_contiguous_and_balanced(self):
        placement = [shard_of_rack(rack, 40, 16) for rack in range(40)]
        assert placement == sorted(placement)  # contiguous blocks
        counts = [placement.count(s) for s in range(16)]
        assert max(counts) - min(counts) <= 1
        assert sum(counts) == 40

    def test_uneven_nodes_rejected(self):
        with pytest.raises(Exception, match="divide evenly"):
            run_macro_fleet(FleetConfig(nodes=10, racks=3, ticks=2), shards=1)

    def test_wire_below_lookahead_rejected(self):
        bad = FleetConfig(nodes=10, racks=2, ticks=2,
                          wire_ns=10, lookahead_ns=1_000_000)
        with pytest.raises(Exception, match="lookahead"):
            run_macro_fleet(bad, shards=1)


class TestBenchLegsAgree:
    def test_all_three_bench_modules_report_identical_metrics(self):
        """The three committed bench scenarios run the same workload;
        every deterministic metric except the mode fields must agree."""
        from repro.bench.discovery import discover_scenarios

        runs = {
            scenario.name: scenario.load()("smoke")
            for scenario in discover_scenarios(
                only=["macro_fleet", "macro_fleet_single", "macro_fleet_shards4"]
            )
        }
        assert len(runs) == 3
        mode_fields = {"shards", "workers", "rounds", "boundary_messages"}
        reference = {
            k: v for k, v in runs["macro_fleet"].items() if k not in mode_fields
        }
        for name, metrics in runs.items():
            assert {
                k: v for k, v in metrics.items() if k not in mode_fields
            } == reference, name
