"""docs/EBPF.md is a contract: the documented ISA tables must match the code.

Three structural checks (same pattern as the OBSERVABILITY.md contract
test) plus a golden-output check for the inspector:

* the helper table (id, name, argc, cost) mirrors ``helpers.HELPERS``;
* the ALU/JMP mnemonic tables mirror ``isa.ALU_OP_NAMES`` /
  ``isa.JMP_OP_NAMES``, opcode nibbles included;
* the cost-model table mirrors the ``vm`` constants;
* the ``dump_program`` example reproduces byte-for-byte.
"""

import re
from pathlib import Path

from repro.ebpf import isa, vm
from repro.ebpf.assembler import Assembler
from repro.ebpf.helpers import HELPERS
from repro.ebpf.inspect import dump_program
from repro.ebpf.isa import R0, R1, R2
from repro.ebpf.vm import BPFProgram

DOC_PATH = Path(__file__).resolve().parent.parent / "docs" / "EBPF.md"


def _section(name: str) -> str:
    text = DOC_PATH.read_text()
    match = re.search(
        rf"<!-- {name}:begin -->\n(.*?)<!-- {name}:end -->", text, re.DOTALL
    )
    assert match, f"docs/EBPF.md is missing the {name} marker block"
    return match.group(1)


def _table_rows(section: str):
    """Yield the cell lists of every data row in a markdown table."""
    for line in section.splitlines():
        line = line.strip()
        if not line.startswith("|") or set(line) <= {"|", "-", " "}:
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if cells and cells[0] in ("id", "mnemonic"):
            continue  # header row
        yield cells


def test_helper_table_matches_helpers():
    documented = {}
    for cells in _table_rows(_section("helpers")):
        helper_id, name, argc, cost = cells[0], cells[1], cells[2], cells[3]
        documented[int(helper_id)] = (name.strip("`"), int(argc), int(cost))
    actual = {
        helper_id: (info.name, info.argc, info.cost_ns)
        for helper_id, info in HELPERS.items()
    }
    assert documented == actual


def test_alu_op_table_matches_isa():
    documented = {}
    for cells in _table_rows(_section("alu-ops")):
        documented[cells[0].strip("`")] = int(cells[1], 16)
    actual = {name: op for op, name in isa.ALU_OP_NAMES.items()}
    assert documented == actual


def test_jmp_op_table_matches_isa():
    documented = {}
    for cells in _table_rows(_section("jmp-ops")):
        documented[cells[0].strip("`")] = int(cells[1], 16)
    actual = {name: op for op, name in isa.JMP_OP_NAMES.items()}
    assert documented == actual


def test_documented_limits_match_isa():
    text = DOC_PATH.read_text()
    assert f"`isa.STACK_SIZE` = {isa.STACK_SIZE} bytes" in text
    assert f"1 .. {isa.MAX_INSNS} instructions" in text
    assert f"{isa.NUM_REGS} 64-bit registers" in text


def test_documented_cost_constants_match_vm():
    text = DOC_PATH.read_text()
    for name in (
        "INTERPRETER_NS_PER_INSN",
        "JIT_NS_PER_INSN",
        "VERIFY_NS_PER_INSN",
        "JIT_COMPILE_NS_PER_INSN",
    ):
        value = getattr(vm, name)
        pattern = rf"`{name}`[^|]*\|\s*{re.escape(str(value))}\s*\|"
        assert re.search(pattern, text), f"{name} = {value} not documented"


def _golden_program() -> BPFProgram:
    asm = Assembler()
    asm.ldx_h(R2, R1, 26)
    asm.jne_imm(R2, 4789, "miss")
    asm.mov_imm(R0, 1)
    asm.exit_()
    asm.label("miss")
    asm.mov_imm(R0, 0)
    asm.exit_()
    return BPFProgram(asm.assemble(), name="port-filter")


def test_dump_program_golden_output():
    fenced = _section("dump").strip()
    assert fenced.startswith("```") and fenced.endswith("```")
    golden = fenced[3:-3].strip("\n")
    assert dump_program(_golden_program()) == golden
