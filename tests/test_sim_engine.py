"""Engine: event ordering, processes, signals, determinism."""

import pytest

from repro.sim.engine import Engine, Signal, SimulationError


class TestScheduling:
    def test_events_run_in_time_order(self, engine):
        seen = []
        engine.schedule(30, seen.append, "c")
        engine.schedule(10, seen.append, "a")
        engine.schedule(20, seen.append, "b")
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self, engine):
        seen = []
        for tag in ("first", "second", "third"):
            engine.schedule(5, seen.append, tag)
        engine.run()
        assert seen == ["first", "second", "third"]

    def test_now_advances_to_event_time(self, engine):
        times = []
        engine.schedule(100, lambda: times.append(engine.now))
        engine.schedule(250, lambda: times.append(engine.now))
        engine.run()
        assert times == [100, 250]

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self, engine):
        engine.schedule(50, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(10, lambda: None)

    def test_cancelled_event_does_not_fire(self, engine):
        seen = []
        event = engine.schedule(10, seen.append, "x")
        event.cancel()
        engine.run()
        assert seen == []

    def test_cancel_is_idempotent(self, engine):
        event = engine.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        engine.run()

    def test_run_until_stops_at_boundary(self, engine):
        seen = []
        engine.schedule(10, seen.append, "in")
        engine.schedule(1000, seen.append, "out")
        engine.run(until=100)
        assert seen == ["in"]
        assert engine.now == 100
        assert engine.pending() == 1

    def test_run_until_then_continue(self, engine):
        seen = []
        engine.schedule(10, seen.append, 1)
        engine.schedule(200, seen.append, 2)
        engine.run(until=100)
        engine.run()
        assert seen == [1, 2]

    def test_max_events_bound(self, engine):
        seen = []
        for i in range(10):
            engine.schedule(i, seen.append, i)
        engine.run(max_events=4)
        assert seen == [0, 1, 2, 3]

    def test_events_scheduled_during_run_execute(self, engine):
        seen = []

        def outer():
            engine.schedule(5, seen.append, "inner")

        engine.schedule(1, outer)
        engine.run()
        assert seen == ["inner"]

    def test_reentrant_run_rejected(self, engine):
        def inner():
            with pytest.raises(SimulationError):
                engine.run()

        engine.schedule(1, inner)
        engine.run()

    def test_pending_counts_uncancelled(self, engine):
        e1 = engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        e1.cancel()
        assert engine.pending() == 1

    def test_until_advances_clock_past_only_cancelled_events(self, engine):
        # Regression: a heap holding nothing but cancelled events must not
        # pin the clock -- `now` has to advance all the way to `until`.
        for delay in (10, 20, 30):
            engine.schedule(delay, lambda: None).cancel()
        engine.run(until=100)
        assert engine.now == 100
        assert engine.pending() == 0

    def test_until_advances_when_live_events_lie_beyond(self, engine):
        engine.schedule(5, lambda: None).cancel()
        engine.schedule(500, lambda: None)
        engine.run(until=100)
        assert engine.now == 100
        assert engine.pending() == 1

    def test_cancel_after_fire_is_a_noop(self, engine):
        event = engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        engine.run()
        event.cancel()  # already fired; must not corrupt the live count
        event.cancel()
        assert engine.pending() == 0

    def test_cancel_during_run_keeps_pending_exact(self, engine):
        victim = engine.schedule(50, lambda: None)
        engine.schedule(10, victim.cancel)
        engine.schedule(60, lambda: None)
        executed = engine.run(until=20)
        assert executed == 1
        assert engine.pending() == 1
        assert engine.now == 20


class TestSignal:
    def test_waiters_fire_on_trigger(self, engine):
        signal = Signal(engine)
        seen = []
        signal.add_waiter(seen.append)
        engine.schedule(10, signal.trigger, "value")
        engine.run()
        assert seen == ["value"]

    def test_late_waiter_fires_immediately(self, engine):
        signal = Signal(engine)
        signal.trigger(42)
        seen = []
        signal.add_waiter(seen.append)
        engine.run()
        assert seen == [42]

    def test_double_trigger_rejected(self, engine):
        signal = Signal(engine)
        signal.trigger()
        with pytest.raises(SimulationError):
            signal.trigger()

    def test_multiple_waiters_all_fire(self, engine):
        signal = Signal(engine)
        seen = []
        for _ in range(3):
            signal.add_waiter(seen.append)
        signal.trigger("v")
        engine.run()
        assert seen == ["v", "v", "v"]


class TestSimProcess:
    def test_yield_delay_advances_time(self, engine):
        marks = []

        def proc():
            marks.append(engine.now)
            yield 100
            marks.append(engine.now)
            yield 50
            marks.append(engine.now)

        engine.process(proc())
        engine.run()
        assert marks == [0, 100, 150]

    def test_yield_signal_blocks_until_trigger(self, engine):
        signal = Signal(engine)
        got = []

        def proc():
            value = yield signal
            got.append((engine.now, value))

        engine.process(proc())
        engine.schedule(75, signal.trigger, "hello")
        engine.run()
        assert got == [(75, "hello")]

    def test_completion_signal_carries_return_value(self, engine):
        def worker():
            yield 10
            return "result"

        def waiter(proc):
            value = yield proc.completion
            results.append(value)

        results = []
        proc = engine.process(worker())
        engine.process(waiter(proc))
        engine.run()
        assert results == ["result"]
        assert proc.done and proc.result == "result"

    def test_negative_yield_raises(self, engine):
        def proc():
            yield -5

        engine.process(proc())
        with pytest.raises(SimulationError):
            engine.run()

    def test_bad_yield_type_raises(self, engine):
        def proc():
            yield "nonsense"

        engine.process(proc())
        with pytest.raises(SimulationError):
            engine.run()

    def test_yield_none_resumes_same_timestamp(self, engine):
        marks = []

        def proc():
            yield None
            marks.append(engine.now)

        engine.process(proc())
        engine.run()
        assert marks == [0]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            engine = Engine()
            trace = []
            for i in range(50):
                engine.schedule((i * 37) % 11, trace.append, i)
            engine.run()
            return trace

        assert build_and_run() == build_and_run()
