"""Hook registry, probe specs, context building."""

import pytest

from repro.ebpf import context as ctxmod
from repro.ebpf.assembler import Assembler
from repro.ebpf.context import build_empty_context, build_skb_context, context_field
from repro.ebpf.isa import R0, R1, R2
from repro.ebpf.memory import PACKET_REGION_BASE
from repro.ebpf.probes import (
    CallbackAttachment,
    EBPFAttachment,
    HookRegistry,
    ProbeEvent,
    ProbeKind,
    ProbeSpec,
)
from repro.ebpf.vm import BPFProgram, ExecutionEnv
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import (
    EthernetHeader,
    IPPROTO_UDP,
    IPv4Header,
    Packet,
    UDPHeader,
    VXLANHeader,
    make_udp_packet,
)

MAC_A, MAC_B = MACAddress.from_index(1), MACAddress.from_index(2)
IP_A, IP_B = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")


class TestProbeSpec:
    def test_parse(self):
        spec = ProbeSpec.parse("kprobe:udp_send_skb")
        assert spec.kind is ProbeKind.KPROBE
        assert spec.target == "udp_send_skb"
        assert spec.hook_name == "kprobe:udp_send_skb"

    def test_parse_device(self):
        assert ProbeSpec.parse("dev:vnet0").kind is ProbeKind.DEVICE

    @pytest.mark.parametrize("bad", ["nonsense:foo", "kprobe:", "justtext"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            ProbeSpec.parse(bad)


class TestContext:
    def _packet(self):
        return make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1234, 5678, b"payload")

    def test_fields_populated(self):
        ctx, data = build_skb_context(self._packet(), ifindex=3, cpu=2, hook_id=9)
        assert context_field(ctx, ctxmod.OFF_LEN, 4) == len(data)
        assert context_field(ctx, ctxmod.OFF_IFINDEX, 4) == 3
        assert context_field(ctx, ctxmod.OFF_RX_CPU, 4) == 2
        assert context_field(ctx, ctxmod.OFF_HOOK_ID, 4) == 9
        assert context_field(ctx, ctxmod.OFF_SRC_IP, 4) == IP_A.value
        assert context_field(ctx, ctxmod.OFF_DST_IP, 4) == IP_B.value
        assert context_field(ctx, ctxmod.OFF_SRC_PORT, 2) == 1234
        assert context_field(ctx, ctxmod.OFF_DST_PORT, 2) == 5678
        assert context_field(ctx, ctxmod.OFF_IP_PROTO, 1) == IPPROTO_UDP

    def test_data_pointers_span_packet(self):
        ctx, data = build_skb_context(self._packet())
        start = context_field(ctx, ctxmod.OFF_DATA, 8)
        end = context_field(ctx, ctxmod.OFF_DATA_END, 8)
        assert start == PACKET_REGION_BASE
        assert end - start == len(data)

    def test_payload_offset_plain(self):
        ctx, _ = build_skb_context(self._packet())
        assert context_field(ctx, ctxmod.OFF_PAYLOAD_OFF, 4) == 14 + 20 + 8

    def test_inner_context_strips_vxlan(self):
        inner = self._packet()
        outer = Packet(
            [
                EthernetHeader(MAC_B, MAC_A),
                IPv4Header(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), IPPROTO_UDP),
                UDPHeader(50000, 4789),
                VXLANHeader(7),
            ],
            inner,
        )
        ctx, data = build_skb_context(outer, use_inner=True)
        assert context_field(ctx, ctxmod.OFF_SRC_IP, 4) == IP_A.value
        assert context_field(ctx, ctxmod.OFF_DST_PORT, 2) == 5678
        # payload offset covers outer headers + inner headers
        assert context_field(ctx, ctxmod.OFF_PAYLOAD_OFF, 4) == (14 + 20 + 8 + 8) + (14 + 20 + 8)

    def test_empty_context(self):
        ctx, data = build_empty_context(ifindex=1, cpu=3, hook_id=7)
        assert len(data) == 0
        assert context_field(ctx, ctxmod.OFF_DATA, 8) == context_field(
            ctx, ctxmod.OFF_DATA_END, 8
        )
        assert context_field(ctx, ctxmod.OFF_RX_CPU, 4) == 3


class TestHookRegistry:
    def test_fire_counts_even_without_attachments(self):
        hooks = HookRegistry("n")
        event = ProbeEvent(hook="kprobe:foo", node="n")
        assert hooks.fire(event) == 0
        assert hooks.fires("kprobe:foo") == 1

    def test_attached_callback_runs_and_costs(self):
        hooks = HookRegistry("n")
        seen = []
        hooks.attach("dev:eth0", CallbackAttachment(seen.append, cost_ns=50))
        cost = hooks.fire(ProbeEvent(hook="dev:eth0", node="n"))
        assert cost == 50 and len(seen) == 1

    def test_multiple_attachments_costs_sum(self):
        hooks = HookRegistry("n")
        hooks.attach("h", CallbackAttachment(lambda e: None, cost_ns=10))
        hooks.attach("h", CallbackAttachment(lambda e: None, cost_ns=20))
        assert hooks.fire(ProbeEvent(hook="h", node="n")) == 30

    def test_detach(self):
        hooks = HookRegistry("n")
        att = hooks.attach("h", CallbackAttachment(lambda e: None, cost_ns=10))
        assert hooks.detach("h", att)
        assert not hooks.detach("h", att)
        assert hooks.fire(ProbeEvent(hook="h", node="n")) == 0

    def test_detach_all(self):
        hooks = HookRegistry("n")
        hooks.attach("a", CallbackAttachment(lambda e: None))
        hooks.attach("b", CallbackAttachment(lambda e: None))
        assert hooks.detach_all() == 2
        assert not hooks.has_attachments("a")


class TestEBPFAttachment:
    def _counting_program(self):
        asm = Assembler()
        asm.ldx_h(R2, R1, ctxmod.OFF_DST_PORT)
        asm.jne_imm(R2, 5678, "miss")
        asm.mov_imm(R0, 1)
        asm.exit_()
        asm.label("miss")
        asm.mov_imm(R0, 0)
        asm.exit_()
        program = BPFProgram(asm.assemble(), name="count")
        program.load()
        return program

    def test_match_statistics(self):
        program = self._counting_program()
        attachment = EBPFAttachment(program, ExecutionEnv())
        hit = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 5678, b"")
        miss = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 9, b"")
        attachment.handle(ProbeEvent(hook="h", node="n", packet=hit))
        attachment.handle(ProbeEvent(hook="h", node="n", packet=miss))
        assert attachment.events_seen == 2
        assert attachment.events_matched == 1

    def test_packetless_event_runs_with_empty_context(self):
        program = self._counting_program()
        attachment = EBPFAttachment(program, ExecutionEnv())
        cost = attachment.handle(ProbeEvent(hook="h", node="n", packet=None))
        assert cost > 0
        assert attachment.events_seen == 1
        assert attachment.events_matched == 0  # dst_port is 0 in empty ctx

    def test_env_cpu_follows_event(self):
        asm = Assembler()
        asm.call(8)  # smp_processor_id
        asm.exit_()
        program = BPFProgram(asm.assemble(), name="cpu")
        program.load()
        env = ExecutionEnv()
        attachment = EBPFAttachment(program, env)
        attachment.handle(ProbeEvent(hook="h", node="n",
                                     packet=make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b""),
                                     cpu=3))
        assert env.cpu == 3
