"""docs/SERVICES.md is a contract: the documented tables must match the code.

Same pattern as the STREAMING.md and OBSERVABILITY.md contract tests:

* the metrics table mirrors the six ``RPC_*`` specs in the contract;
* the RPC message table mirrors ``runtime.RPC_MESSAGE_FIELDS``, in order;
* the config table mirrors ``graph.SERVICEGRAPH_DEFAULTS``.
"""

import re
from pathlib import Path

from repro.obs import contract
from repro.services import RPC_MESSAGE_FIELDS, SERVICEGRAPH_DEFAULTS

REPO = Path(__file__).resolve().parent.parent
DOC_PATH = REPO / "docs" / "SERVICES.md"

RPC_SPECS = (
    contract.RPC_REQUESTS,
    contract.RPC_RESPONSES,
    contract.RPC_CALLS,
    contract.RPC_LINKS_RECORDED,
    contract.RPC_INFLIGHT,
    contract.RPC_REQUEST_LATENCY,
)


def _section(name: str) -> str:
    text = DOC_PATH.read_text()
    match = re.search(
        rf"<!-- {name}:begin -->\n(.*?)<!-- {name}:end -->", text, re.DOTALL
    )
    assert match, f"docs/SERVICES.md is missing the {name} marker block"
    return match.group(1)


def _table_rows(section: str):
    """Yield the cell lists of every data row in a markdown table."""
    for line in section.splitlines():
        line = line.strip()
        if not line.startswith("|") or set(line) <= {"|", "-", " "}:
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if cells and cells[0] in ("metric", "field", "key"):
            continue  # header row
        yield cells


def test_metrics_table_matches_contract():
    documented = {}
    for cells in _table_rows(_section("metrics")):
        name, kind, unit, labels, _meaning = cells
        documented[name.strip("`")] = (
            kind,
            unit,
            ()
            if labels == "—"
            else tuple(label.strip("`") for label in labels.split(",")),
        )
    actual = {
        spec.name: (spec.kind, spec.unit, spec.label_names) for spec in RPC_SPECS
    }
    assert documented == actual
    # The contract's exhaustive list has no rpc metric the doc misses.
    assert {s.name for s in RPC_SPECS} == {
        s.name for s in contract.ALL_METRICS if s.stage == contract.STAGE_RPC
    }


def test_rpc_message_table_matches_fields_in_order():
    documented = [
        (cells[0].strip("`"), cells[1].strip("`"), cells[2])
        for cells in _table_rows(_section("rpc-message"))
    ]
    assert documented == list(RPC_MESSAGE_FIELDS)


def test_servicegraph_config_table_matches_defaults():
    documented = {
        cells[0].strip("`"): int(cells[1].replace(",", "").replace("_", ""))
        for cells in _table_rows(_section("servicegraph-config"))
    }
    assert documented == dict(SERVICEGRAPH_DEFAULTS)


def test_rpc_stage_excluded_from_core():
    """CORE_* is ALL_* minus the rpc stage, nothing else."""
    assert contract.STAGE_RPC in contract.ALL_STAGES
    assert contract.STAGE_RPC not in contract.CORE_STAGES
    assert set(contract.ALL_STAGES) - set(contract.CORE_STAGES) == {contract.STAGE_RPC}
    assert [s for s in contract.ALL_METRICS if s.stage != contract.STAGE_RPC] == list(
        contract.CORE_METRICS
    )


def test_readme_links_doc():
    readme = (REPO / "README.md").read_text()
    assert "docs/SERVICES.md" in readme
