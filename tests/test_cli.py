"""The figure-regeneration CLI."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_run_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_all_figures_have_runners(self):
        parser = build_parser()
        for name in FIGURES:
            args = parser.parse_args(["run", name])
            assert args.figure == name

    def test_duration_flag_parsed(self):
        args = build_parser().parse_args(["run", "fig7a", "--duration-ms", "123"])
        assert args.duration_ms == 123


class TestExecution:
    def test_run_fig7a_end_to_end(self, capsys):
        assert main(["run", "fig7a", "--duration-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert "baseline avg" in out
        assert "paper <1%" in out

    def test_run_fig8b_end_to_end(self, capsys):
        assert main(["run", "fig8b", "--duration-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert "Case I" in out and "Case III" in out
