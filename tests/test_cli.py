"""The figure-regeneration CLI."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_run_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_all_figures_have_runners(self):
        parser = build_parser()
        for name in FIGURES:
            args = parser.parse_args(["run", name])
            assert args.figure == name

    def test_duration_flag_parsed(self):
        args = build_parser().parse_args(["run", "fig7a", "--duration-ms", "123"])
        assert args.duration_ms == 123


class TestExecution:
    def test_run_fig7a_end_to_end(self, capsys):
        assert main(["run", "fig7a", "--duration-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert "baseline avg" in out
        assert "paper <1%" in out

    def test_run_fig8b_end_to_end(self, capsys):
        assert main(["run", "fig8b", "--duration-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert "Case I" in out and "Case III" in out


class TestTimeline:
    """The `repro timeline` verb (docs/TIMELINES.md)."""

    def test_trace_id_accepts_hex_and_decimal(self):
        parser = build_parser()
        assert parser.parse_args(
            ["timeline", "--trace-id", "0xc2a5e8a3"]
        ).trace_id == 0xC2A5E8A3
        assert parser.parse_args(["timeline", "--trace-id", "99"]).trace_id == 99
        with pytest.raises(SystemExit):
            parser.parse_args(["timeline", "--trace-id", "zebra"])

    def test_text_format_reports_forest_and_analysis(self, capsys):
        assert main(["timeline", "--duration-ms", "150", "--format", "text"]) == 0
        out = capsys.readouterr().out
        assert "span forest:" in out
        assert "critical path" in out
        assert "per-hop percentiles:" in out

    def test_chrome_export_is_deterministic(self, tmp_path):
        # The acceptance property CI also diffs: same seed, same bytes.
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        for path in (first, second):
            assert main(["timeline", "--duration-ms", "150",
                         "--format", "chrome", "--out", str(path)]) == 0
        assert first.read_bytes() == second.read_bytes()
        import json

        doc = json.loads(first.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["trees"] > 0

    def test_otlp_export_parses(self, tmp_path):
        import json

        out = tmp_path / "otlp.json"
        assert main(["timeline", "--duration-ms", "150",
                     "--format", "otlp", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert spans and all(len(s["traceId"]) == 32 for s in spans)

    def test_unknown_trace_id_fails_cleanly(self, capsys):
        assert main(["timeline", "--duration-ms", "150", "--format", "text",
                     "--trace-id", "0x1"]) == 1
        assert "not found" in capsys.readouterr().err

    def test_single_trace_selection(self, capsys):
        # Find a real ID from a text run, then export just that trace.
        assert main(["timeline", "--duration-ms", "150", "--format", "text"]) == 0
        out = capsys.readouterr().out
        trace_id = next(
            line.split()[1].split(":", 1)[1]
            for line in out.splitlines()
            if line.startswith("packet")
        )
        assert main(["timeline", "--duration-ms", "150", "--format", "text",
                     "--trace-id", trace_id]) == 0
        selected = capsys.readouterr().out
        assert "span forest: 1 trees" in selected
