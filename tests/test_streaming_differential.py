"""The streaming differential suite (docs/STREAMING.md).

The headline invariant of the streaming query layer: once every window
is closed, the incremental answer is **byte-identical** to the offline
answer the TraceDB and the existing metric kernels compute from the
same records.  ``repro.streaming.reference`` is an independent oracle
-- it reuses ``throughput_at`` / ``latency_pairs`` / ``jitter_of``,
none of which the streaming engine calls -- so any drift in payload
accounting, first-occurrence semantics, float arithmetic, or sketch
bucketing between the two pipelines fails these byte comparisons.
"""

import pytest

from repro.experiments.fault_case import default_fault_plan, run_fault_case
from repro.experiments.macro_fleet import FleetConfig, run_macro_fleet
from repro.experiments.ovs_case import run_case
from repro.obs.scenario import run_quickstart_scenario
from repro.streaming import StreamingConfig, offline_reference_json


class TestQuickstart:
    @pytest.mark.parametrize("shards", [1, 4])
    def test_summary_matches_offline_reference(self, shards):
        result = run_quickstart_scenario(
            seed=11, duration_ns=400_000_000, shards=shards
        )
        agg = result.streaming
        assert agg.records > 0
        assert agg.windows_closed > 0
        assert agg.late_records == 0 and agg.gap_notices == 0
        assert agg.summary_json() == offline_reference_json(
            result.tracer.db, agg.config
        )

    def test_shard_count_does_not_change_the_frames(self):
        plain = run_quickstart_scenario(seed=11, duration_ns=300_000_000, shards=1)
        sharded = run_quickstart_scenario(seed=11, duration_ns=300_000_000, shards=4)
        assert plain.streaming.frames_as_dicts() == sharded.streaming.frames_as_dicts()
        assert plain.streaming.summary_json() == sharded.streaming.summary_json()


class TestOVSCaseIII:
    def test_summary_matches_offline_reference(self):
        result = run_case("III", duration_ns=400_000_000, trace=True, streaming=True)
        agg = result.tracer.streaming
        assert agg.records > 0
        assert agg.summary_json() == offline_reference_json(
            result.tracer.db, agg.config
        )

    def test_streaming_requires_trace(self):
        with pytest.raises(ValueError, match="requires trace"):
            run_case("III", streaming=True)


class TestFaultCase:
    def test_faulty_leg_with_retries_matches_offline_reference(self):
        result = run_fault_case(
            seed=7, plan=default_fault_plan(7), packets=60, retries=True
        )
        assert result.deduped_batches > 0  # faults actually fired
        config = StreamingConfig(chain=("send", "recv"), window_ns=10_000_000)
        assert result.streaming_summary == offline_reference_json(result.db, config)


class TestMacroFleetMerge:
    def test_merged_summary_identical_across_shard_counts(self):
        config = FleetConfig(nodes=80, racks=8, ticks=8)
        single = run_macro_fleet(config, shards=1)
        sharded = run_macro_fleet(config, shards=4)
        assert single.streaming.summary_json() == sharded.streaming.summary_json()
        assert single.streaming.frames_as_dicts() == sharded.streaming.frames_as_dicts()
        # The digest covers the frames, so cross-mode identity already
        # gates this in CI; assert the components directly anyway.
        assert single.digest16 == sharded.digest16
        assert single.metrics["stream_records"] == single.metrics["rows_inserted"]
