"""Oracle validation: vNetTracer's measured latencies must equal the
simulator's ground-truth path log.

Every packet carries a `path` of (node, point, true_time) entries the
substrate appends as it moves -- an oracle no real system has.  With
zero clock offsets, eBPF timestamps are the same engine clock, so the
tracer's per-packet latencies must match the oracle exactly.
"""

import pytest

from repro.core import FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.net.packet import IPPROTO_UDP
from repro.net.stack import KernelNode
from repro.net.device import VethDevice
from repro.net.addressing import IPv4Address
from repro.sim.clock import NodeClock
from repro.sim.engine import Engine


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_measured_latency_equals_oracle(seed):
    from repro.sim.rng import SeededRNG

    engine = Engine()
    node_a = KernelNode(engine, "alpha", num_cpus=2, rng=SeededRNG(seed, "a"))
    node_b = KernelNode(engine, "beta", num_cpus=2, rng=SeededRNG(seed, "b"))
    veth_a, veth_b = VethDevice.create_pair(node_a, "veth0", node_b, "veth0")
    ip_a, ip_b = IPv4Address("10.1.0.1"), IPv4Address("10.1.0.2")
    veth_a.ip, veth_b.ip = ip_a, ip_b
    node_a.add_route(IPv4Address("10.1.0.0"), 24, veth_a, src_ip=ip_a)
    node_b.add_route(IPv4Address("10.1.0.0"), 24, veth_b, src_ip=ip_b)
    node_a.add_neighbor(ip_b, veth_b.mac)
    node_b.add_neighbor(ip_a, veth_a.mac)

    tracer = VNetTracer(engine)
    tracer.add_agent(node_a)
    tracer.add_agent(node_b)
    spec = TracingSpec(
        rule=FilterRule(dst_port=9000, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=node_a.name, hook="kprobe:udp_send_skb",
                           label="send"),
            TracepointSpec(node=node_b.name, hook="kprobe:udp_rcv",
                           label="recv"),
        ],
    )
    tracer.deploy(spec)

    delivered = []
    server = node_b.bind_udp(ip_b, 9000)
    server.on_receive = lambda payload, src, sport, pkt: delivered.append(pkt)
    client = node_a.bind_udp(ip_a, 9001)
    for i in range(20):
        engine.schedule(1_000_000 + i * 777_000, client.sendto, ip_b, 9000,
                        b"x" * (10 + i), "oracle", i)
    engine.run(until=500_000_000)
    tracer.collect()

    # Oracle latencies from the packets' ground-truth path logs.
    oracle = []
    for packet in delivered:
        points = {rec.point: rec.true_time_ns for rec in packet.path}
        # The udp_rcv hook fires at the instant the path log records
        # the "udp_rcv" point; the send hook likewise at "udp_send_skb".
        oracle.append(points["udp_rcv"] - points["udp_send_skb"])

    measured = tracer.latencies("send", "recv")
    assert len(measured) == len(oracle) == 20
    # Clocks have zero offset here, so up to the BASE_NS constant the
    # eBPF timestamps ARE engine time: latencies agree exactly.
    assert sorted(measured) == sorted(oracle)


def test_clock_base_cancels_in_measurements(engine, two_nodes):
    """Even with the 1-hour BASE_NS uptime constant, same-node latency
    differences never see it."""
    node_a, node_b, ip_a, ip_b = two_nodes
    assert node_a.clock.monotonic_ns() >= NodeClock.BASE_NS
    tracer = VNetTracer(engine)
    tracer.add_agent(node_a)
    spec = TracingSpec(
        rule=FilterRule(dst_port=9000, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=node_a.name, hook="kprobe:udp_send_skb", label="s1"),
            TracepointSpec(node=node_a.name, hook="kprobe:ip_output", label="s2"),
        ],
    )
    tracer.deploy(spec)
    node_b.bind_udp(ip_b, 9000)
    client = node_a.bind_udp(ip_a, 9001)
    engine.schedule(1_000_000, client.sendto, ip_b, 9000, b"x")
    engine.run(until=100_000_000)
    tracer.collect()
    (latency,) = tracer.latencies("s1", "s2")
    assert 0 < latency < 10_000  # one stack stage, not an hour
