"""Differential suite for the batch span-reconstruction pipeline.

The columnar batch assembler (`SpanAssembler` over
`TraceDB.trace_group_rows`) replaced the per-row loop as the production
path; the per-row code survives in-tree purely as the oracle
(:func:`build_span_tree` / :func:`legacy_forest` /
:func:`build_rpc_forest`).  This suite proves, on every end-to-end
scenario the repo ships, that the two pipelines produce byte-identical
exports -- Chrome trace JSON (including the fast one-pass serializer
against the canonical ``json.dumps`` of the dict form), OTLP JSON, and
the text timeline -- and that the generation-keyed forest cache can
never serve a stale forest across any mutation path.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.records import TraceRecord
from repro.core.tracedb import TraceDB
from repro.tracing.export import (
    chrome_trace_dict,
    chrome_trace_json,
    otlp_json,
    timeline_text,
)
from repro.tracing.reconstruct import (
    SpanAssembler,
    build_rpc_forest,
    legacy_forest,
)

_CANONICAL = {"sort_keys": True, "separators": (",", ":")}


def _canonical_chrome(forest) -> str:
    return json.dumps(chrome_trace_dict(forest), **_CANONICAL) + "\n"


def assert_forest_equivalent(db, chain, complete_only=True, control_root=None):
    """Batch assembler vs per-row oracle, byte-compared on every export
    format.  The fast Chrome serializer is additionally checked against
    the canonical dumps of the dict form on the *oracle* forest, so a
    bug that corrupted both batch paths the same way still gets caught
    by the unchanged per-row dict exporter."""
    assembler = SpanAssembler(db)
    batch = assembler.forest(
        chain=chain, complete_only=complete_only, control_root=control_root
    )
    oracle = legacy_forest(
        db, None, chain, complete_only=complete_only, control_root=control_root
    )
    assert chrome_trace_json(batch) == _canonical_chrome(oracle)
    assert chrome_trace_json(batch) == chrome_trace_json(oracle)
    assert otlp_json(batch) == otlp_json(oracle)
    assert timeline_text(batch, limit=None) == timeline_text(oracle, limit=None)
    assert batch.orphan_records == oracle.orphan_records
    assert batch.span_count() == oracle.span_count()
    return batch


# ---------------------------------------------------------------------------
# Scenario differentials: every end-to-end flow the repo ships.
# ---------------------------------------------------------------------------


class TestScenarioDifferentials:
    def test_quickstart(self):
        from repro.obs.scenario import QUICKSTART_CHAIN, run_quickstart_scenario

        result = run_quickstart_scenario(seed=42, duration_ns=250_000_000)
        db = result.tracer.db
        assert db.rows_inserted > 0
        assert_forest_equivalent(db, list(QUICKSTART_CHAIN))
        # Partial trees too (complete_only=False exercises the
        # no-filter orphan accounting).
        assert_forest_equivalent(db, list(QUICKSTART_CHAIN), complete_only=False)
        assert_forest_equivalent(db, None, complete_only=False)

    def test_quickstart_shard_counts_byte_identical(self):
        from repro.obs.scenario import QUICKSTART_CHAIN, run_quickstart_scenario

        docs = []
        for shards in (1, 4):
            result = run_quickstart_scenario(
                seed=42, duration_ns=250_000_000, shards=shards
            )
            forest = assert_forest_equivalent(
                result.tracer.db, list(QUICKSTART_CHAIN)
            )
            docs.append(chrome_trace_json(forest))
        assert docs[0] == docs[1]

    def test_ovs_case_iii(self):
        from repro.experiments.ovs_case import run_case

        result = run_case("III", duration_ns=150_000_000, trace=True)
        assert result.tracer is not None and result.chain is not None
        db = result.tracer.db
        assert db.rows_inserted > 0
        assert_forest_equivalent(db, result.chain)

    def test_fault_case_both_legs(self):
        from repro.experiments.fault_case import default_fault_plan, run_fault_case

        for plan in (None, default_fault_plan()):
            result = run_fault_case(seed=7, plan=plan, packets=80)
            assert result.db is not None and result.db.rows_inserted > 0
            assert_forest_equivalent(result.db, ["send", "recv"])
            assert_forest_equivalent(result.db, ["send", "recv"], complete_only=False)

    def test_macro_fleet(self):
        from repro.experiments.macro_fleet import (
            FLEET_CHAIN,
            FleetConfig,
            run_macro_fleet,
        )

        result = run_macro_fleet(FleetConfig(), shards=1)
        assert result.db.rows_inserted > 0
        assert_forest_equivalent(result.db, list(FLEET_CHAIN))

    def test_rpc_case_both_shard_counts(self):
        from repro.experiments.rpc_case import run_rpc_case

        docs = []
        for shards in (1, 4):
            result = run_rpc_case(seed=21, requests=12, shards=shards)
            db = result.tracer.db
            links = result.deployment.links
            assembler = SpanAssembler(db)
            batch = assembler.rpc_forest(links)
            oracle = build_rpc_forest(db, links)
            assert chrome_trace_json(batch) == _canonical_chrome(oracle)
            assert otlp_json(batch) == otlp_json(oracle)
            assert timeline_text(batch, limit=None) == timeline_text(
                oracle, limit=None
            )
            # Plain packet forests on the same DB must agree too.
            assert_forest_equivalent(db, None, complete_only=False)
            docs.append(chrome_trace_json(batch))
        assert docs[0] == docs[1]


# ---------------------------------------------------------------------------
# Generation counter: every mutation path invalidates cached forests.
# ---------------------------------------------------------------------------

_LABELS = {0: "send", 1: "nic-out", 2: "nic-in", 3: "deliver"}
_CHAIN = ["send", "nic-out", "nic-in", "deliver"]


def _record(trace_id, tp, ts, length=64, cpu=0):
    return TraceRecord(
        trace_id=trace_id,
        tracepoint_id=tp,
        timestamp_ns=ts,
        packet_len=length,
        cpu=cpu,
    )


def _seed_db():
    db = TraceDB()
    for trace_id in (1, 2):
        base = 1_000 + trace_id * 100_000
        for tp, label in sorted(_LABELS.items()):
            node = "tx" if tp < 2 else "rx"
            db.insert(node, label, _record(trace_id, tp, base + tp * 1_000))
    return db


class TestGenerationAudit:
    def test_insert_bumps_generation(self):
        db = _seed_db()
        before = db.generation
        db.insert("tx", "send", _record(9, 0, 999_999))
        assert db.generation > before

    def test_insert_packed_bumps_generation(self):
        db = _seed_db()
        before = db.generation
        db.insert_packed("tx", _record(9, 0, 999_999).pack(), _LABELS)
        assert db.generation > before

    def test_mark_batch_bumps_generation_even_on_dedup(self):
        db = _seed_db()
        before = db.generation
        assert db.mark_batch("tx", 1) is True
        assert db.generation > before
        mid = db.generation
        assert db.mark_batch("tx", 1) is False  # deduped -- still a mutation
        assert db.generation > mid

    def test_set_clock_skew_bumps_generation(self):
        # Device spans read skew at assembly time, so a cached forest
        # must not survive a skew change.
        db = _seed_db()
        before = db.generation
        db.set_clock_skew("rx", -5_000)
        assert db.generation > before

    def test_cached_forest_invalidated_by_each_mutation(self):
        db = _seed_db()
        assembler = SpanAssembler(db)

        def snapshot():
            return chrome_trace_json(assembler.forest(chain=_CHAIN))

        first = snapshot()
        assert snapshot() == first
        assert assembler.forest_cache_hits == 1

        db.insert("tx", "send", _record(3, 0, 500_000))
        db.insert("tx", "nic-out", _record(3, 1, 501_000))
        db.insert("rx", "nic-in", _record(3, 2, 502_000))
        db.insert("rx", "deliver", _record(3, 3, 503_000))
        second = snapshot()
        assert second != first  # new trace appeared: no stale forest

        db.set_clock_skew("rx", -100_000)
        third = snapshot()
        assert third != second  # skew change re-aligned device offsets

    def test_cache_hit_returns_equivalent_forest(self):
        db = _seed_db()
        assembler = SpanAssembler(db)
        cold = assembler.forest(chain=_CHAIN)
        rebuilds = assembler.forest_rebuilds
        warm = assembler.forest(chain=_CHAIN)
        assert assembler.forest_rebuilds == rebuilds  # served from cache
        assert assembler.forest_cache_hits >= 1
        assert chrome_trace_json(warm) == chrome_trace_json(cold)
        assert otlp_json(warm) == otlp_json(cold)


# ---------------------------------------------------------------------------
# Property test: interleaved mutations never yield a stale cached forest.
# ---------------------------------------------------------------------------

_mutation_st = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(min_value=1, max_value=6),  # trace_id
            st.integers(min_value=0, max_value=3),  # tracepoint
            st.integers(min_value=0, max_value=2_000_000),  # ts
        ),
        st.tuples(
            st.just("packed"),
            st.integers(min_value=1, max_value=6),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=2_000_000),
        ),
        st.tuples(
            st.just("mark"),
            st.integers(min_value=1, max_value=3),  # seq
            st.just(0),
            st.just(0),
        ),
        st.tuples(
            st.just("skew"),
            st.integers(min_value=-1_000_000, max_value=1_000_000),
            st.just(0),
            st.just(0),
        ),
        st.tuples(st.just("query"), st.just(0), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=30,
)


class TestCacheFreshnessProperty:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=_mutation_st)
    def test_cached_forest_always_matches_fresh_rebuild(self, ops):
        db = TraceDB()
        assembler = SpanAssembler(db)
        for op, a, b, c in ops:
            if op == "insert":
                node = "tx" if b < 2 else "rx"
                db.insert(node, _LABELS[b], _record(a, b, c))
            elif op == "packed":
                node = "tx" if b < 2 else "rx"
                db.insert_packed(node, _record(a, b, c).pack(), _LABELS)
            elif op == "mark":
                db.mark_batch("tx", a)
            elif op == "skew":
                db.set_clock_skew("rx", a)
            # Whether this call hits the memo or rebuilds, it must equal
            # a from-scratch assembly over the per-row oracle.
            cached = assembler.forest(chain=_CHAIN, complete_only=True)
            fresh = legacy_forest(db, None, _CHAIN, complete_only=True)
            assert chrome_trace_json(cached) == _canonical_chrome(fresh)
