"""Workload applications on a simple two-node topology."""

import pytest

from repro.workloads.cpuhog import CPUHog
from repro.workloads.iperf import IperfTCPClient, IperfUDPClient, IperfUDPServer
from repro.workloads.memcached import (
    DataCachingClient,
    GET_SET_RATIO,
    MemcachedServer,
    request_is_set,
)
from repro.workloads.netperf import NetperfClient, NetperfServer
from repro.workloads.sockperf import SockperfClient, SockperfServer
from repro.workloads.stats import (
    jitter_range,
    jitter_series,
    percentile,
    summarize_latencies,
    throughput_bps,
)
from repro.sim.cpu import CPU


class TestStats:
    def test_summary_fields(self):
        summary = summarize_latencies([100, 200, 300, 400, 500])
        assert summary.count == 5
        assert summary.avg_ns == 300
        assert summary.min_ns == 100 and summary.max_ns == 500
        assert summary.p50_ns == 300

    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.99) == 99
        assert percentile(values, 0.999) == 100

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    def test_jitter(self):
        assert jitter_series([10, 30, 20]) == [20, -10]
        assert jitter_range([10, 30, 20]) == (-10, 20)
        assert jitter_range([5]) == (0, 0)

    def test_throughput(self):
        assert throughput_bps(1000, 1_000_000) == pytest.approx(8e6)
        assert throughput_bps(1000, 0) == 0.0

    def test_scaled_output(self):
        summary = summarize_latencies([1000, 2000])
        scaled = summary.scaled()
        assert scaled["avg"] == 1.5  # microseconds


class TestSockperf:
    def test_under_load_measures_latencies(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        SockperfServer(node_b, ip_b)
        client = SockperfClient(node_a, ip_a, ip_b, mps=10_000, mode="under-load")
        client.start(10_000_000)
        engine.run(until=50_000_000)
        assert client.received == client.sent > 50
        summary = client.summary()
        assert summary.avg_ns > 0
        assert client.loss_count == 0

    def test_ping_pong_serializes(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        SockperfServer(node_b, ip_b)
        client = SockperfClient(node_a, ip_a, ip_b, mode="ping-pong")
        client.start(5_000_000)
        engine.run(until=50_000_000)
        assert client.received > 10
        # Ping-pong: at most one outstanding -> sent == received (+1 in flight at cutoff)
        assert client.sent - client.received <= 1

    def test_latency_is_half_rtt(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        SockperfServer(node_b, ip_b)
        client = SockperfClient(node_a, ip_a, ip_b, mps=1000)
        client.start(5_000_000)
        engine.run(until=20_000_000)
        assert client.latencies_ns[0] == client.rtts_ns[0] // 2

    def test_bad_mode_rejected(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        with pytest.raises(ValueError):
            SockperfClient(node_a, ip_a, ip_b, mode="bogus")


class TestIperf:
    def test_udp_rate_and_goodput(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        server = IperfUDPServer(node_b, ip_b)
        client = IperfUDPClient(node_a, ip_a, ip_b, rate_pps=10_000)
        client.start(20_000_000)  # 20 ms -> ~200 datagrams
        engine.run(until=100_000_000)
        assert 150 <= server.datagrams <= 210
        assert server.goodput_bps() > 0

    def test_tcp_client_streams(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        from repro.net.addressing import IPv4Address

        sink = NetperfServer(node_b, ip_b, port=5201)
        client = IperfTCPClient(node_a, ip_a, ip_b, server_port=5201)
        client.start(20_000_000)
        engine.run(until=100_000_000)
        assert sink.bytes_received > 100_000


class TestNetperf:
    def test_tcp_stream_goodput(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        server = NetperfServer(node_b, ip_b)
        client = NetperfClient(node_a, ip_a, ip_b, gso_bytes=16 * 1448)
        client.start(20_000_000)
        engine.run(until=100_000_000)
        assert server.goodput_bps() > 1e8  # over a veth this flies

    def test_udp_stream_mode(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        server = NetperfServer(node_b, ip_b, udp=True)
        client = NetperfClient(node_a, ip_a, ip_b, mode="UDP_STREAM",
                               udp_rate_pps=20_000, udp_payload_bytes=1000)
        client.start(20_000_000)
        engine.run(until=100_000_000)
        assert server.bytes_received > 100_000

    def test_window_reset_discards_warmup(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        server = NetperfServer(node_b, ip_b)
        client = NetperfClient(node_a, ip_a, ip_b)
        client.start(20_000_000)
        engine.schedule(10_000_000, server.reset_window)
        engine.run(until=100_000_000)
        assert server.bytes_received > 0

    def test_bad_mode_rejected(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        with pytest.raises(ValueError):
            NetperfClient(node_a, ip_a, ip_b, mode="SCTP")


class TestMemcached:
    def test_get_set_schedule_ratio(self):
        kinds = [request_is_set(i) for i in range(100)]
        assert sum(kinds) == 100 // (GET_SET_RATIO + 1)

    def test_fixed_rate_request_latencies(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        server = MemcachedServer(node_b, ip_b)
        client = DataCachingClient(node_a, ip_a, ip_b, rps=2000,
                                   workers=2, connections_per_worker=2)
        client.start(20_000_000, start_delay_ns=5_000_000)
        engine.run(until=200_000_000)
        assert client.issued > 20
        assert len(client.latencies_ns) == client.issued
        assert server.gets > server.sets > 0

    def test_server_counts_request_mix(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        server = MemcachedServer(node_b, ip_b)
        client = DataCachingClient(node_a, ip_a, ip_b, rps=5000,
                                   workers=1, connections_per_worker=1)
        client.start(10_000_000, start_delay_ns=5_000_000)
        engine.run(until=200_000_000)
        total = server.gets + server.sets
        assert total == client.issued


class TestCPUHog:
    def test_keeps_cpu_saturated(self, engine):
        cpu = CPU(engine, "hog-cpu")
        hog = CPUHog(cpu, slice_ns=1000)
        hog.start()
        engine.run(until=1_000_000)
        assert cpu.utilization() > 0.99
        hog.stop()

    def test_stop_stops(self, engine):
        cpu = CPU(engine, "hog-cpu")
        hog = CPUHog(cpu, slice_ns=1000)
        hog.start()
        engine.run(until=100_000)
        hog.stop()
        engine.run(until=200_000)
        slices = hog.slices_run
        engine.run(until=400_000)
        assert hog.slices_run == slices
