"""docs/STREAMING.md is a contract: the documented tables must match the code.

Same pattern as the SHARDING.md and OBSERVABILITY.md contract tests:

* the metrics table mirrors the seven ``STREAM_*`` specs in the contract;
* the ``WindowFrame`` field table mirrors ``_fields``, in order;
* the sketch bucket edges mirror ``LATENCY_SKETCH_BUCKETS_NS``;
* the config defaults and bench budgets match the code constants.
"""

import importlib.util
import re
from pathlib import Path

from repro.obs import contract
from repro.streaming import (
    DEFAULT_TOP_K,
    DEFAULT_WINDOW_NS,
    LATENCY_SKETCH_BUCKETS_NS,
    WindowFrame,
)

REPO = Path(__file__).resolve().parent.parent
DOC_PATH = REPO / "docs" / "STREAMING.md"

STREAM_SPECS = (
    contract.STREAM_RECORDS,
    contract.STREAM_WINDOWS_CLOSED,
    contract.STREAM_LATE_OR_GAP,
    contract.STREAM_SKETCH_MERGES,
    contract.STREAM_TOPK_EVICTIONS,
    contract.STREAM_OPEN_WINDOWS,
    contract.STREAM_WATERMARK,
)


def _section(name: str) -> str:
    text = DOC_PATH.read_text()
    match = re.search(
        rf"<!-- {name}:begin -->\n(.*?)<!-- {name}:end -->", text, re.DOTALL
    )
    assert match, f"docs/STREAMING.md is missing the {name} marker block"
    return match.group(1)


def _table_rows(section: str):
    """Yield the cell lists of every data row in a markdown table."""
    for line in section.splitlines():
        line = line.strip()
        if not line.startswith("|") or set(line) <= {"|", "-", " "}:
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if cells and cells[0] in ("metric", "field", "constant", "budget",
                                  "bucket upper edges (ns)"):
            continue  # header row
        yield cells


def test_metrics_table_matches_contract():
    documented = {}
    for cells in _table_rows(_section("metrics")):
        name, kind, unit, labels, _meaning = cells
        documented[name.strip("`")] = (
            kind,
            unit,
            ()
            if labels == "—"
            else tuple(label.strip("`") for label in labels.split(",")),
        )
    actual = {
        spec.name: (spec.kind, spec.unit, spec.label_names) for spec in STREAM_SPECS
    }
    assert documented == actual
    # The contract's exhaustive list has no streaming metric the doc misses.
    assert {s.name for s in STREAM_SPECS} == {
        s.name for s in contract.ALL_METRICS if s.stage == contract.STAGE_STREAMING
    }


def test_window_frame_table_matches_fields_in_order():
    documented = [
        cells[0].strip("`") for cells in _table_rows(_section("window-frame"))
    ]
    assert tuple(documented) == WindowFrame._fields


def test_documented_sketch_bounds_match_code():
    (cells,) = _table_rows(_section("sketch-bounds"))
    documented = tuple(int(edge.replace("_", "")) for edge in cells[0].split(","))
    assert documented == LATENCY_SKETCH_BUCKETS_NS


def test_documented_config_defaults_match_code():
    documented = {
        cells[0].strip("`"): int(cells[1].replace("_", ""))
        for cells in _table_rows(_section("config"))
    }
    assert documented == {
        "DEFAULT_WINDOW_NS": DEFAULT_WINDOW_NS,
        "DEFAULT_TOP_K": DEFAULT_TOP_K,
    }


def test_documented_budgets_match_bench_constants():
    spec = importlib.util.spec_from_file_location(
        "bench_micro_streaming_agg",
        REPO / "benchmarks" / "bench_micro_streaming_agg.py",
    )
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)
    documented = {
        cells[0].strip("`"): float(cells[1])
        for cells in _table_rows(_section("budgets"))
    }
    assert documented == {
        "STREAMING_OVERHEAD_BUDGET": bench.STREAMING_OVERHEAD_BUDGET,
        "DRAIN_BUDGET": bench.DRAIN_BUDGET,
    }
