"""Fault plans and the injector: validation, determinism, arming."""

import pytest

from repro.faults import (
    CLEAN_DECISION,
    ChannelFaults,
    CrashEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    RingPressureEvent,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine


class TestPlanValidation:
    def test_channel_probabilities_bounded(self):
        with pytest.raises(FaultPlanError):
            ChannelFaults(loss_prob=1.5)
        with pytest.raises(FaultPlanError):
            ChannelFaults(dup_prob=-0.1)
        with pytest.raises(FaultPlanError):
            ChannelFaults(delay_ns_max=-1)

    def test_crash_event_validation(self):
        with pytest.raises(FaultPlanError):
            CrashEvent(node="", at_ns=0)
        with pytest.raises(FaultPlanError):
            CrashEvent(node="n", at_ns=-1)
        with pytest.raises(FaultPlanError):
            CrashEvent(node="n", at_ns=0, restart_after_ns=0)
        # None = stays down; that's fine.
        CrashEvent(node="n", at_ns=0, restart_after_ns=None)

    def test_ring_pressure_validation(self):
        with pytest.raises(FaultPlanError):
            RingPressureEvent(node="", at_ns=0, reserve_bytes=1, duration_ns=1)
        with pytest.raises(FaultPlanError):
            RingPressureEvent(node="n", at_ns=0, reserve_bytes=0, duration_ns=1)
        with pytest.raises(FaultPlanError):
            RingPressureEvent(node="n", at_ns=0, reserve_bytes=1, duration_ns=0)

    def test_active_flag(self):
        assert not FaultPlan(seed=1).active
        assert FaultPlan(seed=1, control=ChannelFaults(loss_prob=0.1)).active
        assert FaultPlan(seed=1, shipment=ChannelFaults(dup_prob=0.1)).active
        assert FaultPlan(seed=1, crashes=[CrashEvent("n", 10)]).active
        assert FaultPlan(
            seed=1, ring_pressure=[RingPressureEvent("n", 10, 64, 100)]
        ).active

    def test_describe(self):
        assert "no faults" in FaultPlan(seed=3).describe()
        text = FaultPlan(
            seed=3,
            control=ChannelFaults(loss_prob=0.2),
            crashes=[CrashEvent("n", 10)],
        ).describe()
        assert "seed=3" in text and "control" in text and "crashes=1" in text


class TestDecisionStreams:
    def _plan(self, seed=11):
        return FaultPlan(
            seed=seed,
            control=ChannelFaults(loss_prob=0.3, dup_prob=0.2, delay_ns_max=5_000),
            shipment=ChannelFaults(loss_prob=0.2, dup_prob=0.3, delay_ns_max=9_000),
        )

    def test_same_seed_same_decisions(self):
        a = FaultInjector(Engine(), self._plan())
        b = FaultInjector(Engine(), self._plan())
        assert [a.control_decision() for _ in range(200)] == [
            b.control_decision() for _ in range(200)
        ]
        assert [a.shipment_decision() for _ in range(200)] == [
            b.shipment_decision() for _ in range(200)
        ]

    def test_different_seeds_diverge(self):
        a = FaultInjector(Engine(), self._plan(seed=11))
        b = FaultInjector(Engine(), self._plan(seed=12))
        assert [a.control_decision() for _ in range(64)] != [
            b.control_decision() for _ in range(64)
        ]

    def test_streams_are_independent(self):
        """Draining one channel's stream must not shift the other's."""
        a = FaultInjector(Engine(), self._plan())
        b = FaultInjector(Engine(), self._plan())
        for _ in range(100):
            a.control_decision()  # only a consumes control draws
        assert [a.shipment_decision() for _ in range(50)] == [
            b.shipment_decision() for _ in range(50)
        ]

    def test_inactive_channel_is_clean(self):
        plan = FaultPlan(seed=5, shipment=ChannelFaults(loss_prob=0.5))
        injector = FaultInjector(Engine(), plan)
        assert all(
            injector.control_decision() is CLEAN_DECISION for _ in range(20)
        )

    def test_certain_loss_drops_everything(self):
        plan = FaultPlan(
            seed=5,
            control=ChannelFaults(loss_prob=1.0, dup_prob=1.0, delay_ns_max=1_000),
        )
        injector = FaultInjector(Engine(), plan)
        for _ in range(50):
            decision = injector.control_decision()
            assert decision.drop
            # A dropped message is simply gone: never also duplicated
            # or delayed.
            assert not decision.duplicate
            assert decision.extra_delay_ns == 0
            assert not decision.clean
        assert CLEAN_DECISION.clean

    def test_injected_kinds_counted(self):
        registry = MetricsRegistry()
        plan = FaultPlan(seed=5, control=ChannelFaults(loss_prob=1.0))
        injector = FaultInjector(Engine(), plan, registry=registry)
        for _ in range(7):
            injector.control_decision()
        metric = registry.get("vnt_fault_control_injected_total")
        assert dict(metric.samples()) == {("loss",): 7.0}


class _StubAgent:
    def __init__(self, ring=None):
        self.ring = ring
        self.crashed = False
        self.crashes = 0
        self.restarts = 0

    def crash(self):
        self.crashed = True
        self.crashes += 1

    def restart(self):
        self.crashed = False
        self.restarts += 1


class TestArming:
    def test_crash_and_restart_scheduled(self):
        engine = Engine()
        agent = _StubAgent()
        plan = FaultPlan(
            seed=1, crashes=[CrashEvent("n", at_ns=1_000, restart_after_ns=500)]
        )
        injector = FaultInjector(engine, plan)
        injector.arm(lambda name: agent if name == "n" else None)
        injector.arm(lambda name: agent)  # idempotent: no double crash
        engine.run(until=1_200)
        assert agent.crashed and agent.crashes == 1
        engine.run(until=2_000)
        assert not agent.crashed and agent.restarts == 1
        assert agent.crashes == 1

    def test_past_crash_time_clamps_to_now(self):
        engine = Engine()
        engine.run(until=5_000)
        agent = _StubAgent()
        plan = FaultPlan(seed=1, crashes=[CrashEvent("n", at_ns=100)])
        FaultInjector(engine, plan).arm(lambda name: agent)
        engine.run(until=5_001)
        assert agent.crashed

    def test_unknown_node_is_ignored(self):
        engine = Engine()
        plan = FaultPlan(seed=1, crashes=[CrashEvent("ghost", at_ns=10)])
        FaultInjector(engine, plan).arm(lambda name: None)
        engine.run(until=100)  # must not raise

    def test_ring_pressure_window(self):
        from repro.core.ringbuffer import TraceRingBuffer

        engine = Engine()
        ring = TraceRingBuffer(
            engine, capacity_bytes=1024, flush_interval_ns=1_000_000,
            on_flush=lambda batch: None,
        )
        agent = _StubAgent(ring=ring)
        plan = FaultPlan(
            seed=1,
            ring_pressure=[
                RingPressureEvent("n", at_ns=100, reserve_bytes=1000,
                                  duration_ns=400)
            ],
        )
        registry = MetricsRegistry()
        FaultInjector(engine, plan, registry=registry).arm(lambda name: agent)
        engine.run(until=200)
        assert ring.effective_capacity_bytes == 24
        assert registry.total("vnt_fault_ring_pressure_total") == 1
        engine.run(until=600)  # window over: full capacity restored
        assert ring.effective_capacity_bytes == 1024

    def test_pressure_skips_crashed_agent(self):
        engine = Engine()
        agent = _StubAgent(ring=None)
        agent.crashed = True
        plan = FaultPlan(
            seed=1,
            ring_pressure=[RingPressureEvent("n", 10, 64, 100)],
        )
        FaultInjector(engine, plan).arm(lambda name: agent)
        engine.run(until=200)  # no ring, crashed: a no-op
