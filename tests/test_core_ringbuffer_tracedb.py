"""The kernel ring buffer and the trace database."""

import pytest

from repro.core.records import RECORD_BYTES, TraceRecord
from repro.core.ringbuffer import RingBufferFull, TraceRingBuffer
from repro.core.tracedb import TraceDB
from repro.obs import contract
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine


def _record(trace_id=1, tp=1, ts=100, length=64, cpu=0):
    return TraceRecord(trace_id, tp, ts, length, cpu)


class TestRingBuffer:
    def test_size_bounds_enforced(self, engine):
        with pytest.raises(ValueError):
            TraceRingBuffer(engine, 16, 1000, lambda b: None)
        with pytest.raises(ValueError):
            TraceRingBuffer(engine, 128 * 1024, 1000, lambda b: None)
        TraceRingBuffer(engine, 32, 1000, lambda b: None)

    def test_append_until_full_then_drop(self, engine):
        ring = TraceRingBuffer(engine, 96, 1000, lambda b: None)  # 4 records of 24B
        results = [ring.append(b"x" * RECORD_BYTES) for _ in range(6)]
        assert results == [True, True, True, True, False, False]
        assert ring.total_dropped == 2
        assert ring.used_bytes == 96

    def test_flush_drains_and_resets(self, engine):
        flushed = []
        ring = TraceRingBuffer(engine, 1024, 1000, flushed.extend)
        for i in range(3):
            ring.append(bytes([i]) * RECORD_BYTES)
        assert ring.flush() == 3
        assert len(flushed) == 3
        assert ring.used_bytes == 0
        assert ring.flush() == 0  # empty flush is a no-op

    def test_periodic_flush_timer(self, engine):
        flushed = []
        ring = TraceRingBuffer(engine, 1024, 10_000, flushed.extend)
        ring.start()
        engine.schedule(1_000, lambda: ring.append(b"a" * RECORD_BYTES))
        engine.schedule(15_000, lambda: ring.append(b"b" * RECORD_BYTES))
        engine.run(until=30_000)
        ring.stop()
        assert len(flushed) == 2
        assert ring.flushes >= 2

    def test_stop_cancels_timer(self, engine):
        ring = TraceRingBuffer(engine, 1024, 10_000, lambda b: None)
        ring.start()
        ring.stop()
        engine.run(until=50_000)
        assert ring.flushes == 0

    def test_space_reusable_after_flush(self, engine):
        ring = TraceRingBuffer(engine, 48, 1000, lambda b: None)  # 2 records
        assert ring.append(b"x" * RECORD_BYTES)
        assert ring.append(b"x" * RECORD_BYTES)
        assert not ring.append(b"x" * RECORD_BYTES)
        ring.flush()
        assert ring.append(b"x" * RECORD_BYTES)


class TestStrictMode:
    def test_overflow_raises_and_still_counts(self, engine):
        ring = TraceRingBuffer(engine, 48, 1000, lambda b: None, strict=True)
        assert ring.append(b"x" * RECORD_BYTES)
        assert ring.append(b"x" * RECORD_BYTES)
        with pytest.raises(RingBufferFull):
            ring.append(b"x" * RECORD_BYTES)
        assert ring.total_dropped == 1
        # Buffered records are intact; the ring keeps working.
        assert ring.used_bytes == 2 * RECORD_BYTES
        assert ring.flush() == 2
        assert ring.append(b"x" * RECORD_BYTES)

    def test_default_mode_never_raises(self, engine):
        ring = TraceRingBuffer(engine, 48, 1000, lambda b: None)
        for _ in range(5):
            ring.append(b"x" * RECORD_BYTES)
        assert ring.total_dropped == 3


class TestOversizeRecord:
    def test_record_larger_than_ring_drops_per_attempt(self, engine):
        flushed = []
        ring = TraceRingBuffer(engine, 32, 1000, flushed.extend)
        giant = b"x" * 64  # exceeds capacity_bytes outright
        assert not ring.append(giant)
        assert not ring.append(giant)
        assert ring.total_dropped == 2
        # The ring never wedges: fitting records still flow afterwards.
        assert ring.append(b"y" * RECORD_BYTES)
        assert ring.flush() == 1
        assert flushed == [b"y" * RECORD_BYTES]
        assert not ring.append(giant)
        assert ring.total_dropped == 3

    def test_oversize_raises_in_strict_mode(self, engine):
        ring = TraceRingBuffer(engine, 32, 1000, lambda b: None, strict=True)
        with pytest.raises(RingBufferFull):
            ring.append(b"x" * 64)
        assert ring.total_dropped == 1
        assert ring.append(b"y" * RECORD_BYTES)  # still usable


class TestRingMetrics:
    def test_ring_exports_its_contract_stage(self, engine):
        reg = MetricsRegistry()
        ring = TraceRingBuffer(engine, 48, 1000, lambda b: None,
                               registry=reg, node="n1")
        for _ in range(3):
            ring.append(b"x" * RECORD_BYTES)
        ring.flush()
        assert reg.get(contract.RING_APPENDED.name).value(("n1",)) == 2
        assert reg.get(contract.RING_DROPPED.name).value(("n1",)) == 1
        assert reg.get(contract.RING_FLUSHES.name).value(("n1",)) == 1
        assert reg.get(contract.RING_OCCUPANCY_HWM.name).value(("n1",)) == 48
        batch = reg.get(contract.RING_FLUSH_BATCH.name).data(("n1",))
        assert batch.count == 1
        assert batch.sum == 2

    def test_hwm_survives_flush(self, engine):
        reg = MetricsRegistry()
        ring = TraceRingBuffer(engine, 96, 1000, lambda b: None,
                               registry=reg, node="n1")
        for _ in range(3):
            ring.append(b"x" * RECORD_BYTES)
        ring.flush()
        ring.append(b"x" * RECORD_BYTES)
        hwm = reg.get(contract.RING_OCCUPANCY_HWM.name)
        assert hwm.value(("n1",)) == 3 * RECORD_BYTES


class TestTraceRecord:
    def test_pack_unpack_roundtrip(self):
        record = _record(trace_id=0xDEADBEEF, tp=42, ts=1 << 40, length=1500, cpu=3)
        assert TraceRecord.unpack(record.pack()) == record

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.unpack(b"\x00" * 10)


class TestTraceDB:
    def test_insert_and_table_query(self):
        db = TraceDB()
        db.insert("n1", "point-a", _record(ts=10))
        db.insert("n1", "point-a", _record(ts=20))
        db.insert("n1", "point-b", _record(ts=30))
        assert db.count("point-a") == 2
        assert sorted(db.tables()) == ["point-a", "point-b"]
        assert db.rows_inserted == 3

    def test_trace_id_index_ordered_by_time(self):
        db = TraceDB()
        db.insert("n1", "b", _record(trace_id=7, ts=50))
        db.insert("n1", "a", _record(trace_id=7, ts=10))
        rows = db.rows_for_trace(7)
        assert [row.label for row in rows] == ["a", "b"]

    def test_zero_trace_id_not_indexed(self):
        db = TraceDB()
        db.insert("n1", "a", _record(trace_id=0))
        assert db.rows_for_trace(0) == []

    def test_skew_alignment_applied_on_insert(self):
        db = TraceDB()
        db.set_clock_skew("n2", 500)
        row = db.insert("n2", "a", _record(ts=100))
        assert row.timestamp_ns == 600
        assert row.raw_timestamp_ns == 100
        assert db.clock_skew("n2") == 500
        assert db.clock_skew("unknown") == 0

    def test_time_range_query(self):
        db = TraceDB()
        for ts in (10, 20, 30, 40):
            db.insert("n", "a", _record(ts=ts))
        rows = db.time_range("a", start_ns=15, end_ns=35)
        assert [r.timestamp_ns for r in rows] == [20, 30]

    def test_trace_ids_at_dedupes(self):
        db = TraceDB()
        db.insert("n", "a", _record(trace_id=5, ts=10))
        db.insert("n", "a", _record(trace_id=5, ts=99))  # duplicate firing
        first = db.trace_ids_at("a")
        assert first[5].timestamp_ns == 10

    def test_complete_and_incomplete_traces(self):
        db = TraceDB()
        db.insert("n", "a", _record(trace_id=1, ts=1))
        db.insert("n", "b", _record(trace_id=1, ts=2))
        db.insert("n", "a", _record(trace_id=2, ts=3))  # dropped before b
        assert db.complete_traces(["a", "b"]) == [1]
        assert db.incomplete_traces(["a", "b"]) == [2]
