"""Devices: veth pairs, bridges, softirq batching, RPS steering."""

import pytest

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.bridge import BridgeDevice
from repro.net.device import LoopbackDevice, VethDevice
from repro.net.packet import make_udp_packet
from repro.net.stack import KernelNode
from repro.sim.engine import Engine

IP_A, IP_B = IPv4Address("10.2.0.1"), IPv4Address("10.2.0.2")


def _packet(src_mac, dst_mac, dst_ip=IP_B, dst_port=9000, src_port=1000):
    return make_udp_packet(src_mac, dst_mac, IP_A, dst_ip, src_port, dst_port, b"p")


class TestVeth:
    def test_pair_delivery(self, engine):
        node_a = KernelNode(engine, "a")
        node_b = KernelNode(engine, "b")
        veth_a, veth_b = VethDevice.create_pair(node_a, "v0", node_b, "v0")
        veth_b.ip = IP_B
        node_b.bind_udp(IP_B, 9000)
        veth_a.transmit(_packet(veth_a.mac, veth_b.mac), None)
        engine.run()
        assert veth_b.stats.rx_packets == 1
        assert veth_a.stats.tx_packets == 1

    def test_down_device_drops(self, engine):
        node = KernelNode(engine, "n")
        veth_a, veth_b = VethDevice.create_pair(node, "v0", node, "v1")
        veth_a.up = False
        veth_a.transmit(_packet(veth_a.mac, veth_b.mac), None)
        engine.run()
        assert veth_a.stats.tx_dropped == 1
        assert veth_b.stats.rx_packets == 0

    def test_unpaired_veth_drops(self, engine):
        node = KernelNode(engine, "n")
        lone = VethDevice(node, "lone")
        lone.transmit(_packet(lone.mac, MACAddress.broadcast()), None)
        engine.run()
        assert lone.stats.tx_dropped == 1

    def test_loopback_roundtrip(self, engine):
        node = KernelNode(engine, "n")
        lo = LoopbackDevice(node)
        got = []
        sock = node.bind_udp(IPv4Address("127.0.0.1"), 9000)
        sock.on_receive = lambda payload, *r: got.append(payload)
        packet = make_udp_packet(
            lo.mac, lo.mac, IPv4Address("127.0.0.1"), IPv4Address("127.0.0.1"), 1, 9000, b"lo"
        )
        lo.transmit(packet, None)
        engine.run()
        assert got == [b"lo"]


class TestBridge:
    def _bridged(self, engine):
        node = KernelNode(engine, "host")
        bridge = BridgeDevice(node, "br0")
        a1, a2 = VethDevice.create_pair(node, "p1", node, "e1")
        b1, b2 = VethDevice.create_pair(node, "p2", node, "e2")
        bridge.add_port(a1)
        bridge.add_port(b1)
        return node, bridge, (a1, a2, b1, b2)

    def test_learning_then_unicast(self, engine):
        node, bridge, (a1, a2, b1, b2) = self._bridged(engine)
        # First frame from e2's MAC through p2 teaches the bridge.
        frame1 = _packet(b2.mac, a2.mac)
        b1.master = bridge  # already set by add_port; keep explicit
        bridge.ingress(b1, frame1, node.cpus[0])
        engine.run()
        assert bridge.fdb[b2.mac.value] is b1
        # Reply towards the learned MAC is unicast, not flooded.
        flooded_before = bridge.flooded
        bridge.ingress(a1, _packet(a2.mac, b2.mac), node.cpus[0])
        engine.run()
        assert bridge.flooded == flooded_before
        assert bridge.forwarded >= 1

    def test_unknown_destination_floods(self, engine):
        node, bridge, (a1, a2, b1, b2) = self._bridged(engine)
        bridge.ingress(a1, _packet(a2.mac, MACAddress.from_index(250)), node.cpus[0])
        engine.run()
        assert bridge.flooded == 1
        assert b1.stats.tx_packets == 1  # flooded out the other port
        assert a1.stats.tx_packets == 0  # not back out the ingress port

    def test_frame_to_bridge_mac_goes_up_stack(self, engine):
        node, bridge, (a1, a2, b1, b2) = self._bridged(engine)
        bridge.ip = IP_B
        got = []
        sock = node.bind_udp(IP_B, 9000)
        sock.on_receive = lambda payload, *r: got.append(payload)
        bridge.ingress(a1, _packet(a2.mac, bridge.mac), node.cpus[0])
        engine.run()
        assert got == [b"p"]

    def test_double_enslave_rejected(self, engine):
        node, bridge, (a1, a2, b1, b2) = self._bridged(engine)
        other = BridgeDevice(node, "br1")
        with pytest.raises(ValueError):
            other.add_port(a1)


class TestSoftirq:
    def test_invocations_batch_under_load(self, engine):
        node = KernelNode(engine, "n", num_cpus=1)
        veth_a, veth_b = VethDevice.create_pair(node, "x0", node, "x1")
        veth_b.napi_quota = 64
        for _ in range(32):
            veth_b.receive(_packet(veth_a.mac, veth_b.mac))
        engine.run()
        # One (or very few) net_rx_action runs drained all 32 packets.
        assert node.softirq.packets_processed[0] == 32
        assert node.softirq.invocations[0] <= 3

    def test_per_device_quota_forces_extra_invocations(self, engine):
        node = KernelNode(engine, "n", num_cpus=1)
        veth_a, veth_b = VethDevice.create_pair(node, "x0", node, "x1")
        veth_b.napi_quota = 4
        for _ in range(16):
            veth_b.receive(_packet(veth_a.mac, veth_b.mac))
        engine.run()
        assert node.softirq.invocations[0] >= 4

    def test_backlog_overflow_drops(self, engine):
        node = KernelNode(engine, "n", num_cpus=1)
        node.costs = node.costs.with_overrides(rx_backlog_packets=8)
        veth_a, veth_b = VethDevice.create_pair(node, "x0", node, "x1")
        for _ in range(20):
            veth_b.receive(_packet(veth_a.mac, veth_b.mac))
        assert node.softirq.backlog_drops > 0
        assert veth_b.stats.rx_dropped == node.softirq.backlog_drops

    def test_rps_steers_flow_consistently(self, engine):
        node = KernelNode(engine, "n", num_cpus=4)
        veth_a, veth_b = VethDevice.create_pair(node, "x0", node, "x1")
        veth_b.rps_enabled = True
        cpus = set()
        for _ in range(5):
            cpus.add(veth_b.steer_cpu(_packet(veth_a.mac, veth_b.mac)))
        assert len(cpus) == 1  # one flow -> one CPU, always

    def test_irq_affinity_without_rps(self, engine):
        node = KernelNode(engine, "n", num_cpus=4)
        veth_a, veth_b = VethDevice.create_pair(node, "x0", node, "x1")
        veth_b.irq_cpu = 2
        assert veth_b.steer_cpu(_packet(veth_a.mac, veth_b.mac)) == 2

    def test_steering_hook_fires_per_packet(self, engine):
        node = KernelNode(engine, "n", num_cpus=2)
        veth_a, veth_b = VethDevice.create_pair(node, "x0", node, "x1")
        for _ in range(3):
            veth_b.receive(_packet(veth_a.mac, veth_b.mac))
        engine.run()
        assert node.hooks.fires("kprobe:get_rps_cpu") == 3
