"""Assembler: encoding, labels, jump resolution."""

import pytest

from repro.ebpf import isa
from repro.ebpf.assembler import Assembler, AssemblerError
from repro.ebpf.isa import R0, R1, R2, disassemble


class TestEncoding:
    def test_mov_imm_encoding(self):
        asm = Assembler()
        asm.mov_imm(R0, 42)
        (insn,) = asm.assemble()
        assert insn.insn_class == isa.BPF_ALU64
        assert insn.alu_op == isa.BPF_MOV
        assert insn.uses_imm and insn.imm == 42

    def test_mov_reg_uses_x_source(self):
        asm = Assembler()
        asm.mov_reg(R0, R1)
        (insn,) = asm.assemble()
        assert not insn.uses_imm and insn.src == R1

    def test_ldx_sizes(self):
        asm = Assembler()
        asm.ldx_b(R0, R1)
        asm.ldx_h(R0, R1)
        asm.ldx_w(R0, R1)
        asm.ldx_dw(R0, R1)
        sizes = [insn.size_bytes for insn in asm.assemble()]
        assert sizes == [1, 2, 4, 8]

    def test_bad_access_size_rejected(self):
        asm = Assembler()
        with pytest.raises(AssemblerError):
            asm.ldx(3, R0, R1)

    def test_ld_map_fd_two_slots(self):
        asm = Assembler()
        asm.ld_map_fd(R1, 7)
        insns = asm.assemble()
        assert len(insns) == 2
        assert insns[0].src == isa.BPF_PSEUDO_MAP_FD and insns[0].imm == 7
        assert insns[1].opcode == 0

    def test_ld_imm64_splits_value(self):
        asm = Assembler()
        asm.ld_imm64(R2, 0x1122334455667788)
        insns = asm.assemble()
        assert insns[0].imm == 0x55667788
        assert insns[1].imm == 0x11223344


class TestLabels:
    def test_forward_jump_resolved(self):
        asm = Assembler()
        asm.jeq_imm(R1, 0, "done")  # idx 0
        asm.mov_imm(R0, 1)  # idx 1
        asm.label("done")
        asm.exit_()  # idx 2
        insns = asm.assemble()
        assert insns[0].offset == 1  # 0 + 1 + 1 == 2

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("a")
        with pytest.raises(AssemblerError):
            asm.label("a")

    def test_unknown_label_rejected(self):
        asm = Assembler()
        asm.ja("nowhere")
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_backward_jump_rejected_at_assembly(self):
        asm = Assembler()
        asm.label("loop")
        asm.mov_imm(R0, 0)
        asm.ja("loop")
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_numeric_offsets_pass_through(self):
        asm = Assembler()
        asm.ja(3)
        (insn,) = asm.assemble()
        assert insn.offset == 3


class TestDisassembler:
    def test_disassemble_covers_common_forms(self):
        asm = Assembler()
        asm.mov_imm(R0, 5)
        asm.ldx_w(R2, R1, 16)
        asm.jne_imm(R2, 7, "out")
        asm.call(5)
        asm.label("out")
        asm.exit_()
        text = disassemble(asm.assemble())
        assert "mov r0, 5" in text
        assert "ldx4 r2, [r1+16]" in text
        assert "call helper#5" in text
        assert "exit" in text
