"""Agent + dispatcher + collector: the full control/data plane, on a
two-node veth topology."""

import pytest

from repro.core import FilterRule, GlobalConfig, TracepointSpec, TracingSpec, VNetTracer
from repro.core.agent import Agent
from repro.core.collector import RawDataCollector
from repro.core.dispatcher import ControlDataDispatcher, DispatchError
from repro.net.packet import IPPROTO_UDP
from repro.sim.engine import Engine


def _spec(node_a, node_b, **global_kwargs):
    return TracingSpec(
        rule=FilterRule(dst_port=9000, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=node_a.name, hook="kprobe:udp_send_skb", label="send"),
            TracepointSpec(node=node_b.name, hook="kprobe:skb_copy_datagram_iovec",
                           label="recv"),
        ],
        global_config=GlobalConfig(**global_kwargs),
    )


def _traffic(engine, node_a, node_b, ip_a, ip_b, count=10, interval_ns=1_000_000,
             start_ns=1_000_000):
    node_b.bind_udp(ip_b, 9000)
    client = node_a.bind_udp(ip_a, 9001)
    for i in range(count):
        engine.schedule(start_ns + i * interval_ns, client.sendto, ip_b, 9000,
                        b"x" * 32, "app", i)


class TestDeployment:
    def test_deploy_attaches_after_control_latency(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(_spec(node_a, node_b))
        assert not node_a.hooks.has_attachments("kprobe:udp_send_skb")
        engine.run(until=1_000_000)
        assert node_a.hooks.has_attachments("kprobe:udp_send_skb")
        assert node_b.hooks.has_attachments("kprobe:skb_copy_datagram_iovec")

    def test_unknown_node_rejected(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        with pytest.raises(DispatchError):
            tracer.deploy(_spec(node_a, node_b))

    def test_undeploy_detaches(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(_spec(node_a, node_b))
        engine.run(until=1_000_000)
        tracer.undeploy()
        assert not node_a.hooks.has_attachments("kprobe:udp_send_skb")

    def test_redeploy_replaces_scripts(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(_spec(node_a, node_b))
        engine.run(until=1_000_000)
        # Reconfigure at runtime (§III-D): a new spec with another hook.
        spec2 = TracingSpec(
            rule=FilterRule(),
            tracepoints=[
                TracepointSpec(node=node_a.name, hook="kprobe:ip_output", label="ip-out"),
                TracepointSpec(node=node_b.name, hook="kprobe:udp_rcv", label="udp-in"),
            ],
        )
        tracer.deploy(spec2)
        engine.run(until=2_000_000)
        assert not node_a.hooks.has_attachments("kprobe:udp_send_skb")
        assert node_a.hooks.has_attachments("kprobe:ip_output")

    def test_agent_registration_idempotent(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        agent = tracer.add_agent(node_a)
        assert tracer.add_agent(node_a) is agent


class TestOfflineCollection:
    def test_records_collected_into_db(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(_spec(node_a, node_b))
        _traffic(engine, node_a, node_b, ip_a, ip_b, count=10)
        engine.run(until=500_000_000)
        collected = tracer.collect()
        assert collected == 20
        assert tracer.db.count("send") == 10
        assert tracer.db.count("recv") == 10

    def test_trace_ids_correlate_end_to_end(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(_spec(node_a, node_b))
        _traffic(engine, node_a, node_b, ip_a, ip_b, count=10)
        engine.run(until=500_000_000)
        tracer.collect()
        latencies = tracer.latencies("send", "recv")
        assert len(latencies) == 10
        assert all(2_000 < lat < 100_000 for lat in latencies)

    def test_latency_matches_ground_truth(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(_spec(node_a, node_b))
        truth = []
        server = node_b.lookup_udp  # placeholder; real check via packet path
        _traffic(engine, node_a, node_b, ip_a, ip_b, count=5)
        captured = []
        sock = node_b.bind_udp(ip_b, 9002)  # unrelated socket; not used
        engine.run(until=500_000_000)
        tracer.collect()
        for trace_id in list(tracer.db.trace_ids_at("send")):
            rows = tracer.db.rows_for_trace(trace_id)
            assert rows[0].label == "send" and rows[-1].label == "recv"

    def test_filter_excludes_other_flows(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(_spec(node_a, node_b))
        _traffic(engine, node_a, node_b, ip_a, ip_b, count=5)
        # A second, untraced flow to port 9100.
        node_b.bind_udp(ip_b, 9100)
        other = node_a.bind_udp(ip_a, 9101)
        for i in range(5):
            engine.schedule(1_000_000 + i * 1_000_000, other.sendto, ip_b, 9100, b"y", "other", i)
        engine.run(until=500_000_000)
        tracer.collect()
        assert tracer.db.count("send") == 5

    def test_probe_overhead_accounted(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(_spec(node_a, node_b))
        _traffic(engine, node_a, node_b, ip_a, ip_b, count=10)
        engine.run(until=500_000_000)
        assert tracer.total_probe_overhead_ns() > 0


class TestOnlineCollection:
    def test_online_mode_streams_batches(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(_spec(node_a, node_b, online_collection=True,
                            flush_interval_ns=2_000_000))
        _traffic(engine, node_a, node_b, ip_a, ip_b, count=10)
        engine.run(until=500_000_000)
        # Records arrived without an explicit collect() call.
        assert tracer.db.count("send") == 10
        assert tracer.collector.batches_received >= 2


class TestCollectorSemantics:
    def test_stale_boundary_is_exclusive_at_max_age(self, engine):
        """An agent whose last report is *exactly* max_age_ns old is
        still healthy; one nanosecond older and it is stale."""
        collector = RawDataCollector(engine)
        collector.heartbeat("n1")  # t=0
        engine.run(until=1_000_000)
        assert collector.stale_agents(1_000_000) == []
        assert collector.stale_agents(999_999) == ["n1"]

    def test_receive_batch_delegates_alignment_to_db(self, engine):
        """Regression pin: the collector stores *raw* timestamps; skew
        alignment happens inside TraceDB.insert via set_clock_skew.
        Records ingested before a node's estimate lands keep zero
        offset (see the collector module docstring)."""
        from repro.core.records import TraceRecord
        from repro.core.tracedb import TraceDB

        db = TraceDB()
        collector = RawDataCollector(engine, db)
        collector.register_labels({1: "a"})

        collector.receive_batch("n2", [TraceRecord(7, 1, 100, 64, 0)])
        db.set_clock_skew("n2", 500)
        collector.receive_batch("n2", [TraceRecord(8, 1, 100, 64, 0)])

        before, after = db.rows_for_trace(7)[0], db.rows_for_trace(8)[0]
        assert before.timestamp_ns == 100  # pre-sync: zero offset
        assert after.timestamp_ns == 600  # aligned by the DB, not the collector
        assert before.raw_timestamp_ns == after.raw_timestamp_ns == 100

    def test_unknown_tracepoints_counted_not_lost(self, engine):
        from repro.core.records import TraceRecord

        collector = RawDataCollector(engine)
        collector.receive_batch("n1", [TraceRecord(1, 99, 10, 64, 0)])
        assert collector.unknown_tracepoint_records == 1
        assert collector.db.count("tracepoint-99") == 1


class TestHeartbeats:
    def test_agents_heartbeat_and_staleness(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(_spec(node_a, node_b))
        engine.run(until=1_000_000_000)
        assert tracer.collector.stale_agents(200_000_000) == []
        # Kill one agent's heartbeat: it goes stale.
        tracer.agents[node_a.name].teardown()
        engine.run(until=2_000_000_000)
        assert node_a.name in tracer.collector.stale_agents(500_000_000)

    def test_silent_agent_stays_stale_through_final_collection(
        self, engine, two_nodes
    ):
        # An agent that heartbeats, then dies mid-run, must still look
        # stale after the master's offline pull at the end of the run:
        # collection is the master reaching out, not the agent
        # reporting, so it is not a liveness signal.
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        tracer.deploy(_spec(node_a, node_b))
        _traffic(engine, node_a, node_b, ip_a, ip_b, count=20)

        engine.run(until=1_000_000_000)
        assert tracer.collector.stale_agents(200_000_000) == []

        # The agent dies with records still in its local store.
        dead = tracer.agents[node_a.name]
        dead.teardown()
        assert dead.local_store

        engine.run(until=3_000_000_000)
        collected = tracer.collect()
        assert collected > 0
        assert tracer.db.count("send") == 20  # its buffered data arrived
        stale = tracer.collector.stale_agents(1_000_000_000)
        assert node_a.name in stale  # ... but it is still reported dead
        assert node_b.name not in stale


class TestRingOverflow:
    def test_tiny_ring_drops_are_counted(self, engine, two_nodes):
        node_a, node_b, ip_a, ip_b = two_nodes
        tracer = VNetTracer(engine)
        tracer.add_agent(node_a)
        tracer.add_agent(node_b)
        # 48-byte ring: two records per flush window; flush every 100ms.
        tracer.deploy(_spec(node_a, node_b, ring_buffer_bytes=48,
                            flush_interval_ns=100_000_000))
        _traffic(engine, node_a, node_b, ip_a, ip_b, count=50, interval_ns=100_000)
        engine.run(until=500_000_000)
        agent = tracer.agents[node_a.name]
        assert agent.dropped_records() > 0
        tracer.collect()
        assert tracer.db.count("send") < 50
