"""Every relative link in README.md and docs/*.md must resolve.

Thin wrapper over ``tools/check_doc_links.py`` (the same script the CI
lint job runs) so a renamed doc or a typoed link fails the suite too.
"""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", ROOT / "tools" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_are_scanned():
    checker = _load_checker()
    names = [path.name for path in checker.doc_files(ROOT)]
    assert "README.md" in names
    assert "EBPF.md" in names
    assert "OBSERVABILITY.md" in names


def test_no_broken_relative_links():
    checker = _load_checker()
    broken = checker.find_broken_links(ROOT)
    assert broken == [], "\n".join(
        f"{path}: {target} ({reason})" for path, target, reason in broken
    )


def test_checker_catches_a_planted_break(tmp_path):
    checker = _load_checker()
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text("see [gone](docs/NOPE.md) and [ok](docs/OK.md)\n")
    (tmp_path / "docs" / "OK.md").write_text("# OK\n")
    broken = checker.find_broken_links(tmp_path)
    assert [(target, reason) for _, target, reason in broken] == [
        ("docs/NOPE.md", "file does not exist")
    ]
