"""Compat-tier ShardedEngine: exact Engine-equivalence by construction.

A :class:`ShardedEngine` must be a drop-in for :class:`Engine`: same
execution order, same clock behavior, same cancellation and process
semantics -- whatever the shard count and pinning.  These tests run the
same scripted workloads on both engines and compare full execution
traces; the heavier scenario-level equivalence lives in
``test_shard_differential.py``.
"""

from __future__ import annotations

import pytest

from repro.sim import (
    DEFAULT_LOOKAHEAD_NS,
    Engine,
    ShardedEngine,
    engine_factory,
    new_engine,
)
from repro.sim.engine import SimulationError
from repro.obs.registry import MetricsRegistry


def _workload(engine, log):
    """A mixed workload: timers, re-scheduling, zero-delay wakeups,
    cancellations, ties at the same timestamp."""

    def emit(tag):
        log.append((engine.now, tag))

    def tick(remaining, interval, lane):
        emit(f"tick-{lane}")
        shadow = engine.schedule(interval + 7, emit, f"shadow-{lane}")
        shadow.cancel()
        engine.schedule(0, emit, f"wake-{lane}")
        if remaining > 1:
            engine.schedule(interval, tick, remaining - 1, interval, lane)

    for lane in range(5):
        engine.schedule(lane * 10 + 1, tick, 40, 13 + lane, lane)
    # Deliberate timestamp ties across lanes: seq order must decide.
    for k in range(10):
        engine.schedule_at(500, emit, f"tie-{k}")


class TestOrderIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_same_execution_trace(self, shards):
        base_log, shard_log = [], []
        base = Engine()
        _workload(base, base_log)
        base_executed = base.run()

        sharded = ShardedEngine(shards=shards)
        _workload(sharded, shard_log)
        shard_executed = sharded.run()

        assert shard_log == base_log
        assert shard_executed == base_executed
        assert sharded.now == base.now

    def test_until_and_clock_advance(self):
        for cls in (Engine, lambda: ShardedEngine(shards=3)):
            engine = cls()
            log = []
            engine.schedule(100, log.append, "a")
            engine.schedule(300, log.append, "b")
            executed = engine.run(until=200)
            assert log == ["a"]
            assert executed == 1
            # The clock advances to `until` when no event lands on it.
            assert engine.now == 200
            engine.run(until=300)
            assert log == ["a", "b"]
            assert engine.now == 300

    def test_max_events(self):
        engine = ShardedEngine(shards=4)
        log = []
        for i in range(20):
            engine.schedule(i + 1, log.append, i)
        assert engine.run(max_events=5) == 5
        assert log == [0, 1, 2, 3, 4]
        assert engine.run() == 15

    def test_processes_and_signals(self):
        def trace(engine):
            out = []
            sig = engine.signal()

            def waiter():
                value = yield sig
                out.append(("woke", engine.now, value))
                yield 50
                out.append(("slept", engine.now))

            def kicker():
                yield 100
                sig.trigger("go")

            engine.process(waiter(), name="w")
            engine.process(kicker(), name="k")
            engine.run()
            return out

        assert trace(ShardedEngine(shards=4)) == trace(Engine())

    def test_zero_delay_fast_path_matches(self):
        for engine in (Engine(), ShardedEngine(shards=2)):
            order = []
            engine.schedule(0, order.append, "first")
            engine.schedule(0, order.append, "second")
            engine.run()
            assert order == ["first", "second"]


class TestShardPlacement:
    def test_pinned_routes_and_inherits(self):
        engine = ShardedEngine(shards=4)
        seen = []

        def child():
            seen.append(engine.shard_of(engine.schedule(5, lambda: None)))

        with engine.pinned(2):
            event = engine.schedule(10, child)
        assert engine.shard_of(event) == 2
        engine.run()
        # The child's event inherits the executing event's shard.
        assert seen == [2]

    def test_pinned_out_of_range(self):
        engine = ShardedEngine(shards=2)
        with pytest.raises(SimulationError):
            with engine.pinned(2):
                pass

    def test_boundary_counter(self):
        engine = ShardedEngine(shards=2)

        def cross():
            with engine.pinned(1):
                engine.schedule(10, lambda: None)

        with engine.pinned(0):
            engine.schedule(1, cross)
        engine.run()
        assert engine.boundary_events == 1
        assert engine.boundary_events_by_shard == [0, 1]
        assert engine.events_by_shard[0] == 1
        assert engine.events_by_shard[1] == 1

    def test_constructor_validation(self):
        with pytest.raises(SimulationError):
            ShardedEngine(shards=0)
        with pytest.raises(SimulationError):
            ShardedEngine(lookahead_ns=0)

    def test_rounds_bounded_by_lookahead(self):
        engine = ShardedEngine(shards=2, lookahead_ns=100)
        for t in (10, 50, 500, 510, 5000):
            engine.schedule_at(t, lambda: None)
        engine.run()
        # (10,50) | (500,510) | (5000,) -> three lookahead rounds.
        assert engine.rounds == 3
        assert engine.last_horizon_ns == 5100


class TestEngineFactory:
    def test_default_is_plain_engine(self):
        assert type(new_engine()) is Engine

    def test_factory_scopes_and_restores(self):
        with engine_factory(lambda: ShardedEngine(shards=3)):
            inside = new_engine()
            assert isinstance(inside, ShardedEngine)
            assert inside.num_shards == 3
        assert type(new_engine()) is Engine

    def test_factory_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with engine_factory(lambda: ShardedEngine(shards=2)):
                raise RuntimeError("boom")
        assert type(new_engine()) is Engine


class TestMetrics:
    def test_attach_metrics_registers_shard_stage(self):
        from repro.obs import contract

        engine = ShardedEngine(shards=2)
        registry = MetricsRegistry()
        engine.attach_metrics(registry)
        with engine.pinned(1):
            engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        engine.run()
        flat = registry.flatten()
        assert flat[contract.SHARD_ROUNDS.name] > 0
        assert flat[contract.SHARD_EVENTS.name + '{shard="0"}'] == 1.0
        assert flat[contract.SHARD_EVENTS.name + '{shard="1"}'] == 1.0
        assert flat[contract.SHARD_WORKERS.name] == 0.0
        assert flat[contract.SHARD_HORIZON.name] == engine.last_horizon_ns

    def test_default_lookahead_exported(self):
        assert ShardedEngine().lookahead_ns == DEFAULT_LOOKAHEAD_NS
