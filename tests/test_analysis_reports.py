"""Report formatting."""

from repro.analysis.reports import (
    comparison_table,
    decomposition_table,
    format_bps,
    format_ns,
    latency_table,
)
from repro.core.metrics import SegmentLatency
from repro.workloads.stats import summarize_latencies


class TestFormatters:
    def test_format_ns_scales(self):
        assert format_ns(500) == "500 ns"
        assert format_ns(2_500) == "2.50 us"
        assert format_ns(3_000_000) == "3.00 ms"

    def test_format_bps_scales(self):
        assert format_bps(500) == "500 bps"
        assert format_bps(2_000) == "2.00 Kbps"
        assert format_bps(3_000_000) == "3.00 Mbps"
        assert format_bps(4_500_000_000) == "4.50 Gbps"


class TestTables:
    def test_latency_table_contains_rows(self):
        table = latency_table({"a": summarize_latencies([1000, 2000, 3000])})
        assert "a" in table and "2.00 us" in table
        assert table.count("\n") >= 2  # header + separator + row

    def test_decomposition_table_shares_sum(self):
        segments = [
            SegmentLatency("x", "y", [100, 100]),
            SegmentLatency("y", "z", [300, 300]),
        ]
        table = decomposition_table(segments)
        assert "x -> y" in table and "25.0%" in table
        assert "75.0%" in table and "TOTAL" in table

    def test_comparison_table_factors(self):
        base = summarize_latencies([100, 100])
        other = summarize_latencies([500, 500])
        table = comparison_table("base", base, {"loaded": other})
        assert "5.0x" in table
        assert "base" in table and "loaded" in table
