"""Report formatting."""

from repro.analysis.reports import (
    anomaly_table,
    comparison_table,
    decomposition_table,
    format_bps,
    format_ns,
    hop_stats_table,
    latency_table,
    span_decomposition_table,
)
from repro.core.metrics import SegmentLatency, decompose_latency
from repro.core.records import TraceRecord
from repro.core.tracedb import TraceDB
from repro.workloads.stats import summarize_latencies

CHAIN = ["a:send", "b:recv"]


def _insert(db, trace_id, label, ts, node="n1"):
    db.insert(node, label, TraceRecord(trace_id, 1, ts, 64, 0))


class TestFormatters:
    def test_format_ns_scales(self):
        assert format_ns(500) == "500 ns"
        assert format_ns(2_500) == "2.50 us"
        assert format_ns(3_000_000) == "3.00 ms"

    def test_format_bps_scales(self):
        assert format_bps(500) == "500 bps"
        assert format_bps(2_000) == "2.00 Kbps"
        assert format_bps(3_000_000) == "3.00 Mbps"
        assert format_bps(4_500_000_000) == "4.50 Gbps"


class TestTables:
    def test_latency_table_contains_rows(self):
        table = latency_table({"a": summarize_latencies([1000, 2000, 3000])})
        assert "a" in table and "2.00 us" in table
        assert table.count("\n") >= 2  # header + separator + row

    def test_decomposition_table_shares_sum(self):
        segments = [
            SegmentLatency("x", "y", [100, 100]),
            SegmentLatency("y", "z", [300, 300]),
        ]
        table = decomposition_table(segments)
        assert "x -> y" in table and "25.0%" in table
        assert "75.0%" in table and "TOTAL" in table

    def test_comparison_table_factors(self):
        base = summarize_latencies([100, 100])
        other = summarize_latencies([500, 500])
        table = comparison_table("base", base, {"loaded": other})
        assert "5.0x" in table
        assert "base" in table and "loaded" in table


class TestEdgeCases:
    """Empty flows, single-record traces, and unordered ingest must
    render as tables, not tracebacks."""

    def test_empty_flow_renders_zero_rows(self):
        segments = decompose_latency(TraceDB(), CHAIN)
        table = decomposition_table(segments)
        assert "a:send -> b:recv" in table
        assert "TOTAL" in table and "0 ns" in table

    def test_empty_segment_list_renders_total_only(self):
        table = decomposition_table([])
        assert "TOTAL" in table

    def test_single_record_trace_contributes_nothing(self):
        # A trace seen at only one tracepoint fails the completeness
        # cut of §III-C: the segment row must show n=0, not crash.
        db = TraceDB()
        _insert(db, trace_id=7, label=CHAIN[0], ts=100)
        table = decomposition_table(decompose_latency(db, CHAIN))
        lines = table.splitlines()
        row = next(line for line in lines if "a:send -> b:recv" in line)
        assert " 0 " in row and "-" in row

    def test_mixed_empty_and_populated_segments(self):
        segments = [
            SegmentLatency("a", "b", [100, 200]),
            SegmentLatency("b", "c", []),
        ]
        table = decomposition_table(segments)
        assert "100.0%" in table  # the populated segment owns the total
        assert "b -> c" in table

    def test_out_of_order_records_decompose_correctly(self):
        # Batches arrive per-node, so cross-node timestamp order is
        # never insertion order; latencies must not depend on it.
        db = TraceDB()
        _insert(db, trace_id=2, label=CHAIN[1], ts=2_500, node="n2")
        _insert(db, trace_id=1, label=CHAIN[1], ts=1_300, node="n2")
        _insert(db, trace_id=2, label=CHAIN[0], ts=2_000)
        _insert(db, trace_id=1, label=CHAIN[0], ts=1_000)
        (segment,) = decompose_latency(db, CHAIN)
        assert sorted(segment.latencies_ns) == [300, 500]
        assert "2 " in decomposition_table([segment])


class TestSpanTables:
    """The span-layer views of the same data (docs/TIMELINES.md)."""

    def _db(self):
        db = TraceDB()
        for trace_id, (t0, t1) in enumerate([(1_000, 1_400), (2_000, 2_300)], 1):
            _insert(db, trace_id, CHAIN[0], t0, node="n1")
            _insert(db, trace_id, CHAIN[1], t1, node="n2")
        return db

    def _forest(self, db):
        from repro.tracing import SpanAssembler

        return SpanAssembler(db).forest(chain=CHAIN)

    def test_span_decomposition_matches_metric_layer(self):
        db = self._db()
        span_table = span_decomposition_table(self._forest(db), CHAIN)
        metric_table = decomposition_table(decompose_latency(db, CHAIN))
        assert span_table == metric_table

    def test_hop_stats_table_lists_hops(self):
        table = hop_stats_table(self._forest(self._db()))
        assert "a:send -> b:recv" in table
        assert "p95" in table

    def test_hop_stats_table_empty_forest(self):
        table = hop_stats_table(self._forest(TraceDB()))
        assert "hop" in table  # headers render with no rows

    def test_anomaly_table_quiet_flow(self):
        table = anomaly_table(self._forest(self._db()))
        assert "no spans above" in table

    def test_anomaly_table_flags_outlier(self):
        db = self._db()
        _insert(db, 9, CHAIN[0], 10_000, node="n1")
        _insert(db, 9, CHAIN[1], 60_000, node="n2")  # ~100x the median hop
        table = anomaly_table(self._forest(db))
        assert "0x00000009" in table and "a:send -> b:recv" in table
