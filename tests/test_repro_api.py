"""Public API surface: the imports a downstream user relies on."""

import repro
import repro.net as net


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_exports(self):
        for name in ("VNetTracer", "TracingSpec", "FilterRule",
                     "TracepointSpec", "ActionSpec", "GlobalConfig", "Engine"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_net_exports(self):
        for name in ("Packet", "IPv4Address", "MACAddress", "Ping",
                     "PacketCapture", "PcapReader", "PcapWriter"):
            assert name in net.__all__

    def test_ebpf_exports(self):
        import repro.ebpf as ebpf

        for name in ("Assembler", "BPFProgram", "verify", "HookRegistry",
                     "HashMap", "PerfEventArray"):
            assert name in ebpf.__all__

    def test_workloads_exports(self):
        import repro.workloads as workloads

        for name in ("SockperfClient", "NetperfServer", "MemcachedServer",
                     "IperfUDPClient"):
            assert name in workloads.__all__

    def test_all_matches_readme_public_api(self):
        """The README's 'Public API' section and ``repro.__all__`` are
        the same list -- neither can drift without the other."""
        import re
        from pathlib import Path

        readme = Path(__file__).resolve().parents[1] / "README.md"
        section = readme.read_text().split("## Public API", 1)[1]
        section = section.split("\n## ", 1)[0]
        documented = re.findall(
            r"^- `([A-Za-z_][A-Za-z0-9_]*)`", section, flags=re.M)
        assert documented, "README Public API section lists no names"
        assert sorted(documented) == sorted(repro.__all__)

    def test_fault_and_report_exports(self):
        for name in ("TracerSession", "FaultPlan", "ChannelFaults",
                     "CrashEvent", "RingPressureEvent", "DeployReport",
                     "CollectReport"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_minimal_user_journey(self):
        """The README snippet's skeleton must keep working."""
        from repro import Engine, FilterRule, TracepointSpec, TracingSpec, VNetTracer
        from repro.net.stack import KernelNode
        from repro.net.device import VethDevice
        from repro.net.addressing import IPv4Address

        engine = Engine()
        node = KernelNode(engine, "n1", num_cpus=2)
        VethDevice(node, "veth0")
        tracer = VNetTracer(engine)
        tracer.add_agent(node)
        tracer.deploy(
            TracingSpec(
                rule=FilterRule(dst_port=80),
                tracepoints=[TracepointSpec(node="n1", hook="dev:veth0", label="x")],
            )
        )
        engine.run(until=10_000_000)
        assert node.hooks.has_attachments("dev:veth0")
