"""Trace-ID embedding round trips, hammered with hypothesis.

The paper's kernel patch (§III-B) appends a 4-byte ID to UDP payloads
(``__skb_put`` / ``pskb_trim_rcsum``) and writes a TCP option
(``tcp_options_write``).  Applications must never observe the ID, and
the receive checksum after the trim must equal the checksum of the
original payload -- those are the properties below, over arbitrary
payloads and RNG seeds.
"""

from hypothesis import given, settings, strategies as st

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.checksum import checksum_remove_trailing, internet_checksum
from repro.net.packet import make_tcp_packet, make_udp_packet
from repro.net.traceid import (
    META_TRACE_ID,
    META_UDP_ID_EMBEDDED,
    TraceIDEngine,
    extract_trace_id,
)
from repro.sim.rng import SeededRNG

MAC_A = MACAddress("02:00:00:00:00:01")
MAC_B = MACAddress("02:00:00:00:00:02")
IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")

payloads = st.binary(min_size=0, max_size=512)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _udp(payload: bytes):
    return make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 4000, 5000, payload)


class TestUDPRoundTrip:
    @given(payloads, seeds)
    def test_embed_then_strip_preserves_payload(self, payload, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(payload)
        engine.embed_udp(packet)
        assert len(packet.payload) == len(payload) + 4
        assert packet.payload[: len(payload)] == payload  # app bytes untouched
        engine.strip_udp(packet)
        assert packet.payload == payload
        assert packet.metadata[META_UDP_ID_EMBEDDED] is False

    @given(payloads, seeds)
    def test_wire_extraction_matches_embedded_id(self, payload, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(payload)
        engine.embed_udp(packet)
        assert extract_trace_id(packet) == packet.metadata[META_TRACE_ID]
        # After the receiver trims, the app-facing packet has no ID.
        engine.strip_udp(packet)
        assert extract_trace_id(packet) is None

    @given(payloads.filter(lambda b: len(b) % 2 == 0), seeds)
    def test_trim_checksum_matches_recomputed(self, payload, seed):
        # pskb_trim_rcsum: the incremental update of the receive
        # checksum after removing the trailing ID must equal a full
        # recomputation over the original payload.
        # checksum_remove_trailing documents an even-alignment domain
        # (the 4-byte ID starts 16-bit aligned), so only even payload
        # lengths are in scope here.
        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(payload)
        engine.embed_udp(packet)
        embedded = bytes(packet.payload)
        csum_embedded = internet_checksum(embedded)
        trimmed_csum = checksum_remove_trailing(csum_embedded, embedded[-4:])
        engine.strip_udp(packet)
        assert trimmed_csum == internet_checksum(packet.payload)

    @given(seeds)
    def test_strip_without_embed_is_a_noop(self, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(b"data")
        assert engine.strip_udp(packet) == 0
        assert packet.payload == b"data"

    @given(payloads, seeds)
    @settings(max_examples=25)
    def test_double_embed_ids_both_recoverable_in_order(self, payload, seed):
        # Two embeds stack (outer ID is the wire-visible one); each
        # strip removes exactly one layer.
        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(payload)
        engine.embed_udp(packet)
        first = packet.metadata[META_TRACE_ID]
        engine.embed_udp(packet)
        second = packet.metadata[META_TRACE_ID]
        assert extract_trace_id(packet) == second
        engine.strip_udp(packet)
        assert len(packet.payload) == len(payload) + 4
        assert extract_trace_id(packet) is None  # metadata says stripped
        del packet.metadata[META_TRACE_ID]
        packet.metadata[META_UDP_ID_EMBEDDED] = True
        assert extract_trace_id(packet) == first


class TestTCPRoundTrip:
    @given(payloads, seeds)
    def test_option_round_trips_through_wire_format(self, payload, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        packet = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 4000, 5000, payload)
        assert engine.embed_tcp(packet) > 0
        assert packet.payload == payload  # options, not payload, carry the ID
        assert extract_trace_id(packet) == packet.metadata[META_TRACE_ID]

    @given(seeds)
    def test_full_option_space_refuses_embedding(self, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        packet = make_tcp_packet(
            MAC_A, MAC_B, IP_A, IP_B, 4000, 5000, b"", options=b"\x01" * 36
        )
        assert engine.embed_tcp(packet) == 0
        assert extract_trace_id(packet) is None

    @given(seeds)
    def test_ids_unique_within_a_flow(self, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        seen = {engine.tcp_option_bytes()[1] for _ in range(64)}
        assert len(seen) == 64


class TestParentPropagation:
    """Parent-ID fan-out/fan-in edge cases (docs/SERVICES.md)."""

    parents = st.lists(
        st.integers(min_value=1, max_value=2**32 - 1), min_size=1, max_size=4
    )
    big_payloads = st.binary(min_size=400, max_size=640)

    @given(payloads, seeds, parents)
    def test_udp_parents_round_trip_in_order(self, payload, seed, parent_list):
        from repro.net.traceid import extract_parent_ids

        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(payload)
        engine.embed_udp(packet, parents=parent_list)
        assert extract_parent_ids(packet) == tuple(parent_list)
        assert extract_trace_id(packet) == packet.metadata[META_TRACE_ID]
        engine.strip_udp(packet)
        assert packet.payload == payload

    @given(payloads, seeds, st.integers(min_value=1, max_value=2**32 - 1))
    def test_fan_in_joins_two_parents(self, payload, seed, parent_a):
        # A join point forwards one packet on behalf of two upstream
        # requests: both parents ride the embed, ordered, and the
        # fresh ID stays last so single-ID readers keep working.
        from repro.net.traceid import extract_parent_ids

        engine = TraceIDEngine(SeededRNG(seed))
        parent_b = (parent_a + 1) % 2**32 or 1
        packet = _udp(payload)
        engine.embed_udp(packet, parents=(parent_a, parent_b))
        assert extract_parent_ids(packet) == (parent_a, parent_b)
        assert packet.payload[-4:] != payload[-4:] or len(payload) < 4
        assert len(packet.payload) == len(payload) + 12
        engine.strip_udp(packet)
        assert packet.payload == payload

    @given(big_payloads, seeds, parents)
    @settings(max_examples=50)
    def test_min_mtu_truncation_is_all_or_nothing(self, payload, seed, parent_list):
        # At the IPv4 minimum MTU (576), the embed either fits whole
        # -- payload ++ parents ++ id -- or is refused whole and
        # counted; a partial suffix would corrupt parent extraction.
        from repro.net.traceid import extract_parent_ids

        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(payload)
        before = bytes(packet.payload)
        total = packet.total_length
        extra = 4 * (1 + len(parent_list))
        cost = engine.embed_udp(packet, mtu=576, parents=parent_list)
        if total + extra <= 576:
            assert cost > 0
            assert extract_parent_ids(packet) == tuple(parent_list)
            assert len(packet.payload) == len(before) + extra
        else:
            assert cost == 0
            assert engine.embeds_refused_mtu == 1
            assert bytes(packet.payload) == before
            assert extract_trace_id(packet) is None

    def test_duplicate_parent_on_fast_retransmit(self, engine, two_nodes):
        # A lost segment is fast-retransmitted with a *fresh* trace ID
        # but the *same* parent: downstream joins must tolerate the
        # duplicate parent observation for one byte range.
        from repro.ebpf.probes import CallbackAttachment
        from repro.net.tcp import MSS
        from repro.net.traceid import extract_parent_ids

        node_a, node_b, ip_a, ip_b = two_nodes
        TraceIDEngine.attach(node_a)
        sent = []
        node_a.hooks.attach(
            "dev:veth0", CallbackAttachment(lambda ev: sent.append(ev.packet))
        )
        veth_b = node_b.device("veth0")
        original = veth_b.receive
        counter = {"n": 0}

        def flaky(packet):
            if packet.payload_length > 0 and packet.tcp is not None:
                counter["n"] += 1
                if counter["n"] == 3:
                    return  # dropped on the floor
            original(packet)

        veth_b.receive = flaky
        delivered = {"bytes": 0}

        def on_conn(conn):
            conn.on_data = lambda c, n, p: delivered.__setitem__(
                "bytes", delivered["bytes"] + n
            )

        node_b.tcp.listen(ip_b, 5000, on_connection=on_conn)
        conn = node_a.tcp.connect(ip_a, ip_b, 5000)
        conn.trace_parent = 0xABCD1234
        conn.on_established = lambda c: c.send_app_bytes(40 * MSS)
        engine.run()

        assert delivered["bytes"] == 40 * MSS
        assert conn.retransmits >= 1
        data = [p for p in sent if p.payload_length > 0 and p.tcp is not None]
        # Every wire transmission -- original and retransmit -- carries
        # the same parent with a fresh per-transmission trace ID.
        assert all(extract_parent_ids(p) == (0xABCD1234,) for p in data)
        by_seq = {}
        for p in data:
            by_seq.setdefault(p.tcp.seq, []).append(extract_trace_id(p))
        dup = [ids for ids in by_seq.values() if len(ids) > 1]
        assert dup, "expected at least one retransmitted byte range"
        assert all(len(set(ids)) == len(ids) for ids in dup)  # fresh IDs
