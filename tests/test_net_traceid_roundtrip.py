"""Trace-ID embedding round trips, hammered with hypothesis.

The paper's kernel patch (§III-B) appends a 4-byte ID to UDP payloads
(``__skb_put`` / ``pskb_trim_rcsum``) and writes a TCP option
(``tcp_options_write``).  Applications must never observe the ID, and
the receive checksum after the trim must equal the checksum of the
original payload -- those are the properties below, over arbitrary
payloads and RNG seeds.
"""

from hypothesis import given, settings, strategies as st

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.checksum import checksum_remove_trailing, internet_checksum
from repro.net.packet import make_tcp_packet, make_udp_packet
from repro.net.traceid import (
    META_TRACE_ID,
    META_UDP_ID_EMBEDDED,
    TraceIDEngine,
    extract_trace_id,
)
from repro.sim.rng import SeededRNG

MAC_A = MACAddress("02:00:00:00:00:01")
MAC_B = MACAddress("02:00:00:00:00:02")
IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")

payloads = st.binary(min_size=0, max_size=512)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _udp(payload: bytes):
    return make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 4000, 5000, payload)


class TestUDPRoundTrip:
    @given(payloads, seeds)
    def test_embed_then_strip_preserves_payload(self, payload, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(payload)
        engine.embed_udp(packet)
        assert len(packet.payload) == len(payload) + 4
        assert packet.payload[: len(payload)] == payload  # app bytes untouched
        engine.strip_udp(packet)
        assert packet.payload == payload
        assert packet.metadata[META_UDP_ID_EMBEDDED] is False

    @given(payloads, seeds)
    def test_wire_extraction_matches_embedded_id(self, payload, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(payload)
        engine.embed_udp(packet)
        assert extract_trace_id(packet) == packet.metadata[META_TRACE_ID]
        # After the receiver trims, the app-facing packet has no ID.
        engine.strip_udp(packet)
        assert extract_trace_id(packet) is None

    @given(payloads.filter(lambda b: len(b) % 2 == 0), seeds)
    def test_trim_checksum_matches_recomputed(self, payload, seed):
        # pskb_trim_rcsum: the incremental update of the receive
        # checksum after removing the trailing ID must equal a full
        # recomputation over the original payload.
        # checksum_remove_trailing documents an even-alignment domain
        # (the 4-byte ID starts 16-bit aligned), so only even payload
        # lengths are in scope here.
        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(payload)
        engine.embed_udp(packet)
        embedded = bytes(packet.payload)
        csum_embedded = internet_checksum(embedded)
        trimmed_csum = checksum_remove_trailing(csum_embedded, embedded[-4:])
        engine.strip_udp(packet)
        assert trimmed_csum == internet_checksum(packet.payload)

    @given(seeds)
    def test_strip_without_embed_is_a_noop(self, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(b"data")
        assert engine.strip_udp(packet) == 0
        assert packet.payload == b"data"

    @given(payloads, seeds)
    @settings(max_examples=25)
    def test_double_embed_ids_both_recoverable_in_order(self, payload, seed):
        # Two embeds stack (outer ID is the wire-visible one); each
        # strip removes exactly one layer.
        engine = TraceIDEngine(SeededRNG(seed))
        packet = _udp(payload)
        engine.embed_udp(packet)
        first = packet.metadata[META_TRACE_ID]
        engine.embed_udp(packet)
        second = packet.metadata[META_TRACE_ID]
        assert extract_trace_id(packet) == second
        engine.strip_udp(packet)
        assert len(packet.payload) == len(payload) + 4
        assert extract_trace_id(packet) is None  # metadata says stripped
        del packet.metadata[META_TRACE_ID]
        packet.metadata[META_UDP_ID_EMBEDDED] = True
        assert extract_trace_id(packet) == first


class TestTCPRoundTrip:
    @given(payloads, seeds)
    def test_option_round_trips_through_wire_format(self, payload, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        packet = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 4000, 5000, payload)
        assert engine.embed_tcp(packet) > 0
        assert packet.payload == payload  # options, not payload, carry the ID
        assert extract_trace_id(packet) == packet.metadata[META_TRACE_ID]

    @given(seeds)
    def test_full_option_space_refuses_embedding(self, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        packet = make_tcp_packet(
            MAC_A, MAC_B, IP_A, IP_B, 4000, 5000, b"", options=b"\x01" * 36
        )
        assert engine.embed_tcp(packet) == 0
        assert extract_trace_id(packet) is None

    @given(seeds)
    def test_ids_unique_within_a_flow(self, seed):
        engine = TraceIDEngine(SeededRNG(seed))
        seen = {engine.tcp_option_bytes()[1] for _ in range(64)}
        assert len(seen) == 64
