"""The benchmark harness: presets, discovery, schema, compare, CLI gate."""

import json

import pytest

from repro.bench import (
    build_report,
    compare_reports,
    discover_scenarios,
    dumps_report,
    load_report,
    run_scenario,
    run_suite,
    scale_count,
    scale_duration,
    validate_report,
    write_report,
)
from repro.bench.discovery import DiscoveryError
from repro.bench.harness import HarnessError
from repro.bench.presets import MIN_DURATION_NS
from repro.bench.schema import SchemaError
from repro.cli import main

FAKE_SCENARIO = """\
from repro.sim.engine import Engine

def run(preset="smoke"):
    engine = Engine()
    ticks = 10 if preset == "smoke" else 100
    fired = [0]
    def tick():
        fired[0] += 1
    for i in range(ticks):
        engine.schedule(i + 1, tick)
    engine.run()
    return {"ticks": fired[0]}
"""


@pytest.fixture
def bench_dir(tmp_path):
    (tmp_path / "bench_fake.py").write_text(FAKE_SCENARIO)
    return tmp_path


class TestPresets:
    def test_smoke_scales_duration_to_a_tenth(self):
        assert scale_duration("smoke", 1_000_000_000) == 100_000_000

    def test_full_keeps_the_full_duration(self):
        assert scale_duration("full", 1_000_000_000) == 1_000_000_000

    def test_smoke_respects_the_floor(self):
        assert scale_duration("smoke", 50_000_000) == MIN_DURATION_NS

    def test_floor_never_exceeds_the_full_duration(self):
        assert scale_duration("smoke", 5_000_000) == 5_000_000

    def test_count_scaling_with_floor(self):
        assert scale_count("smoke", 1000, floor=10) == 100
        assert scale_count("smoke", 50, floor=10) == 10
        assert scale_count("full", 1000, floor=10) == 1000

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            scale_duration("quick", 1_000_000_000)


class TestDiscovery:
    def test_repo_benchmarks_are_discovered(self):
        names = {s.name for s in discover_scenarios()}
        assert "micro_engine" in names
        assert "fig7a_overhead_latency" in names
        assert len(names) >= 18

    def test_only_filter_accepts_both_name_forms(self, bench_dir):
        for wanted in ("fake", "bench_fake"):
            scenarios = discover_scenarios(bench_dir, only=[wanted])
            assert [s.name for s in scenarios] == ["fake"]

    def test_unknown_only_name_is_an_error(self, bench_dir):
        with pytest.raises(DiscoveryError, match="unknown scenario"):
            discover_scenarios(bench_dir, only=["nope"])

    def test_file_without_run_is_rejected_at_load(self, tmp_path):
        (tmp_path / "bench_empty.py").write_text("x = 1\n")
        (scenario,) = discover_scenarios(tmp_path)
        with pytest.raises(DiscoveryError, match="run"):
            scenario.load()


class TestHarness:
    def test_run_scenario_counts_engine_events(self, bench_dir):
        (scenario,) = discover_scenarios(bench_dir)
        result = run_scenario(scenario, preset="smoke")
        assert result.events_executed == 10
        assert result.metrics == {"ticks": 10}
        assert result.wall_ns > 0
        assert result.probe_fires == 0
        assert result.ns_per_probe is None

    def test_preset_reaches_the_scenario(self, bench_dir):
        (scenario,) = discover_scenarios(bench_dir)
        assert run_scenario(scenario, preset="full").metrics == {"ticks": 100}

    def test_non_dict_return_is_a_harness_error(self, tmp_path):
        (tmp_path / "bench_bad.py").write_text("def run(preset='smoke'):\n    return 7\n")
        (scenario,) = discover_scenarios(tmp_path)
        with pytest.raises(HarnessError, match="must return a dict"):
            run_scenario(scenario)

    def test_run_suite_reports_progress(self, bench_dir):
        lines = []
        results = run_suite(preset="smoke", bench_dir=bench_dir, progress=lines.append)
        assert [r.name for r in results] == ["fake"]
        assert len(lines) == 1 and "fake" in lines[0]


class TestSchema:
    def _report(self, bench_dir, **kwargs):
        results = run_suite(preset="smoke", bench_dir=bench_dir)
        return build_report(results, "smoke", **kwargs)

    def test_round_trip_through_disk(self, bench_dir, tmp_path):
        doc = self._report(bench_dir, tolerance=0.5)
        path = write_report(doc, tmp_path / "report.json")
        assert load_report(path) == doc

    def test_measured_report_carries_wall_fields(self, bench_dir):
        doc = validate_report(self._report(bench_dir))
        (entry,) = doc["scenarios"]
        assert entry["wall_ns"] > 0 and "events_per_sec" in entry
        assert "created_utc" in doc and "host" in doc

    def test_deterministic_report_omits_wall_fields(self, bench_dir):
        doc = validate_report(self._report(bench_dir, deterministic=True))
        assert "created_utc" not in doc and "host" not in doc
        (entry,) = doc["scenarios"]
        assert "wall_ns" not in entry and "events_per_sec" not in entry
        assert entry["events_executed"] == 10

    def test_deterministic_serialization_is_stable(self, bench_dir):
        docs = [
            dumps_report(self._report(bench_dir, deterministic=True))
            for _ in range(2)
        ]
        assert docs[0] == docs[1]

    def test_bad_schema_version_rejected(self):
        with pytest.raises(SchemaError, match="schema_version"):
            validate_report({"schema_version": 99, "preset": "smoke", "scenarios": []})

    def test_duplicate_scenarios_rejected(self):
        entry = {"name": "x", "events_executed": 1, "probe_fires": 0,
                 "metrics": {}, "wall_ns": 1}
        with pytest.raises(SchemaError, match="duplicate"):
            validate_report({"schema_version": 1, "preset": "smoke",
                             "scenarios": [entry, dict(entry)]})

    def test_tolerance_out_of_range_rejected(self):
        with pytest.raises(SchemaError, match="tolerance"):
            validate_report({"schema_version": 1, "preset": "smoke",
                             "scenarios": [], "tolerance": 1.5})


def _doc(scenarios, tolerance=None):
    doc = {"schema_version": 1, "preset": "smoke", "deterministic": False,
           "scenarios": scenarios}
    if tolerance is not None:
        doc["tolerance"] = tolerance
    return doc


def _entry(name, eps, nspp=None):
    entry = {"name": name, "events_executed": 100, "probe_fires": 10,
             "metrics": {}, "wall_ns": 1000, "events_per_sec": eps}
    if nspp is not None:
        entry["ns_per_probe"] = nspp
    return entry


class TestCompare:
    def test_within_tolerance_passes(self):
        current = _doc([_entry("a", 80.0)])
        baseline = _doc([_entry("a", 100.0)], tolerance=0.5)
        regressions, lines = compare_reports(current, baseline)
        assert regressions == []
        assert any("ok" in line for line in lines)

    def test_throughput_drop_beyond_tolerance_fails(self):
        current = _doc([_entry("a", 40.0)])
        baseline = _doc([_entry("a", 100.0)], tolerance=0.5)
        (regression,), _ = compare_reports(current, baseline)
        assert regression.scenario == "a"
        assert regression.metric == "events_per_sec"
        assert regression.allowed == 50.0

    def test_ns_per_probe_growth_beyond_tolerance_fails(self):
        current = _doc([_entry("a", 100.0, nspp=300.0)])
        baseline = _doc([_entry("a", 100.0, nspp=100.0)], tolerance=0.5)
        (regression,), _ = compare_reports(current, baseline)
        assert regression.metric == "ns_per_probe"

    def test_missing_scenario_is_a_regression(self):
        regressions, _ = compare_reports(
            _doc([]), _doc([_entry("gone", 100.0)], tolerance=0.5))
        assert [r.metric for r in regressions] == ["missing"]
        assert "gone" in regressions[0].describe()

    def test_extra_scenarios_are_noted_not_failed(self):
        current = _doc([_entry("a", 100.0), _entry("new", 1.0)])
        baseline = _doc([_entry("a", 100.0)], tolerance=0.5)
        regressions, lines = compare_reports(current, baseline)
        assert regressions == []
        assert any("new" in line for line in lines)


class TestCLI:
    def test_list_prints_scenarios(self, bench_dir, capsys):
        assert main(["bench", "--list", "--bench-dir", str(bench_dir)]) == 0
        assert capsys.readouterr().out.strip() == "fake"

    def test_json_output_validates(self, bench_dir, capsys):
        code = main(["bench", "--bench-dir", str(bench_dir), "--json", "--out", "-"])
        assert code == 0
        doc = validate_report(json.loads(capsys.readouterr().out))
        assert doc["scenarios"][0]["name"] == "fake"

    def test_writes_report_file(self, bench_dir, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["bench", "--bench-dir", str(bench_dir), "--out", str(out)]) == 0
        assert load_report(out)["preset"] == "smoke"

    def test_compare_pass_and_fail_exit_codes(self, bench_dir, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        argv = ["bench", "--bench-dir", str(bench_dir), "--out", "-"]
        assert main(argv + ["--update-baseline", "--tolerance", "0.5"]) == 0
        assert (bench_dir / "baseline.json").is_file()
        # A fresh run against its own baseline passes...
        assert main(argv + ["--compare", str(bench_dir / "baseline.json")]) == 0
        # ...but an impossibly fast baseline fails with exit code 1.
        doc = load_report(bench_dir / "baseline.json")
        doc["scenarios"][0]["events_per_sec"] = 1e15
        write_report(doc, baseline)
        assert main(argv + ["--compare", str(baseline)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_unknown_scenario_exits_2(self, bench_dir, capsys):
        argv = ["bench", "--bench-dir", str(bench_dir), "--only", "nope", "--out", "-"]
        assert main(argv) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_profile_prints_cumulative_hotspots(self, bench_dir, tmp_path, capsys):
        out = tmp_path / "report.json"
        argv = ["bench", "--bench-dir", str(bench_dir), "--out", str(out), "--profile", "5"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "cumulative" in err  # sorted by cumulative time
        assert "-- profile: top 5 functions" in err
        assert load_report(out)["scenarios"][0]["name"] == "fake"  # report unchanged

    def test_profile_never_interleaves_with_json_report(self, bench_dir, monkeypatch):
        """Regression: ``--profile`` used to print before the report was
        emitted, so with ``--json --out -`` and stdout/stderr sharing a
        pipe (the common ``2>&1`` case) the profile table landed in the
        middle of the JSON document.  The profile must come strictly
        after the last byte of the report."""
        import io
        import sys

        shared = io.StringIO()
        monkeypatch.setattr(sys, "stdout", shared)
        monkeypatch.setattr(sys, "stderr", shared)
        argv = ["bench", "--bench-dir", str(bench_dir), "--json", "--out", "-",
                "--profile", "5"]
        assert main(argv) == 0
        combined = shared.getvalue()
        marker = combined.index("-- profile: top 5 functions")
        # Everything before the profile is one parseable JSON document.
        doc = validate_report(json.loads(combined[:marker]))
        assert doc["scenarios"][0]["name"] == "fake"

    def test_profile_flag_defaults_to_top_25(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--profile"])
        assert args.profile == 25
        assert build_parser().parse_args(["bench"]).profile is None


class TestScenarioRegressions:
    def test_filter_selectivity_smoke_reports_nonzero_throughput(self):
        """The stale-baseline bug: a fixed 50 ms warm-up reset landing
        after the smoke preset's 25 ms of traffic restarted an idle
        measurement window and reported 0.0 Mbps on every leg."""
        (scenario,) = discover_scenarios(only=["ablation_filter_selectivity"])
        result = run_scenario(scenario, preset="smoke")
        assert result.metrics, "selectivity scenario returned no metrics"
        for name, mbps in result.metrics.items():
            assert mbps > 0, f"{name} regressed to zero throughput"
