"""Tracing configuration objects and validation."""

import pytest

from repro.core.config import (
    ActionSpec,
    ConfigError,
    ControlPackage,
    FilterRule,
    GlobalConfig,
    TracepointSpec,
    TracingSpec,
)
from repro.net.addressing import IPv4Address
from repro.net.packet import IPPROTO_TCP, IPPROTO_UDP


class TestFilterRule:
    def test_wildcard_rule(self):
        assert FilterRule().matches_everything()

    def test_specific_rule_not_wildcard(self):
        assert not FilterRule(dst_port=80).matches_everything()

    def test_for_flow_constructor(self):
        rule = FilterRule.for_flow(
            IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), 80, IPPROTO_TCP
        )
        assert rule.dst_port == 80 and rule.protocol == IPPROTO_TCP

    @pytest.mark.parametrize("port", [0, -1, 65536])
    def test_bad_ports_rejected(self, port):
        with pytest.raises(ConfigError):
            FilterRule(dst_port=port)

    def test_bad_protocol_rejected(self):
        with pytest.raises(ConfigError):
            FilterRule(protocol=99)


class TestTracepointSpec:
    def test_label_defaults(self):
        spec = TracepointSpec(node="n1", hook="dev:eth0")
        assert spec.label == "n1:dev:eth0"

    def test_ids_unique(self):
        a = TracepointSpec(node="n", hook="dev:a")
        b = TracepointSpec(node="n", hook="dev:b")
        assert a.tracepoint_id != b.tracepoint_id

    def test_bad_hook_rejected(self):
        with pytest.raises(ConfigError):
            TracepointSpec(node="n", hook="nocolon")

    def test_bad_id_mode_rejected(self):
        with pytest.raises(ConfigError):
            TracepointSpec(node="n", hook="dev:a", id_mode="bogus")


class TestActionAndGlobal:
    def test_action_must_do_something(self):
        with pytest.raises(ConfigError):
            ActionSpec(record=False, count=False)

    def test_ring_bounds_follow_paper_footnote(self):
        GlobalConfig(ring_buffer_bytes=32)
        GlobalConfig(ring_buffer_bytes=128 * 1024 - 16)
        with pytest.raises(ConfigError):
            GlobalConfig(ring_buffer_bytes=16)
        with pytest.raises(ConfigError):
            GlobalConfig(ring_buffer_bytes=128 * 1024)


class TestTracingSpec:
    def _spec(self):
        return TracingSpec(
            rule=FilterRule(dst_port=80),
            tracepoints=[
                TracepointSpec(node="n1", hook="dev:a", label="A"),
                TracepointSpec(node="n2", hook="dev:b", label="B"),
                TracepointSpec(node="n1", hook="kprobe:udp_rcv", label="C"),
            ],
        )

    def test_needs_tracepoints(self):
        with pytest.raises(ConfigError):
            TracingSpec(rule=FilterRule(), tracepoints=[])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigError):
            TracingSpec(
                rule=FilterRule(),
                tracepoints=[
                    TracepointSpec(node="n", hook="dev:a", label="X"),
                    TracepointSpec(node="n", hook="dev:b", label="X"),
                ],
            )

    def test_nodes_and_per_node_grouping(self):
        spec = self._spec()
        assert spec.nodes() == ["n1", "n2"]
        assert [tp.label for tp in spec.tracepoints_for("n1")] == ["A", "C"]

    def test_label_lookup(self):
        spec = self._spec()
        tp = spec.tracepoints[1]
        assert spec.label_of(tp.tracepoint_id) == "B"
        assert spec.label_of(10**9).startswith("tracepoint-")

    def test_control_package_serializes(self):
        spec = self._spec()
        package = ControlPackage(
            node="n1",
            rule=spec.rule,
            tracepoints=spec.tracepoints_for("n1"),
            action=spec.action,
            global_config=spec.global_config,
        )
        config = package.to_config_dict()
        assert config["node"] == "n1"
        assert config["rule"]["dst_port"] == 80
        assert len(config["tracepoints"]) == 2
        assert config["global"]["ring_buffer_bytes"] == 64 * 1024
