"""docs/SHARDING.md is a contract: the documented tables must match the code.

Same pattern as the EBPF.md and OBSERVABILITY.md contract tests:

* the metrics table mirrors the five ``SHARD_*`` specs in the contract;
* the ``BoundaryMessage`` field table mirrors ``_fields``, in order;
* the worker-protocol tables mirror ``PARENT_OPS`` / ``WORKER_REPLIES``;
* the documented lookahead default and bucket sort key match the code.
"""

import re
from pathlib import Path

from repro.obs import contract
from repro.sim.coordinator import (
    _BUCKET_KEY,
    PARENT_OPS,
    WORKER_REPLIES,
    BoundaryMessage,
)
from repro.sim.shard import DEFAULT_LOOKAHEAD_NS

DOC_PATH = Path(__file__).resolve().parent.parent / "docs" / "SHARDING.md"

SHARD_SPECS = (
    contract.SHARD_ROUNDS,
    contract.SHARD_EVENTS,
    contract.SHARD_BOUNDARY,
    contract.SHARD_HORIZON,
    contract.SHARD_WORKERS,
)


def _section(name: str) -> str:
    text = DOC_PATH.read_text()
    match = re.search(
        rf"<!-- {name}:begin -->\n(.*?)<!-- {name}:end -->", text, re.DOTALL
    )
    assert match, f"docs/SHARDING.md is missing the {name} marker block"
    return match.group(1)


def _table_rows(section: str):
    """Yield the cell lists of every data row in a markdown table."""
    for line in section.splitlines():
        line = line.strip()
        if not line.startswith("|") or set(line) <= {"|", "-", " "}:
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if cells and cells[0] in ("metric", "field", "op"):
            continue  # header row
        yield cells


def test_metrics_table_matches_contract():
    documented = {}
    for cells in _table_rows(_section("metrics")):
        name, kind, unit, labels = cells
        documented[name.strip("`")] = (
            kind,
            unit,
            ()
            if labels == "—"
            else tuple(label.strip("`") for label in labels.split(",")),
        )
    actual = {
        spec.name: (spec.kind, spec.unit, spec.label_names) for spec in SHARD_SPECS
    }
    assert documented == actual
    # The contract's exhaustive list has no shard metric the doc misses.
    assert {s.name for s in SHARD_SPECS} == {
        s.name for s in contract.ALL_METRICS if s.stage == contract.STAGE_SHARD
    }


def test_boundary_message_table_matches_fields_in_order():
    documented = [cells[0].strip("`") for cells in _table_rows(_section("boundary-message"))]
    assert tuple(documented) == BoundaryMessage._fields


def test_protocol_tables_match_wire_constants():
    documented = [cells[0].strip("`") for cells in _table_rows(_section("protocol"))]
    assert tuple(documented) == PARENT_OPS + WORKER_REPLIES


def test_documented_lookahead_default_matches_code():
    text = DOC_PATH.read_text()
    assert f"`DEFAULT_LOOKAHEAD_NS` = {DEFAULT_LOOKAHEAD_NS:_} ns" in text


def test_documented_bucket_sort_key_matches_code():
    text = DOC_PATH.read_text()
    assert "(`deliver_ns`, `src_shard`, `seq`)" in text
    message = BoundaryMessage(
        deliver_ns=7,
        src_shard=1,
        src_node=2,
        dst_shard=3,
        dst_node=4,
        kind=5,
        trace_id=6,
        payload=8,
        send_ns=0,
        seq=9,
    )
    assert _BUCKET_KEY(message) == (7, 1, 9)
