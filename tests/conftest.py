"""Shared fixtures for the test suite."""

import pytest

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.stack import KernelNode
from repro.sim.engine import Engine
from repro.sim.rng import SeededRNG


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def rng():
    return SeededRNG(1234, "tests")


@pytest.fixture
def node(engine):
    """A bare kernel node with 4 CPUs."""
    return KernelNode(engine, "testnode", num_cpus=4)


@pytest.fixture
def two_nodes(engine):
    """Two kernel nodes joined by a veth pair with IPs and routes."""
    from repro.net.device import VethDevice

    node_a = KernelNode(engine, "alpha", num_cpus=2)
    node_b = KernelNode(engine, "beta", num_cpus=2)
    veth_a, veth_b = VethDevice.create_pair(node_a, "veth0", node_b, "veth0")
    ip_a, ip_b = IPv4Address("10.1.0.1"), IPv4Address("10.1.0.2")
    veth_a.ip, veth_b.ip = ip_a, ip_b
    node_a.add_route(IPv4Address("10.1.0.0"), 24, veth_a, src_ip=ip_a)
    node_b.add_route(IPv4Address("10.1.0.0"), 24, veth_b, src_ip=ip_b)
    node_a.add_neighbor(ip_b, veth_b.mac)
    node_b.add_neighbor(ip_a, veth_a.mac)
    return node_a, node_b, ip_a, ip_b
