"""Fast smoke tests over the experiment runners (tiny durations).

The full-shape assertions live in benchmarks/; these verify the
scenario plumbing end to end so a refactor cannot silently break a
figure between benchmark runs.
"""

import pytest

from repro.experiments.container_case import run_fig13b_path
from repro.experiments.ovs_case import CASES, ovs_costs, run_case
from repro.experiments.overhead import run_fig7a
from repro.experiments.topologies import (
    build_netperf_xen,
    build_overlay_case,
    build_ovs_case,
    build_two_host_kvm,
    build_xen_case,
)
from repro.experiments.xen_case import run_fig10a_condition

SHORT = 100_000_000  # 100 ms of virtual time


class TestTopologies:
    def test_two_host_kvm_builds(self):
        scene = build_two_host_kvm(seed=1)
        assert scene.vm1.node.name == "host1/vm1"
        assert scene.ovs1.ports and scene.ovs2.ports

    def test_netperf_xen_builds(self):
        scene = build_netperf_xen(seed=1)
        assert scene.server_vm.vcpus

    def test_ovs_case_builds_with_n_vms(self):
        scene = build_ovs_case(seed=1, num_vms=4)
        assert len(scene.vms) == 4
        assert len(scene.ovs.ports) == 4

    def test_xen_case_builds(self):
        scene = build_xen_case(seed=1)
        assert scene.container.host_veth_name == "veth684a1d9"
        assert scene.hog_vm is not None

    def test_overlay_case_builds(self):
        scene = build_overlay_case(seed=1)
        assert scene.container1.ip != scene.container2.ip


class TestRunnersSmoke:
    def test_fig7a_short(self):
        result = run_fig7a(duration_ns=SHORT, mps=2000)
        assert result.baseline.count > 100
        assert abs(result.avg_overhead_pct) < 5.0

    def test_ovs_case_I_uncongested(self):
        result = run_case("I", duration_ns=SHORT, trace=True)
        assert result.sockperf.avg_ns < 100_000
        assert result.decomposition is not None

    @pytest.mark.parametrize("case", ["II", "III"])
    def test_ovs_congested_cases(self, case):
        result = run_case(case, duration_ns=SHORT)
        assert result.sockperf.avg_ns > 100_000

    def test_case_names_validated(self):
        with pytest.raises(ValueError):
            run_case("IV")

    def test_xen_baseline_vs_shared(self):
        base = run_fig10a_condition("baseline", duration_ns=SHORT)
        shared = run_fig10a_condition("shared", duration_ns=SHORT)
        assert shared.sockperf.p999_ns > 5 * base.sockperf.p999_ns

    def test_fig13b_vm_path_short(self):
        result = run_fig13b_path(False, duration_ns=60_000_000)
        assert result.hops
