"""Packet and header wire formats."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import (
    ETHERTYPE_IPV4,
    EthernetHeader,
    HeaderError,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPv4Header,
    Packet,
    TCPHeader,
    TCPOPT_TRACE_ID,
    UDPHeader,
    VXLANHeader,
    make_tcp_packet,
    make_udp_packet,
)

MAC_A = MACAddress.from_index(1)
MAC_B = MACAddress.from_index(2)
IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")

ports = st.integers(min_value=1, max_value=65535)
payloads = st.binary(min_size=0, max_size=200)


class TestHeaderRoundtrips:
    def test_ethernet_roundtrip(self):
        header = EthernetHeader(MAC_B, MAC_A, 0x0800)
        parsed = EthernetHeader.unpack(header.pack())
        assert (parsed.dst, parsed.src, parsed.ethertype) == (MAC_B, MAC_A, 0x0800)

    def test_ipv4_roundtrip(self):
        header = IPv4Header(IP_A, IP_B, IPPROTO_UDP, ttl=17, identification=0xBEEF)
        parsed = IPv4Header.unpack(header.pack())
        assert parsed.src == IP_A and parsed.dst == IP_B
        assert parsed.ttl == 17 and parsed.identification == 0xBEEF

    def test_udp_roundtrip(self):
        parsed = UDPHeader.unpack(UDPHeader(1111, 2222, 100).pack())
        assert (parsed.src_port, parsed.dst_port, parsed.udp_length) == (1111, 2222, 100)

    def test_tcp_roundtrip_with_options(self):
        options = b"\x01\x01" + bytes([TCPOPT_TRACE_ID, 6]) + b"\xaa\xbb\xcc\xdd"
        header = TCPHeader(80, 443, seq=12345, ack=54321, flags=0x18, options=options)
        parsed = TCPHeader.unpack(header.pack())
        assert parsed.seq == 12345 and parsed.ack == 54321
        assert parsed.options == options
        assert parsed.find_option(TCPOPT_TRACE_ID) == b"\xaa\xbb\xcc\xdd"

    def test_vxlan_roundtrip(self):
        parsed = VXLANHeader.unpack(VXLANHeader(0xABCDE).pack())
        assert parsed.vni == 0xABCDE

    def test_vxlan_bad_vni(self):
        with pytest.raises(HeaderError):
            VXLANHeader(1 << 24)

    def test_tcp_options_must_be_aligned(self):
        with pytest.raises(HeaderError):
            TCPHeader(1, 2, options=b"\x01\x01\x01")

    def test_tcp_find_option_absent(self):
        assert TCPHeader(1, 2).find_option(TCPOPT_TRACE_ID) is None

    def test_truncated_headers_rejected(self):
        for cls in (EthernetHeader, IPv4Header, UDPHeader, TCPHeader, VXLANHeader):
            with pytest.raises(HeaderError):
                cls.unpack(b"\x00\x01")


class TestPacket:
    @given(src_port=ports, dst_port=ports, payload=payloads)
    def test_udp_wire_roundtrip(self, src_port, dst_port, payload):
        packet = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, src_port, dst_port, payload)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.udp.src_port == src_port
        assert parsed.udp.dst_port == dst_port
        assert parsed.payload == payload
        assert parsed.ip.src == IP_A

    @given(seq=st.integers(min_value=0, max_value=0xFFFFFFFF), payload=payloads)
    def test_tcp_wire_roundtrip(self, seq, payload):
        packet = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 10, 20, payload, seq=seq)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.tcp.seq == seq
        assert parsed.payload == payload

    def test_lengths_consistent(self):
        packet = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"x" * 50)
        assert packet.total_length == 14 + 20 + 8 + 50
        assert len(packet.to_bytes()) == packet.total_length

    def test_udp_length_field_fixed_up(self):
        packet = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"x" * 50)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.udp.udp_length == 8 + 50

    def test_uids_are_unique(self):
        a = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"")
        b = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"")
        assert a.uid != b.uid

    def test_clone_copies_structure_not_identity(self):
        packet = make_tcp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"abc", seq=9)
        packet.metadata["k"] = "v"
        packet.log_point("n", "p", 1)
        clone = packet.clone()
        assert clone.uid != packet.uid
        assert clone.path == []
        assert clone.metadata == {"k": "v"}
        clone.tcp.seq = 100
        assert packet.tcp.seq == 9  # deep header copy

    def test_vxlan_encapsulation_nests(self):
        inner = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 5, 6, b"inner-data")
        outer = Packet(
            [
                EthernetHeader(MAC_B, MAC_A),
                IPv4Header(IPv4Address("192.168.0.1"), IPv4Address("192.168.0.2"), IPPROTO_UDP),
                UDPHeader(49152, 4789),
                VXLANHeader(42),
            ],
            inner,
        )
        assert outer.inner is inner
        assert outer.innermost is inner
        assert outer.total_length == 14 + 20 + 8 + 8 + inner.total_length
        parsed = Packet.from_bytes(outer.to_bytes())
        assert parsed.vxlan.vni == 42
        assert parsed.inner is not None
        assert parsed.inner.payload == b"inner-data"
        assert parsed.innermost.udp.dst_port == 6

    def test_path_log_records_points(self, engine):
        packet = make_udp_packet(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"")
        packet.log_point("node1", "dev:eth0:tx", 100, cpu=2)
        assert packet.path_summary() == [("node1", "dev:eth0:tx")]
        assert packet.path[0].cpu == 2
