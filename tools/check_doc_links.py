#!/usr/bin/env python3
"""Fail on broken relative links in README.md and docs/*.md.

Scans every markdown link and image reference.  External targets
(``http(s)://``, ``mailto:``) are skipped; everything else is resolved
relative to the file containing the link and must exist in the working
tree.  In-page anchors (``#section``) are checked against the headings
of the target file (or the current file for bare ``#anchors``).

Usage: ``python tools/check_doc_links.py [repo_root]`` -- exits 1 and
lists every broken link if any are found.  CI runs this in the lint
job; ``tests/test_doc_links.py`` runs it in the test suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

# [text](target) and ![alt](target), ignoring code spans handled below.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def _strip_code(text: str) -> str:
    """Blank out fenced and inline code so example links are not checked."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def _slug(text: str) -> str:
    text = re.sub(r"[`*_\[\]()]", "", text).strip().lower()
    slug = re.sub(r"\s+", "-", re.sub(r"[^\w\s-]", "", text))
    # GitHub keeps one hyphen per removed token; collapse runs so both
    # single- and double-hyphen spellings of the same heading resolve.
    return re.sub(r"-+", "-", slug)


def _anchors(markdown: str) -> set:
    """Approximate GitHub anchor slugs for every heading in ``markdown``.

    Fenced code blocks are skipped (a ``# comment`` in an example is not
    a heading) but inline code inside headings keeps its text, exactly
    as GitHub's slugger treats it.
    """
    no_fences = re.sub(r"```.*?```", "", markdown, flags=re.DOTALL)
    return {_slug(heading) for heading in _HEADING_RE.findall(no_fences)}


def doc_files(root: Path) -> List[Path]:
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.is_file()]


def find_broken_links(root: Path) -> List[Tuple[Path, str, str]]:
    """Return ``(file, target, reason)`` for every broken relative link."""
    broken = []
    for path in doc_files(root):
        text = path.read_text()
        for target in _LINK_RE.findall(_strip_code(text)):
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            base, _, fragment = target.partition("#")
            fragment = re.sub(r"-+", "-", fragment.lower())
            if not base:  # in-page anchor
                if fragment and fragment not in _anchors(text):
                    broken.append((path, target, "missing heading anchor"))
                continue
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                broken.append((path, target, "file does not exist"))
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in _anchors(resolved.read_text()):
                    broken.append((path, target, "missing heading anchor"))
    return broken


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    broken = find_broken_links(root)
    for path, target, reason in broken:
        print(f"{path.relative_to(root)}: broken link {target!r} ({reason})")
    checked = len(doc_files(root))
    if broken:
        print(f"{len(broken)} broken link(s) across {checked} file(s)")
        return 1
    print(f"all relative links OK across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
