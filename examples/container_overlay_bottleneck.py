#!/usr/bin/env python3
"""Case Study III walkthrough: bottlenecks of the container overlay.

Reproduces §IV-E: two KVM VMs on one host, Docker containers joined by
a VXLAN overlay (etcd control store).  Shows:

1. container-to-container throughput collapsing vs VM-to-VM;
2. vNetTracer counting net_rx_action executions (far more per byte on
   the overlay path) and their distribution across CPUs via
   get_rps_cpu (concentrated on CPU 0, partially spread by the inner
   flow hash);
3. the reconstructed packet data path: the overlay path is much deeper.

Run:  python examples/container_overlay_bottleneck.py
"""

from repro.experiments.container_case import run_fig12b, run_fig13a, run_fig13b


def main() -> None:
    print("== Throughput: VM-to-VM vs container overlay (netperf) ==")
    for name, pair in run_fig12b(duration_ns=300_000_000).items():
        print(f"  {name:12s} VM {pair.vm_bps / 1e9:6.2f} Gbps   "
              f"containers {pair.container_bps / 1e9:6.2f} Gbps   "
              f"ratio {pair.ratio * 100:5.1f}%")

    print("\n== Softirq behaviour on the receiving VM (vNetTracer probes) ==")
    softirq = run_fig13a(duration_ns=300_000_000)
    for path, result in softirq.items():
        dist = ", ".join(f"cpu{c}: {f * 100:.1f}%" for c, f in result.cpu_distribution.items())
        print(f"  {path:10s} goodput {result.goodput_bps / 1e9:5.2f} Gbps   "
              f"net_rx_action {result.net_rx_rate_per_s:8.0f}/s   [{dist}]")
    ratio = softirq["container"].net_rx_rate_per_s / softirq["vm"].net_rx_rate_per_s
    print(f"  -> net_rx_action execution-rate ratio (container/VM): {ratio:.2f}x")

    print("\n== Receive-side data path (one traced packet) ==")
    for path, result in run_fig13b().items():
        print(f"  {path:10s} ({len(result.hops)} hops): {' -> '.join(result.hops)}")


if __name__ == "__main__":
    main()
