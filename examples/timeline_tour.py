#!/usr/bin/env python3
"""Timeline tour: per-packet span trees for the OVS case study.

Runs Case III of the paper's §IV-C study (Sockperf through OVS with
bulk iPerf on two ingress ports) with vNetTracer probes, then shows the
span-based view of the same data (docs/TIMELINES.md):

1. reconstruct every traced packet into a span tree
   (packet > device / wire spans, hop leaves);
2. print the first trees plus the critical path of the slowest packet;
3. aggregate per-hop p50/p95/p99 and flag anomalous spans;
4. export the whole forest as Chrome trace-event JSON -- open the file
   at https://ui.perfetto.dev to scrub through the packets.

Run:  python examples/timeline_tour.py [out.json]
"""

import sys

from repro.analysis.reports import anomaly_table, format_ns, hop_stats_table
from repro.experiments.ovs_case import run_case
from repro.tracing import chrome_trace_json, critical_path, timeline_text


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "ovs_case_iii_timeline.json"

    print("== OVS Case III, traced (sender stack / OVS / receiver stack) ==")
    result = run_case("III", duration_ns=300_000_000, trace=True)
    forest = result.tracer.span_forest(result.chain)
    print(timeline_text(forest, limit=2))

    slowest = max(forest, key=lambda tree: tree.duration_ns)
    print(f"\ncritical path of the slowest packet (0x{slowest.trace_id:08x}):")
    for span in critical_path(slowest):
        print(f"  {span.kind:7s} {span.name:40s} {format_ns(span.duration_ns)}")

    print("\nper-hop percentiles:")
    print(hop_stats_table(forest))

    print("\nanomalous spans (> 3x their hop median):")
    print(anomaly_table(forest))

    document = chrome_trace_json(forest)
    with open(out_path, "w") as handle:
        handle.write(document)
    print(f"\nwrote {out_path} ({len(forest)} trees) -- "
          "load it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
