#!/usr/bin/env python3
"""A tour of the observability tooling around vNetTracer.

Beyond the headline tracing pipeline, the repo carries the operator
tools you would reach for alongside it:

* in-kernel aggregation: per-CPU counters and log2 packet-size
  histograms computed entirely inside the eBPF programs;
* sampling: trace only ~1/2^n of a hot flow;
* program introspection: a `bpftool prog`-style dump of what the
  compiler actually emitted;
* packet capture: a tcpdump analog writing real .pcap files.

Run:  python examples/tooling_tour.py
"""

import io

from repro.core import ActionSpec, FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.core.compiler import histogram_bucket
from repro.ebpf.inspect import dump_program
from repro.experiments.topologies import build_two_host_kvm
from repro.net.packet import IPPROTO_UDP
from repro.net.pcap import PacketCapture, PcapReader
from repro.workloads.sockperf import SockperfClient, SockperfServer


def main() -> None:
    scene = build_two_host_kvm(seed=99)
    engine = scene.engine
    SockperfServer(scene.vm2.node, scene.vm2_ip)
    client = SockperfClient(scene.vm1.node, scene.vm1_ip, scene.vm2_ip,
                            mps=5000, msg_bytes=200)

    # -- tracing with in-kernel aggregation + sampling ----------------------
    tracer = VNetTracer(engine)
    tracer.add_agent(scene.vm1.node)
    spec = TracingSpec(
        rule=FilterRule(dst_port=11111, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=scene.vm1.node.name,
                           hook="kprobe:udp_send_skb", label="send"),
        ],
        action=ActionSpec(record=True, count=True, size_histogram=True,
                          sample_shift=3),  # record ~1/8th
    )
    tracer.deploy(spec)

    # -- packet capture on the server's OVS-facing NIC ----------------------
    capture = PacketCapture(scene.host2.node, rule=spec.rule, max_packets=100)
    scene.host2.node.hooks.attach("dev:eth0", capture)

    client.start(400_000_000, start_delay_ns=5_000_000)
    engine.run(until=600_000_000)
    tracer.collect()

    sent = client.sent
    recorded = tracer.db.count("send")
    counted = tracer.counter(scene.vm1.node.name, "send")
    print(f"sent {sent} requests")
    print(f"sampled actions ran for {counted} of them "
          f"(sample_shift=3 gates counters and records alike)")
    print(f"perf records streamed: {recorded} ({100 * recorded / sent:.1f}% ~ 1/8)")

    histogram = tracer.size_histogram(scene.vm1.node.name, "send")
    print("\nin-kernel log2 packet-size histogram (bucket: count):")
    for bucket, count in enumerate(histogram):
        if count:
            low = 0 if bucket == 0 else 1 << (bucket - 1)
            high = (1 << bucket) - 1
            print(f"  [{low:5d}..{high:5d}] {'#' * min(40, count // 10)} {count}")
    expected = histogram_bucket(200 + 42 + 4)  # payload + headers + trace id
    print(f"  (all packets fall in bucket {expected}, as expected)")

    # -- bpftool-style dump ---------------------------------------------------
    agent = tracer.agents[scene.vm1.node.name]
    program = agent.scripts["send"].attachment.program
    print("\ncompiled tracing script:")
    print("\n".join("  " + line for line in dump_program(program).splitlines()[:8]))
    print("  ... (full listing via repro.ebpf.inspect.dump_program)")

    # -- pcap ------------------------------------------------------------------
    buffer = io.BytesIO()
    written = capture.save(buffer)
    buffer.seek(0)
    frames = list(PcapReader(buffer))
    print(f"\npcap capture at host2:eth0: {written} frames, "
          f"{sum(len(w) for _t, w in frames)} bytes")
    print("first frame parses back to:", capture.packets()[0])


if __name__ == "__main__":
    main()
