#!/usr/bin/env python3
"""Case Study I walkthrough: diagnosing network delay in Open vSwitch.

Reproduces the paper's §IV-C story in one script:

1. measure Sockperf latency in an uncongested OVS (Case I);
2. add bulk iPerf traffic sharing the ingress port (Case II) and from
   a second VM (Case III) -- the tail explodes;
3. use vNetTracer to decompose the latency into sender stack / OVS /
   receiver stack and show the OVS segment dominating;
4. apply the paper's fix -- OVS ingress policing -- and show latency
   returning to baseline.

Run:  python examples/ovs_latency_diagnosis.py
"""

from repro.experiments.ovs_case import run_case


def show(tag: str, result) -> None:
    latency = result.sockperf.scaled()
    line = (f"{tag:28s} avg {latency['avg']:9.1f} us   "
            f"p99.9 {latency['p99.9']:9.1f} us   (n={latency['count']})")
    if result.decomposition is not None:
        ovs = result.decomposition["ovs"]
        sender = result.decomposition["sender_stack"]
        receiver = result.decomposition["receiver_stack"]
        line += (f"\n{'':28s} decomposition: sender {sender.avg_ns / 1e3:.1f} us | "
                 f"OVS {ovs.avg_ns / 1e3:.1f} us | receiver {receiver.avg_ns / 1e3:.1f} us")
    print(line)


def main() -> None:
    duration = 400_000_000  # 0.4 s per scenario

    print("== Sockperf through OVS, with vNetTracer decomposition ==")
    for case in ("I", "II", "III"):
        show(f"Case {case}", run_case(case, duration_ns=duration, trace=True))

    print("\n== Mitigation: ingress policing at vnet0/vnet1 "
          "(rate 1e5 kbps, burst 1e4 kb) ==")
    for case in ("II", "III"):
        result = run_case(case, duration_ns=duration, rate_limit=True)
        show(f"Case {case} + rate limit", result)
        print(f"{'':28s} policer drops: {result.policer_drops}")

    print("\n== Alternative: HTB shaping of the iPerf class ==")
    result = run_case("II", duration_ns=duration, htb=True)
    show("Case II + HTB", result)


if __name__ == "__main__":
    main()
