#!/usr/bin/env python3
"""Case Study II walkthrough: tuning the Xen credit2 rate limit.

Reproduces §IV-D: a 1-vCPU Xen VM (its server app inside a container)
shares a physical core with a CPU-hog VM.  The scheduler's 1000 us
context-switch rate limit makes every inbound packet wait, blowing up
tail latency ~20x.  vNetTracer's cross-boundary decomposition pins the
delay on the vif1.0 -> eth1 segment (Dom0 backend to guest frontend),
i.e. scheduling, not the data path.  Setting ratelimit_us=0 restores
baseline latency.

Run:  python examples/xen_scheduler_tuning.py
"""

from repro.experiments.xen_case import (
    run_fig10a_condition,
    run_fig10b_condition,
    run_fig11_condition,
)


def main() -> None:
    print("== Sockperf (UDP, via container on the Xen VM) ==")
    baseline = None
    for condition in ("baseline", "shared", "shared+ratelimit0"):
        result = run_fig10a_condition(condition, duration_ns=500_000_000)
        s = result.sockperf.scaled()
        if baseline is None:
            baseline = s
        print(f"  {condition:20s} avg {s['avg']:8.1f} us  "
              f"p99.9 {s['p99.9']:8.1f} us  ({s['p99.9'] / baseline['p99.9']:.1f}x)  "
              f"jitter ({result.jitter_range_us[0]:.1f}, {result.jitter_range_us[1]:.1f}) us")

    print("\n== Data Caching / memcached at 5000 rps, GET:SET 4:1 ==")
    baseline = None
    for condition in ("baseline", "shared", "shared+ratelimit0"):
        result = run_fig10b_condition(condition, duration_ns=500_000_000)
        s = result.latency.scaled()
        if baseline is None:
            baseline = s
        print(f"  {condition:20s} avg {s['avg']:8.1f} us ({s['avg'] / baseline['avg']:.1f}x)  "
              f"p99.9 {s['p99.9']:8.1f} us ({s['p99.9'] / baseline['p99.9']:.1f}x)")

    print("\n== vNetTracer latency decomposition (500 packets) ==")
    for condition in ("baseline", "shared"):
        result = run_fig11_condition(condition, packets=300)
        print(f"  [{condition}]  (clock skew estimate: "
              f"{result.clock_skew_estimate_ns / 1e6:+.3f} ms)")
        for key, summary in result.segment_summaries.items():
            s = summary.scaled()
            print(f"    {key:38s} avg {s['avg']:8.1f} us  max {s['max']:8.1f} us")
        low, high = result.one_way_jitter_range_us
        print(f"    sockperf jitter range: ({low:.1f}, {high:.1f}) us")


if __name__ == "__main__":
    main()
