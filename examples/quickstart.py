#!/usr/bin/env python3
"""Quickstart: trace a UDP flow end to end with vNetTracer.

Builds the paper's Fig. 7(a) style topology -- two physical hosts, a KVM
VM on each, Open vSwitch bridging each VM to the NIC -- then:

1. installs vNetTracer agents on all four kernels (which also enables
   the per-packet trace-ID kernel patch);
2. synchronizes the two hosts' clocks with Cristian's algorithm
   (host2 boots with a +1.5 ms offset and 20 ppm drift);
3. deploys tracing scripts, compiled to eBPF bytecode, at four points
   along the path of a Sockperf flow;
4. runs the workload and prints the end-to-end latency decomposition,
   followed by the pipeline's own health report (docs/OBSERVABILITY.md).

Run:  python examples/quickstart.py [--shards N]

``--shards N`` runs the identical scenario on a compat-tier
ShardedEngine with N shards (docs/SHARDING.md); the output is
byte-identical to the default single-heap engine -- CI diffs the two to
prove it.
"""

import argparse

from repro.core import FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.experiments.topologies import build_two_host_kvm
from repro.net.packet import IPPROTO_UDP
from repro.sim import ShardedEngine, engine_factory
from repro.workloads.sockperf import SockperfClient, SockperfServer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="run on a ShardedEngine with N shards (default: plain engine)")
    args = parser.parse_args()

    if args.shards:
        with engine_factory(lambda: ShardedEngine(shards=args.shards)):
            scene = build_two_host_kvm(seed=42)
    else:
        scene = build_two_host_kvm(seed=42)
    engine = scene.engine

    # -- the application under observation --------------------------------
    SockperfServer(scene.vm2.node, scene.vm2_ip)
    client = SockperfClient(scene.vm1.node, scene.vm1_ip, scene.vm2_ip, mps=2000)

    # -- vNetTracer --------------------------------------------------------
    tracer = VNetTracer(engine)
    for kernel in (scene.host1.node, scene.host2.node, scene.vm1.node, scene.vm2.node):
        tracer.add_agent(kernel)
    tracer.attach_stats_sampler()  # self-observability (docs/OBSERVABILITY.md)

    sync = tracer.synchronize_clocks(
        scene.host1.node, scene.host1_ip, "dev:eth0",
        scene.host2.node, scene.host2_ip, "dev:eth0",
    )

    chain = ["vm1:udp_send", "host1:wire-out", "host2:wire-in", "vm2:app-copy"]
    spec = TracingSpec(
        rule=FilterRule(dst_port=11111, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=scene.vm1.node.name, hook="kprobe:udp_send_skb",
                           label=chain[0]),
            TracepointSpec(node=scene.host1.node.name, hook="dev:eth0", label=chain[1]),
            TracepointSpec(node=scene.host2.node.name, hook="dev:eth0", label=chain[2]),
            TracepointSpec(node=scene.vm2.node.name,
                           hook="kprobe:skb_copy_datagram_iovec", label=chain[3]),
        ],
    )

    def after_sync(estimate) -> None:
        # The guest shares host2's clocksource; reuse the estimate.
        tracer.db.set_clock_skew(scene.vm2.node.name, estimate.skew_ns)
        print(f"clock skew host1-host2 estimated: {estimate.skew_ns / 1e6:+.3f} ms "
              f"(one-way {estimate.one_way_ns / 1e3:.1f} us over {estimate.samples} samples)")
        tracer.deploy(spec)
        client.start(500_000_000, start_delay_ns=5_000_000)

    previous = sync.on_done
    sync.on_done = lambda est: (previous(est), after_sync(est))

    engine.run(until=4_000_000_000)
    tracer.collect()

    # -- results ------------------------------------------------------------
    print(f"\nsockperf: {client.received}/{client.sent} replies, "
          f"avg latency {client.summary().avg_ns / 1e3:.1f} us (half RTT)")
    print(f"trace records collected: {tracer.db.rows_inserted}")
    print("\nend-to-end decomposition (request direction):")
    for segment in tracer.decompose(chain):
        summary = segment.summary()
        print(f"  {segment.from_label:18s} -> {segment.to_label:18s}"
              f"  avg {summary.avg_ns / 1e3:8.2f} us   p99 {summary.p99_ns / 1e3:8.2f} us")
    end_to_end = tracer.latencies(chain[0], chain[-1])
    print(f"\n  end-to-end one-way: avg "
          f"{sum(end_to_end) / len(end_to_end) / 1e3:.2f} us over {len(end_to_end)} packets")

    print()
    print(tracer.pipeline_health())


if __name__ == "__main__":
    main()
