"""A label-aware assembler for building eBPF programs in Python.

The vNetTracer script compiler (:mod:`repro.core.compiler`) emits its
filter-and-record programs through this DSL.  Usage:

    asm = Assembler()
    asm.ldx_w(R2, R1, CTX_OFF_SRC_IP)
    asm.jne_imm(R2, rule_src_ip, "miss")
    ...
    asm.label("miss")
    asm.mov_imm(R0, 0)
    asm.exit_()
    program = asm.assemble()

Jump offsets are resolved from labels at :meth:`assemble` time; emitting
a backward jump raises immediately, mirroring the verifier's DAG rule.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.ebpf import isa
from repro.ebpf.isa import Instruction

LabelOrOffset = Union[str, int]


class AssemblerError(ValueError):
    """Raised for malformed assembly (duplicate/unknown labels, ...)."""


class Assembler:
    """Collects instructions and fixes up label-based jump offsets."""

    def __init__(self) -> None:
        self._insns: List[Tuple[Instruction, LabelOrOffset]] = []
        self._labels: Dict[str, int] = {}

    # -- layout ----------------------------------------------------------

    def label(self, name: str) -> "Assembler":
        """Define a jump target at the next instruction."""
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insns)
        return self

    def position(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._insns)

    def _emit(self, insn: Instruction, target: LabelOrOffset = 0) -> "Assembler":
        self._insns.append((insn, target))
        return self

    # -- ALU64 -------------------------------------------------------------

    def _alu(self, op: int, dst: int, cls: int, src: int = 0, imm: int = 0, use_reg: bool = False):
        source = isa.BPF_X if use_reg else isa.BPF_K
        return self._emit(Instruction(cls | source | op, dst=dst, src=src, imm=imm))

    def mov_imm(self, dst: int, imm: int):
        """dst = imm (sign-extended 32-bit immediate)."""
        return self._alu(isa.BPF_MOV, dst, isa.BPF_ALU64, imm=imm)

    def mov_reg(self, dst: int, src: int):
        return self._alu(isa.BPF_MOV, dst, isa.BPF_ALU64, src=src, use_reg=True)

    def add_imm(self, dst: int, imm: int):
        return self._alu(isa.BPF_ADD, dst, isa.BPF_ALU64, imm=imm)

    def add_reg(self, dst: int, src: int):
        return self._alu(isa.BPF_ADD, dst, isa.BPF_ALU64, src=src, use_reg=True)

    def sub_imm(self, dst: int, imm: int):
        return self._alu(isa.BPF_SUB, dst, isa.BPF_ALU64, imm=imm)

    def sub_reg(self, dst: int, src: int):
        return self._alu(isa.BPF_SUB, dst, isa.BPF_ALU64, src=src, use_reg=True)

    def mul_imm(self, dst: int, imm: int):
        return self._alu(isa.BPF_MUL, dst, isa.BPF_ALU64, imm=imm)

    def div_imm(self, dst: int, imm: int):
        return self._alu(isa.BPF_DIV, dst, isa.BPF_ALU64, imm=imm)

    def mod_imm(self, dst: int, imm: int):
        return self._alu(isa.BPF_MOD, dst, isa.BPF_ALU64, imm=imm)

    def and_imm(self, dst: int, imm: int):
        return self._alu(isa.BPF_AND, dst, isa.BPF_ALU64, imm=imm)

    def or_imm(self, dst: int, imm: int):
        return self._alu(isa.BPF_OR, dst, isa.BPF_ALU64, imm=imm)

    def xor_reg(self, dst: int, src: int):
        return self._alu(isa.BPF_XOR, dst, isa.BPF_ALU64, src=src, use_reg=True)

    def lsh_imm(self, dst: int, imm: int):
        return self._alu(isa.BPF_LSH, dst, isa.BPF_ALU64, imm=imm)

    def rsh_imm(self, dst: int, imm: int):
        return self._alu(isa.BPF_RSH, dst, isa.BPF_ALU64, imm=imm)

    def neg(self, dst: int):
        return self._alu(isa.BPF_NEG, dst, isa.BPF_ALU64)

    # -- ALU32 ---------------------------------------------------------------

    def mov32_imm(self, dst: int, imm: int):
        """dst = imm, upper 32 bits zeroed."""
        return self._alu(isa.BPF_MOV, dst, isa.BPF_ALU, imm=imm)

    def add32_imm(self, dst: int, imm: int):
        return self._alu(isa.BPF_ADD, dst, isa.BPF_ALU, imm=imm)

    # -- memory ----------------------------------------------------------------

    def _size_bits(self, size: int) -> int:
        sizes = {1: isa.BPF_B, 2: isa.BPF_H, 4: isa.BPF_W, 8: isa.BPF_DW}
        if size not in sizes:
            raise AssemblerError(f"bad access size {size}")
        return sizes[size]

    def ldx(self, size: int, dst: int, src: int, offset: int = 0):
        """dst = *(size*)(src + offset)"""
        opcode = isa.BPF_LDX | isa.BPF_MEM | self._size_bits(size)
        return self._emit(Instruction(opcode, dst=dst, src=src, offset=offset))

    def ldx_b(self, dst: int, src: int, offset: int = 0):
        return self.ldx(1, dst, src, offset)

    def ldx_h(self, dst: int, src: int, offset: int = 0):
        return self.ldx(2, dst, src, offset)

    def ldx_w(self, dst: int, src: int, offset: int = 0):
        return self.ldx(4, dst, src, offset)

    def ldx_dw(self, dst: int, src: int, offset: int = 0):
        return self.ldx(8, dst, src, offset)

    def stx(self, size: int, dst: int, src: int, offset: int = 0):
        """*(size*)(dst + offset) = src"""
        opcode = isa.BPF_STX | isa.BPF_MEM | self._size_bits(size)
        return self._emit(Instruction(opcode, dst=dst, src=src, offset=offset))

    def stx_b(self, dst: int, src: int, offset: int = 0):
        return self.stx(1, dst, src, offset)

    def stx_h(self, dst: int, src: int, offset: int = 0):
        return self.stx(2, dst, src, offset)

    def stx_w(self, dst: int, src: int, offset: int = 0):
        return self.stx(4, dst, src, offset)

    def stx_dw(self, dst: int, src: int, offset: int = 0):
        return self.stx(8, dst, src, offset)

    def st_imm(self, size: int, dst: int, offset: int, imm: int):
        """*(size*)(dst + offset) = imm"""
        opcode = isa.BPF_ST | isa.BPF_MEM | self._size_bits(size)
        return self._emit(Instruction(opcode, dst=dst, offset=offset, imm=imm))

    def ld_map_fd(self, dst: int, map_fd: int):
        """Two-slot LD_IMM64 loading a map reference (BPF_PSEUDO_MAP_FD)."""
        opcode = isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW
        self._emit(Instruction(opcode, dst=dst, src=isa.BPF_PSEUDO_MAP_FD, imm=map_fd))
        return self._emit(Instruction(0, imm=0))

    def ld_imm64(self, dst: int, value: int):
        """Two-slot LD_IMM64 loading a full 64-bit constant."""
        opcode = isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW
        low = value & 0xFFFFFFFF
        high = (value >> 32) & 0xFFFFFFFF
        self._emit(Instruction(opcode, dst=dst, imm=low))
        return self._emit(Instruction(0, imm=high))

    # -- jumps -----------------------------------------------------------------

    def _jmp(
        self,
        op: int,
        target: LabelOrOffset,
        dst: int = 0,
        src: int = 0,
        imm: int = 0,
        use_reg: bool = False,
    ):
        source = isa.BPF_X if use_reg else isa.BPF_K
        insn = Instruction(isa.BPF_JMP | source | op, dst=dst, src=src, imm=imm)
        return self._emit(insn, target)

    def ja(self, target: LabelOrOffset):
        return self._jmp(isa.BPF_JA, target)

    def jeq_imm(self, dst: int, imm: int, target: LabelOrOffset):
        return self._jmp(isa.BPF_JEQ, target, dst=dst, imm=imm)

    def jne_imm(self, dst: int, imm: int, target: LabelOrOffset):
        return self._jmp(isa.BPF_JNE, target, dst=dst, imm=imm)

    def jgt_imm(self, dst: int, imm: int, target: LabelOrOffset):
        return self._jmp(isa.BPF_JGT, target, dst=dst, imm=imm)

    def jge_imm(self, dst: int, imm: int, target: LabelOrOffset):
        return self._jmp(isa.BPF_JGE, target, dst=dst, imm=imm)

    def jlt_imm(self, dst: int, imm: int, target: LabelOrOffset):
        return self._jmp(isa.BPF_JLT, target, dst=dst, imm=imm)

    def jle_imm(self, dst: int, imm: int, target: LabelOrOffset):
        return self._jmp(isa.BPF_JLE, target, dst=dst, imm=imm)

    def jset_imm(self, dst: int, imm: int, target: LabelOrOffset):
        return self._jmp(isa.BPF_JSET, target, dst=dst, imm=imm)

    def jeq_reg(self, dst: int, src: int, target: LabelOrOffset):
        return self._jmp(isa.BPF_JEQ, target, dst=dst, src=src, use_reg=True)

    def jne_reg(self, dst: int, src: int, target: LabelOrOffset):
        return self._jmp(isa.BPF_JNE, target, dst=dst, src=src, use_reg=True)

    def jgt_reg(self, dst: int, src: int, target: LabelOrOffset):
        return self._jmp(isa.BPF_JGT, target, dst=dst, src=src, use_reg=True)

    def jge_reg(self, dst: int, src: int, target: LabelOrOffset):
        return self._jmp(isa.BPF_JGE, target, dst=dst, src=src, use_reg=True)

    def call(self, helper_id: int):
        return self._emit(Instruction(isa.BPF_JMP | isa.BPF_CALL, imm=helper_id))

    def exit_(self):
        return self._emit(Instruction(isa.BPF_JMP | isa.BPF_EXIT))

    # -- assembly ---------------------------------------------------------------

    def assemble(self) -> List[Instruction]:
        """Resolve labels to relative offsets and return the instruction list."""
        program: List[Instruction] = []
        for index, (insn, target) in enumerate(self._insns):
            cls = insn.insn_class
            is_jump = cls == isa.BPF_JMP and insn.alu_op not in (isa.BPF_CALL, isa.BPF_EXIT)
            if not is_jump:
                program.append(insn)
                continue
            if isinstance(target, str):
                if target not in self._labels:
                    raise AssemblerError(f"unknown label {target!r}")
                offset = self._labels[target] - index - 1
            else:
                offset = int(target)
            if offset < 0:
                raise AssemblerError(
                    f"backward jump at insn {index} (offset {offset}); programs must be DAGs"
                )
            program.append(insn._replace(offset=offset))
        return program
