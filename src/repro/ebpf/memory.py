"""The VM's memory model: a handful of byte regions at virtual bases.

Pointers inside the VM are plain 64-bit integers.  Each execution sees:

* the 512-byte stack (R10 points one past its top),
* the context struct (``__sk_buff`` analog),
* the packet data (``ctx->data`` .. ``ctx->data_end``),
* value buffers returned by map lookups (they alias map storage, so
  stores through them persist across invocations, as in the kernel).

Loads and stores outside a registered region raise
:class:`MemoryFault` -- the runtime backstop behind the verifier.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

STACK_REGION_BASE = 0x1_0000_0000
CTX_REGION_BASE = 0x2_0000_0000
PACKET_REGION_BASE = 0x3_0000_0000
MAP_VALUE_REGION_BASE = 0x4_0000_0000


class MemoryFault(RuntimeError):
    """An out-of-bounds or misaligned access at runtime."""


class Memory:
    """Region registry with bounds-checked little-endian access.

    eBPF memory accesses are little-endian (the ISA is LE); network
    byte order conversions are done explicitly by programs.
    """

    __slots__ = ("_regions", "_next_dynamic_base")

    def __init__(self, regions: Optional[List[Tuple[int, bytearray, str]]] = None) -> None:
        """``regions`` pre-installs ``(base, buffer, name)`` triples with
        no overlap scan -- the per-run fast path for the fixed stack /
        ctx / packet bases, which are disjoint by construction.  Later
        :meth:`add_region` calls still check against them."""
        self._regions: List[Tuple[int, bytearray, str]] = regions if regions is not None else []
        self._next_dynamic_base = MAP_VALUE_REGION_BASE

    def add_region(self, base: int, buffer: bytearray, name: str = "") -> int:
        """Register ``buffer`` at virtual address ``base``; returns base."""
        for existing_base, existing_buf, existing_name in self._regions:
            if base < existing_base + len(existing_buf) and existing_base < base + len(buffer):
                raise MemoryFault(
                    f"region {name!r} at {base:#x} overlaps {existing_name!r}"
                )
        self._regions.append((base, buffer, name))
        return base

    def add_dynamic_region(self, buffer: bytearray, name: str = "") -> int:
        """Register a buffer at the next free dynamic address (map values)."""
        base = self._next_dynamic_base
        # Keep regions page-separated so off-by-small-N bugs fault loudly.
        self._next_dynamic_base += max(4096, len(buffer) + 4096)
        return self.add_region(base, buffer, name)

    def _locate(self, address: int, size: int) -> Tuple[bytearray, int]:
        for base, buffer, _name in self._regions:
            if base <= address and address + size <= base + len(buffer):
                return buffer, address - base
        raise MemoryFault(f"access of {size} bytes at {address:#x} hits no region")

    def load(self, address: int, size: int) -> int:
        buffer, offset = self._locate(address, size)
        return int.from_bytes(buffer[offset : offset + size], "little")

    def store(self, address: int, size: int, value: int) -> None:
        buffer, offset = self._locate(address, size)
        buffer[offset : offset + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(
            size, "little"
        )

    def read_bytes(self, address: int, size: int) -> bytes:
        """Bulk read (used by helpers such as perf_event_output)."""
        buffer, offset = self._locate(address, size)
        # memoryview avoids the intermediate bytearray a slice would copy.
        return bytes(memoryview(buffer)[offset : offset + size])

    def write_bytes(self, address: int, data: bytes) -> None:
        """Bulk write (used by helpers that fill caller buffers)."""
        buffer, offset = self._locate(address, len(data))
        buffer[offset : offset + len(data)] = data
