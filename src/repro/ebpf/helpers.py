"""Kernel helper functions callable from eBPF programs via ``CALL``.

Helper IDs match the kernel's UAPI numbering so programs read like real
ones.  Each helper has a simulated-time cost (charged to the probe's
overhead) alongside its semantic implementation.

``bpf_ktime_get_ns`` (id 5) reads the node's CLOCK_MONOTONIC -- §III-B:
"we obtain the nanosecond-level granularity time record from the
function bpf_ktime_get_ns()".
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple, TYPE_CHECKING

from repro.ebpf.maps import BPFMap, MapError, PerfEventArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ebpf.vm import VMState

# UAPI helper ids (linux/bpf.h)
HELPER_MAP_LOOKUP_ELEM = 1
HELPER_MAP_UPDATE_ELEM = 2
HELPER_MAP_DELETE_ELEM = 3
HELPER_KTIME_GET_NS = 5
HELPER_TRACE_PRINTK = 6
HELPER_GET_PRANDOM_U32 = 7
HELPER_GET_SMP_PROCESSOR_ID = 8
HELPER_PERF_EVENT_OUTPUT = 25

# Pointers to maps are tagged addresses; LD_IMM64 with BPF_PSEUDO_MAP_FD
# materializes MAP_PTR_BASE + fd in the destination register.
MAP_PTR_BASE = 0x5_0000_0000

# BPF_F_CURRENT_CPU for perf_event_output's flags argument.
BPF_F_CURRENT_CPU = 0xFFFFFFFF


class HelperError(RuntimeError):
    """A helper was called with invalid arguments (bad map fd etc.)."""


class HelperInfo(NamedTuple):
    """One helper: UAPI name, host implementation, argc, simulated cost.

    ``func`` takes the :class:`~repro.ebpf.vm.VMState` plus the helper's
    ``argc`` argument registers (R1..Rn) as plain integers -- both
    execution tiers pass them positionally, so helpers never read the
    register file themselves.
    """

    name: str
    func: Callable[..., int]
    argc: int
    cost_ns: int


def _resolve_map(state: "VMState", reg_value: int) -> BPFMap:
    fd = reg_value - MAP_PTR_BASE
    bpf_map = state.env.maps.get(fd)
    if bpf_map is None:
        raise HelperError(f"register holds no valid map pointer ({reg_value:#x})")
    return bpf_map


def _map_lookup_elem(state: "VMState", map_ptr: int, key_ptr: int) -> int:
    bpf_map = _resolve_map(state, map_ptr)
    key = state.read_bytes(key_ptr, bpf_map.key_size)
    value = bpf_map.lookup(key, cpu=state.env.cpu)
    if value is None:
        return 0
    # Expose the live map storage to the program; stores through the
    # returned pointer persist, matching kernel semantics.
    return state.add_dynamic_region(value, name=f"{bpf_map.name}-value")


def _map_update_elem(
    state: "VMState", map_ptr: int, key_ptr: int, value_ptr: int, flags: int
) -> int:
    bpf_map = _resolve_map(state, map_ptr)
    key = state.read_bytes(key_ptr, bpf_map.key_size)
    value = state.read_bytes(value_ptr, bpf_map.value_size)
    try:
        bpf_map.update(key, value, cpu=state.env.cpu)
    except MapError:
        return (-1) & 0xFFFFFFFFFFFFFFFF
    return 0


def _map_delete_elem(state: "VMState", map_ptr: int, key_ptr: int) -> int:
    bpf_map = _resolve_map(state, map_ptr)
    key = state.read_bytes(key_ptr, bpf_map.key_size)
    try:
        removed = bpf_map.delete(key, cpu=state.env.cpu)
    except MapError:
        return (-1) & 0xFFFFFFFFFFFFFFFF
    return 0 if removed else (-1) & 0xFFFFFFFFFFFFFFFF


def _ktime_get_ns(state: "VMState") -> int:
    return state.env.clock() & 0xFFFFFFFFFFFFFFFF


def _trace_printk(state: "VMState", fmt_ptr: int, fmt_size: int) -> int:
    if fmt_size > 128:
        raise HelperError(f"trace_printk format too large ({fmt_size})")
    fmt = state.read_bytes(fmt_ptr, fmt_size).split(b"\x00")[0]
    state.env.printk_sink(fmt.decode("latin-1"))
    return len(fmt)


def _get_prandom_u32(state: "VMState") -> int:
    return state.env.prandom_u32() & 0xFFFFFFFF


def _get_smp_processor_id(state: "VMState") -> int:
    return state.env.cpu


def _perf_event_output(
    state: "VMState", ctx_ptr: int, map_ptr: int, flags: int, data_ptr: int, size: int
) -> int:
    bpf_map = _resolve_map(state, map_ptr)
    if not isinstance(bpf_map, PerfEventArray):
        raise HelperError(f"perf_event_output into non-perf map {bpf_map.name!r}")
    flags &= 0xFFFFFFFF
    cpu = state.env.cpu if flags == BPF_F_CURRENT_CPU else flags
    if size > 4096:
        raise HelperError(f"perf_event_output record too large ({size})")
    record = state.read_bytes(data_ptr, size)
    bpf_map.output(cpu, record)
    return 0


HELPERS: Dict[int, HelperInfo] = {
    HELPER_MAP_LOOKUP_ELEM: HelperInfo("map_lookup_elem", _map_lookup_elem, 2, 55),
    HELPER_MAP_UPDATE_ELEM: HelperInfo("map_update_elem", _map_update_elem, 4, 75),
    HELPER_MAP_DELETE_ELEM: HelperInfo("map_delete_elem", _map_delete_elem, 2, 60),
    HELPER_KTIME_GET_NS: HelperInfo("ktime_get_ns", _ktime_get_ns, 0, 22),
    HELPER_TRACE_PRINTK: HelperInfo("trace_printk", _trace_printk, 2, 1000),
    HELPER_GET_PRANDOM_U32: HelperInfo("get_prandom_u32", _get_prandom_u32, 0, 15),
    HELPER_GET_SMP_PROCESSOR_ID: HelperInfo("get_smp_processor_id", _get_smp_processor_id, 0, 8),
    HELPER_PERF_EVENT_OUTPUT: HelperInfo("perf_event_output", _perf_event_output, 5, 110),
}
