"""Static verifier for eBPF programs.

Programs must pass verification before they can be attached -- the same
contract the kernel enforces.  Checks implemented (matching the
verifier of the paper-era kernels at the level our programs exercise):

* program size: 1 .. 4096 instructions (§II "Limitation");
* every opcode decodes to a known instruction;
* register numbers in range; no writes to the frame pointer R10;
* LD_IMM64 occupies two slots, the second slot is the zero pseudo
  instruction, and no jump lands in the middle;
* all jumps stay in bounds and go *forward* (DAG control flow: loops
  were rejected until kernel 5.3, after the paper);
* no unreachable instructions;
* the final instruction of every path is EXIT (checked via fallthrough
  off the end being impossible);
* constant division/modulo by zero is rejected;
* only known helper IDs may be CALLed, with their argument registers
  proven initialized; R1-R5 are clobbered by calls, R0 holds the result;
* reads of never-written registers are rejected via a dataflow pass
  (merge = intersection over predecessors; entry state = {R1, R10});
* direct stack accesses through R10 must fall inside the 512-byte frame.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.ebpf import isa
from repro.ebpf.helpers import HELPERS
from repro.ebpf.isa import Instruction

# Registers a helper call consumes, per helper id (R1..Rn must be init).
HELPER_ARG_COUNTS = {helper_id: info.argc for helper_id, info in HELPERS.items()}

_CALLER_SAVED = (isa.R1, isa.R2, isa.R3, isa.R4, isa.R5)

_VALID_ALU_OPS = frozenset(isa.ALU_OP_NAMES)
_VALID_JMP_OPS = frozenset(isa.JMP_OP_NAMES)


class VerifierError(ValueError):
    """The program was rejected; the message pinpoints the instruction."""


class VerifierAnalysis(NamedTuple):
    """Facts proven during verification, reused by the JIT tier.

    :func:`verify` returns this so :func:`repro.ebpf.jit.compile_program`
    does not re-derive program structure it already validated: jump
    targets seed the basic-block leaders, LD_IMM64 second slots are
    skipped during translation, map-load positions drive per-load map
    pointer binding, and helper sites pre-resolve host helper functions.
    Existing callers that only want the pass/fail answer can ignore it.
    """

    insn_count: int
    jump_targets: Tuple[int, ...]
    ld64_second_slots: Tuple[int, ...]
    map_load_positions: Tuple[int, ...]
    helper_sites: Tuple[Tuple[int, int], ...]  # (insn index, helper id)


def _bit(reg: int) -> int:
    return 1 << reg


_ENTRY_STATE = _bit(isa.R1) | _bit(isa.R10)
_ALL_REGS = (1 << isa.NUM_REGS) - 1


def verify(program: Sequence[Instruction]) -> VerifierAnalysis:
    """Raise :class:`VerifierError` unless ``program`` is acceptable.

    Returns a :class:`VerifierAnalysis` of the accepted program.
    """
    insns = list(program)
    if not insns:
        raise VerifierError("empty program")
    if len(insns) > isa.MAX_INSNS:
        raise VerifierError(f"program too large: {len(insns)} > {isa.MAX_INSNS} instructions")

    ld64_first_slots = set()
    ld64_second_slots = set()
    map_load_positions = []
    index = 0
    while index < len(insns):
        insn = insns[index]
        if insn.insn_class == isa.BPF_LD:
            if (insn.opcode & isa.MODE_MASK) != isa.BPF_IMM or (
                insn.opcode & isa.SIZE_MASK
            ) != isa.BPF_DW:
                raise VerifierError(f"insn {index}: unsupported BPF_LD form")
            if index + 1 >= len(insns):
                raise VerifierError(f"insn {index}: LD_IMM64 missing second slot")
            second = insns[index + 1]
            if second.opcode != 0 or second.dst != 0 or second.src != 0 or second.offset != 0:
                raise VerifierError(f"insn {index}: malformed LD_IMM64 second slot")
            if insn.src == isa.BPF_PSEUDO_MAP_FD:
                map_load_positions.append(index)
            ld64_first_slots.add(index)
            ld64_second_slots.add(index + 1)
            index += 2
        else:
            index += 1

    # -- per-instruction structural checks -------------------------------
    for i, insn in enumerate(insns):
        if i in ld64_second_slots:
            continue
        _check_structural(insns, i, insn)

    # -- reachability + register-init dataflow ---------------------------
    # Forward-only jumps make program order a topological order, so a
    # single in-order pass computes the meet-over-paths solution.
    states: Dict[int, int] = {0: _ENTRY_STATE}
    jump_targets = set()
    helper_sites = []
    if 0 in ld64_second_slots:
        raise VerifierError("program starts inside an LD_IMM64 pair")

    def propagate(target: int, state: int, source: int) -> None:
        if target == len(insns):
            raise VerifierError(f"insn {source}: control falls off the end of the program")
        if target > len(insns):
            raise VerifierError(f"insn {source}: jump target {target} out of bounds")
        if target in ld64_second_slots:
            raise VerifierError(f"insn {source}: jump into the middle of LD_IMM64")
        states[target] = states.get(target, _ALL_REGS) & state

    for i, insn in enumerate(insns):
        if i in ld64_second_slots:
            continue
        if i not in states:
            raise VerifierError(f"insn {i}: unreachable instruction")
        state = states[i]
        cls = insn.insn_class

        if cls in (isa.BPF_ALU, isa.BPF_ALU64):
            op = insn.alu_op
            if op not in (isa.BPF_MOV, isa.BPF_NEG, isa.BPF_END):
                _require_init(state, insn.dst, i, "dst")
            if not insn.uses_imm and op not in (isa.BPF_NEG, isa.BPF_END):
                _require_init(state, insn.src, i, "src")
            state |= _bit(insn.dst)
            propagate(i + 1, state, i)

        elif cls == isa.BPF_LDX:
            _require_init(state, insn.src, i, "src")
            state |= _bit(insn.dst)
            propagate(i + 1, state, i)

        elif cls in (isa.BPF_ST, isa.BPF_STX):
            _require_init(state, insn.dst, i, "dst")
            if cls == isa.BPF_STX:
                _require_init(state, insn.src, i, "src")
            propagate(i + 1, state, i)

        elif cls == isa.BPF_LD:  # LD_IMM64 first slot
            state |= _bit(insn.dst)
            propagate(i + 2, state, i)

        elif cls == isa.BPF_JMP:
            op = insn.alu_op
            if op == isa.BPF_EXIT:
                _require_init(state, isa.R0, i, "R0 at exit")
                continue
            if op == isa.BPF_CALL:
                for arg in range(1, HELPER_ARG_COUNTS[insn.imm] + 1):
                    _require_init(state, arg, i, f"helper arg r{arg}")
                for reg in _CALLER_SAVED:
                    state &= ~_bit(reg)
                state |= _bit(isa.R0)
                helper_sites.append((i, insn.imm))
                propagate(i + 1, state, i)
                continue
            if op == isa.BPF_JA:
                jump_targets.add(i + 1 + insn.offset)
                propagate(i + 1 + insn.offset, state, i)
                continue
            _require_init(state, insn.dst, i, "dst")
            if not insn.uses_imm:
                _require_init(state, insn.src, i, "src")
            jump_targets.add(i + 1 + insn.offset)
            propagate(i + 1 + insn.offset, state, i)  # taken
            propagate(i + 1, state, i)  # fallthrough

        else:
            raise VerifierError(f"insn {i}: unknown class {cls}")

    return VerifierAnalysis(
        insn_count=len(insns),
        jump_targets=tuple(sorted(jump_targets)),
        ld64_second_slots=tuple(sorted(ld64_second_slots)),
        map_load_positions=tuple(map_load_positions),
        helper_sites=tuple(helper_sites),
    )


def _check_structural(insns: List[Instruction], i: int, insn: Instruction) -> None:
    cls = insn.insn_class
    if not 0 <= insn.dst < isa.NUM_REGS or not 0 <= insn.src < isa.NUM_REGS:
        raise VerifierError(f"insn {i}: register out of range")

    writes_dst = (
        cls in (isa.BPF_ALU, isa.BPF_ALU64, isa.BPF_LDX, isa.BPF_LD)
    )
    if writes_dst and insn.dst == isa.FRAME_POINTER:
        raise VerifierError(f"insn {i}: write to frame pointer R10")

    if cls in (isa.BPF_ALU, isa.BPF_ALU64):
        op = insn.alu_op
        if op not in _VALID_ALU_OPS:
            raise VerifierError(f"insn {i}: unknown ALU op {op:#x}")
        if op in (isa.BPF_DIV, isa.BPF_MOD) and insn.uses_imm and insn.imm == 0:
            raise VerifierError(f"insn {i}: division by constant zero")
        if op in (isa.BPF_LSH, isa.BPF_RSH, isa.BPF_ARSH) and insn.uses_imm:
            width = 64 if cls == isa.BPF_ALU64 else 32
            if not 0 <= insn.imm < width:
                raise VerifierError(f"insn {i}: shift amount {insn.imm} out of range")
    elif cls == isa.BPF_JMP:
        op = insn.alu_op
        if op not in _VALID_JMP_OPS:
            raise VerifierError(f"insn {i}: unknown JMP op {op:#x}")
        if op == isa.BPF_CALL and insn.imm not in HELPERS:
            raise VerifierError(f"insn {i}: unknown helper id {insn.imm}")
        if op not in (isa.BPF_CALL, isa.BPF_EXIT) and insn.offset < 0:
            raise VerifierError(
                f"insn {i}: backward jump (offset {insn.offset}); loops are rejected"
            )
    elif cls == isa.BPF_JMP32:
        raise VerifierError(f"insn {i}: JMP32 class not supported by this verifier")
    elif cls in (isa.BPF_LDX, isa.BPF_ST, isa.BPF_STX):
        if (insn.opcode & isa.MODE_MASK) != isa.BPF_MEM:
            raise VerifierError(f"insn {i}: unsupported addressing mode")
        # Direct frame-pointer accesses must stay inside the 512-byte frame.
        pointer_reg = insn.src if cls == isa.BPF_LDX else insn.dst
        if pointer_reg == isa.FRAME_POINTER:
            size = insn.size_bytes
            if not -isa.STACK_SIZE <= insn.offset <= -size:
                raise VerifierError(
                    f"insn {i}: stack access at fp{insn.offset:+} size {size} "
                    f"outside the {isa.STACK_SIZE}-byte frame"
                )


def _require_init(state: int, reg: int, index: int, what: str) -> None:
    if not state & _bit(reg):
        raise VerifierError(f"insn {index}: read of uninitialized register r{reg} ({what})")
