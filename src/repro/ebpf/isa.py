"""The eBPF instruction set, using the kernel's opcode encoding.

An instruction is ``(opcode, dst, src, offset, imm)`` exactly like
``struct bpf_insn``.  The opcode byte decomposes into a 3-bit class plus
class-specific fields; the constants below mirror ``linux/bpf_common.h``
and ``linux/bpf.h`` so programs here disassemble the way kernel ones do.
"""

from __future__ import annotations

from typing import NamedTuple

# --- instruction classes ----------------------------------------------------
BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_STX = 0x03
BPF_ALU = 0x04  # 32-bit ALU
BPF_JMP = 0x05
BPF_JMP32 = 0x06
BPF_ALU64 = 0x07

CLASS_MASK = 0x07

# --- size field (for LD/LDX/ST/STX) ----------------------------------------
BPF_W = 0x00  # 4 bytes
BPF_H = 0x08  # 2 bytes
BPF_B = 0x10  # 1 byte
BPF_DW = 0x18  # 8 bytes

SIZE_MASK = 0x18
SIZE_BYTES = {BPF_W: 4, BPF_H: 2, BPF_B: 1, BPF_DW: 8}

# --- mode field (for LD/LDX/ST/STX) ----------------------------------------
BPF_IMM = 0x00
BPF_MEM = 0x60

MODE_MASK = 0xE0

# --- source field (ALU/JMP) -------------------------------------------------
BPF_K = 0x00  # use imm
BPF_X = 0x08  # use src register

SRC_MASK = 0x08

# --- ALU operations (high nibble) -------------------------------------------
BPF_ADD = 0x00
BPF_SUB = 0x10
BPF_MUL = 0x20
BPF_DIV = 0x30
BPF_OR = 0x40
BPF_AND = 0x50
BPF_LSH = 0x60
BPF_RSH = 0x70
BPF_NEG = 0x80
BPF_MOD = 0x90
BPF_XOR = 0xA0
BPF_MOV = 0xB0
BPF_ARSH = 0xC0
BPF_END = 0xD0  # byteswap

OP_MASK = 0xF0

# --- JMP operations (high nibble) -------------------------------------------
BPF_JA = 0x00
BPF_JEQ = 0x10
BPF_JGT = 0x20
BPF_JGE = 0x30
BPF_JSET = 0x40
BPF_JNE = 0x50
BPF_JSGT = 0x60
BPF_JSGE = 0x70
BPF_CALL = 0x80
BPF_EXIT = 0x90
BPF_JLT = 0xA0
BPF_JLE = 0xB0
BPF_JSLT = 0xC0
BPF_JSLE = 0xD0

# LD_IMM64 pseudo source values
BPF_PSEUDO_MAP_FD = 1

# Registers
R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10 = range(11)
NUM_REGS = 11
FRAME_POINTER = R10
STACK_SIZE = 512

MAX_INSNS = 4096  # §II: "the eBPF program is limited by its size, ... at most 4k instructions"

U64_MASK = 0xFFFFFFFFFFFFFFFF
U32_MASK = 0xFFFFFFFF


class Instruction(NamedTuple):
    """One eBPF instruction (``struct bpf_insn`` equivalent)."""

    opcode: int
    dst: int = 0
    src: int = 0
    offset: int = 0
    imm: int = 0

    @property
    def insn_class(self) -> int:
        return self.opcode & CLASS_MASK

    @property
    def alu_op(self) -> int:
        return self.opcode & OP_MASK

    @property
    def size_bytes(self) -> int:
        return SIZE_BYTES[self.opcode & SIZE_MASK]

    @property
    def uses_imm(self) -> bool:
        return (self.opcode & SRC_MASK) == BPF_K

    def __repr__(self) -> str:
        return (
            f"Insn(op=0x{self.opcode:02x} dst=r{self.dst} src=r{self.src} "
            f"off={self.offset} imm={self.imm})"
        )


ALU_OP_NAMES = {
    BPF_ADD: "add",
    BPF_SUB: "sub",
    BPF_MUL: "mul",
    BPF_DIV: "div",
    BPF_OR: "or",
    BPF_AND: "and",
    BPF_LSH: "lsh",
    BPF_RSH: "rsh",
    BPF_NEG: "neg",
    BPF_MOD: "mod",
    BPF_XOR: "xor",
    BPF_MOV: "mov",
    BPF_ARSH: "arsh",
    BPF_END: "end",
}

JMP_OP_NAMES = {
    BPF_JA: "ja",
    BPF_JEQ: "jeq",
    BPF_JGT: "jgt",
    BPF_JGE: "jge",
    BPF_JSET: "jset",
    BPF_JNE: "jne",
    BPF_JSGT: "jsgt",
    BPF_JSGE: "jsge",
    BPF_CALL: "call",
    BPF_EXIT: "exit",
    BPF_JLT: "jlt",
    BPF_JLE: "jle",
    BPF_JSLT: "jslt",
    BPF_JSLE: "jsle",
}


def disassemble_one(insn: Instruction, index: int = 0) -> str:
    """A human-readable rendering of one instruction (debugging aid)."""
    cls = insn.insn_class
    if cls in (BPF_ALU, BPF_ALU64):
        suffix = "" if cls == BPF_ALU64 else "32"
        name = ALU_OP_NAMES.get(insn.alu_op, f"alu?{insn.alu_op:#x}")
        operand = f"{insn.imm}" if insn.uses_imm else f"r{insn.src}"
        return f"{index:4}: {name}{suffix} r{insn.dst}, {operand}"
    if cls in (BPF_JMP, BPF_JMP32):
        name = JMP_OP_NAMES.get(insn.alu_op, f"jmp?{insn.alu_op:#x}")
        if insn.alu_op == BPF_EXIT:
            return f"{index:4}: exit"
        if insn.alu_op == BPF_CALL:
            return f"{index:4}: call helper#{insn.imm}"
        if insn.alu_op == BPF_JA:
            return f"{index:4}: ja +{insn.offset}"
        operand = f"{insn.imm}" if insn.uses_imm else f"r{insn.src}"
        return f"{index:4}: {name} r{insn.dst}, {operand}, +{insn.offset}"
    if cls == BPF_LDX:
        return f"{index:4}: ldx{insn.size_bytes} r{insn.dst}, [r{insn.src}+{insn.offset}]"
    if cls == BPF_STX:
        return f"{index:4}: stx{insn.size_bytes} [r{insn.dst}+{insn.offset}], r{insn.src}"
    if cls == BPF_ST:
        return f"{index:4}: st{insn.size_bytes} [r{insn.dst}+{insn.offset}], {insn.imm}"
    if cls == BPF_LD:
        return f"{index:4}: ld_imm64 r{insn.dst}, {insn.imm} (src={insn.src})"
    return f"{index:4}: ??? {insn}"


def disassemble(program) -> str:
    """Disassemble a list of instructions."""
    return "\n".join(disassemble_one(insn, i) for i, insn in enumerate(program))
