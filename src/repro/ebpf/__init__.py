"""An eBPF execution substrate implemented from scratch.

The paper's tracing scripts are eBPF programs executed by the kernel's
in-kernel virtual machine after passing the verifier.  This package
recreates that pipeline so vNetTracer's scripts in this repo are *real
bytecode programs*, not Python callbacks:

* :mod:`repro.ebpf.isa` -- the instruction set (real eBPF opcode
  encoding: ALU64/ALU32, JMP, LDX/STX, LD_IMM64, CALL, EXIT).
* :mod:`repro.ebpf.assembler` -- a label-aware assembler DSL.
* :mod:`repro.ebpf.verifier` -- static verifier: 4096-instruction limit
  (§II "Limitation"), DAG control flow (no back edges, as in kernels of
  the paper's era), register-initialization dataflow, stack bounds,
  known helpers, well-formed LD_IMM64 pairs.
* :mod:`repro.ebpf.vm` -- the VM: the interpreter (the differential
  oracle), the simulated nanosecond cost model, and shadow mode;
  :mod:`repro.ebpf.jit` translates verified programs to native Python
  code objects (the JIT analog), the default host execution tier.
* :mod:`repro.ebpf.maps` -- BPF maps: hash, array, per-CPU array, and
  the perf event array used to stream records to user space.
* :mod:`repro.ebpf.helpers` -- ``bpf_ktime_get_ns``, map ops,
  ``perf_event_output``, ``get_smp_processor_id``, ...
* :mod:`repro.ebpf.probes` -- the attach-point registry (kprobe,
  kretprobe, tracepoint, network device) that the simulated kernel
  fires as packets traverse it.
"""

from repro.ebpf.assembler import Assembler
from repro.ebpf.isa import Instruction
from repro.ebpf.maps import ArrayMap, HashMap, PerCPUArrayMap, PerfEventArray
from repro.ebpf.probes import HookRegistry, ProbeEvent, ProbeKind, ProbeSpec
from repro.ebpf.verifier import VerifierError, verify
from repro.ebpf.vm import BPFProgram, ExecutionEnv, ShadowMismatch

__all__ = [
    "Instruction",
    "Assembler",
    "verify",
    "VerifierError",
    "BPFProgram",
    "ExecutionEnv",
    "ShadowMismatch",
    "HashMap",
    "ArrayMap",
    "PerCPUArrayMap",
    "PerfEventArray",
    "HookRegistry",
    "ProbeEvent",
    "ProbeKind",
    "ProbeSpec",
]
