"""BPF maps: the kernel-resident state tracing programs read and write.

The paper's scripts keep counters and intermediate records "temporarily
stored in the eBPF data structures inside kernel" (§II), then stream
them out through a perf buffer.  Four map types cover everything this
repo's compiler emits:

* :class:`HashMap` -- arbitrary fixed-size keys to fixed-size values.
* :class:`ArrayMap` -- u32-indexed, preallocated.
* :class:`PerCPUArrayMap` -- one value slot per CPU per index; the
  lock-free counter idiom.
* :class:`PerfEventArray` -- the ``bpf_perf_event_output`` target; user
  space (the agent) drains it.

Keys/values cross the VM boundary as bytes, exactly as via the syscall.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

_map_fd_counter = itertools.count(3)  # fds 0..2 are taken, like a real process


class MapError(ValueError):
    """Bad key/value size, capacity exhausted, or unknown index."""


class BPFMap:
    """Common behaviour: fd identity, key/value size checking."""

    kind = "abstract"

    def __init__(self, key_size: int, value_size: int, max_entries: int, name: str = ""):
        if key_size <= 0 or value_size <= 0 or max_entries <= 0:
            raise MapError("sizes and capacity must be positive")
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries
        self.name = name or f"{self.kind}-map"
        self.fd = next(_map_fd_counter)

    def _check_key(self, key: bytes) -> bytes:
        key = bytes(key)
        if len(key) != self.key_size:
            raise MapError(f"{self.name}: key size {len(key)} != {self.key_size}")
        return key

    def _check_value(self, value: bytes) -> bytes:
        value = bytes(value)
        if len(value) != self.value_size:
            raise MapError(f"{self.name}: value size {len(value)} != {self.value_size}")
        return value

    # The helper layer calls these three.

    def lookup(self, key: bytes, cpu: int = 0) -> Optional[bytearray]:
        raise NotImplementedError

    def update(self, key: bytes, value: bytes, cpu: int = 0) -> None:
        raise NotImplementedError

    def delete(self, key: bytes, cpu: int = 0) -> bool:
        raise NotImplementedError

    # Shadow-mode support: deep copies and comparable state snapshots.

    def _clone_shell(self) -> "BPFMap":
        """A same-type instance sharing fd/shape but no storage.

        ``object.__new__`` keeps the fd counter untouched -- clones are
        shadow-execution scratch, not new kernel objects.
        """
        other = object.__new__(type(self))
        other.key_size = self.key_size
        other.value_size = self.value_size
        other.max_entries = self.max_entries
        other.name = self.name
        other.fd = self.fd
        return other

    def clone(self) -> "BPFMap":
        """Deep copy for the differential oracle to mutate."""
        raise NotImplementedError

    def state_snapshot(self):
        """Immutable view of the map contents for equality comparison."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} fd={self.fd}>"


class HashMap(BPFMap):
    """BPF_MAP_TYPE_HASH."""

    kind = "hash"

    def __init__(self, key_size: int, value_size: int, max_entries: int, name: str = ""):
        super().__init__(key_size, value_size, max_entries, name)
        self._entries: Dict[bytes, bytearray] = {}

    def lookup(self, key: bytes, cpu: int = 0) -> Optional[bytearray]:
        return self._entries.get(self._check_key(key))

    def update(self, key: bytes, value: bytes, cpu: int = 0) -> None:
        key = self._check_key(key)
        value = self._check_value(value)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            raise MapError(f"{self.name}: map full ({self.max_entries} entries)")
        slot = self._entries.get(key)
        if slot is None:
            self._entries[key] = bytearray(value)
        else:
            slot[:] = value

    def delete(self, key: bytes, cpu: int = 0) -> bool:
        return self._entries.pop(self._check_key(key), None) is not None

    def items(self) -> List[Tuple[bytes, bytes]]:
        """User-space iteration (``bpf_map_get_next_key`` analog)."""
        return [(k, bytes(v)) for k, v in self._entries.items()]

    def __len__(self) -> int:
        return len(self._entries)

    def clone(self) -> "HashMap":
        other = self._clone_shell()
        other._entries = {k: bytearray(v) for k, v in self._entries.items()}
        return other

    def state_snapshot(self) -> Dict[bytes, bytes]:
        return {k: bytes(v) for k, v in self._entries.items()}


class ArrayMap(BPFMap):
    """BPF_MAP_TYPE_ARRAY: u32 index keys, preallocated zeroed values."""

    kind = "array"

    def __init__(self, value_size: int, max_entries: int, name: str = ""):
        super().__init__(4, value_size, max_entries, name)
        self._slots = [bytearray(value_size) for _ in range(max_entries)]

    def _index(self, key: bytes) -> int:
        index = int.from_bytes(self._check_key(key), "little")
        if index >= self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        return index

    def lookup(self, key: bytes, cpu: int = 0) -> Optional[bytearray]:
        try:
            return self._slots[self._index(key)]
        except MapError:
            return None

    def update(self, key: bytes, value: bytes, cpu: int = 0) -> None:
        self._slots[self._index(key)][:] = self._check_value(value)

    def delete(self, key: bytes, cpu: int = 0) -> bool:
        # Array map entries cannot be deleted, matching the kernel.
        raise MapError(f"{self.name}: array maps do not support delete")

    def value_at(self, index: int) -> bytes:
        return bytes(self._slots[index])

    def clone(self) -> "ArrayMap":
        other = self._clone_shell()
        other._slots = [bytearray(slot) for slot in self._slots]
        return other

    def state_snapshot(self) -> List[bytes]:
        return [bytes(slot) for slot in self._slots]


class PerCPUArrayMap(BPFMap):
    """BPF_MAP_TYPE_PERCPU_ARRAY: a value per (index, cpu) pair."""

    kind = "percpu-array"

    def __init__(self, value_size: int, max_entries: int, num_cpus: int, name: str = ""):
        super().__init__(4, value_size, max_entries, name)
        if num_cpus <= 0:
            raise MapError("need at least one CPU")
        self.num_cpus = num_cpus
        self._slots = [
            [bytearray(value_size) for _ in range(num_cpus)] for _ in range(max_entries)
        ]

    def _index(self, key: bytes) -> int:
        index = int.from_bytes(self._check_key(key), "little")
        if index >= self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        return index

    def lookup(self, key: bytes, cpu: int = 0) -> Optional[bytearray]:
        try:
            return self._slots[self._index(key)][cpu]
        except MapError:
            return None

    def update(self, key: bytes, value: bytes, cpu: int = 0) -> None:
        self._slots[self._index(key)][cpu][:] = self._check_value(value)

    def delete(self, key: bytes, cpu: int = 0) -> bool:
        raise MapError(f"{self.name}: per-cpu array maps do not support delete")

    def sum_u64(self, index: int) -> int:
        """User-space aggregation across CPUs (the usual counter read)."""
        return sum(
            int.from_bytes(slot[:8], "little") for slot in self._slots[index]
        )

    def clone(self) -> "PerCPUArrayMap":
        other = self._clone_shell()
        other.num_cpus = self.num_cpus
        other._slots = [[bytearray(slot) for slot in row] for row in self._slots]
        return other

    def state_snapshot(self) -> List[List[bytes]]:
        return [[bytes(slot) for slot in row] for row in self._slots]


class PerfEventArray(BPFMap):
    """BPF_MAP_TYPE_PERF_EVENT_ARRAY: the record stream to user space.

    ``bpf_perf_event_output`` pushes ``(cpu, bytes)`` records here; the
    agent registers a drain callback (its ring buffer).  If no consumer
    is attached records accumulate in :attr:`pending` for tests.
    """

    kind = "perf-event-array"

    def __init__(self, num_cpus: int, name: str = ""):
        super().__init__(4, 4, max(1, num_cpus), name)
        self.num_cpus = num_cpus
        self.pending: List[Tuple[int, bytes]] = []
        self._consumer: Optional[Callable[[int, bytes], None]] = None
        self.events_emitted = 0
        self.events_lost = 0

    def set_consumer(self, consumer: Optional[Callable[[int, bytes], None]]) -> None:
        self._consumer = consumer

    def output(self, cpu: int, record: bytes) -> None:
        """Called by the perf_event_output helper."""
        self.events_emitted += 1
        if self._consumer is not None:
            self._consumer(cpu, record)
        else:
            self.pending.append((cpu, bytes(record)))

    def tee(self, capture: Callable[[int, bytes], None]) -> Callable[[], None]:
        """Observe every output without disturbing delivery.

        Wraps the current consumer (or the :attr:`pending` fallback) so
        ``capture(cpu, record)`` also sees each record; returns an undo
        callable restoring the previous consumer.  Shadow mode uses this
        to compare the compiled tier's perf stream against the oracle's.
        """
        previous = self._consumer

        def wrapped(cpu: int, record: bytes) -> None:
            capture(cpu, record)
            if previous is not None:
                previous(cpu, record)
            else:
                self.pending.append((cpu, bytes(record)))

        self._consumer = wrapped

        def undo() -> None:
            self._consumer = previous

        return undo

    def clone(self) -> "PerfEventArray":
        # The oracle gets a fresh, unconsumed stream: shadow comparison
        # wants the records it emits, not the live agent's ring buffer.
        other = self._clone_shell()
        other.num_cpus = self.num_cpus
        other.pending = []
        other._consumer = None
        other.events_emitted = 0
        other.events_lost = 0
        return other

    def state_snapshot(self) -> None:
        return None  # stream, not state; compared via tee()/pending

    def lookup(self, key: bytes, cpu: int = 0) -> Optional[bytearray]:
        return None  # perf arrays are not data maps

    def update(self, key: bytes, value: bytes, cpu: int = 0) -> None:
        raise MapError(f"{self.name}: perf event arrays take no direct updates")

    def delete(self, key: bytes, cpu: int = 0) -> bool:
        raise MapError(f"{self.name}: perf event arrays take no deletes")
