"""BPF maps: the kernel-resident state tracing programs read and write.

The paper's scripts keep counters and intermediate records "temporarily
stored in the eBPF data structures inside kernel" (§II), then stream
them out through a perf buffer.  Four map types cover everything this
repo's compiler emits:

* :class:`HashMap` -- arbitrary fixed-size keys to fixed-size values.
* :class:`ArrayMap` -- u32-indexed, preallocated.
* :class:`PerCPUArrayMap` -- one value slot per CPU per index; the
  lock-free counter idiom.
* :class:`PerfEventArray` -- the ``bpf_perf_event_output`` target; user
  space (the agent) drains it.

Keys/values cross the VM boundary as bytes, exactly as via the syscall.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

_map_fd_counter = itertools.count(3)  # fds 0..2 are taken, like a real process


class MapError(ValueError):
    """Bad key/value size, capacity exhausted, or unknown index."""


class BPFMap:
    """Common behaviour: fd identity, key/value size checking."""

    kind = "abstract"

    def __init__(self, key_size: int, value_size: int, max_entries: int, name: str = ""):
        if key_size <= 0 or value_size <= 0 or max_entries <= 0:
            raise MapError("sizes and capacity must be positive")
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries
        self.name = name or f"{self.kind}-map"
        self.fd = next(_map_fd_counter)

    def _check_key(self, key: bytes) -> bytes:
        key = bytes(key)
        if len(key) != self.key_size:
            raise MapError(f"{self.name}: key size {len(key)} != {self.key_size}")
        return key

    def _check_value(self, value: bytes) -> bytes:
        value = bytes(value)
        if len(value) != self.value_size:
            raise MapError(f"{self.name}: value size {len(value)} != {self.value_size}")
        return value

    # The helper layer calls these three.

    def lookup(self, key: bytes, cpu: int = 0) -> Optional[bytearray]:
        raise NotImplementedError

    def update(self, key: bytes, value: bytes, cpu: int = 0) -> None:
        raise NotImplementedError

    def delete(self, key: bytes, cpu: int = 0) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} fd={self.fd}>"


class HashMap(BPFMap):
    """BPF_MAP_TYPE_HASH."""

    kind = "hash"

    def __init__(self, key_size: int, value_size: int, max_entries: int, name: str = ""):
        super().__init__(key_size, value_size, max_entries, name)
        self._entries: Dict[bytes, bytearray] = {}

    def lookup(self, key: bytes, cpu: int = 0) -> Optional[bytearray]:
        return self._entries.get(self._check_key(key))

    def update(self, key: bytes, value: bytes, cpu: int = 0) -> None:
        key = self._check_key(key)
        value = self._check_value(value)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            raise MapError(f"{self.name}: map full ({self.max_entries} entries)")
        slot = self._entries.get(key)
        if slot is None:
            self._entries[key] = bytearray(value)
        else:
            slot[:] = value

    def delete(self, key: bytes, cpu: int = 0) -> bool:
        return self._entries.pop(self._check_key(key), None) is not None

    def items(self) -> List[Tuple[bytes, bytes]]:
        """User-space iteration (``bpf_map_get_next_key`` analog)."""
        return [(k, bytes(v)) for k, v in self._entries.items()]

    def __len__(self) -> int:
        return len(self._entries)


class ArrayMap(BPFMap):
    """BPF_MAP_TYPE_ARRAY: u32 index keys, preallocated zeroed values."""

    kind = "array"

    def __init__(self, value_size: int, max_entries: int, name: str = ""):
        super().__init__(4, value_size, max_entries, name)
        self._slots = [bytearray(value_size) for _ in range(max_entries)]

    def _index(self, key: bytes) -> int:
        index = int.from_bytes(self._check_key(key), "little")
        if index >= self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        return index

    def lookup(self, key: bytes, cpu: int = 0) -> Optional[bytearray]:
        try:
            return self._slots[self._index(key)]
        except MapError:
            return None

    def update(self, key: bytes, value: bytes, cpu: int = 0) -> None:
        self._slots[self._index(key)][:] = self._check_value(value)

    def delete(self, key: bytes, cpu: int = 0) -> bool:
        # Array map entries cannot be deleted, matching the kernel.
        raise MapError(f"{self.name}: array maps do not support delete")

    def value_at(self, index: int) -> bytes:
        return bytes(self._slots[index])


class PerCPUArrayMap(BPFMap):
    """BPF_MAP_TYPE_PERCPU_ARRAY: a value per (index, cpu) pair."""

    kind = "percpu-array"

    def __init__(self, value_size: int, max_entries: int, num_cpus: int, name: str = ""):
        super().__init__(4, value_size, max_entries, name)
        if num_cpus <= 0:
            raise MapError("need at least one CPU")
        self.num_cpus = num_cpus
        self._slots = [
            [bytearray(value_size) for _ in range(num_cpus)] for _ in range(max_entries)
        ]

    def _index(self, key: bytes) -> int:
        index = int.from_bytes(self._check_key(key), "little")
        if index >= self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        return index

    def lookup(self, key: bytes, cpu: int = 0) -> Optional[bytearray]:
        try:
            return self._slots[self._index(key)][cpu]
        except MapError:
            return None

    def update(self, key: bytes, value: bytes, cpu: int = 0) -> None:
        self._slots[self._index(key)][cpu][:] = self._check_value(value)

    def delete(self, key: bytes, cpu: int = 0) -> bool:
        raise MapError(f"{self.name}: per-cpu array maps do not support delete")

    def sum_u64(self, index: int) -> int:
        """User-space aggregation across CPUs (the usual counter read)."""
        return sum(
            int.from_bytes(slot[:8], "little") for slot in self._slots[index]
        )


class PerfEventArray(BPFMap):
    """BPF_MAP_TYPE_PERF_EVENT_ARRAY: the record stream to user space.

    ``bpf_perf_event_output`` pushes ``(cpu, bytes)`` records here; the
    agent registers a drain callback (its ring buffer).  If no consumer
    is attached records accumulate in :attr:`pending` for tests.
    """

    kind = "perf-event-array"

    def __init__(self, num_cpus: int, name: str = ""):
        super().__init__(4, 4, max(1, num_cpus), name)
        self.num_cpus = num_cpus
        self.pending: List[Tuple[int, bytes]] = []
        self._consumer: Optional[Callable[[int, bytes], None]] = None
        self.events_emitted = 0
        self.events_lost = 0

    def set_consumer(self, consumer: Optional[Callable[[int, bytes], None]]) -> None:
        self._consumer = consumer

    def output(self, cpu: int, record: bytes) -> None:
        """Called by the perf_event_output helper."""
        self.events_emitted += 1
        if self._consumer is not None:
            self._consumer(cpu, record)
        else:
            self.pending.append((cpu, bytes(record)))

    def lookup(self, key: bytes, cpu: int = 0) -> Optional[bytearray]:
        return None  # perf arrays are not data maps

    def update(self, key: bytes, value: bytes, cpu: int = 0) -> None:
        raise MapError(f"{self.name}: perf event arrays take no direct updates")

    def delete(self, key: bytes, cpu: int = 0) -> bool:
        raise MapError(f"{self.name}: perf event arrays take no deletes")
