"""Probe attach points and the per-kernel hook registry.

Every simulated kernel function and network device is a *hook*.  The
stack fires hooks as packets traverse it; attached handlers (eBPF
programs via :class:`EBPFAttachment`, or the SystemTap baseline) run and
return their simulated cost, which the caller charges to the packet /
CPU.  This is the mechanism behind §III-B: "vNetTracer supports
instrumenting kernel functions, return of kernel functions, kernel
tracepoints and raw sockets through kprobe, kretprobe, tracepoints and
network devices."

Hook names are structured: ``kprobe:udp_send_skb``,
``kretprobe:tcp_recvmsg``, ``tracepoint:net:net_dev_xmit``,
``dev:eth0``, ``socket:5201``.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Dict, List, Optional

from repro.ebpf.context import build_empty_context, build_skb_context
from repro.ebpf.vm import BPFProgram, ExecutionEnv
from repro.net.packet import Packet

_attach_id_counter = itertools.count(1)


class ProbeKind(enum.Enum):
    KPROBE = "kprobe"
    KRETPROBE = "kretprobe"
    TRACEPOINT = "tracepoint"
    DEVICE = "dev"
    SOCKET = "socket"
    UPROBE = "uprobe"
    URETPROBE = "uretprobe"


class ProbeSpec:
    """Where a program attaches: kind + target (+ optional device id)."""

    __slots__ = ("kind", "target", "device_id")

    def __init__(self, kind: ProbeKind, target: str, device_id: Optional[int] = None):
        self.kind = kind
        self.target = target
        self.device_id = device_id

    @property
    def hook_name(self) -> str:
        return f"{self.kind.value}:{self.target}"

    @classmethod
    def parse(cls, text: str) -> "ProbeSpec":
        """Parse ``"kprobe:udp_send_skb"`` style strings."""
        kind_text, _, target = text.partition(":")
        try:
            kind = ProbeKind(kind_text)
        except ValueError:
            raise ValueError(f"unknown probe kind in {text!r}") from None
        if not target:
            raise ValueError(f"missing probe target in {text!r}")
        return cls(kind, target)

    def __repr__(self) -> str:
        return f"ProbeSpec({self.hook_name!r})"


class ProbeEvent:
    """What a firing hook passes to handlers."""

    __slots__ = ("hook", "node", "packet", "ifindex", "devname", "cpu", "direction", "extra")

    def __init__(
        self,
        hook: str,
        node: str,
        packet: Optional[Packet] = None,
        ifindex: int = 0,
        devname: str = "",
        cpu: int = 0,
        direction: str = "",
        extra: Optional[dict] = None,
    ):
        self.hook = hook
        self.node = node
        self.packet = packet
        self.ifindex = ifindex
        self.devname = devname
        self.cpu = cpu
        self.direction = direction
        self.extra = extra or {}

    def __repr__(self) -> str:
        return f"<ProbeEvent {self.node}:{self.hook} cpu{self.cpu} pkt={self.packet!r}>"


class Attachment:
    """Base class: anything attachable to a hook."""

    def __init__(self, name: str = ""):
        self.attach_id = next(_attach_id_counter)
        self.name = name or f"attachment-{self.attach_id}"

    def handle(self, event: ProbeEvent) -> int:
        """Process one event; return the simulated cost in nanoseconds."""
        raise NotImplementedError


class EBPFAttachment(Attachment):
    """An eBPF program bound to a hook with its execution environment.

    ``clock`` should be the owning node's CLOCK_MONOTONIC reader;
    ``hook_id`` is baked into the context so records identify their
    tracepoint; ``use_inner`` asks the context builder to strip
    encapsulation before parsing the five-tuple; ``shadow`` turns on the
    program's differential-oracle mode so every firing is checked
    against the interpreter.
    """

    def __init__(
        self,
        program: BPFProgram,
        env: ExecutionEnv,
        hook_id: int = 0,
        use_inner: bool = False,
        name: str = "",
        shadow: bool = False,
    ):
        super().__init__(name or program.name)
        self.program = program
        if shadow:
            program.shadow = True
        self.env = env
        self.hook_id = hook_id
        self.use_inner = use_inner
        self.events_seen = 0
        self.events_matched = 0

    def handle(self, event: ProbeEvent) -> int:
        self.events_seen += 1
        if event.packet is None:
            # kprobe on a function without an skb (e.g. net_rx_action):
            # the program runs against a zeroed context.
            ctx, data = build_empty_context(
                ifindex=event.ifindex, cpu=event.cpu, hook_id=self.hook_id
            )
        else:
            ctx, data = build_skb_context(
                event.packet,
                ifindex=event.ifindex,
                cpu=event.cpu,
                hook_id=self.hook_id,
                use_inner=self.use_inner,
            )
        env = self.env
        env.cpu = event.cpu
        result = self.program.run(env, ctx, data)
        if result.r0:
            self.events_matched += 1
        return result.cost_ns


class CallbackAttachment(Attachment):
    """A plain-Python handler with a fixed cost; used by tests and by the
    SystemTap baseline's building blocks."""

    def __init__(self, callback: Callable[[ProbeEvent], None], cost_ns: int = 0, name: str = ""):
        super().__init__(name)
        self.callback = callback
        self.cost_ns = cost_ns

    def handle(self, event: ProbeEvent) -> int:
        self.callback(event)
        return self.cost_ns


class HookRegistry:
    """Per-kernel registry of hooks and their attachments.

    ``fire`` is called by the simulated stack at every instrumentable
    point; it is cheap when nothing is attached (a counter increment),
    which models how an un-probed kernel function costs nothing extra.
    """

    def __init__(self, node_name: str = ""):
        self.node_name = node_name
        self._attachments: Dict[str, List[Attachment]] = {}
        self.fire_counts: Dict[str, int] = {}

    def attach(self, hook_name: str, attachment: Attachment) -> Attachment:
        self._attachments.setdefault(hook_name, []).append(attachment)
        return attachment

    def detach(self, hook_name: str, attachment: Attachment) -> bool:
        try:
            self._attachments.get(hook_name, []).remove(attachment)
            return True
        except ValueError:
            return False

    def detach_all(self, hook_name: Optional[str] = None) -> int:
        """Detach everything (or everything on one hook); returns count."""
        if hook_name is not None:
            removed = len(self._attachments.get(hook_name, []))
            self._attachments[hook_name] = []
            return removed
        removed = sum(len(v) for v in self._attachments.values())
        self._attachments.clear()
        return removed

    def attachments(self, hook_name: str) -> List[Attachment]:
        return list(self._attachments.get(hook_name, []))

    def has_attachments(self, hook_name: str) -> bool:
        return bool(self._attachments.get(hook_name))

    def fire(self, event: ProbeEvent) -> int:
        """Fire a hook; returns total handler cost in nanoseconds."""
        self.fire_counts[event.hook] = self.fire_counts.get(event.hook, 0) + 1
        handlers = self._attachments.get(event.hook)
        if not handlers:
            return 0
        total_cost = 0
        for handler in handlers:
            total_cost += handler.handle(event)
        return total_cost

    def fires(self, hook_name: str) -> int:
        return self.fire_counts.get(hook_name, 0)

    def __repr__(self) -> str:
        active = {k: len(v) for k, v in self._attachments.items() if v}
        return f"<HookRegistry {self.node_name!r} active={active}>"
