"""The in-kernel eBPF virtual machine: interpreter + cost model.

Programs are verified at load time, then executed per probe firing.
Execution is *semantically real* (registers, memory, maps, helpers) and
*temporally modeled*: every instruction and helper charges simulated
nanoseconds, which is the quantity the paper's overhead experiments
measure.  The JIT (:mod:`repro.ebpf.jit`) runs the same semantics at a
lower per-instruction charge, mirroring "the JIT compiling minimizes the
execution overhead of the eBPF code" (§II).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.ebpf import isa
from repro.ebpf.helpers import HELPERS, MAP_PTR_BASE, HelperError
from repro.ebpf.isa import Instruction
from repro.ebpf.maps import BPFMap
from repro.ebpf.memory import (
    CTX_REGION_BASE,
    Memory,
    PACKET_REGION_BASE,
    STACK_REGION_BASE,
)
from repro.ebpf.verifier import verify

U64 = 0xFFFFFFFFFFFFFFFF
U32 = 0xFFFFFFFF

# Simulated per-instruction execution charge.
INTERPRETER_NS_PER_INSN = 2.0
JIT_NS_PER_INSN = 0.35
# One-time charges at load/attach.
VERIFY_NS_PER_INSN = 180.0
JIT_COMPILE_NS_PER_INSN = 420.0


class ExecutionError(RuntimeError):
    """Runtime fault (bad memory access, helper misuse, runaway program)."""


# -- verified+compiled program cache ------------------------------------------
#
# Agents re-verify and re-compile identical bytecode on every redeploy
# (teardown/install is the paper's runtime-reconfiguration path).  The
# *simulated* load cost is charged every time -- the modeled kernel has
# no such cache -- but the host-side verify() + compile_steps() work is
# memoized.  The key is the instruction tuple with map-reference
# immediates normalized to zero: every install creates fresh maps with
# fresh fds, so the raw bytecode of an unchanged script still differs in
# exactly those LD_IMM64 slots.  On a hit, only the map-load steps are
# rebuilt against the real fds; everything else is shared.  Only
# programs that passed verification enter the cache.

_COMPILED_CACHE: Dict[tuple, tuple] = {}  # key -> (steps, map_load_positions)
_CACHE_MAX_PROGRAMS = 256
_cache_hits = 0
_cache_misses = 0


def program_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters for the verified+compiled program cache."""
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "size": len(_COMPILED_CACHE),
    }


def clear_program_cache() -> None:
    """Empty the cache and zero its counters (test isolation)."""
    global _cache_hits, _cache_misses
    _COMPILED_CACHE.clear()
    _cache_hits = 0
    _cache_misses = 0


def _cache_key(insns: Sequence[Instruction]) -> tuple:
    """(normalized instruction tuple, map-load positions) for ``insns``.

    Map-reference LD_IMM64 immediates are zeroed in the key -- the fd is
    the only thing that changes between redeploys of the same script.
    The positions let a cache hit patch just those slots back in.
    """
    parts = []
    positions = []
    index = 0
    count = len(insns)
    while index < count:
        insn = insns[index]
        if insn.insn_class == isa.BPF_LD:
            if insn.src == isa.BPF_PSEUDO_MAP_FD:
                positions.append(index)
                insn = insn._replace(imm=0)
            parts.append(insn)
            parts.append(insns[index + 1])
            index += 2
        else:
            parts.append(insn)
            index += 1
    return tuple(parts), tuple(positions)


class ExecutionEnv:
    """Everything the kernel supplies to a running program.

    ``clock`` is the node's CLOCK_MONOTONIC reader, ``cpu`` the CPU the
    probe fired on, ``maps`` the fd table visible to the program.
    """

    __slots__ = ("maps", "clock", "cpu", "prandom_u32", "printk_sink")

    def __init__(
        self,
        maps: Optional[Dict[int, BPFMap]] = None,
        clock: Optional[Callable[[], int]] = None,
        cpu: int = 0,
        prandom_u32: Optional[Callable[[], int]] = None,
        printk_sink: Optional[Callable[[str], None]] = None,
    ):
        self.maps = maps or {}
        self.clock = clock or (lambda: 0)
        self.cpu = cpu
        self.prandom_u32 = prandom_u32 or _default_prandom()
        self.printk_sink = printk_sink or (lambda _msg: None)


def _default_prandom() -> Callable[[], int]:
    state = [0x12345678]

    def draw() -> int:
        state[0] = (state[0] * 1103515245 + 12345) & U32
        return state[0]

    return draw


class VMState:
    """Mutable execution state handed to helpers."""

    __slots__ = ("regs", "memory", "env", "helper_calls", "helper_cost_ns")

    def __init__(self, memory: Memory, env: ExecutionEnv):
        self.regs: List[int] = [0] * isa.NUM_REGS
        self.memory = memory
        self.env = env
        self.helper_calls: Dict[str, int] = {}
        self.helper_cost_ns = 0


class ExecResult:
    """Outcome of one program invocation."""

    __slots__ = ("r0", "cost_ns", "insns_executed", "helper_calls")

    def __init__(self, r0: int, cost_ns: int, insns_executed: int, helper_calls: Dict[str, int]):
        self.r0 = r0
        self.cost_ns = cost_ns
        self.insns_executed = insns_executed
        self.helper_calls = helper_calls

    def __repr__(self) -> str:
        return (
            f"<ExecResult r0={self.r0} cost={self.cost_ns}ns insns={self.insns_executed}>"
        )


def _to_signed64(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def _bswap(value: int, width_bits: int) -> int:
    nbytes = width_bits // 8
    return int.from_bytes(
        (value & ((1 << width_bits) - 1)).to_bytes(nbytes, "little"), "big"
    )


class BPFProgram:
    """A verified, attachable eBPF program.

    Parameters
    ----------
    insns:
        The instruction list (usually from :class:`~repro.ebpf.assembler.Assembler`).
    maps:
        fd -> map objects referenced via LD_IMM64/BPF_PSEUDO_MAP_FD.
    name:
        Diagnostic name, e.g. ``"trace:dev:vnet0"``.
    jit:
        Whether executions are charged at JIT or interpreter rates.
    precompile:
        Host-side dispatch strategy.  By default every program is
        pre-decoded into specialized closures at load time (O(1)
        dispatch, shared with the program cache) regardless of ``jit``
        -- only the simulated per-instruction rate differs.  Pass
        ``False`` to run the genuine interpreter loop instead (the
        differential tests exercise both).
    """

    # Process-wide total of program executions (probe fires) across all
    # program instances; snapshotted by the benchmark harness.
    _runs_global = 0

    @classmethod
    def global_runs(cls) -> int:
        """Total executions of all programs in this process."""
        return cls._runs_global

    def __init__(
        self,
        insns: Sequence[Instruction],
        maps: Optional[Dict[int, BPFMap]] = None,
        name: str = "bpf-prog",
        jit: bool = True,
        precompile: bool = True,
    ):
        self.insns = list(insns)
        self.maps = dict(maps or {})
        self.name = name
        self.jit = jit
        self.precompile = precompile
        self.loaded = False
        self.run_count = 0
        self.total_cost_ns = 0
        # Self-observability accumulators (exported via repro.obs):
        # instructions fetched, per-helper invocation totals, and the
        # dispatch split between the compiled-closure and interpreter paths.
        self.total_insns_executed = 0
        self.helper_call_totals: Dict[str, int] = {}
        self.jit_runs = 0
        self.interp_runs = 0
        self._steps = None  # populated by load() unless precompile is off

    # -- load-time -----------------------------------------------------------

    def load(self) -> int:
        """Verify (and JIT-compile); returns the one-time cost in ns.

        The *simulated* cost always includes verification and, with
        ``jit`` on, the JIT compile -- the modeled kernel does that work
        on every ``bpf()`` syscall.  The *host-side* verify +
        closure-precompile is memoized in the program cache, keyed on
        the exact bytecode, so agent redeploys of an unchanged script
        skip it entirely.
        """
        global _cache_hits, _cache_misses
        cost = VERIFY_NS_PER_INSN * len(self.insns)
        if self.jit:
            cost += JIT_COMPILE_NS_PER_INSN * len(self.insns)
        if self.precompile:
            key, map_positions = _cache_key(self.insns)
            cached = _COMPILED_CACHE.get(key)
            if cached is None:
                _cache_misses += 1
                verify(self.insns)
                from repro.ebpf.jit import compile_steps

                steps = compile_steps(self.insns)
                if len(_COMPILED_CACHE) >= _CACHE_MAX_PROGRAMS:
                    del _COMPILED_CACHE[next(iter(_COMPILED_CACHE))]
                _COMPILED_CACHE[key] = (steps, map_positions)
                self._steps = steps
            else:
                _cache_hits += 1
                from repro.ebpf.jit import compile_map_load

                steps, positions = cached
                if positions:
                    steps = list(steps)
                    for index in positions:
                        steps[index] = compile_map_load(
                            self.insns[index], self.insns[index + 1], index
                        )
                self._steps = steps
        else:
            verify(self.insns)
        self.loaded = True
        return int(cost)

    @property
    def size(self) -> int:
        return len(self.insns)

    @property
    def mode(self) -> str:
        """Cost mode executions are charged at -- the obs layer's
        jit-vs-interpreter split.  (Dispatch is via pre-decoded closures
        in both modes unless ``precompile=False``.)"""
        return "jit" if self.jit else "interpreter"

    def _account(self, executed: int, helper_calls: Dict[str, int]) -> None:
        self.total_insns_executed += executed
        for helper, count in helper_calls.items():
            self.helper_call_totals[helper] = (
                self.helper_call_totals.get(helper, 0) + count
            )

    # -- run-time --------------------------------------------------------------

    def run(
        self,
        env: ExecutionEnv,
        ctx_bytes: bytearray,
        packet_bytes: Optional[bytearray] = None,
    ) -> ExecResult:
        """Execute once.  ``ctx_bytes`` is mapped at the context base and
        handed to the program in R1; ``packet_bytes`` (if any) is mapped
        where the context's data/data_end pointers expect it."""
        if not self.loaded:
            raise ExecutionError(f"program {self.name!r} was not loaded")

        memory = Memory()
        stack = bytearray(isa.STACK_SIZE)
        memory.add_region(STACK_REGION_BASE, stack, "stack")
        memory.add_region(CTX_REGION_BASE, ctx_bytes, "ctx")
        if packet_bytes is not None:
            memory.add_region(PACKET_REGION_BASE, packet_bytes, "packet")

        state = VMState(memory, env)
        regs = state.regs
        regs[isa.R1] = CTX_REGION_BASE
        regs[isa.R10] = STACK_REGION_BASE + isa.STACK_SIZE

        limit = len(self.insns)  # DAG: every insn runs at most once

        if self._steps is not None:
            return self._run_compiled(state, regs, limit)

        cost_ns = 0.0
        per_insn = JIT_NS_PER_INSN if self.jit else INTERPRETER_NS_PER_INSN
        executed = 0
        pc = 0

        while True:
            if executed > limit:
                raise ExecutionError(f"{self.name}: runaway execution (pc={pc})")
            insn = self.insns[pc]
            executed += 1
            cls = insn.insn_class

            if cls == isa.BPF_ALU64 or cls == isa.BPF_ALU:
                self._alu(regs, insn, cls == isa.BPF_ALU)
                pc += 1
            elif cls == isa.BPF_JMP:
                op = insn.alu_op
                if op == isa.BPF_EXIT:
                    break
                if op == isa.BPF_CALL:
                    info = HELPERS[insn.imm]
                    try:
                        regs[isa.R0] = info.func(state) & U64
                    except HelperError as exc:
                        raise ExecutionError(f"{self.name}: helper {info.name}: {exc}")
                    state.helper_calls[info.name] = state.helper_calls.get(info.name, 0) + 1
                    cost_ns += info.cost_ns
                    pc += 1
                elif op == isa.BPF_JA:
                    pc += 1 + insn.offset
                else:
                    taken = self._jump_taken(regs, insn)
                    pc += 1 + (insn.offset if taken else 0)
            elif cls == isa.BPF_LDX:
                address = (regs[insn.src] + insn.offset) & U64
                regs[insn.dst] = memory.load(address, insn.size_bytes)
                pc += 1
            elif cls == isa.BPF_STX:
                address = (regs[insn.dst] + insn.offset) & U64
                memory.store(address, insn.size_bytes, regs[insn.src])
                pc += 1
            elif cls == isa.BPF_ST:
                address = (regs[insn.dst] + insn.offset) & U64
                memory.store(address, insn.size_bytes, insn.imm & U64)
                pc += 1
            elif cls == isa.BPF_LD:  # LD_IMM64
                second = self.insns[pc + 1]
                if insn.src == isa.BPF_PSEUDO_MAP_FD:
                    regs[insn.dst] = MAP_PTR_BASE + insn.imm
                else:
                    regs[insn.dst] = ((second.imm & U32) << 32) | (insn.imm & U32)
                executed += 1  # the second slot counts as fetched
                pc += 2
            else:  # pragma: no cover - verifier rejects these
                raise ExecutionError(f"{self.name}: bad class {cls} at pc {pc}")

        cost_ns += executed * per_insn
        self.run_count += 1
        BPFProgram._runs_global += 1
        if self.jit:
            self.jit_runs += 1
        else:
            self.interp_runs += 1
        self._account(executed, state.helper_calls)
        total = int(round(cost_ns))
        self.total_cost_ns += total
        return ExecResult(regs[isa.R0], total, executed, state.helper_calls)

    def _run_compiled(self, state: VMState, regs: List[int], limit: int) -> ExecResult:
        """Execute the pre-decoded closure form (both cost modes)."""
        from repro.ebpf.jit import EXIT_PC

        steps = self._steps
        pc = 0
        executed = 0
        try:
            while pc != EXIT_PC:
                step, slots = steps[pc]
                executed += slots
                if executed > limit + 1:
                    raise ExecutionError(f"{self.name}: runaway execution (pc={pc})")
                pc = step(regs, state)
        except HelperError as exc:
            raise ExecutionError(f"{self.name}: helper error: {exc}")
        per_insn = JIT_NS_PER_INSN if self.jit else INTERPRETER_NS_PER_INSN
        total = int(round(executed * per_insn + state.helper_cost_ns))
        self.run_count += 1
        BPFProgram._runs_global += 1
        if self.jit:
            self.jit_runs += 1
        else:
            self.interp_runs += 1
        self._account(executed, state.helper_calls)
        self.total_cost_ns += total
        return ExecResult(regs[isa.R0], total, executed, state.helper_calls)

    # -- instruction semantics -------------------------------------------------

    @staticmethod
    def _alu(regs: List[int], insn: Instruction, is32: bool) -> None:
        op = insn.alu_op
        dst = insn.dst
        if insn.uses_imm:
            operand = insn.imm & (U32 if is32 else U64)
            if insn.imm < 0 and not is32:
                operand = insn.imm & U64  # sign-extended immediate
        else:
            operand = regs[insn.src]
            if is32:
                operand &= U32

        value = regs[dst] & (U32 if is32 else U64)

        if op == isa.BPF_MOV:
            result = operand
        elif op == isa.BPF_ADD:
            result = value + operand
        elif op == isa.BPF_SUB:
            result = value - operand
        elif op == isa.BPF_MUL:
            result = value * operand
        elif op == isa.BPF_DIV:
            result = 0 if operand == 0 else value // (operand & (U32 if is32 else U64))
        elif op == isa.BPF_MOD:
            result = value if operand == 0 else value % (operand & (U32 if is32 else U64))
        elif op == isa.BPF_OR:
            result = value | operand
        elif op == isa.BPF_AND:
            result = value & operand
        elif op == isa.BPF_XOR:
            result = value ^ operand
        elif op == isa.BPF_LSH:
            result = value << (operand & (31 if is32 else 63))
        elif op == isa.BPF_RSH:
            result = value >> (operand & (31 if is32 else 63))
        elif op == isa.BPF_ARSH:
            width = 32 if is32 else 64
            shift = operand & (width - 1)
            signed = value - (1 << width) if value & (1 << (width - 1)) else value
            result = signed >> shift
        elif op == isa.BPF_NEG:
            result = -value
        elif op == isa.BPF_END:
            # imm selects the width (16/32/64); we model a little-endian
            # machine, so the to-BE form is a byte swap.
            result = _bswap(value, insn.imm)
        else:  # pragma: no cover - verifier rejects these
            raise ExecutionError(f"bad ALU op {op:#x}")

        regs[dst] = result & (U32 if is32 else U64)

    @staticmethod
    def _jump_taken(regs: List[int], insn: Instruction) -> bool:
        op = insn.alu_op
        left = regs[insn.dst]
        right = (insn.imm & U64) if insn.uses_imm else regs[insn.src]
        if insn.uses_imm and insn.imm < 0:
            right = insn.imm & U64

        if op == isa.BPF_JEQ:
            return left == right
        if op == isa.BPF_JNE:
            return left != right
        if op == isa.BPF_JGT:
            return left > right
        if op == isa.BPF_JGE:
            return left >= right
        if op == isa.BPF_JLT:
            return left < right
        if op == isa.BPF_JLE:
            return left <= right
        if op == isa.BPF_JSET:
            return bool(left & right)
        if op == isa.BPF_JSGT:
            return _to_signed64(left) > _to_signed64(right)
        if op == isa.BPF_JSGE:
            return _to_signed64(left) >= _to_signed64(right)
        if op == isa.BPF_JSLT:
            return _to_signed64(left) < _to_signed64(right)
        if op == isa.BPF_JSLE:
            return _to_signed64(left) <= _to_signed64(right)
        raise ExecutionError(f"bad JMP op {op:#x}")  # pragma: no cover

    def __repr__(self) -> str:
        mode = "jit" if self.jit else "interp"
        return f"<BPFProgram {self.name!r} {len(self.insns)} insns {mode}>"
