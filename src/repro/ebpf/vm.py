"""The in-kernel eBPF virtual machine: interpreter, JIT tier, cost model.

Programs are verified at load time, then executed per probe firing.
Execution is *semantically real* (registers, memory, maps, helpers) and
*temporally modeled*: every instruction and helper charges simulated
nanoseconds, which is the quantity the paper's overhead experiments
measure.  The JIT (:mod:`repro.ebpf.jit`) runs the same semantics at a
lower per-instruction charge, mirroring "the JIT compiling minimizes the
execution overhead of the eBPF code" (§II).

Two host-side execution tiers implement those semantics:

* the **compiled tier** (default): at load time the verified bytecode is
  translated to straight-line Python source and ``compile()``-d into one
  code object (:func:`repro.ebpf.jit.compile_program`); a run is a
  single call into it;
* the **interpreter** (``precompile=False``): the fetch/decode loop in
  :meth:`BPFProgram._execute`.  It is the differential oracle -- shadow
  mode (``shadow=True``) replays every compiled run on it against
  cloned maps and recorded helper inputs and raises
  :class:`ShadowMismatch` unless registers, memory, maps, and perf
  output agree exactly.

Which tier dispatches a run is independent of the *simulated* cost
model: ``jit=True/False`` selects the per-instruction charge only, so
every externally visible number is byte-identical across tiers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.ebpf import isa
from repro.ebpf.helpers import HELPERS, MAP_PTR_BASE, HelperError
from repro.ebpf.isa import Instruction
from repro.ebpf.jit import CompiledProgram, compile_program
from repro.ebpf.maps import BPFMap, PerfEventArray
from repro.ebpf.memory import (
    CTX_REGION_BASE,
    MAP_VALUE_REGION_BASE,
    Memory,
    PACKET_REGION_BASE,
    STACK_REGION_BASE,
)
from repro.ebpf.verifier import verify

U64 = 0xFFFFFFFFFFFFFFFF
U32 = 0xFFFFFFFF

# Simulated per-instruction execution charge.
INTERPRETER_NS_PER_INSN = 2.0
JIT_NS_PER_INSN = 0.35
# One-time charges at load/attach.
VERIFY_NS_PER_INSN = 180.0
JIT_COMPILE_NS_PER_INSN = 420.0


class ExecutionError(RuntimeError):
    """Runtime fault (bad memory access, helper misuse, runaway program)."""


class ShadowMismatch(ExecutionError):
    """The compiled tier and the interpreter oracle diverged on one run."""


# -- verified+compiled program cache ------------------------------------------
#
# Agents re-verify and re-compile identical bytecode on every redeploy
# (teardown/install is the paper's runtime-reconfiguration path).  The
# *simulated* load cost is charged every time -- the modeled kernel has
# no such cache -- but the host-side verify() + compile_program() work
# is memoized.  The key is the instruction tuple with map-reference
# immediates normalized to zero: every install creates fresh maps with
# fresh fds, so the raw bytecode of an unchanged script still differs in
# exactly those LD_IMM64 slots.  The cached translation takes the real
# map pointers through its factory, so a hit shares the code object and
# only rebinds fds.  Only programs that passed verification enter the
# cache.

_COMPILED_CACHE: Dict[tuple, CompiledProgram] = {}
_CACHE_MAX_PROGRAMS = 256
_cache_hits = 0
_cache_misses = 0


def program_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters for the verified+compiled program cache."""
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "size": len(_COMPILED_CACHE),
    }


def clear_program_cache() -> None:
    """Empty the cache and zero its counters (test isolation)."""
    global _cache_hits, _cache_misses
    _COMPILED_CACHE.clear()
    _cache_hits = 0
    _cache_misses = 0


def _cache_key(insns: Sequence[Instruction]) -> tuple:
    """(normalized instruction tuple, map-load positions) for ``insns``.

    Map-reference LD_IMM64 immediates are zeroed in the key -- the fd is
    the only thing that changes between redeploys of the same script.
    The positions let a cache hit bind just those slots to the real fds.
    """
    parts = []
    positions = []
    index = 0
    count = len(insns)
    while index < count:
        insn = insns[index]
        if insn.insn_class == isa.BPF_LD:
            if insn.src == isa.BPF_PSEUDO_MAP_FD:
                positions.append(index)
                insn = insn._replace(imm=0)
            parts.append(insn)
            parts.append(insns[index + 1])
            index += 2
        else:
            parts.append(insn)
            index += 1
    return tuple(parts), tuple(positions)


class ExecutionEnv:
    """Everything the kernel supplies to a running program.

    ``clock`` is the node's CLOCK_MONOTONIC reader, ``cpu`` the CPU the
    probe fired on, ``maps`` the fd table visible to the program.
    """

    __slots__ = ("maps", "clock", "cpu", "prandom_u32", "printk_sink")

    def __init__(
        self,
        maps: Optional[Dict[int, BPFMap]] = None,
        clock: Optional[Callable[[], int]] = None,
        cpu: int = 0,
        prandom_u32: Optional[Callable[[], int]] = None,
        printk_sink: Optional[Callable[[str], None]] = None,
    ):
        self.maps = maps or {}
        self.clock = clock or (lambda: 0)
        self.cpu = cpu
        self.prandom_u32 = prandom_u32 or _default_prandom()
        self.printk_sink = printk_sink or (lambda _msg: None)


def _default_prandom() -> Callable[[], int]:
    state = [0x12345678]

    def draw() -> int:
        state[0] = (state[0] * 1103515245 + 12345) & U32
        return state[0]

    return draw


class VMState(Memory):
    """Mutable execution state handed to helpers.

    A ``VMState`` *is* the run's :class:`Memory` -- one object serves as
    both the region registry and the helper-visible state, keeping
    per-run setup to a single allocation.  ``regs`` starts unallocated:
    the compiled tier materializes the final register file in one
    writeback at EXIT, and the interpreter builds its zeroed file when
    it starts.
    """

    __slots__ = ("regs", "env", "helper_calls", "helper_cost_ns")

    def __init__(self, regions: List[Tuple[int, bytearray, str]], env: ExecutionEnv):
        self._regions = regions
        self._next_dynamic_base = MAP_VALUE_REGION_BASE
        self.regs: Optional[List[int]] = None
        self.env = env
        self.helper_calls: Dict[str, int] = {}
        self.helper_cost_ns = 0

    @property
    def memory(self) -> Memory:
        return self


class ExecResult(NamedTuple):
    """Outcome of one program invocation."""

    r0: int
    cost_ns: int
    insns_executed: int
    helper_calls: Dict[str, int]
    regs: Optional[List[int]] = None

    def __repr__(self) -> str:
        return f"<ExecResult r0={self.r0} cost={self.cost_ns}ns insns={self.insns_executed}>"


def _to_signed64(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def _bswap(value: int, width_bits: int) -> int:
    nbytes = width_bits // 8
    return int.from_bytes((value & ((1 << width_bits) - 1)).to_bytes(nbytes, "little"), "big")


def _replay(values: List[int], what: str) -> Callable[[], int]:
    """Feed the oracle the exact helper inputs the compiled run saw."""
    iterator = iter(values)

    def draw() -> int:
        try:
            return next(iterator)
        except StopIteration:
            raise ShadowMismatch(f"oracle drew more {what} values than the compiled tier") from None

    return draw


class BPFProgram:
    """A verified, attachable eBPF program.

    Parameters
    ----------
    insns:
        The instruction list (usually from :class:`~repro.ebpf.assembler.Assembler`).
    maps:
        fd -> map objects referenced via LD_IMM64/BPF_PSEUDO_MAP_FD.
    name:
        Diagnostic name, e.g. ``"trace:dev:vnet0"``.
    jit:
        Whether executions are charged at JIT or interpreter rates.
    precompile:
        Host-side execution tier.  By default every program is
        translated into a single native Python code object at load time
        (shared with the program cache) regardless of ``jit`` -- only
        the simulated per-instruction rate differs.  Pass ``False`` to
        run the genuine interpreter loop instead (the differential
        tests exercise both).
    shadow:
        Differential-oracle mode: every compiled-tier run is replayed
        on the interpreter against cloned maps and recorded clock /
        prandom draws, and :class:`ShadowMismatch` is raised unless
        registers, executed-instruction counts, helper activity, stack
        / context / packet memory, final map state, perf-event output,
        and trace_printk lines all match exactly.
    """

    # Process-wide total of program executions (probe fires) across all
    # program instances; snapshotted by the benchmark harness.
    _runs_global = 0

    @classmethod
    def global_runs(cls) -> int:
        """Total executions of all programs in this process."""
        return cls._runs_global

    def __init__(
        self,
        insns: Sequence[Instruction],
        maps: Optional[Dict[int, BPFMap]] = None,
        name: str = "bpf-prog",
        jit: bool = True,
        precompile: bool = True,
        shadow: bool = False,
    ):
        self.insns = list(insns)
        self.maps = dict(maps or {})
        self.name = name
        self.jit = jit
        self.precompile = precompile
        self.shadow = shadow
        self.loaded = False
        self.run_count = 0
        self.total_cost_ns = 0
        # Self-observability accumulators (exported via repro.obs):
        # instructions fetched, per-helper invocation totals, the
        # dispatch split between cost modes, and the compile activity
        # behind the vnt_ebpf_compile_* counters.
        self.total_insns_executed = 0
        self._helper_totals: Dict[str, int] = {}
        self._unmerged_helper_calls: List[Dict[str, int]] = []
        self.compile_translations = 0
        self.compile_cache_hits = 0
        self._native = None  # populated by load() unless precompile is off

    # -- load-time -----------------------------------------------------------

    def load(self) -> int:
        """Verify (and JIT-compile); returns the one-time cost in ns.

        The *simulated* cost always includes verification and, with
        ``jit`` on, the JIT compile -- the modeled kernel does that work
        on every ``bpf()`` syscall.  The *host-side* verify + native
        translation is memoized in the program cache, keyed on the
        exact bytecode, so agent redeploys of an unchanged script only
        rebind map fds through the cached factory.
        """
        global _cache_hits, _cache_misses
        cost = VERIFY_NS_PER_INSN * len(self.insns)
        if self.jit:
            cost += JIT_COMPILE_NS_PER_INSN * len(self.insns)
        if self.precompile:
            key, _positions = _cache_key(self.insns)
            unit = _COMPILED_CACHE.get(key)
            if unit is None:
                _cache_misses += 1
                self.compile_translations += 1
                analysis = verify(self.insns)
                unit = compile_program(self.insns, analysis)
                if len(_COMPILED_CACHE) >= _CACHE_MAX_PROGRAMS:
                    del _COMPILED_CACHE[next(iter(_COMPILED_CACHE))]
                _COMPILED_CACHE[key] = unit
            else:
                _cache_hits += 1
                self.compile_cache_hits += 1
            self._native = unit.factory(
                {pos: MAP_PTR_BASE + self.insns[pos].imm for pos in unit.map_positions}
            )
        else:
            verify(self.insns)
            self._native = None
        self.loaded = True
        return int(cost)

    @property
    def size(self) -> int:
        return len(self.insns)

    @property
    def mode(self) -> str:
        """Cost mode executions are charged at -- the obs layer's
        jit-vs-interpreter split.  (Host-side dispatch is the compiled
        tier in both modes unless ``precompile=False``.)"""
        return "jit" if self.jit else "interpreter"

    @property
    def tier(self) -> str:
        """Host-side execution tier: ``compiled`` or ``interpreter``."""
        return "compiled" if self.precompile else "interpreter"

    # -- run-time --------------------------------------------------------------

    def run(
        self,
        env: ExecutionEnv,
        ctx_bytes: bytearray,
        packet_bytes: Optional[bytearray] = None,
    ) -> ExecResult:
        """Execute once.  ``ctx_bytes`` is mapped at the context base and
        handed to the program in R1; ``packet_bytes`` (if any) is mapped
        where the context's data/data_end pointers expect it."""
        native = self._native
        if native is None or self.shadow:
            if not self.loaded:
                raise ExecutionError(f"program {self.name!r} was not loaded")
            if self.shadow and native is not None:
                return self._run_shadowed(env, ctx_bytes, packet_bytes)
            state, executed, _stack = self._run_once(env, ctx_bytes, packet_bytes)
            return self._finish(state, executed)
        # Hot path: the compiled tier, inlined (probes take this per packet).
        stack = bytearray(512)
        regions = [(STACK_REGION_BASE, stack, "stack"), (CTX_REGION_BASE, ctx_bytes, "ctx")]
        if packet_bytes is not None:
            regions.append((PACKET_REGION_BASE, packet_bytes, "packet"))
        state = VMState(regions, env)
        try:
            executed = native(state, stack, ctx_bytes, packet_bytes)
        except HelperError as exc:
            raise ExecutionError(f"{self.name}: helper error: {exc}")
        # _finish, inlined.
        helper_calls = state.helper_calls
        per_insn = JIT_NS_PER_INSN if self.jit else INTERPRETER_NS_PER_INSN
        total = int(round(executed * per_insn + state.helper_cost_ns))
        self.run_count += 1
        BPFProgram._runs_global += 1
        self.total_insns_executed += executed
        if helper_calls:
            self._unmerged_helper_calls.append(helper_calls)
        self.total_cost_ns += total
        return ExecResult(state.regs[0], total, executed, helper_calls, state.regs)

    def _run_once(
        self,
        env: ExecutionEnv,
        ctx_bytes: bytearray,
        packet_bytes: Optional[bytearray],
        native: Optional[bool] = None,
    ) -> Tuple[VMState, int, bytearray]:
        """One execution on the chosen tier, without accounting."""
        stack = bytearray(isa.STACK_SIZE)
        regions = [(STACK_REGION_BASE, stack, "stack"), (CTX_REGION_BASE, ctx_bytes, "ctx")]
        if packet_bytes is not None:
            regions.append((PACKET_REGION_BASE, packet_bytes, "packet"))
        state = VMState(regions, env)
        if native is None:
            native = self._native is not None
        if native:
            try:
                executed = self._native(state, stack, ctx_bytes, packet_bytes)
            except HelperError as exc:
                raise ExecutionError(f"{self.name}: helper error: {exc}")
        else:
            regs = state.regs = [0] * isa.NUM_REGS
            regs[isa.R1] = CTX_REGION_BASE
            regs[isa.R10] = STACK_REGION_BASE + isa.STACK_SIZE
            executed = self._execute(state)
        return state, executed, stack

    def _finish(self, state: VMState, executed: int) -> ExecResult:
        helper_calls = state.helper_calls
        per_insn = JIT_NS_PER_INSN if self.jit else INTERPRETER_NS_PER_INSN
        total = int(round(executed * per_insn + state.helper_cost_ns))
        self.run_count += 1
        BPFProgram._runs_global += 1
        self.total_insns_executed += executed
        if helper_calls:
            self._unmerged_helper_calls.append(helper_calls)
        self.total_cost_ns += total
        return ExecResult(state.regs[0], total, executed, helper_calls, state.regs)

    @property
    def jit_runs(self) -> int:
        """Executions charged at the JIT rate (the mode is per-program)."""
        return self.run_count if self.jit else 0

    @property
    def interp_runs(self) -> int:
        """Executions charged at the interpreter rate."""
        return 0 if self.jit else self.run_count

    @property
    def helper_call_totals(self) -> Dict[str, int]:
        """Per-helper invocation totals across every run.

        Per-run dicts are queued on the hot path and folded in here on
        read -- the obs layer polls this far less often than probes fire.
        """
        unmerged = self._unmerged_helper_calls
        if unmerged:
            totals = self._helper_totals
            for calls in unmerged:
                for helper, count in calls.items():
                    totals[helper] = totals.get(helper, 0) + count
            unmerged.clear()
        return self._helper_totals

    # -- the interpreter (differential oracle) ---------------------------------

    def _execute(self, state: VMState) -> int:
        """The fetch/decode interpreter loop; returns instructions fetched."""
        regs = state.regs
        memory = state
        insns = self.insns
        limit = len(insns)  # DAG: every insn runs at most once
        executed = 0
        pc = 0

        while True:
            if executed > limit:
                raise ExecutionError(f"{self.name}: runaway execution (pc={pc})")
            insn = insns[pc]
            executed += 1
            cls = insn.insn_class

            if cls == isa.BPF_ALU64 or cls == isa.BPF_ALU:
                self._alu(regs, insn, cls == isa.BPF_ALU)
                pc += 1
            elif cls == isa.BPF_JMP:
                op = insn.alu_op
                if op == isa.BPF_EXIT:
                    break
                if op == isa.BPF_CALL:
                    info = HELPERS[insn.imm]
                    try:
                        regs[isa.R0] = info.func(state, *regs[1 : 1 + info.argc]) & U64
                    except HelperError as exc:
                        raise ExecutionError(f"{self.name}: helper {info.name}: {exc}")
                    state.helper_calls[info.name] = state.helper_calls.get(info.name, 0) + 1
                    state.helper_cost_ns += info.cost_ns
                    pc += 1
                elif op == isa.BPF_JA:
                    pc += 1 + insn.offset
                else:
                    taken = self._jump_taken(regs, insn)
                    pc += 1 + (insn.offset if taken else 0)
            elif cls == isa.BPF_LDX:
                address = (regs[insn.src] + insn.offset) & U64
                regs[insn.dst] = memory.load(address, insn.size_bytes)
                pc += 1
            elif cls == isa.BPF_STX:
                address = (regs[insn.dst] + insn.offset) & U64
                memory.store(address, insn.size_bytes, regs[insn.src])
                pc += 1
            elif cls == isa.BPF_ST:
                address = (regs[insn.dst] + insn.offset) & U64
                memory.store(address, insn.size_bytes, insn.imm & U64)
                pc += 1
            elif cls == isa.BPF_LD:  # LD_IMM64
                second = self.insns[pc + 1]
                if insn.src == isa.BPF_PSEUDO_MAP_FD:
                    regs[insn.dst] = MAP_PTR_BASE + insn.imm
                else:
                    regs[insn.dst] = ((second.imm & U32) << 32) | (insn.imm & U32)
                executed += 1  # the second slot counts as fetched
                pc += 2
            else:  # pragma: no cover - verifier rejects these
                raise ExecutionError(f"{self.name}: bad class {cls} at pc {pc}")

        return executed

    # -- shadow mode -----------------------------------------------------------

    def _run_shadowed(
        self,
        env: ExecutionEnv,
        ctx_bytes: bytearray,
        packet_bytes: Optional[bytearray],
    ) -> ExecResult:
        """Run the compiled tier, then replay on the oracle and compare."""
        ctx_before = bytes(ctx_bytes)
        packet_before = None if packet_bytes is None else bytes(packet_bytes)
        clones = {fd: bpf_map.clone() for fd, bpf_map in env.maps.items()}

        clock_draws: List[int] = []
        prandom_draws: List[int] = []
        printk_lines: List[str] = []
        base_clock, base_prandom, base_sink = env.clock, env.prandom_u32, env.printk_sink

        def recording_clock() -> int:
            value = base_clock()
            clock_draws.append(value)
            return value

        def recording_prandom() -> int:
            value = base_prandom()
            prandom_draws.append(value)
            return value

        def recording_sink(message: str) -> None:
            printk_lines.append(message)
            base_sink(message)

        recording_env = ExecutionEnv(
            maps=env.maps,
            clock=recording_clock,
            cpu=env.cpu,
            prandom_u32=recording_prandom,
            printk_sink=recording_sink,
        )
        perf_seen: Dict[int, list] = {}
        undos = []
        for fd, bpf_map in env.maps.items():
            if isinstance(bpf_map, PerfEventArray):
                seen: List[Tuple[int, bytes]] = []
                perf_seen[fd] = seen
                undos.append(bpf_map.tee(lambda cpu, rec, _s=seen: _s.append((cpu, bytes(rec)))))
        try:
            state, executed, stack = self._run_once(
                recording_env, ctx_bytes, packet_bytes, native=True
            )
        finally:
            for undo in undos:
                undo()

        oracle_printks: List[str] = []
        oracle_env = ExecutionEnv(
            maps=clones,
            clock=_replay(clock_draws, "clock"),
            cpu=env.cpu,
            prandom_u32=_replay(prandom_draws, "prandom"),
            printk_sink=oracle_printks.append,
        )
        oracle_ctx = bytearray(ctx_before)
        oracle_packet = None if packet_before is None else bytearray(packet_before)
        try:
            ostate, oexecuted, ostack = self._run_once(
                oracle_env, oracle_ctx, oracle_packet, native=False
            )
        except ExecutionError as exc:
            raise ShadowMismatch(f"{self.name}: oracle faulted where compiled tier ran: {exc}")

        self._diff("insns_executed", executed, oexecuted)
        self._diff("registers", state.regs, ostate.regs)
        self._diff("helper_calls", state.helper_calls, ostate.helper_calls)
        self._diff("helper_cost_ns", state.helper_cost_ns, ostate.helper_cost_ns)
        self._diff("stack", bytes(stack), bytes(ostack))
        self._diff("ctx", bytes(ctx_bytes), bytes(oracle_ctx))
        if packet_bytes is not None:
            self._diff("packet", bytes(packet_bytes), bytes(oracle_packet))
        self._diff("trace_printk", printk_lines, oracle_printks)
        for fd, bpf_map in env.maps.items():
            if isinstance(bpf_map, PerfEventArray):
                self._diff(f"perf output (fd {fd})", perf_seen[fd], clones[fd].pending)
            else:
                self._diff(
                    f"map state (fd {fd})",
                    bpf_map.state_snapshot(),
                    clones[fd].state_snapshot(),
                )
        return self._finish(state, executed)

    def _diff(self, what: str, compiled_value, oracle_value) -> None:
        if compiled_value != oracle_value:
            raise ShadowMismatch(
                f"{self.name}: shadow divergence in {what}: "
                f"compiled={compiled_value!r} oracle={oracle_value!r}"
            )

    # -- instruction semantics -------------------------------------------------

    @staticmethod
    def _alu(regs: List[int], insn: Instruction, is32: bool) -> None:
        op = insn.alu_op
        dst = insn.dst
        if insn.uses_imm:
            operand = insn.imm & (U32 if is32 else U64)
            if insn.imm < 0 and not is32:
                operand = insn.imm & U64  # sign-extended immediate
        else:
            operand = regs[insn.src]
            if is32:
                operand &= U32

        value = regs[dst] & (U32 if is32 else U64)

        if op == isa.BPF_MOV:
            result = operand
        elif op == isa.BPF_ADD:
            result = value + operand
        elif op == isa.BPF_SUB:
            result = value - operand
        elif op == isa.BPF_MUL:
            result = value * operand
        elif op == isa.BPF_DIV:
            result = 0 if operand == 0 else value // (operand & (U32 if is32 else U64))
        elif op == isa.BPF_MOD:
            result = value if operand == 0 else value % (operand & (U32 if is32 else U64))
        elif op == isa.BPF_OR:
            result = value | operand
        elif op == isa.BPF_AND:
            result = value & operand
        elif op == isa.BPF_XOR:
            result = value ^ operand
        elif op == isa.BPF_LSH:
            result = value << (operand & (31 if is32 else 63))
        elif op == isa.BPF_RSH:
            result = value >> (operand & (31 if is32 else 63))
        elif op == isa.BPF_ARSH:
            width = 32 if is32 else 64
            shift = operand & (width - 1)
            signed = value - (1 << width) if value & (1 << (width - 1)) else value
            result = signed >> shift
        elif op == isa.BPF_NEG:
            result = -value
        elif op == isa.BPF_END:
            # imm selects the width (16/32/64); we model a little-endian
            # machine, so the to-BE form is a byte swap.
            result = _bswap(value, insn.imm)
        else:  # pragma: no cover - verifier rejects these
            raise ExecutionError(f"bad ALU op {op:#x}")

        regs[dst] = result & (U32 if is32 else U64)

    @staticmethod
    def _jump_taken(regs: List[int], insn: Instruction) -> bool:
        op = insn.alu_op
        left = regs[insn.dst]
        right = (insn.imm & U64) if insn.uses_imm else regs[insn.src]
        if insn.uses_imm and insn.imm < 0:
            right = insn.imm & U64

        if op == isa.BPF_JEQ:
            return left == right
        if op == isa.BPF_JNE:
            return left != right
        if op == isa.BPF_JGT:
            return left > right
        if op == isa.BPF_JGE:
            return left >= right
        if op == isa.BPF_JLT:
            return left < right
        if op == isa.BPF_JLE:
            return left <= right
        if op == isa.BPF_JSET:
            return bool(left & right)
        if op == isa.BPF_JSGT:
            return _to_signed64(left) > _to_signed64(right)
        if op == isa.BPF_JSGE:
            return _to_signed64(left) >= _to_signed64(right)
        if op == isa.BPF_JSLT:
            return _to_signed64(left) < _to_signed64(right)
        if op == isa.BPF_JSLE:
            return _to_signed64(left) <= _to_signed64(right)
        raise ExecutionError(f"bad JMP op {op:#x}")  # pragma: no cover

    def __repr__(self) -> str:
        mode = "jit" if self.jit else "interp"
        return f"<BPFProgram {self.name!r} {len(self.insns)} insns {mode}>"
