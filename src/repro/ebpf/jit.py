"""The JIT tier: translate verified bytecode into one Python code object.

The kernel JIT-compiles verified programs to native machine code; the
analog here is translating each program into straight-line Python source
-- registers as local variables, map handles pre-bound into the closure,
jumps lowered to structured control flow over basic blocks -- and
``compile()``-ing it into a single code object at load time.  One call
into that code object replaces the per-instruction dispatch loop
entirely, which matters because probes execute per packet.

The translation leans on facts the verifier proves
(:class:`repro.ebpf.verifier.VerifierAnalysis`):

* jumps are forward-only, so basic blocks execute in program order at
  most once -- no dispatch loop and no runaway check are needed; a
  cascade of ``if _b == N:`` guards is enough;
* direct frame-pointer accesses are in-frame, so they compile to
  unconditional stack reads/writes with the offset folded in;
* helper call sites name known helpers, so the host function, its
  simulated cost, and its argument count are bound at compile time.

The *simulated* cost model is unchanged (that lives in
:mod:`repro.ebpf.vm`); this is a host-side speedup only.  Semantics must
match the interpreter bit for bit -- ``tests/test_ebpf_jit.py`` runs
differential checks over random programs and every compiler-emitted
script shape, and the shadow mode in :mod:`repro.ebpf.vm` replays runs
on the interpreter oracle.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.ebpf import isa
from repro.ebpf.helpers import (
    HELPER_GET_PRANDOM_U32,
    HELPER_GET_SMP_PROCESSOR_ID,
    HELPER_KTIME_GET_NS,
    HELPERS,
)
from repro.ebpf.isa import Instruction
from repro.ebpf.memory import CTX_REGION_BASE, PACKET_REGION_BASE, STACK_REGION_BASE

U64 = 0xFFFFFFFFFFFFFFFF
U32 = 0xFFFFFFFF

_U64_HEX = "0xFFFFFFFFFFFFFFFF"
_U32_HEX = "0xFFFFFFFF"
_SIGN64_HEX = "0x8000000000000000"
_WRAP64_HEX = "0x10000000000000000"

_SIZE_MASK_HEX = {1: "0xFF", 2: "0xFFFF", 4: "0xFFFFFFFF", 8: _U64_HEX}
_STRUCTS = {2: struct.Struct("<H"), 4: struct.Struct("<I"), 8: struct.Struct("<Q")}

_UNSIGNED_CMP = {
    isa.BPF_JEQ: "==",
    isa.BPF_JNE: "!=",
    isa.BPF_JGT: ">",
    isa.BPF_JGE: ">=",
    isa.BPF_JLT: "<",
    isa.BPF_JLE: "<=",
}
_SIGNED_CMP = {
    isa.BPF_JSGT: ">",
    isa.BPF_JSGE: ">=",
    isa.BPF_JSLT: "<",
    isa.BPF_JSLE: "<=",
}

_WRITEBACK = "_st.regs = [r0, r1, r2, r3, r4, r5, r6, r7, r8, r9, r10]"


class JITError(RuntimeError):
    """Compilation failed (should be unreachable for verified programs)."""


class CompiledProgram(NamedTuple):
    """One translated program, shareable across loads of the same bytecode.

    ``factory`` takes ``{insn_index: tagged map pointer}`` for every
    LD_IMM64/BPF_PSEUDO_MAP_FD slot and returns the run entry point
    ``fn(state, stack, ctx, packet) -> insns_executed``.  Binding map
    pointers through the factory is what lets the program cache share
    one code object between redeploys that differ only in map fds.
    """

    factory: Callable[[Dict[int, int]], Callable]
    map_positions: Tuple[int, ...]
    source: str


def _bswap(value: int, width_bits: int) -> int:
    nbytes = width_bits // 8
    return int.from_bytes((value & ((1 << width_bits) - 1)).to_bytes(nbytes, "little"), "big")


def compile_program(
    insns: Sequence[Instruction], analysis: Optional["VerifierAnalysis"] = None
) -> CompiledProgram:
    """Translate verified ``insns`` into a :class:`CompiledProgram`."""
    insns = list(insns)
    if analysis is None:
        from repro.ebpf.verifier import verify

        analysis = verify(insns)

    second_slots = set(analysis.ld64_second_slots)
    count = len(insns)

    # Basic-block leaders: entry, every jump target, and the slot after
    # every branch.  Forward-only jumps make program order the execution
    # order, so sorted leaders are the block schedule.
    leaders = {0}
    leaders.update(analysis.jump_targets)
    for index, insn in enumerate(insns):
        if index in second_slots or insn.insn_class != isa.BPF_JMP:
            continue
        if insn.alu_op != isa.BPF_CALL and index + 1 < count:
            leaders.add(index + 1)
    starts = sorted(leaders)
    block_of = {start: number for number, start in enumerate(starts)}
    multi = len(starts) > 1

    needs = {"mem": False, "calls": False, "env": False}
    blocks = []
    for number, start in enumerate(starts):
        end = starts[number + 1] if number + 1 < len(starts) else count
        blocks.append(_emit_block(insns, start, end, number, block_of, multi, needs))

    if needs["calls"]:
        # Helper cost accrues in a local and lands in the state once per
        # run, at register writeback (a block holds at most one EXIT).
        for block_lines in blocks:
            for position, line in enumerate(block_lines):
                if line == _WRITEBACK:
                    block_lines.insert(position, "_st.helper_cost_ns = _hcost")
                    break

    body = []
    if needs["calls"]:
        body.append("_hc = _st.helper_calls")
        body.append("_hcost = 0")
    if needs["env"]:
        body.append("_env = _st.env")
    if needs["mem"]:
        body.append("_mem = _st")
        body.append("_cl = len(_ctx)")
        body.append("_pl = -1 if _pkt is None else len(_pkt)")
    if multi:
        body.append("_ex = 0")
    body.append("r0 = r2 = r3 = r4 = r5 = r6 = r7 = r8 = r9 = 0")
    body.append(f"r1 = {CTX_REGION_BASE:#x}")
    body.append(f"r10 = {STACK_REGION_BASE + isa.STACK_SIZE:#x}")
    for number, block_lines in enumerate(blocks):
        if number == 0:
            body.extend(block_lines)
        else:
            body.append(f"if _b == {number}:")
            body.extend("    " + line for line in block_lines)

    map_positions = tuple(analysis.map_load_positions)
    lines = ["def _make(_maps):"]
    for position in map_positions:
        lines.append(f"    _m{position} = _maps[{position}]")
    lines.append("    def _prog(_st, _stk, _ctx, _pkt):")
    lines.extend("        " + line for line in body)
    lines.append("    return _prog")
    source = "\n".join(lines) + "\n"

    namespace: Dict[str, object] = {"__builtins__": {"len": len}, "_bs": _bswap}
    for size, packer in _STRUCTS.items():
        namespace[f"_u{size}"] = packer.unpack_from
        namespace[f"_p{size}"] = packer.pack_into
    for position, helper_id in analysis.helper_sites:
        namespace[f"_h{position}"] = HELPERS[helper_id].func
    exec(compile(source, "<bpf-native>", "exec"), namespace)
    return CompiledProgram(namespace["_make"], map_positions, source)


def _emit_block(
    insns: List[Instruction],
    start: int,
    end: int,
    number: int,
    block_of: Dict[int, int],
    multi: bool,
    needs: Dict[str, bool],
) -> List[str]:
    lines: List[str] = []
    slots = 0
    index = start
    while index < end:
        insn = insns[index]
        cls = insn.insn_class
        if cls in (isa.BPF_ALU64, isa.BPF_ALU):
            lines.extend(_emit_alu(insn))
            slots += 1
            index += 1
        elif cls == isa.BPF_LDX:
            lines.extend(_emit_ldx(insn, needs))
            slots += 1
            index += 1
        elif cls in (isa.BPF_STX, isa.BPF_ST):
            lines.extend(_emit_store(insn, needs))
            slots += 1
            index += 1
        elif cls == isa.BPF_LD:
            lines.append(_emit_ld_imm64(insns, index))
            slots += 2  # the second slot counts as fetched
            index += 2
        elif cls == isa.BPF_JMP:
            op = insn.alu_op
            if op == isa.BPF_CALL:
                lines.extend(_emit_call(insn, index, needs))
                slots += 1
                index += 1
                continue
            slots += 1
            if op == isa.BPF_EXIT:
                lines.append(_WRITEBACK)
                lines.append(f"return _ex + {slots}" if multi else f"return {slots}")
                return lines
            if op == isa.BPF_JA:
                lines.append(f"_ex += {slots}")
                lines.append(f"_b = {block_of[index + 1 + insn.offset]}")
                return lines
            lines.append(f"_ex += {slots}")
            taken = block_of[index + 1 + insn.offset]
            lines.append(f"_b = {taken} if {_cond_expr(insn)} else {number + 1}")
            return lines
        else:  # pragma: no cover - verified programs never reach this
            raise JITError(f"cannot compile class {cls} at {index}")
    # Fell off the block end into the next leader (it is a jump target).
    lines.append(f"_ex += {slots}")
    lines.append(f"_b = {number + 1}")
    return lines


def _emit_alu(insn: Instruction) -> List[str]:
    is32 = insn.insn_class == isa.BPF_ALU
    op = insn.alu_op
    d = f"r{insn.dst}"
    mask = _U32_HEX if is32 else _U64_HEX
    # Locals always hold masked uint64 values, so 64-bit reads need no
    # re-mask; 32-bit ops narrow explicitly, like the interpreter.
    value = f"({d} & {_U32_HEX})" if is32 else d
    if insn.uses_imm:
        operand = str(insn.imm & (U32 if is32 else U64))
    else:
        operand = f"(r{insn.src} & {_U32_HEX})" if is32 else f"r{insn.src}"

    if op == isa.BPF_MOV:
        return [f"{d} = {operand}"]
    if op == isa.BPF_ADD:
        return [f"{d} = ({value} + {operand}) & {mask}"]
    if op == isa.BPF_SUB:
        return [f"{d} = ({value} - {operand}) & {mask}"]
    if op == isa.BPF_MUL:
        return [f"{d} = ({value} * {operand}) & {mask}"]
    if op == isa.BPF_AND:
        return [f"{d} = {value} & {operand}"]
    if op == isa.BPF_OR:
        return [f"{d} = {value} | {operand}"]
    if op == isa.BPF_XOR:
        return [f"{d} = {value} ^ {operand}"]
    if op == isa.BPF_DIV:
        if insn.uses_imm:  # constant zero divisors are rejected at verify
            return [f"{d} = {value} // {operand}"]
        return [f"_t = {operand}", f"{d} = 0 if _t == 0 else {value} // _t"]
    if op == isa.BPF_MOD:
        if insn.uses_imm:
            return [f"{d} = {value} % {operand}"]
        return [f"_t = {operand}", f"{d} = {value} if _t == 0 else {value} % _t"]
    if op in (isa.BPF_LSH, isa.BPF_RSH):
        if insn.uses_imm:  # shift range is verified
            shift = str(insn.imm)
        else:
            shift = f"(r{insn.src} & {31 if is32 else 63})"
        if op == isa.BPF_LSH:
            return [f"{d} = ({value} << {shift}) & {mask}"]
        return [f"{d} = {value} >> {shift}"]
    if op == isa.BPF_ARSH:
        half = "0x80000000" if is32 else _SIGN64_HEX
        wrap = "0x100000000" if is32 else _WRAP64_HEX
        lines = [f"_t = {value}"]
        if insn.uses_imm:
            shift = str(insn.imm)
        else:
            shift = "_s"
            lines.append(f"_s = r{insn.src} & {31 if is32 else 63}")
        lines.append(
            f"{d} = ((_t - {wrap}) >> {shift}) & {mask} if _t >= {half} else _t >> {shift}"
        )
        return lines
    if op == isa.BPF_NEG:
        return [f"{d} = -{value} & {mask}"]
    if op == isa.BPF_END:
        return [f"{d} = _bs({value}, {insn.imm}) & {mask}"]
    raise JITError(f"bad ALU op {op:#x}")  # pragma: no cover


def _cond_expr(insn: Instruction) -> str:
    op = insn.alu_op
    left = f"r{insn.dst}"
    if op in _UNSIGNED_CMP or op == isa.BPF_JSET:
        right = str(insn.imm & U64) if insn.uses_imm else f"r{insn.src}"
        if op == isa.BPF_JSET:
            return f"{left} & {right}"
        return f"{left} {_UNSIGNED_CMP[op]} {right}"
    cmp = _SIGNED_CMP.get(op)
    if cmp is None:  # pragma: no cover - verified programs never reach this
        raise JITError(f"bad JMP op {op:#x}")
    sleft = f"({left} - {_WRAP64_HEX} if {left} >= {_SIGN64_HEX} else {left})"
    if insn.uses_imm:
        sright = str(insn.imm)  # a sign-extended i32 is its own signed value
    else:
        r = f"r{insn.src}"
        sright = f"({r} - {_WRAP64_HEX} if {r} >= {_SIGN64_HEX} else {r})"
    return f"{sleft} {cmp} {sright}"


def _emit_ldx(insn: Instruction, needs: Dict[str, bool]) -> List[str]:
    size = insn.size_bytes
    d = f"r{insn.dst}"
    if insn.src == isa.FRAME_POINTER:
        # Verified in-frame: unconditional stack read, offset folded.
        offset = isa.STACK_SIZE + insn.offset
        if size == 1:
            return [f"{d} = _stk[{offset}]"]
        return [f"{d} = _u{size}(_stk, {offset})[0]"]

    needs["mem"] = True
    lines, addr = _addr_lines(f"r{insn.src}", insn.offset)

    def hit(buf: str) -> str:
        if size == 1:
            return f"{d} = {buf}[_o]"
        return f"{d} = _u{size}({buf}, _o)[0]"

    lines.extend(_region_chain(addr, size, hit, f"{d} = _mem.load({addr}, {size})"))
    return lines


def _emit_store(insn: Instruction, needs: Dict[str, bool]) -> List[str]:
    size = insn.size_bytes
    if insn.insn_class == isa.BPF_STX:
        raw = f"r{insn.src}"
        inline = raw if size == 8 else f"{raw} & {_SIZE_MASK_HEX[size]}"
    else:  # BPF_ST: constant payload
        raw = str(insn.imm & U64)
        inline = str(insn.imm & U64 & ((1 << (size * 8)) - 1))
    if insn.dst == isa.FRAME_POINTER:
        offset = isa.STACK_SIZE + insn.offset
        if size == 1:
            return [f"_stk[{offset}] = {inline}"]
        return [f"_p{size}(_stk, {offset}, {inline})"]

    needs["mem"] = True
    lines, addr = _addr_lines(f"r{insn.dst}", insn.offset)

    def hit(buf: str) -> str:
        if size == 1:
            return f"{buf}[_o] = {inline}"
        return f"_p{size}({buf}, _o, {inline})"

    lines.extend(_region_chain(addr, size, hit, f"_mem.store({addr}, {size}, {raw})"))
    return lines


def _addr_lines(pointer: str, offset: int) -> Tuple[List[str], str]:
    """Effective-address computation; returns (lines, address expression)."""
    if offset == 0:
        return [], pointer  # registers are already masked to u64
    return [f"_a = ({pointer} + {offset}) & {_U64_HEX}"], "_a"


def _region_chain(addr: str, size: int, hit, fallback: str) -> List[str]:
    """Bounds-checked fast paths for the three fixed regions.

    Map-value buffers (dynamic regions) and faulting accesses fall back
    to :meth:`repro.ebpf.memory.Memory` lookup, which raises the same
    :class:`~repro.ebpf.memory.MemoryFault` the interpreter would.
    """
    return [
        f"_o = {addr} - {CTX_REGION_BASE:#x}",
        f"if 0 <= _o <= _cl - {size}:",
        f"    {hit('_ctx')}",
        "else:",
        f"    _o = {addr} - {PACKET_REGION_BASE:#x}",
        f"    if 0 <= _o <= _pl - {size}:",
        f"        {hit('_pkt')}",
        "    else:",
        f"        _o = {addr} - {STACK_REGION_BASE:#x}",
        f"        if 0 <= _o <= {isa.STACK_SIZE - size}:",
        f"            {hit('_stk')}",
        "        else:",
        f"            {fallback}",
    ]


# Helpers that only read the execution environment inline to a single
# expression on the bound ``_env`` -- they cannot fault, take no
# arguments, and each expression mirrors the interpreter's
# ``info.func(state) & U64`` result exactly.
_INLINE_CALLS = {
    HELPER_KTIME_GET_NS: f"_env.clock() & {_U64_HEX}",
    HELPER_GET_PRANDOM_U32: "_env.prandom_u32() & 0xFFFFFFFF",
    HELPER_GET_SMP_PROCESSOR_ID: f"_env.cpu & {_U64_HEX}",
}


def _emit_call(insn: Instruction, index: int, needs: Dict[str, bool]) -> List[str]:
    needs["calls"] = True
    info = HELPERS[insn.imm]
    inline = _INLINE_CALLS.get(insn.imm)
    if inline is not None:
        needs["env"] = True
        result = f"r0 = {inline}"
    else:
        # Argument registers pass positionally (helpers never read the
        # register file); locals stay live across the call, matching the
        # interpreter, which leaves R1-R5 physically unchanged.
        args = "".join(f", r{n}" for n in range(1, info.argc + 1))
        result = f"r0 = _h{index}(_st{args}) & {_U64_HEX}"
    return [
        result,
        f'_hc["{info.name}"] = _hc.get("{info.name}", 0) + 1',
        f"_hcost += {info.cost_ns}",
    ]


def _emit_ld_imm64(insns: List[Instruction], index: int) -> str:
    first, second = insns[index], insns[index + 1]
    d = f"r{first.dst}"
    if first.src == isa.BPF_PSEUDO_MAP_FD:
        return f"{d} = _m{index}"
    return f"{d} = {((second.imm & U32) << 32) | (first.imm & U32)}"
