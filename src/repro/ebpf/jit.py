"""The JIT: pre-decode verified bytecode into Python closures.

The kernel JIT-compiles verified programs to native code; the analog
here is compiling each instruction into a specialized closure once at
load time, removing per-step opcode decoding from the hot path.  The
*simulated* cost model is unchanged (that lives in
:mod:`repro.ebpf.vm`); this is a host-side speedup that matters because
probes execute per packet.

Semantics must match the interpreter bit for bit --
``tests/test_ebpf_jit.py`` runs differential checks over random
programs and every compiler-emitted script shape.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.ebpf import isa
from repro.ebpf.helpers import HELPERS, MAP_PTR_BASE
from repro.ebpf.isa import Instruction

U64 = 0xFFFFFFFFFFFFFFFF
U32 = 0xFFFFFFFF

EXIT_PC = -1

# A step closure mutates (regs, state) and returns the next pc.
Step = Callable[[list, object], int]


class JITError(RuntimeError):
    """Compilation failed (should be unreachable for verified programs)."""


def _to_signed64(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def _bswap(value: int, width_bits: int) -> int:
    nbytes = width_bits // 8
    return int.from_bytes(
        (value & ((1 << width_bits) - 1)).to_bytes(nbytes, "little"), "big"
    )


def compile_steps(insns: Sequence[Instruction]) -> List[Tuple[Step, int]]:
    """Compile to a list of (step, fetched_slots) aligned with pc."""
    steps: List[Tuple[Step, int]] = [None] * len(insns)  # type: ignore[list-item]
    index = 0
    while index < len(insns):
        insn = insns[index]
        cls = insn.insn_class
        if cls in (isa.BPF_ALU64, isa.BPF_ALU):
            steps[index] = (_compile_alu(insn, index), 1)
            index += 1
        elif cls == isa.BPF_JMP:
            steps[index] = (_compile_jmp(insn, index), 1)
            index += 1
        elif cls == isa.BPF_LDX:
            steps[index] = (_compile_ldx(insn, index), 1)
            index += 1
        elif cls == isa.BPF_STX:
            steps[index] = (_compile_stx(insn, index), 1)
            index += 1
        elif cls == isa.BPF_ST:
            steps[index] = (_compile_st(insn, index), 1)
            index += 1
        elif cls == isa.BPF_LD:
            steps[index] = (_compile_ld_imm64(insn, insns[index + 1], index), 2)
            index += 2
        else:  # pragma: no cover - verified programs never reach this
            raise JITError(f"cannot compile class {cls} at {index}")
    return steps


def _compile_alu(insn: Instruction, index: int) -> Step:
    is32 = insn.insn_class == isa.BPF_ALU
    mask = U32 if is32 else U64
    op = insn.alu_op
    dst = insn.dst
    src = insn.src
    next_pc = index + 1

    if insn.uses_imm:
        operand_const = insn.imm & mask
        if insn.imm < 0 and not is32:
            operand_const = insn.imm & U64

        def get_operand(regs):
            return operand_const

    else:

        def get_operand(regs):
            value = regs[src]
            return value & U32 if is32 else value

    if op == isa.BPF_MOV:
        def step(regs, state):
            regs[dst] = get_operand(regs) & mask
            return next_pc
    elif op == isa.BPF_ADD:
        def step(regs, state):
            regs[dst] = ((regs[dst] & mask) + get_operand(regs)) & mask
            return next_pc
    elif op == isa.BPF_SUB:
        def step(regs, state):
            regs[dst] = ((regs[dst] & mask) - get_operand(regs)) & mask
            return next_pc
    elif op == isa.BPF_MUL:
        def step(regs, state):
            regs[dst] = ((regs[dst] & mask) * get_operand(regs)) & mask
            return next_pc
    elif op == isa.BPF_DIV:
        def step(regs, state):
            operand = get_operand(regs) & mask
            regs[dst] = 0 if operand == 0 else ((regs[dst] & mask) // operand) & mask
            return next_pc
    elif op == isa.BPF_MOD:
        def step(regs, state):
            operand = get_operand(regs) & mask
            value = regs[dst] & mask
            regs[dst] = value if operand == 0 else (value % operand) & mask
            return next_pc
    elif op == isa.BPF_OR:
        def step(regs, state):
            regs[dst] = ((regs[dst] & mask) | get_operand(regs)) & mask
            return next_pc
    elif op == isa.BPF_AND:
        def step(regs, state):
            regs[dst] = ((regs[dst] & mask) & get_operand(regs)) & mask
            return next_pc
    elif op == isa.BPF_XOR:
        def step(regs, state):
            regs[dst] = ((regs[dst] & mask) ^ get_operand(regs)) & mask
            return next_pc
    elif op == isa.BPF_LSH:
        shift_mask = 31 if is32 else 63

        def step(regs, state):
            regs[dst] = ((regs[dst] & mask) << (get_operand(regs) & shift_mask)) & mask
            return next_pc
    elif op == isa.BPF_RSH:
        shift_mask = 31 if is32 else 63

        def step(regs, state):
            regs[dst] = ((regs[dst] & mask) >> (get_operand(regs) & shift_mask)) & mask
            return next_pc
    elif op == isa.BPF_ARSH:
        width = 32 if is32 else 64

        def step(regs, state):
            shift = get_operand(regs) & (width - 1)
            value = regs[dst] & mask
            signed = value - (1 << width) if value & (1 << (width - 1)) else value
            regs[dst] = (signed >> shift) & mask
            return next_pc
    elif op == isa.BPF_NEG:
        def step(regs, state):
            regs[dst] = (-(regs[dst] & mask)) & mask
            return next_pc
    elif op == isa.BPF_END:
        width_bits = insn.imm

        def step(regs, state):
            regs[dst] = _bswap(regs[dst] & mask, width_bits) & mask
            return next_pc
    else:  # pragma: no cover
        raise JITError(f"bad ALU op {op:#x}")
    return step


def _compile_jmp(insn: Instruction, index: int) -> Step:
    op = insn.alu_op
    next_pc = index + 1
    taken_pc = index + 1 + insn.offset
    dst = insn.dst
    src = insn.src

    if op == isa.BPF_EXIT:
        def step(regs, state):
            return EXIT_PC
        return step
    if op == isa.BPF_JA:
        def step(regs, state):
            return taken_pc
        return step
    if op == isa.BPF_CALL:
        info = HELPERS[insn.imm]
        helper_fn, helper_name, helper_cost = info.func, info.name, info.cost_ns

        def step(regs, state):
            regs[isa.R0] = helper_fn(state) & U64
            state.helper_calls[helper_name] = state.helper_calls.get(helper_name, 0) + 1
            state.helper_cost_ns += helper_cost
            return next_pc

        return step

    if insn.uses_imm:
        right_const = insn.imm & U64
        if insn.imm < 0:
            right_const = insn.imm & U64

        def get_right(regs):
            return right_const

    else:

        def get_right(regs):
            return regs[src]

    unsigned = {
        isa.BPF_JEQ: lambda a, b: a == b,
        isa.BPF_JNE: lambda a, b: a != b,
        isa.BPF_JGT: lambda a, b: a > b,
        isa.BPF_JGE: lambda a, b: a >= b,
        isa.BPF_JLT: lambda a, b: a < b,
        isa.BPF_JLE: lambda a, b: a <= b,
        isa.BPF_JSET: lambda a, b: bool(a & b),
    }
    if op in unsigned:
        cmp = unsigned[op]

        def step(regs, state):
            return taken_pc if cmp(regs[dst], get_right(regs)) else next_pc

        return step

    signed = {
        isa.BPF_JSGT: lambda a, b: a > b,
        isa.BPF_JSGE: lambda a, b: a >= b,
        isa.BPF_JSLT: lambda a, b: a < b,
        isa.BPF_JSLE: lambda a, b: a <= b,
    }
    if op in signed:
        cmp = signed[op]

        def step(regs, state):
            return (
                taken_pc
                if cmp(_to_signed64(regs[dst]), _to_signed64(get_right(regs)))
                else next_pc
            )

        return step
    raise JITError(f"bad JMP op {op:#x}")  # pragma: no cover


def _compile_ldx(insn: Instruction, index: int) -> Step:
    dst, src, offset, size = insn.dst, insn.src, insn.offset, insn.size_bytes
    next_pc = index + 1

    def step(regs, state):
        regs[dst] = state.memory.load((regs[src] + offset) & U64, size)
        return next_pc

    return step


def _compile_stx(insn: Instruction, index: int) -> Step:
    dst, src, offset, size = insn.dst, insn.src, insn.offset, insn.size_bytes
    next_pc = index + 1

    def step(regs, state):
        state.memory.store((regs[dst] + offset) & U64, size, regs[src])
        return next_pc

    return step


def _compile_st(insn: Instruction, index: int) -> Step:
    dst, offset, size, imm = insn.dst, insn.offset, insn.size_bytes, insn.imm & U64
    next_pc = index + 1

    def step(regs, state):
        state.memory.store((regs[dst] + offset) & U64, size, imm)
        return next_pc

    return step


def compile_map_load(first: Instruction, second: Instruction, index: int) -> Tuple[Step, int]:
    """Recompile one LD_IMM64 slot.

    The program cache (:mod:`repro.ebpf.vm`) shares compiled steps across
    loads of the same script, but map references embed per-instance fds;
    on a cache hit only these slots are rebuilt against the real fds.
    """
    return _compile_ld_imm64(first, second, index), 2


def _compile_ld_imm64(first: Instruction, second: Instruction, index: int) -> Step:
    dst = first.dst
    next_pc = index + 2
    if first.src == isa.BPF_PSEUDO_MAP_FD:
        value = MAP_PTR_BASE + first.imm
    else:
        value = ((second.imm & U32) << 32) | (first.imm & U32)

    def step(regs, state):
        regs[dst] = value
        return next_pc

    return step
