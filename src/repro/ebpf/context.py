"""The program context: a ``__sk_buff``-like struct handed to programs in R1.

Layout (little-endian, fixed offsets -- programs hardcode these, as real
socket-filter programs hardcode ``__sk_buff`` offsets):

====== ====== ==========================================================
offset size   field
====== ====== ==========================================================
0      u32    len          -- wire length of the packet at this hook
4      u16    protocol     -- ethertype
8      u32    ifindex      -- device the hook fired on
12     u32    rx_cpu       -- CPU the event is being processed on
16     u32    src_ip       -- IPv4 source (host byte order)
20     u32    dst_ip       -- IPv4 destination (host byte order)
24     u16    src_port     -- L4 source port (host byte order)
26     u16    dst_port     -- L4 destination port (host byte order)
28     u8     ip_proto     -- 6 TCP / 17 UDP
32     u32    hook_id      -- numeric tracepoint id assigned at attach
36     u32    payload_off  -- offset of L4 payload within data
40     u64    data         -- pointer to the first packet byte
48     u64    data_end     -- pointer one past the last packet byte
====== ====== ==========================================================

For VXLAN hooks inside an overlay, the builder can be asked to describe
the *inner* packet (the paper: "the tracing scripts need to strip the
VXLAN header off to read the skb information").  The parsed fields then
refer to the inner five-tuple while data/data_end still cover the bytes
visible at the hook.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.ebpf.memory import PACKET_REGION_BASE
from repro.net.packet import IPPROTO_TCP, IPPROTO_UDP, Packet

CTX_SIZE = 56

OFF_LEN = 0
OFF_PROTOCOL = 4
OFF_IFINDEX = 8
OFF_RX_CPU = 12
OFF_SRC_IP = 16
OFF_DST_IP = 20
OFF_SRC_PORT = 24
OFF_DST_PORT = 26
OFF_IP_PROTO = 28
OFF_HOOK_ID = 32
OFF_PAYLOAD_OFF = 36
OFF_DATA = 40
OFF_DATA_END = 48


def build_skb_context(
    packet: Packet,
    ifindex: int = 0,
    cpu: int = 0,
    hook_id: int = 0,
    use_inner: bool = False,
    wire_bytes: Optional[bytes] = None,
) -> Tuple[bytearray, bytearray]:
    """Build (ctx, packet_bytes) for one program invocation.

    ``use_inner`` fills the parsed fields from the innermost packet
    (after notional VXLAN decap).  ``wire_bytes`` lets callers reuse an
    already-serialized image instead of re-serializing per probe.
    """
    logical = packet.innermost if use_inner else packet
    data = bytearray(wire_bytes if wire_bytes is not None else packet.to_bytes())

    ctx = bytearray(CTX_SIZE)
    struct.pack_into("<I", ctx, OFF_LEN, len(data))
    eth = logical.eth
    struct.pack_into("<H", ctx, OFF_PROTOCOL, eth.ethertype if eth else 0)
    struct.pack_into("<I", ctx, OFF_IFINDEX, ifindex)
    struct.pack_into("<I", ctx, OFF_RX_CPU, cpu)

    ip = logical.ip
    if ip is not None:
        struct.pack_into("<I", ctx, OFF_SRC_IP, ip.src.value)
        struct.pack_into("<I", ctx, OFF_DST_IP, ip.dst.value)
        struct.pack_into("<B", ctx, OFF_IP_PROTO, ip.protocol)

    payload_offset = 0
    if logical.tcp is not None:
        struct.pack_into("<H", ctx, OFF_SRC_PORT, logical.tcp.src_port)
        struct.pack_into("<H", ctx, OFF_DST_PORT, logical.tcp.dst_port)
    elif logical.udp is not None:
        struct.pack_into("<H", ctx, OFF_SRC_PORT, logical.udp.src_port)
        struct.pack_into("<H", ctx, OFF_DST_PORT, logical.udp.dst_port)

    # Where the L4 payload of the *logical* packet starts inside `data`.
    # For encapsulated packets the outer headers precede the inner image.
    outer_header_len = 0
    walk = packet
    while walk is not logical:
        outer_header_len += walk.header_length
        walk = walk.payload  # type: ignore[assignment]  # guarded by innermost
    payload_offset = outer_header_len + logical.header_length
    struct.pack_into("<I", ctx, OFF_PAYLOAD_OFF, payload_offset)

    struct.pack_into("<I", ctx, OFF_HOOK_ID, hook_id)
    struct.pack_into("<Q", ctx, OFF_DATA, PACKET_REGION_BASE)
    struct.pack_into("<Q", ctx, OFF_DATA_END, PACKET_REGION_BASE + len(data))
    return ctx, data


def build_empty_context(
    ifindex: int = 0, cpu: int = 0, hook_id: int = 0
) -> Tuple[bytearray, bytearray]:
    """A context for probe points with no packet: all packet fields are
    zero, data == data_end (an empty, valid region)."""
    ctx = bytearray(CTX_SIZE)
    struct.pack_into("<I", ctx, OFF_IFINDEX, ifindex)
    struct.pack_into("<I", ctx, OFF_RX_CPU, cpu)
    struct.pack_into("<I", ctx, OFF_HOOK_ID, hook_id)
    struct.pack_into("<Q", ctx, OFF_DATA, PACKET_REGION_BASE)
    struct.pack_into("<Q", ctx, OFF_DATA_END, PACKET_REGION_BASE)
    return ctx, bytearray(0)


def context_field(ctx: bytearray, offset: int, size: int) -> int:
    """Read a context field from the byte image (user-space debugging)."""
    return int.from_bytes(ctx[offset : offset + size], "little")


_IS_TCP = IPPROTO_TCP
_IS_UDP = IPPROTO_UDP
