"""Program introspection -- the ``bpftool prog`` analog.

Summarize loaded programs: instruction mix, helper usage, referenced
maps, estimated per-run cost bounds, and a disassembly listing.  Used
by operators to sanity-check what the vNetTracer compiler emitted.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

from repro.ebpf import isa
from repro.ebpf.helpers import HELPERS
from repro.ebpf.isa import disassemble
from repro.ebpf.vm import BPFProgram, INTERPRETER_NS_PER_INSN, JIT_NS_PER_INSN


class ProgramInfo(NamedTuple):
    name: str
    instructions: int
    alu_ops: int
    jumps: int
    loads: int
    stores: int
    helper_calls: Dict[str, int]
    map_fds: List[int]
    max_cost_ns_interp: int
    max_cost_ns_jit: int
    run_count: int
    total_cost_ns: int


def inspect_program(program: BPFProgram) -> ProgramInfo:
    """Static + runtime summary of one program."""
    alu = jumps = loads = stores = 0
    helper_counts: Dict[str, int] = {}
    map_fds: List[int] = []
    index = 0
    insns = program.insns
    while index < len(insns):
        insn = insns[index]
        cls = insn.insn_class
        if cls in (isa.BPF_ALU, isa.BPF_ALU64):
            alu += 1
        elif cls == isa.BPF_JMP:
            if insn.alu_op == isa.BPF_CALL:
                name = HELPERS[insn.imm].name
                helper_counts[name] = helper_counts.get(name, 0) + 1
            jumps += 1
        elif cls == isa.BPF_LDX:
            loads += 1
        elif cls in (isa.BPF_ST, isa.BPF_STX):
            stores += 1
        elif cls == isa.BPF_LD:
            if insn.src == isa.BPF_PSEUDO_MAP_FD:
                map_fds.append(insn.imm)
            loads += 1
            index += 1  # skip the second slot
        index += 1

    # Worst case: every instruction executes once (DAG property) and
    # every helper call site fires.
    helper_cost = sum(
        HELPERS[insn.imm].cost_ns
        for insn in insns
        if insn.insn_class == isa.BPF_JMP and insn.alu_op == isa.BPF_CALL
    )
    n = len(insns)
    return ProgramInfo(
        name=program.name,
        instructions=n,
        alu_ops=alu,
        jumps=jumps,
        loads=loads,
        stores=stores,
        helper_calls=helper_counts,
        map_fds=sorted(set(map_fds)),
        max_cost_ns_interp=int(n * INTERPRETER_NS_PER_INSN + helper_cost),
        max_cost_ns_jit=int(n * JIT_NS_PER_INSN + helper_cost),
        run_count=program.run_count,
        total_cost_ns=program.total_cost_ns,
    )


def dump_program(program: BPFProgram) -> str:
    """A ``bpftool prog dump xlated``-style listing with a header."""
    info = inspect_program(program)
    header = [
        f"program {info.name!r}: {info.instructions} insns "
        f"({info.alu_ops} alu, {info.jumps} jmp, {info.loads} ld, {info.stores} st)",
        f"tier: {program.tier} ({program.mode} cost model)",
        f"helpers: {info.helper_calls or 'none'}   maps: {info.map_fds or 'none'}",
        f"worst-case cost: {info.max_cost_ns_interp} ns interp / "
        f"{info.max_cost_ns_jit} ns jit",
        f"runtime: {info.run_count} runs, {info.total_cost_ns} ns total",
    ]
    return "\n".join(header) + "\n" + disassemble(program.insns)
