"""Topology builders: physical hosts, KVM VMs, Xen hosts and guests.

These wrap the lower-level pieces (kernel nodes, virtio/vif pairs,
schedulers) into the shapes the paper's evaluation uses: two PowerEdge
servers, VMs pinned to cores under KVM, and Xen guests whose single
vCPU shares a physical core with a CPU-hog VM.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.net.addressing import IPv4Address
from repro.net.costs import CostModel, DEFAULT_COSTS
from repro.net.stack import KernelNode
from repro.sim.clock import NodeClock
from repro.sim.cpu import GatedCPU
from repro.sim.engine import Engine
from repro.sim.rng import SeededRNG
from repro.virt.virtio import create_virtio_pair
from repro.virt.xen import CreditScheduler, VCPU, create_vif_pair

_backend_counter = itertools.count(0)


class VirtualMachine:
    """A guest: its own kernel node plus hypervisor plumbing."""

    def __init__(self, host: "PhysicalHost", name: str, node: KernelNode, kind: str):
        self.host = host
        self.name = name
        self.node = node
        self.kind = kind  # "kvm" or "xen"
        self.nics: Dict[str, object] = {}
        self.vcpus: List[VCPU] = []

    def attach_virtio_nic(
        self,
        ip: IPv4Address,
        frontend_name: str = "ens3",
        backend_name: Optional[str] = None,
        host_irq_cpu: int = 0,
    ):
        """Add a virtio NIC; returns (frontend, backend).  The backend
        (``vnetX``) is left for the caller to enslave to a bridge/OVS."""
        if backend_name is None:
            backend_name = f"vnet{next(_backend_counter)}"
        frontend, backend = create_virtio_pair(
            self.node, frontend_name, self.host.node, backend_name, host_irq_cpu=host_irq_cpu
        )
        frontend.ip = ip
        self.node.add_route(IPv4Address(ip.value & 0xFFFFFF00), 24, frontend, src_ip=ip)
        self.nics[frontend_name] = (frontend, backend)
        return frontend, backend

    def attach_vif_nic(
        self,
        ip: IPv4Address,
        frontend_name: str = "eth1",
        backend_name: Optional[str] = None,
        dom0_irq_cpu: int = 0,
    ):
        """Add a Xen split-driver NIC; returns (frontend/netfront, backend/netback)."""
        if backend_name is None:
            backend_name = f"vif{len(self.host.vms)}.0"
        frontend, backend = create_vif_pair(
            self.node, frontend_name, self.host.node, backend_name, dom0_irq_cpu=dom0_irq_cpu
        )
        frontend.ip = ip
        self.node.add_route(IPv4Address(ip.value & 0xFFFFFF00), 24, frontend, src_ip=ip)
        self.nics[frontend_name] = (frontend, backend)
        return frontend, backend

    def __repr__(self) -> str:
        return f"<VirtualMachine {self.name} ({self.kind}) on {self.host.name}>"


class PhysicalHost:
    """A physical server: host kernel (Dom0 for Xen) + guests."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        num_cpus: int = 20,
        costs: Optional[CostModel] = None,
        rng: Optional[SeededRNG] = None,
        clock_offset_ns: int = 0,
        clock_drift_ppm: float = 0.0,
    ):
        self.engine = engine
        self.name = name
        self.costs = costs or DEFAULT_COSTS
        self.rng = rng or SeededRNG(0, f"host/{name}")
        self.clock = NodeClock(engine, offset_ns=clock_offset_ns, drift_ppm=clock_drift_ppm)
        self.node = KernelNode(
            engine,
            name,
            num_cpus=num_cpus,
            costs=self.costs,
            rng=self.rng.fork("kernel"),
            clock=self.clock,
        )
        self.vms: List[VirtualMachine] = []
        self.schedulers: Dict[int, CreditScheduler] = {}  # pCPU index -> scheduler

    # -- KVM ------------------------------------------------------------------

    def create_kvm_vm(
        self,
        name: str,
        num_vcpus: int = 4,
        costs: Optional[CostModel] = None,
        clock_offset_ns: Optional[int] = None,
    ) -> VirtualMachine:
        """A KVM guest with vCPUs pinned to dedicated cores (as the
        paper pins them "to avoid the interference").

        By default the guest reads the host's clock (kvmclock); pass
        ``clock_offset_ns`` to give it an independent clock.
        """
        guest_clock = (
            self.clock
            if clock_offset_ns is None
            else NodeClock(self.engine, offset_ns=clock_offset_ns)
        )
        guest = KernelNode(
            self.engine,
            f"{self.name}/{name}",
            num_cpus=num_vcpus,
            costs=costs or self.costs,
            rng=self.rng.fork(f"vm/{name}"),
            clock=guest_clock,
        )
        vm = VirtualMachine(self, name, guest, kind="kvm")
        self.vms.append(vm)
        return vm

    # -- Xen ----------------------------------------------------------------------

    def xen_scheduler(self, pcpu_index: int, ratelimit_us: int = 1000) -> CreditScheduler:
        """The credit2 runqueue for one physical CPU (created on demand)."""
        if pcpu_index not in self.schedulers:
            self.schedulers[pcpu_index] = CreditScheduler(
                self.engine,
                ratelimit_us=ratelimit_us,
                name=f"{self.name}/sched{pcpu_index}",
            )
        return self.schedulers[pcpu_index]

    def create_xen_vm(
        self,
        name: str,
        pcpu_index: int = 0,
        num_vcpus: int = 1,
        cpu_hog: bool = False,
        ratelimit_us: int = 1000,
        costs: Optional[CostModel] = None,
        clock_offset_ns: Optional[int] = None,
    ) -> VirtualMachine:
        """A Xen guest whose vCPUs are gated by the pCPU's scheduler.

        By default the guest reads the host's clock (the Xen/kvmclock
        paravirtual clocksource keeps guests on the hypervisor's time);
        pass ``clock_offset_ns`` to give it an independent clock.
        """
        scheduler = self.xen_scheduler(pcpu_index, ratelimit_us=ratelimit_us)
        gated_cpus = [
            GatedCPU(self.engine, name=f"{name}/vcpu{i}", index=i, start_paused=True)
            for i in range(num_vcpus)
        ]
        guest_clock = (
            self.clock
            if clock_offset_ns is None
            else NodeClock(self.engine, offset_ns=clock_offset_ns)
        )
        guest = KernelNode(
            self.engine,
            f"{self.name}/{name}",
            costs=costs or self.costs,
            rng=self.rng.fork(f"vm/{name}"),
            clock=guest_clock,
            cpus=gated_cpus,
        )
        vm = VirtualMachine(self, name, guest, kind="xen")
        for i, cpu in enumerate(gated_cpus):
            vcpu = VCPU(f"{name}/vcpu{i}", cpu, always_busy=cpu_hog)
            vm.vcpus.append(vcpu)
            scheduler.add_vcpu(vcpu)
        self.vms.append(vm)
        return vm

    def __repr__(self) -> str:
        return f"<PhysicalHost {self.name} vms={[vm.name for vm in self.vms]}>"
