"""Xen-style scheduling and split-driver networking (Case Study II).

The credit2-flavoured :class:`CreditScheduler` orders runnable vCPUs by
credit, but honours the **context-switch rate limit** introduced in Xen
4.2: the running vCPU may not be preempted until it has run
``ratelimit_us`` microseconds, *even by a higher-priority woken vCPU*.
A latency-sensitive VM sharing a pCPU with a CPU-bound VM therefore
waits up to the full rate limit for every packet -- the 0..1000 µs
sawtooth of Fig. 11(b) and the 22x 99.9th-percentile blowup of
Fig. 10(a).  Setting ``ratelimit_us=0`` restores immediate wake-up
preemption, which is the paper's fix (confirmed by Citrix engineers).

:class:`XenVifPair` models the netback (``vif1.0`` in Dom0) /
netfront (``eth1`` in the guest) split driver: packets transferred via
the shared ring, with delivery into the guest gated on its vCPU
actually being scheduled.
"""

from __future__ import annotations

import enum
from typing import List, Optional, TYPE_CHECKING

from repro.net.device import NetDevice
from repro.net.packet import Packet
from repro.sim.cpu import GatedCPU
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode

CONTEXT_SWITCH_NS = 1_500
CREDIT_RESET = 10_000_000  # ns-denominated credit refill

# Grant-copy bandwidth terms (ns per byte) for the split driver.
NETBACK_COPY_NS_PER_BYTE = 0.30
NETFRONT_COPY_NS_PER_BYTE = 0.45


class VCPUState(enum.Enum):
    RUNNING = "running"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"


class VCPU:
    """One virtual CPU under the hypervisor scheduler."""

    def __init__(
        self,
        name: str,
        cpu: GatedCPU,
        weight: int = 256,
        always_busy: bool = False,
    ):
        self.name = name
        self.cpu = cpu
        self.weight = weight
        self.always_busy = always_busy  # a CPU-hog guest: never blocks
        self.state = VCPUState.BLOCKED
        self.credit = CREDIT_RESET
        self.run_start_ns = 0
        self.total_run_ns = 0
        self.wakeups = 0
        self.scheduler: Optional["CreditScheduler"] = None
        cpu.pause()
        cpu.on_work_queued = self._on_work
        cpu.on_idle = self._on_idle

    def _on_work(self) -> None:
        if self.scheduler is not None and self.state == VCPUState.BLOCKED:
            self.scheduler.wake(self)

    def _on_idle(self) -> None:
        if (
            self.scheduler is not None
            and self.state == VCPUState.RUNNING
            and not self.always_busy
        ):
            self.scheduler.block(self)

    def has_work(self) -> bool:
        return self.always_busy or self.cpu.has_pending_work()

    def __repr__(self) -> str:
        return f"<VCPU {self.name} {self.state.value} credit={self.credit}>"


class CreditScheduler:
    """Credit2-style scheduler for one physical CPU."""

    def __init__(
        self,
        engine: Engine,
        ratelimit_us: int = 1000,
        timeslice_ms: int = 10,
        name: str = "sched0",
    ):
        self.engine = engine
        self.ratelimit_ns = int(ratelimit_us) * 1000
        self.timeslice_ns = int(timeslice_ms) * 1_000_000
        self.name = name
        self.vcpus: List[VCPU] = []
        self.current: Optional[VCPU] = None
        self._preempt_event = None
        self._timeslice_event = None
        self.context_switches = 0
        self.ratelimit_deferrals = 0

    # -- registration --------------------------------------------------------

    def add_vcpu(self, vcpu: VCPU) -> None:
        vcpu.scheduler = self
        self.vcpus.append(vcpu)
        if vcpu.always_busy:
            self.wake(vcpu)

    # -- state transitions ----------------------------------------------------

    def wake(self, vcpu: VCPU) -> None:
        """A blocked vCPU has pending work (event-channel notification)."""
        if vcpu.state != VCPUState.BLOCKED:
            return
        vcpu.state = VCPUState.RUNNABLE
        vcpu.wakeups += 1
        if self.current is None:
            chosen = self._pick_next()
            self._switch_to(chosen)
            if chosen is not None and chosen is not vcpu and self._preempt_event is None:
                # Lost the pick (e.g. woke during a context switch to a
                # higher-credit vCPU): make sure a re-evaluation fires.
                self._preempt_event = self.engine.schedule(
                    max(1, self.ratelimit_ns), self._ratelimit_expired
                )
            return
        ran_ns = self.engine.now - self.current.run_start_ns
        if self._outranks(vcpu, self.current):
            if ran_ns >= self.ratelimit_ns:
                self._preempt()
            else:
                # The rate limit protects the running vCPU: defer the
                # preemption until its minimum slice has elapsed.
                self.ratelimit_deferrals += 1
                remaining = self.ratelimit_ns - ran_ns
                if self._preempt_event is None:
                    self._preempt_event = self.engine.schedule(
                        remaining, self._ratelimit_expired
                    )
        else:
            # Not yet ahead of the incumbent, but the incumbent's credit
            # burns while it runs: re-evaluate at the crossing time (and
            # never before the rate limit allows preemption anyway).
            deficit = self._live_credit(self.current) - self._live_credit(vcpu)
            crossing_ns = deficit * max(1, self.current.weight) // 256 + 1
            wait_ns = max(crossing_ns, self.ratelimit_ns - ran_ns)
            if self._preempt_event is None:
                self._preempt_event = self.engine.schedule(
                    wait_ns, self._ratelimit_expired
                )

    def block(self, vcpu: VCPU) -> None:
        """The running vCPU went idle."""
        if vcpu is not self.current:
            if vcpu.state == VCPUState.RUNNABLE and not vcpu.has_work():
                vcpu.state = VCPUState.BLOCKED
            return
        self._charge_current()
        vcpu.state = VCPUState.BLOCKED
        vcpu.cpu.pause()
        self.current = None
        self._cancel_events()
        next_vcpu = self._pick_next()
        if next_vcpu is not None:
            self._switch_to(next_vcpu)

    # -- internals --------------------------------------------------------------

    def _live_credit(self, vcpu: VCPU) -> int:
        """Credit with the incumbent's in-progress burn applied (credit2
        accounts the running vCPU's consumption continuously)."""
        credit = vcpu.credit
        if vcpu.state == VCPUState.RUNNING:
            ran_ns = self.engine.now - vcpu.run_start_ns
            credit -= ran_ns * 256 // max(1, vcpu.weight)
        return credit

    def _outranks(self, challenger: VCPU, incumbent: VCPU) -> bool:
        return self._live_credit(challenger) > self._live_credit(incumbent)

    def _pick_next(self) -> Optional[VCPU]:
        runnable = [v for v in self.vcpus if v.state == VCPUState.RUNNABLE and v.has_work()]
        if not runnable:
            return None
        if all(v.credit <= 0 for v in runnable):
            self._reset_credits()
        return max(runnable, key=lambda v: (v.credit, -self.vcpus.index(v)))

    def _reset_credits(self) -> None:
        """Credit2's reset: add CSCHED2_CREDIT_INIT to everyone, capped
        at INIT.  The addition preserves relative order, so a vCPU that
        consumed little CPU keeps its advantage over a hog and its
        wakeups preempt immediately (modulo the rate limit)."""
        for v in self.vcpus:
            v.credit = min(v.credit + CREDIT_RESET, CREDIT_RESET)

    def _charge_current(self) -> None:
        if self.current is None:
            return
        ran_ns = self.engine.now - self.current.run_start_ns
        self.current.total_run_ns += ran_ns
        self.current.credit -= ran_ns * 256 // max(1, self.current.weight)
        # credit2 clamps the deficit so one long solo run cannot starve
        # the vCPU through many reset epochs afterwards.
        self.current.credit = max(self.current.credit, -CREDIT_RESET)

    def _ratelimit_expired(self) -> None:
        self._preempt_event = None
        if self.current is None:
            # Mid context-switch: re-evaluate once the switch lands.
            self._preempt_event = self.engine.schedule(
                CONTEXT_SWITCH_NS, self._ratelimit_expired
            )
            return
        challenger = self._pick_next()
        if challenger is None or challenger is self.current:
            return
        if self._outranks(challenger, self.current):
            self._preempt()
        else:
            # Re-arm at the credit crossing so a runnable vCPU is never
            # silently parked until the end of a full timeslice.
            deficit = self._live_credit(self.current) - self._live_credit(challenger)
            crossing_ns = deficit * max(1, self.current.weight) // 256 + 1
            self._preempt_event = self.engine.schedule(
                crossing_ns, self._ratelimit_expired
            )

    def _preempt(self) -> None:
        self._charge_current()
        preempted = self.current
        if preempted is not None:
            preempted.state = VCPUState.RUNNABLE
            preempted.cpu.pause()
        self.current = None
        self._cancel_events()
        next_vcpu = self._pick_next()
        if next_vcpu is not None:
            self._switch_to(next_vcpu)
        elif preempted is not None:
            self._switch_to(preempted)

    def _switch_to(self, vcpu: Optional[VCPU]) -> None:
        if vcpu is None:
            return
        self.context_switches += 1

        def start() -> None:
            if self.current is not None:
                # Another vCPU won the switch race.  Do not drop this
                # one's claim: if it outranks the incumbent, fall back
                # to the normal (rate-limited) preemption path.
                if vcpu.state == VCPUState.RUNNABLE and self._outranks(vcpu, self.current):
                    ran_ns = self.engine.now - self.current.run_start_ns
                    if ran_ns >= self.ratelimit_ns:
                        self._preempt()
                    elif self._preempt_event is None:
                        self._preempt_event = self.engine.schedule(
                            self.ratelimit_ns - ran_ns, self._ratelimit_expired
                        )
                return
            vcpu.state = VCPUState.RUNNING
            vcpu.run_start_ns = self.engine.now
            self.current = vcpu
            vcpu.cpu.resume()
            if self._timeslice_event is not None:
                self._timeslice_event.cancel()
            self._timeslice_event = self.engine.schedule(
                self.timeslice_ns, self._timeslice_expired
            )
            # An always-busy vCPU never calls block(); nothing to do here.

        self.engine.schedule(CONTEXT_SWITCH_NS, start)

    def _timeslice_expired(self) -> None:
        self._timeslice_event = None
        if self.current is None:
            return
        # Account the elapsed slice so a solo hog cannot accumulate an
        # unbounded credit deficit between scheduling points.
        self._charge_current()
        self.current.run_start_ns = self.engine.now
        active = [
            v
            for v in self.vcpus
            if v is self.current or (v.state == VCPUState.RUNNABLE and v.has_work())
        ]
        if active and all(v.credit <= 0 for v in active):
            self._reset_credits()
        runnable_others = [
            v
            for v in self.vcpus
            if v is not self.current and v.state == VCPUState.RUNNABLE and v.has_work()
        ]
        if runnable_others:
            self._preempt()
        else:
            self._timeslice_event = self.engine.schedule(
                self.timeslice_ns, self._timeslice_expired
            )

    def _cancel_events(self) -> None:
        if self._preempt_event is not None:
            self._preempt_event.cancel()
            self._preempt_event = None
        if self._timeslice_event is not None:
            self._timeslice_event.cancel()
            self._timeslice_event = None

    def __repr__(self) -> str:
        return (
            f"<CreditScheduler {self.name} ratelimit={self.ratelimit_ns}ns "
            f"current={self.current and self.current.name}>"
        )


class XenNetback(NetDevice):
    """``vifX.Y`` in Dom0: the backend half of the split driver."""

    kind = "xen-netback"

    def __init__(self, node: "KernelNode", name: str, **kwargs):
        super().__init__(node, name, napi_quota=64, **kwargs)
        self.frontend: Optional["XenNetfront"] = None

    def _tx_cost_ns(self, packet: Packet) -> int:
        return self.node.costs.xen_netback_ns + int(
            packet.total_length * NETBACK_COPY_NS_PER_BYTE
        )

    def _egress(self, packet: Packet, cpu) -> None:
        if self.frontend is None:
            self.stats.tx_dropped += 1
            return
        # Into the shared ring; the guest processes it when its vCPU runs
        # (the frontend's CPU is a GatedCPU under the scheduler).
        self.frontend.receive(packet)

    def rx_job_cost_ns(self, packet: Packet) -> int:
        return self.node.costs.ip_rcv_ns + self.node.costs.xen_netback_ns // 2


class XenNetfront(NetDevice):
    """``eth1`` inside the guest: the frontend half."""

    kind = "xen-netfront"

    def __init__(self, node: "KernelNode", name: str, **kwargs):
        super().__init__(node, name, napi_quota=64, **kwargs)
        self.backend: Optional[XenNetback] = None

    def _tx_cost_ns(self, packet: Packet) -> int:
        return self.node.costs.xen_netfront_ns

    def _egress(self, packet: Packet, cpu) -> None:
        if self.backend is None:
            self.stats.tx_dropped += 1
            return
        self.backend.receive(packet)

    def rx_job_cost_ns(self, packet: Packet) -> int:
        return (
            self.node.costs.ip_rcv_ns
            + self.node.costs.xen_netfront_ns
            + int(packet.total_length * NETFRONT_COPY_NS_PER_BYTE)
        )


def create_vif_pair(
    guest: "KernelNode",
    frontend_name: str,
    dom0: "KernelNode",
    backend_name: str,
    guest_irq_cpu: int = 0,
    dom0_irq_cpu: int = 0,
) -> tuple:
    """Wire netfront <-> netback; returns (frontend, backend)."""
    frontend = XenNetfront(guest, frontend_name, irq_cpu=guest_irq_cpu)
    backend = XenNetback(dom0, backend_name, irq_cpu=dom0_irq_cpu)
    frontend.backend = backend
    backend.frontend = frontend
    return frontend, backend
