"""Open vSwitch: per-ingress-port queues, a serialized datapath,
ingress policing, and HTB egress shaping (Case Study I).

The model captures the two delay sources the paper decomposes in
Fig. 9(a):

* **queueing delay** at an ingress port -- packets from one VM (e.g.
  Sockperf + iPerf sharing ``vnet0``) wait behind each other in the
  port's bounded FIFO; once the queue saturates, adding more senders on
  the same port does not increase the delay (Case II vs II+);
* **processing delay** in the switching engine -- one serialized
  datapath serves busy ports round-robin, and each additional busy
  ingress port stretches every packet's service (Case III vs III+).

Mitigations from the paper:

* :class:`TokenBucketPolicer` -- `ingress_policing_rate`/`burst`: drop
  packets above the rate before they enter the queue (Fig. 9b);
* :class:`HTBShaper` -- per-class egress shaping, "the effect was
  similar as the results using rate limit".
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, TYPE_CHECKING

from repro.net.device import NetDevice
from repro.net.packet import Packet
from repro.sim.cpu import CPU
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode


class TokenBucketPolicer:
    """OVS `ingress_policing_rate` (kbps) + `ingress_policing_burst` (kb)."""

    def __init__(self, engine: Engine, rate_kbps: int, burst_kb: int):
        self.engine = engine
        self.rate_bytes_per_ns = rate_kbps * 1000 / 8 / 1e9
        self.burst_bytes = burst_kb * 1000 // 8
        self.tokens = float(self.burst_bytes)
        self._last_refill_ns = engine.now
        self.passed = 0
        self.dropped = 0

    def admit(self, packet: Packet) -> bool:
        now = self.engine.now
        self.tokens = min(
            self.burst_bytes,
            self.tokens + (now - self._last_refill_ns) * self.rate_bytes_per_ns,
        )
        self._last_refill_ns = now
        size = packet.total_length
        if self.tokens >= size:
            self.tokens -= size
            self.passed += 1
            return True
        self.dropped += 1
        return False


class HTBClass:
    """One HTB class: a shaped FIFO with its own rate."""

    def __init__(self, engine: Engine, rate_kbps: int, ceil_packets: int = 2048):
        self.engine = engine
        self.rate_bytes_per_ns = rate_kbps * 1000 / 8 / 1e9
        self.pending = 0  # packets awaiting their release time
        self.ceil_packets = ceil_packets
        self._next_free_ns = 0
        self.dropped = 0
        self.shaped = 0


class HTBShaper:
    """Hierarchy Token Bucket on a port: classify, shape, then release."""

    def __init__(self, engine: Engine, release: Callable[[Packet], None]):
        self.engine = engine
        self.release = release
        self._classes: List[tuple] = []  # (match_fn, HTBClass)
        self.default_class: Optional[HTBClass] = None

    def add_class(
        self, match: Callable[[Packet], bool], rate_kbps: int, ceil_packets: int = 2048
    ) -> HTBClass:
        cls = HTBClass(self.engine, rate_kbps, ceil_packets)
        self._classes.append((match, cls))
        return cls

    def submit(self, packet: Packet) -> None:
        for match, cls in self._classes:
            if match(packet):
                self._shape(cls, packet)
                return
        self.release(packet)  # unclassified traffic is not shaped

    def _shape(self, cls: HTBClass, packet: Packet) -> None:
        if cls.pending >= cls.ceil_packets:
            cls.dropped += 1
            return
        now = self.engine.now
        start = max(now, cls._next_free_ns)
        cls._next_free_ns = start + int(packet.total_length / cls.rate_bytes_per_ns)
        cls.shaped += 1
        cls.pending += 1

        def fire() -> None:
            cls.pending -= 1
            self.release(packet)

        self.engine.schedule_at(cls._next_free_ns, fire)


class OVSPort:
    """An OVS port wrapping an attached device (e.g. ``vnet0``)."""

    def __init__(self, bridge: "OVSBridge", device: NetDevice, queue_capacity: int):
        self.bridge = bridge
        self.device = device
        self.queue: Deque[Packet] = deque()
        self.queue_capacity = queue_capacity
        self.policer: Optional[TokenBucketPolicer] = None
        self.htb: Optional[HTBShaper] = None
        self.enqueued = 0
        self.policer_drops = 0
        self.queue_drops = 0

    def set_policing(self, rate_kbps: int, burst_kb: int) -> TokenBucketPolicer:
        """`ovs-vsctl set interface <port> ingress_policing_rate=...`"""
        self.policer = TokenBucketPolicer(self.bridge.node.engine, rate_kbps, burst_kb)
        return self.policer

    def set_htb(self) -> HTBShaper:
        """Attach an HTB shaper; classify with ``htb.add_class(...)``."""
        self.htb = HTBShaper(self.bridge.node.engine, self._enqueue)
        return self.htb

    def submit(self, packet: Packet) -> None:
        if self.policer is not None and not self.policer.admit(packet):
            self.policer_drops += 1
            return
        if self.htb is not None:
            self.htb.submit(packet)
        else:
            self._enqueue(packet)

    def _enqueue(self, packet: Packet) -> None:
        if len(self.queue) >= self.queue_capacity:
            self.queue_drops += 1
            return
        packet.log_point(
            self.bridge.node.name,
            f"ovs:{self.device.name}:enqueue",
            self.bridge.node.engine.now,
        )
        self.queue.append(packet)
        self.enqueued += 1
        self.bridge._kick()


class OVSBridge(NetDevice):
    """The switch itself (``ovs-br1``); also a device so probes attach
    to it by name, as in the paper's Fig. 7(a) setup."""

    kind = "ovs"

    def __init__(
        self,
        node: "KernelNode",
        name: str = "ovs-br1",
        datapath_cpu: Optional[CPU] = None,
        **kwargs,
    ):
        super().__init__(node, name, **kwargs)
        self.ports: List[OVSPort] = []
        self._port_by_ifindex: Dict[int, OVSPort] = {}
        self.fdb: Dict[int, OVSPort] = {}
        self.datapath_cpu = datapath_cpu or CPU(
            node.engine, name=f"{node.name}/{name}-datapath"
        )
        self._rr_index = 0
        self._serving = False
        self.switched = 0
        self.flooded = 0

    # -- topology -----------------------------------------------------------

    def add_port(self, device: NetDevice, queue_capacity: Optional[int] = None) -> OVSPort:
        if device.master is not None:
            raise ValueError(f"{device.name} is already enslaved")
        capacity = queue_capacity or self.node.costs.ovs_ingress_queue_packets
        port = OVSPort(self, device, capacity)
        device.master = self
        self.ports.append(port)
        self._port_by_ifindex[device.ifindex] = port
        return port

    def port_of(self, device_name: str) -> OVSPort:
        for port in self.ports:
            if port.device.name == device_name:
                return port
        raise KeyError(f"no OVS port {device_name!r} on {self.name}")

    # -- ingress (called from the attached device's softirq delivery) -----------

    def ingress(self, from_device: NetDevice, packet: Packet, cpu) -> None:
        node = self.node
        port = self._port_by_ifindex.get(from_device.ifindex)
        if port is None:
            return
        eth = packet.eth
        if eth is not None:
            self.fdb[eth.src.value] = port  # learn

        def enqueue() -> None:
            port.submit(packet)

        node.charge(cpu, node.noisy(node.costs.ovs_port_rx_ns), enqueue, front=True)

    # -- the serialized datapath ---------------------------------------------------

    def _busy_port_count(self) -> int:
        return sum(1 for port in self.ports if port.queue)

    def _kick(self) -> None:
        if self._serving:
            return
        self._serving = True
        self._serve_next()

    def _serve_next(self) -> None:
        node = self.node
        # Round-robin over ports with queued packets.
        n = len(self.ports)
        chosen: Optional[OVSPort] = None
        for step in range(n):
            port = self.ports[(self._rr_index + step) % n]
            if port.queue:
                chosen = port
                self._rr_index = (self._rr_index + step + 1) % n
                break
        if chosen is None:
            self._serving = False
            return
        packet = chosen.queue.popleft()
        busy_ports = self._busy_port_count() + 1  # including this one
        service_ns = node.noisy(
            node.costs.ovs_switch_ns
            + (busy_ports - 1) * node.costs.ovs_switch_per_busy_port_ns
        )
        self.datapath_cpu.submit(
            service_ns, lambda: self._switch(chosen, packet), tag="ovs-switch"
        )

    def _switch(self, in_port: OVSPort, packet: Packet) -> None:
        node = self.node
        self.switched += 1
        packet.log_point(node.name, f"dev:{self.name}:switch", node.engine.now)
        hook_cost = node.fire_device_hook(self, packet, self.datapath_cpu, direction="forward")

        def egress() -> None:
            eth = packet.eth
            if eth is not None and (
                eth.dst == self.mac
                or (self.ip is not None and packet.ip is not None and packet.ip.dst == self.ip)
            ):
                # The LOCAL port: traffic for the host stack itself.
                node.l3_receive(self, packet, self.datapath_cpu)
                self._serve_next()
                return
            out_port: Optional[OVSPort] = None
            if eth is not None:
                out_port = self.fdb.get(eth.dst.value)
            if out_port is not None and out_port is not in_port:
                node.charge(
                    self.datapath_cpu,
                    node.noisy(node.costs.ovs_port_tx_ns),
                    lambda: out_port.device.transmit(packet, self.datapath_cpu),
                    front=True,
                )
            elif out_port is None:
                self._flood(in_port, packet)
            self._serve_next()

        node.charge(self.datapath_cpu, hook_cost, egress, front=True)

    def _flood(self, in_port: OVSPort, packet: Packet) -> None:
        self.flooded += 1
        targets = [p for p in self.ports if p is not in_port and p.device.up]
        for index, port in enumerate(targets):
            copy = packet if index == len(targets) - 1 else packet.clone()
            port.device.transmit(copy, self.datapath_cpu)

    def _egress(self, packet: Packet, cpu) -> None:
        # Host-originated traffic through the bridge device: rare in our
        # topologies; forward by MAC directly.
        eth = packet.eth
        out_port = self.fdb.get(eth.dst.value) if eth is not None else None
        if out_port is not None:
            out_port.device.transmit(packet, cpu)
        else:
            self._flood(None, packet)  # type: ignore[arg-type]

    def _tx_cost_ns(self, packet: Packet) -> int:
        return self.node.costs.ovs_switch_ns
