"""Virtualization substrates: hypervisors, vCPU scheduling, OVS, containers.

* :mod:`repro.virt.virtio` -- KVM-style paravirtual NIC pairs (guest
  frontend + ``vnetX`` host backend with vhost copy costs).
* :mod:`repro.virt.xen` -- Xen-style split driver (netfront/netback)
  and the credit2-style scheduler whose ``ratelimit_us`` knob is the
  subject of Case Study II.
* :mod:`repro.virt.ovs` -- Open vSwitch: per-ingress-port queues, a
  serialized datapath, ingress policing and HTB shaping (Case Study I).
* :mod:`repro.virt.container` / :mod:`repro.virt.overlay` -- Docker-like
  containers on veth+bridge, and the multi-host VXLAN overlay network
  with an etcd-style key/value control store (Case Study III).
* :mod:`repro.virt.machine` -- topology builders (hosts, KVM/Xen VMs).
"""

from repro.virt.machine import PhysicalHost, VirtualMachine
from repro.virt.ovs import OVSBridge
from repro.virt.xen import CreditScheduler, VCPU

__all__ = [
    "PhysicalHost",
    "VirtualMachine",
    "OVSBridge",
    "CreditScheduler",
    "VCPU",
]
