"""Multi-host container overlay network (Docker overlay / flannel style).

Control plane: an etcd-like key/value store publishes, per container,
its overlay IP, MAC, and the underlay address of the VTEP (its VM).
Every member node programs its overlay bridge and VXLAN FDBs from the
store -- the role etcd 2.2.5 plays in the paper's Case Study III setup.

Data plane: per member VM, an overlay bridge whose ports are container
veths plus one VXLAN device; cross-host traffic is VXLAN-encapsulated
(port 4789) over the VMs' regular NICs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.bridge import BridgeDevice
from repro.net.vxlan import VXLANDevice
from repro.virt.container import Container

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode


class EtcdStore:
    """A (very) small key/value store with prefix listing and watches."""

    def __init__(self) -> None:
        self._data: Dict[str, str] = {}
        self._watchers: List = []

    def put(self, key: str, value: str) -> None:
        self._data[key] = value
        for prefix, callback in self._watchers:
            if key.startswith(prefix):
                callback(key, value)

    def get(self, key: str) -> Optional[str]:
        return self._data.get(key)

    def list_prefix(self, prefix: str) -> Dict[str, str]:
        return {k: v for k, v in self._data.items() if k.startswith(prefix)}

    def watch_prefix(self, prefix: str, callback) -> None:
        self._watchers.append((prefix, callback))


class OverlayMember:
    """One VM participating in the overlay: bridge + VXLAN VTEP."""

    def __init__(
        self,
        network: "OverlayNetwork",
        node: "KernelNode",
        underlay_ip: IPv4Address,
    ):
        self.network = network
        self.node = node
        self.underlay_ip = underlay_ip
        self.bridge = BridgeDevice(node, f"br-{network.name}")
        self.vxlan = VXLANDevice(
            node,
            f"vxlan-{network.name}",
            vni=network.vni,
            local_vtep=underlay_ip,
        )
        self.bridge.add_port(self.vxlan)
        self.containers: List[Container] = []


class OverlayNetwork:
    """The overlay itself; create members per VM, then containers."""

    def __init__(
        self,
        name: str,
        vni: int,
        subnet: IPv4Address,
        prefix_len: int = 16,
        etcd: Optional[EtcdStore] = None,
    ):
        self.name = name
        self.vni = vni
        self.subnet = subnet
        self.prefix_len = prefix_len
        self.etcd = etcd or EtcdStore()
        self.members: List[OverlayMember] = []
        self.etcd.watch_prefix(f"/overlay/{name}/containers/", self._on_container_added)

    def join(self, node: "KernelNode", underlay_ip: IPv4Address) -> OverlayMember:
        """Attach a VM's kernel to the overlay."""
        member = OverlayMember(self, node, underlay_ip)
        self.members.append(member)
        # Sync existing containers onto the new member.
        for key, value in self.etcd.list_prefix(f"/overlay/{self.name}/containers/").items():
            self._program_member(member, value)
        return member

    def create_container(
        self, member: OverlayMember, name: str, ip: IPv4Address
    ) -> Container:
        """Create a container on ``member`` and publish it to etcd."""
        container = Container(member.node, name, ip, member.bridge)
        member.containers.append(container)
        record = f"{ip}|{container.mac}|{member.underlay_ip}"
        self.etcd.put(f"/overlay/{self.name}/containers/{name}", record)
        return container

    # -- control-plane sync -----------------------------------------------------

    def _on_container_added(self, key: str, value: str) -> None:
        for member in self.members:
            self._program_member(member, value)

    def _program_member(self, member: OverlayMember, record: str) -> None:
        ip_text, mac_text, vtep_text = record.split("|")
        ip = IPv4Address(ip_text)
        mac = MACAddress(mac_text)
        vtep = IPv4Address(vtep_text)
        member.node.add_neighbor(ip, mac)  # overlay "ARP" entry
        if vtep == member.underlay_ip:
            return  # local container: the bridge learns its port directly
        # Remote container: bridge forwards its MAC to the VXLAN port,
        # and the VXLAN FDB maps the MAC to the remote VTEP.
        member.bridge.fdb[mac.value] = member.vxlan
        member.vxlan.add_vtep(mac, vtep)

    def __repr__(self) -> str:
        return f"<OverlayNetwork {self.name} vni={self.vni} members={len(self.members)}>"
