"""Docker-style containers: a veth pair into a bridge, an IP, sockets.

A container shares its VM's kernel (CPUs, softirq machinery, hooks) but
owns a network identity: the inside half of a veth pair carries the
container's IP/MAC, the outside half is enslaved to ``docker0`` or an
overlay bridge.  Packets to/from the container therefore traverse
veth -> bridge (-> VXLAN ...) hops inside the same kernel -- the deep
data path of Fig. 13(b).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.net.addressing import IPv4Address
from repro.net.bridge import BridgeDevice
from repro.net.device import VethDevice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode, UDPSocket
    from repro.net.tcp import TCPConnection, TCPListener

_veth_counter = [0]


def _next_veth_suffix() -> str:
    _veth_counter[0] += 1
    return f"{_veth_counter[0]:07x}"


class Container:
    """One container attached to a bridge on its VM's kernel."""

    def __init__(
        self,
        node: "KernelNode",
        name: str,
        ip: IPv4Address,
        bridge: BridgeDevice,
        host_veth_name: Optional[str] = None,
    ):
        self.node = node
        self.name = name
        self.ip = ip
        self.bridge = bridge
        host_name = host_veth_name or f"veth{_next_veth_suffix()}"
        self.veth_inside, self.veth_outside = VethDevice.create_pair(
            node, f"eth0@{name}", node, host_name
        )
        self.veth_inside.ip = ip
        bridge.add_port(self.veth_outside)
        # Pre-seed the bridge FDB so host->container forwarding works
        # before the container has transmitted anything.
        bridge.fdb[self.veth_inside.mac.value] = self.veth_outside
        # The container routes everything out its eth0.
        node.add_route(
            IPv4Address(ip.value & 0xFFFF0000), 16, self.veth_inside, src_ip=ip
        )
        node.add_neighbor(ip, self.veth_inside.mac)

    @property
    def mac(self):
        return self.veth_inside.mac

    @property
    def host_veth_name(self) -> str:
        return self.veth_outside.name

    # -- application endpoints (bound to the container's IP) ---------------

    def bind_udp(self, port: int, cpu_index: Optional[int] = None) -> "UDPSocket":
        return self.node.bind_udp(self.ip, port, cpu_index=cpu_index)

    def tcp_listen(self, port: int, **kwargs) -> "TCPListener":
        return self.node.tcp.listen(self.ip, port, **kwargs)

    def tcp_connect(self, remote_ip: IPv4Address, remote_port: int, **kwargs) -> "TCPConnection":
        return self.node.tcp.connect(self.ip, remote_ip, remote_port, **kwargs)

    def __repr__(self) -> str:
        return f"<Container {self.name} ip={self.ip} veth={self.host_veth_name}>"


def create_docker_bridge(
    node: "KernelNode", name: str = "docker0", ip: Optional[IPv4Address] = None
) -> BridgeDevice:
    """The default Docker bridge for a kernel."""
    bridge = BridgeDevice(node, name, ip=ip)
    return bridge
