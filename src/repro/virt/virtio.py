"""KVM/virtio paravirtual networking: guest frontend + host backend.

The host-side backend (``vnet0``, ``vnet1`` ... as in the paper's OVS
experiments) is a normal host device that can be enslaved to a bridge or
an OVS instance.  Costs follow the virtio/vhost reality: a kick +
descriptor work per skb, plus a per-byte vhost copy -- the per-byte term
is why 64 KB TSO super-segments are so much cheaper per byte than
MTU-sized overlay packets (Case Study III).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.net.device import NetDevice
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode

# vhost copy bandwidth term (ns per byte): ~1.6 GB/s effective per queue.
VHOST_COPY_NS_PER_BYTE = 0.6


class VirtioFrontend(NetDevice):
    """The guest's NIC (``ens3`` / ``eth0`` in the paper's VMs)."""

    kind = "virtio-frontend"

    def __init__(self, node: "KernelNode", name: str, **kwargs):
        super().__init__(node, name, napi_quota=64, **kwargs)
        self.backend: Optional["VirtioBackend"] = None

    def _tx_cost_ns(self, packet: Packet) -> int:
        # Guest side: descriptor setup + kick (the copy happens in vhost).
        return self.node.costs.virtio_tx_ns

    def _egress(self, packet: Packet, cpu) -> None:
        if self.backend is None:
            self.stats.tx_dropped += 1
            return
        self.backend.receive(packet)

    def rx_job_cost_ns(self, packet: Packet) -> int:
        # Guest receive: IP input plus copying the skb out of the ring.
        return self.node.costs.ip_rcv_ns + int(
            packet.total_length * VHOST_COPY_NS_PER_BYTE * 0.5
        )


class VirtioBackend(NetDevice):
    """The host-side device (``vnetX``) backing one guest frontend."""

    kind = "virtio-backend"

    def __init__(self, node: "KernelNode", name: str, **kwargs):
        super().__init__(node, name, napi_quota=64, **kwargs)
        self.frontend: Optional[VirtioFrontend] = None

    def _tx_cost_ns(self, packet: Packet) -> int:
        # Host -> guest: vhost copies the bytes and injects an interrupt.
        return self.node.costs.virtio_rx_ns + int(
            packet.total_length * VHOST_COPY_NS_PER_BYTE
        )

    def _egress(self, packet: Packet, cpu) -> None:
        if self.frontend is None:
            self.stats.tx_dropped += 1
            return
        self.frontend.receive(packet)

    def rx_job_cost_ns(self, packet: Packet) -> int:
        # Guest -> host: the vhost worker copies the bytes in.
        return self.node.costs.ip_rcv_ns + int(
            packet.total_length * VHOST_COPY_NS_PER_BYTE
        )


def create_virtio_pair(
    guest: "KernelNode",
    frontend_name: str,
    host: "KernelNode",
    backend_name: str,
    guest_irq_cpu: int = 0,
    host_irq_cpu: int = 0,
    **kwargs,
) -> tuple:
    """Wire a guest frontend to its host backend; returns (frontend, backend)."""
    frontend = VirtioFrontend(guest, frontend_name, irq_cpu=guest_irq_cpu, **kwargs)
    backend = VirtioBackend(host, backend_name, irq_cpu=host_irq_cpu, **kwargs)
    frontend.backend = backend
    backend.frontend = frontend
    return frontend, backend
