"""A SystemTap-style tracer: the paper's overhead baseline (Fig. 7b).

§II attributes SystemTap's cost to (a) the per-event handler work scaled
by trace frequency and (b) "the continual data copies between the
kernel space and user space" via the relayfs channel, plus the
compilation of the script at start.  The model charges accordingly:

* a start-up compilation delay (stap compiles a kernel module);
* per event: handler execution + a per-record kernel->user copy with a
  per-byte term + amortized context-switch/wakeup cost for the
  userspace reader.

Run with ``no_overload=True`` to mimic ``STP_NO_OVERLOAD`` (the paper
disables the overload threshold so tracing never self-suspends);
without it, the session detaches itself when the per-interval overhead
budget is exceeded, as real SystemTap does.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional

from repro.ebpf.probes import Attachment, ProbeEvent
from repro.net.stack import KernelNode

COMPILE_DELAY_NS = 2_000_000_000  # stap module build ~2 s
HANDLER_COST_NS = 1_600  # probe body execution (interpreted runtime)
COPYOUT_FIXED_NS = 2_600  # per-record relay write + wakeup share
COPYOUT_NS_PER_BYTE = 4.0  # record formatting + copy_to_user
CONTEXT_SWITCH_SHARE_NS = 1_600  # reader thread scheduling, amortized
DEFAULT_RECORD_BYTES = 448  # formatted text record incl. header dump
OVERLOAD_INTERVAL_NS = 1_000_000_000
OVERLOAD_BUDGET_NS = 500_000_000  # 50% of one CPU per interval


class STapRecord(NamedTuple):
    timestamp_ns: int
    length: int
    cpu: int


class SystemTapScript(Attachment):
    """One probe point of a stap script (e.g. ``probe kernel.function
    ("tcp_recvmsg")``)."""

    def __init__(
        self,
        session: "SystemTapSession",
        record_bytes: int = DEFAULT_RECORD_BYTES,
        callback: Optional[Callable[[ProbeEvent], None]] = None,
        name: str = "stap-probe",
    ):
        super().__init__(name)
        self.session = session
        self.record_bytes = record_bytes
        self.callback = callback
        self.events = 0
        self.records: List[STapRecord] = []

    def handle(self, event: ProbeEvent) -> int:
        if not self.session.active:
            return 0
        self.events += 1
        length = event.packet.total_length if event.packet is not None else 0
        self.records.append(
            STapRecord(self.session.node.clock.monotonic_ns(), length, event.cpu)
        )
        if self.callback is not None:
            self.callback(event)
        cost = (
            HANDLER_COST_NS
            + COPYOUT_FIXED_NS
            + int(self.record_bytes * COPYOUT_NS_PER_BYTE)
            + CONTEXT_SWITCH_SHARE_NS
        )
        self.session.account(cost)
        return cost


class SystemTapSession:
    """A running ``stap`` process on one node."""

    def __init__(self, node: KernelNode, no_overload: bool = False):
        self.node = node
        self.no_overload = no_overload
        self.active = False
        self.scripts: List[SystemTapScript] = []
        self._hooks: List[tuple] = []
        self._interval_cost_ns = 0
        self._interval_start_ns = node.engine.now
        self.overload_trips = 0
        self.total_overhead_ns = 0

    def add_probe(
        self,
        hook: str,
        record_bytes: int = DEFAULT_RECORD_BYTES,
        callback: Optional[Callable[[ProbeEvent], None]] = None,
    ) -> SystemTapScript:
        script = SystemTapScript(
            self, record_bytes=record_bytes, callback=callback, name=f"stap:{hook}"
        )
        self.scripts.append(script)
        self._hooks.append((hook, script))
        return script

    def start(self) -> None:
        """Compile and insert the module; probes arm after the delay."""

        def arm() -> None:
            self.active = True
            self._interval_start_ns = self.node.engine.now
            for hook, script in self._hooks:
                self.node.hooks.attach(hook, script)

        self.node.engine.schedule(COMPILE_DELAY_NS, arm)

    def stop(self) -> None:
        self.active = False
        for hook, script in self._hooks:
            self.node.hooks.detach(hook, script)

    def account(self, cost_ns: int) -> None:
        """Overload accounting (MAXACTION/overload threshold analog)."""
        self.total_overhead_ns += cost_ns
        if self.no_overload:
            return
        now = self.node.engine.now
        if now - self._interval_start_ns > OVERLOAD_INTERVAL_NS:
            self._interval_start_ns = now
            self._interval_cost_ns = 0
        self._interval_cost_ns += cost_ns
        if self._interval_cost_ns > OVERLOAD_BUDGET_NS:
            self.overload_trips += 1
            self.stop()

    def __repr__(self) -> str:
        return f"<SystemTapSession on {self.node.name} active={self.active}>"
