"""Baseline tracers the paper compares against."""

from repro.baselines.systemtap import SystemTapScript, SystemTapSession

__all__ = ["SystemTapScript", "SystemTapSession"]
