"""Offline analysis helpers: report formatting over trace-DB metrics."""

from repro.analysis.reports import (
    comparison_table,
    decomposition_table,
    format_bps,
    format_ns,
    latency_table,
)

__all__ = [
    "latency_table",
    "decomposition_table",
    "comparison_table",
    "format_ns",
    "format_bps",
]
