"""Plain-text report formatting for trace analyses.

The paper's collector feeds an operator who reads tables; these helpers
render the same tables from :class:`~repro.workloads.stats.LatencySummary`
objects and decomposition segments.  Everything returns strings so
examples, benchmarks, and notebooks can print or log them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.core.metrics import SegmentLatency
from repro.obs.registry import Histogram, MetricsRegistry
from repro.workloads.stats import LatencySummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.sampler import StatsSampler
    from repro.tracing.spans import SpanForest


def format_ns(value_ns: float) -> str:
    """Human-scale time: ns / us / ms picked by magnitude."""
    if value_ns >= 1e6:
        return f"{value_ns / 1e6:.2f} ms"
    if value_ns >= 1e3:
        return f"{value_ns / 1e3:.2f} us"
    return f"{value_ns:.0f} ns"


def format_bps(value_bps: float) -> str:
    """Human-scale rate: bps / Kbps / Mbps / Gbps."""
    for unit, scale in (("Gbps", 1e9), ("Mbps", 1e6), ("Kbps", 1e3)):
        if value_bps >= scale:
            return f"{value_bps / scale:.2f} {unit}"
    return f"{value_bps:.0f} bps"


def _table(headers: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def line(cells):
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), separator] + [line(row) for row in rows])


def latency_table(summaries: Dict[str, LatencySummary]) -> str:
    """One row per labelled summary: count/avg/p50/p99/p99.9/max."""
    rows = []
    for label, summary in summaries.items():
        rows.append(
            [
                label,
                summary.count,
                format_ns(summary.avg_ns),
                format_ns(summary.p50_ns),
                format_ns(summary.p99_ns),
                format_ns(summary.p999_ns),
                format_ns(summary.max_ns),
            ]
        )
    return _table(["label", "n", "avg", "p50", "p99", "p99.9", "max"], rows)


def decomposition_table(segments: Sequence[SegmentLatency]) -> str:
    """End-to-end decomposition with per-segment share of the total.

    Segments with no samples (an empty flow, or a trace seen at only
    one tracepoint) render as explicit zero-count rows instead of
    raising -- operators read this table precisely when something along
    the chain collected nothing."""
    summaries = [
        segment.summary() if segment.latencies_ns else None for segment in segments
    ]
    total_avg = sum(s.avg_ns for s in summaries if s is not None)
    rows = []
    for segment, summary in zip(segments, summaries):
        name = f"{segment.from_label} -> {segment.to_label}"
        if summary is None:
            rows.append([name, 0, "-", "-", "-"])
            continue
        share = 100.0 * summary.avg_ns / total_avg if total_avg else 0.0
        rows.append(
            [
                name,
                summary.count,
                format_ns(summary.avg_ns),
                format_ns(summary.max_ns),
                f"{share:.1f}%",
            ]
        )
    counts = [s.count for s in summaries if s is not None]
    rows.append(["TOTAL", counts[0] if counts else 0,
                 format_ns(total_avg), "", "100.0%"])
    return _table(["segment", "n", "avg", "max", "share"], rows)


def span_decomposition_table(forest: "SpanForest", chain: Sequence[str]) -> str:
    """The decomposition table computed from reconstructed span trees.

    Same rendering as :func:`decomposition_table`, but the per-segment
    latencies come from the span layer's wire/hop leaves
    (``repro.tracing``), so a flow's span durations and its metric-layer
    decomposition can be compared side by side."""
    from repro.tracing.critical import segments_from_forest

    return decomposition_table(segments_from_forest(forest, chain))


def hop_stats_table(forest: "SpanForest") -> str:
    """Per-hop percentile table across every tree in a span forest:
    the critical-path analyzer's p50/p95/p99 view (docs/TIMELINES.md)."""
    from repro.tracing.critical import aggregate_hops

    rows = []
    for stats in aggregate_hops(forest):
        rows.append(
            [
                stats.name,
                stats.kind,
                stats.count,
                format_ns(stats.avg_ns),
                format_ns(stats.p50_ns),
                format_ns(stats.p95_ns),
                format_ns(stats.p99_ns),
                format_ns(stats.max_ns),
            ]
        )
    return _table(["hop", "kind", "n", "avg", "p50", "p95", "p99", "max"], rows)


def anomaly_table(forest: "SpanForest", factor: float = 3.0) -> str:
    """Spans exceeding ``factor`` x their hop's flow median, worst first."""
    from repro.tracing.critical import flag_anomalies

    anomalies = flag_anomalies(forest, factor=factor)
    if not anomalies:
        return f"no spans above {factor:g}x their hop median"
    rows = [
        [
            f"0x{a.trace_id:08x}",
            a.name,
            format_ns(a.duration_ns),
            format_ns(a.median_ns),
            f"{a.ratio:.1f}x",
        ]
        for a in anomalies
    ]
    return _table(["trace", "hop", "duration", "flow median", "ratio"], rows)


def pipeline_health_table(registry: MetricsRegistry) -> str:
    """One row per exported metric, grouped by pipeline stage.

    Counters and gauges show their across-labels total; histograms show
    observation count and mean.  This is the human-readable face of the
    contract in ``docs/OBSERVABILITY.md``.
    """
    rows: List[Sequence[str]] = []
    for metric in registry.metrics():
        spec = metric.spec
        if isinstance(metric, Histogram):
            count = int(metric.total())
            total_sum = sum(data.sum for _, data in metric.samples())
            value = f"n={count} avg={total_sum / count:.1f}" if count else "n=0"
        else:
            total = metric.total()
            value = f"{total:.0f}" if float(total).is_integer() else f"{total:.2f}"
        rows.append([spec.stage, spec.name, spec.kind, spec.unit, value])
    return _table(["stage", "metric", "type", "unit", "value"], rows)


def pipeline_health_report(
    registry: MetricsRegistry, sampler: Optional["StatsSampler"] = None
) -> str:
    """The self-observability report every experiment run can emit
    alongside its paper-figure output: the metric table plus, when a
    sampler ran, a one-line summary of the collected time series."""
    lines = ["pipeline health (self-observability, docs/OBSERVABILITY.md):",
             pipeline_health_table(registry)]
    if sampler is not None and sampler.rows:
        span_ns = sampler.rows[-1]["t_ns"] - sampler.rows[0]["t_ns"]
        lines.append(
            f"stats series: {len(sampler.rows)} samples every "
            f"{format_ns(sampler.interval_ns)} spanning {format_ns(span_ns)}"
        )
    return "\n".join(lines)


def comparison_table(
    baseline_label: str,
    baseline: LatencySummary,
    others: Dict[str, LatencySummary],
) -> str:
    """Conditions against a baseline, with blowup factors (Fig. 10 style)."""
    rows = [
        [baseline_label, format_ns(baseline.avg_ns), "1.0x",
         format_ns(baseline.p999_ns), "1.0x"]
    ]
    for label, summary in others.items():
        rows.append(
            [
                label,
                format_ns(summary.avg_ns),
                f"{summary.avg_ns / baseline.avg_ns:.1f}x",
                format_ns(summary.p999_ns),
                f"{summary.p999_ns / baseline.p999_ns:.1f}x",
            ]
        )
    return _table(["condition", "avg", "avg-x", "p99.9", "p99.9-x"], rows)
