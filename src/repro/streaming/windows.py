"""Window primitives: frames, index math, and the bounded top-K heap.

Windows live in *virtual event time* (aligned record timestamps), never
arrival time: a record with aligned timestamp ``ts`` belongs to the
tumbling window ``ts // window_ns`` (floor division, so negative
aligned timestamps -- possible under clock de-skewing -- still map to a
well-defined window).  With a ``slide_ns`` dividing ``window_ns`` the
same record lands in every sliding window covering it.
"""

from __future__ import annotations

import heapq
from itertools import chain
from typing import Dict, List, NamedTuple, Tuple


class WindowFrame(NamedTuple):
    """One closed window, fully aggregated (the ``repro watch`` row)."""

    index: int  # window start // slide_ns
    start_ns: int
    end_ns: int
    records: int
    # label -> {"records", "payload_bytes", "min_ts_ns", "max_ts_ns"}
    throughput: Dict[str, Dict[str, int]]
    # "from->to" -> {"count", "sum_ns", "min_ns", "max_ns",
    #                "jitter_count", "jitter_sum_ns", "sketch": [...]}
    hops: Dict[str, Dict[str, object]]

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "records": self.records,
            "throughput": self.throughput,
            "hops": self.hops,
        }


def window_indices(ts: int, window_ns: int, slide_ns: int) -> range:
    """Indices of every window covering ``ts``.  A window with index
    ``i`` spans ``[i * slide_ns, i * slide_ns + window_ns)``; tumbling
    windows (``slide_ns == window_ns``) cover each timestamp exactly
    once."""
    last = ts // slide_ns
    first = (ts - window_ns) // slide_ns + 1
    return range(first, last + 1)


class TopKSlowest:
    """Bounded min-heap of the K slowest flows seen so far.

    Entries are ``(latency_ns, -trace_id)`` so the K *largest* tuples
    survive; on equal latency the smaller trace ID wins, making the
    surviving set a pure function of the observed multiset -- identical
    no matter the arrival order (the differential test relies on this;
    only the *eviction count* is order-dependent).
    """

    __slots__ = ("k", "_heap", "evictions")

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"top-K needs k >= 1, got {k}")
        self.k = k
        self._heap: List[Tuple[int, int]] = []
        self.evictions = 0

    def push(self, latency_ns: int, trace_id: int) -> bool:
        """Offer one flow; returns True if something was evicted."""
        entry = (latency_ns, -trace_id)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return False
        if entry <= self._heap[0]:
            self.evictions += 1  # the offer itself is the eviction
            return True
        heapq.heappushpop(self._heap, entry)
        self.evictions += 1
        return True

    def extend(self, entries, count: int = None) -> int:
        """Batch offer of ``(latency_ns, -trace_id)`` entries (the
        window-close path; C-speed ``nlargest`` instead of one heap op
        per entry).  ``entries`` may be any iterable when ``count`` is
        given -- ``nlargest`` then consumes it lazily, so a ``zip``
        feeding it benefits from tuple reuse and the losers are never
        materialized.  Returns the evictions caused.  Exactly
        equivalent to pushing one at a time: once the heap is full
        every offer evicts precisely one entry (itself or the displaced
        root), so the count is ``held + offered - k`` regardless of
        order."""
        if count is None:
            entries = list(entries)
            count = len(entries)
        held = len(self._heap)
        if held + count <= self.k:
            merged = self._heap + list(entries)
            heapq.heapify(merged)
            self._heap = merged
            return 0
        survivors = heapq.nlargest(self.k, chain(self._heap, entries))
        heapq.heapify(survivors)
        self._heap = survivors
        evicted = held + count - self.k
        self.evictions += evicted
        return evicted

    def items(self) -> List[Tuple[int, int]]:
        """(trace_id, latency_ns), slowest first (ties: smaller ID first)."""
        ordered = sorted(self._heap, reverse=True)
        return [(-neg_id, latency) for latency, neg_id in ordered]

    def __len__(self) -> int:
        return len(self._heap)
