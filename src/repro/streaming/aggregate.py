"""The incremental aggregation engine over packed-blob shipments.

A :class:`StreamingAggregator` subscribes to the collector's ingest
path (:meth:`attach`), **downstream of the resequencer**: by the time
``RawDataCollector._apply`` taps it, duplicates have been discarded via
``TraceDB.mark_batch`` and batches arrive in strict per-node sequence
order, so windows see exactly the deduplicated, in-order record stream
the database stores -- plus explicit :meth:`observe_gap` notices when a
shipment is abandoned (``skip_shipment``).  It can also run standalone
(no collector) for merge paths like ``macro_fleet``, where per-shard
blobs are replayed through :meth:`observe_batch` directly.

The attached tap is *columnar*: the collector bulk-decodes each blob
straight into the TraceDB's per-label column arrays, and
:meth:`observe_ingest` picks up exactly the freshly appended slices (a
per-table cursor diff), so the aggregator never re-unpacks a record the
database already decoded.  Ingest then runs on whole slices with
C-speed primitives -- ``bisect`` window segmentation and
``sum``/``min``/``max`` slice reductions for throughput, and per-label
*first-occurrence streams* for hop matching: as long as a label's
trace IDs arrive strictly ascending (ring-buffer order in, strict
resequencing through -- the steady state here), first-occurrence
extraction is two plain list extends, with no per-record or per-entry
dict work at all.  Hop-pair matching is deferred to window close,
where the source window's ID slice is compared against the sink
stream's next positional slice: one C-level list equality and one
``map(sub)`` latency pass when the streams align.  The first duplicate,
reordered, or missing ID flips the label (and any hop sinking at it)
into *dict mode* -- the classic first-occurrence hash join -- which is
slower but handles every fault the collector can surface.  Either way
a pair counts iff both sides arrived before the source window closed
(watermark + allowed lateness): the same set an eager per-record join
admits, without its per-record cost.

Everything is keyed by *aligned event time* (record timestamp + the
node's clock skew; the attached tap reads the DB's already-aligned
timestamp column, so streaming and offline attribution can never
diverge).  Window close is driven by a conservative watermark -- the
minimum, over every expected node, of the newest aligned timestamp seen
from that node, minus the allowed lateness -- so a slow shard can never
strand records as late.  Non-monotone slices fall back to a per-record
loop; a duplicate trace ID keeps its first-*arrival* timestamp,
mirroring the database's ``first_ts_at``.

The run-level merge (:meth:`summary`) is restricted to tumbling
windows, where it provably reproduces the offline metric kernels
byte-for-byte (the differential suite closes every window and compares
canonical JSON against ``repro.streaming.reference``); sliding windows
(``slide_ns < window_ns``) still produce per-window frames but refuse
to merge, since overlapping windows would double-count.
"""

from __future__ import annotations

import json
from array import array
from bisect import bisect_left, bisect_right
from itertools import islice
from operator import le as _le, lt as _lt
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.core.records import RECORD_STRUCT
from repro.core.metrics import TRACE_ID_BYTES
from repro.obs import contract as obs_contract
from repro.obs.registry import estimate_quantile
from repro.streaming.sketch import LATENCY_SKETCH_BUCKETS_NS, StreamSketch
from repro.streaming.windows import TopKSlowest, WindowFrame, window_indices

DEFAULT_WINDOW_NS = 100_000_000
DEFAULT_TOP_K = 8

_NEG = -(1 << 62)  # "no window closed yet" sentinel (below any real index)


class StreamingError(ValueError):
    """Invalid streaming configuration or usage."""


class StreamingConfig(NamedTuple):
    """Everything a streaming aggregator needs, validated up front."""

    chain: Tuple[str, ...]
    window_ns: int = DEFAULT_WINDOW_NS
    slide_ns: Optional[int] = None  # None = tumbling (slide == window)
    allowed_lateness_ns: int = 0
    top_k: int = DEFAULT_TOP_K
    sketch_bounds: Tuple[int, ...] = LATENCY_SKETCH_BUCKETS_NS
    emit_interval_ns: Optional[int] = None

    def validate(self) -> None:
        if len(self.chain) < 2:
            raise StreamingError("streaming needs a chain of at least two tracepoints")
        if len(set(self.chain)) != len(self.chain):
            raise StreamingError(f"chain labels must be unique: {self.chain!r}")
        if self.window_ns <= 0:
            raise StreamingError(f"window_ns must be positive, got {self.window_ns}")
        slide = self.slide_ns if self.slide_ns is not None else self.window_ns
        if slide <= 0 or slide > self.window_ns or self.window_ns % slide:
            raise StreamingError(
                f"slide_ns must divide window_ns and be in (0, window_ns]; "
                f"got slide {slide} for window {self.window_ns}"
            )
        if self.allowed_lateness_ns < 0:
            raise StreamingError(
                f"allowed_lateness_ns cannot be negative: {self.allowed_lateness_ns}"
            )
        if self.top_k < 1:
            raise StreamingError(f"top_k must be at least 1, got {self.top_k}")
        if self.emit_interval_ns is not None and self.emit_interval_ns <= 0:
            raise StreamingError(
                f"emit_interval_ns must be positive, got {self.emit_interval_ns}"
            )


def canonical_json(doc: object) -> str:
    """The byte-diffable form every streaming export uses."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _ascending(seq) -> bool:
    """True when ``seq`` is non-decreasing (C-speed pairwise check)."""
    return all(map(_le, seq, islice(seq, 1, None)))


def _strictly_ascending(seq) -> bool:
    """True when ``seq`` strictly increases (so: also duplicate-free)."""
    return all(map(_lt, seq, islice(seq, 1, None)))


class _LabelState:
    """One chain label's first-occurrence stream, in arrival order.

    ``f_ts``/``f_tid`` are parallel append-only ``array('q')`` columns
    -- one entry per *new* trace ID, timestamped with its first-arrival
    aligned time (the database's ``first_ts_at`` rule); arrays keep
    extends and slice comparisons at memcpy speed instead of boxing
    every 64-bit value.  ``done`` is the from-side close cursor:
    entries before it were consumed by a closed window (cursor, not
    deletion, so positional sink cursors into the same columns stay
    valid).  ``fdict`` is ``None`` while the stream has only ever seen
    strictly ascending IDs (fast mode: appends need no dedup); the
    first duplicate/reordered/zero ID materializes it and the label
    folds through the dict from then on.  ``dirty`` flags a timestamp
    regression in the unconsumed suffix (close re-sorts before
    slicing); ``ties`` flags that two entries may share a timestamp,
    which forces the sorted-tuple pair order on the close path.
    """

    __slots__ = ("f_ts", "f_tid", "last_tid", "fdict", "done", "dirty", "ties")

    def __init__(self):
        self.f_ts = array("q")
        self.f_tid = array("q")
        self.last_tid = 0  # zero doubles as the untraced-filler ID
        self.fdict: Optional[Dict[int, int]] = None
        self.done = 0
        self.dirty = False
        self.ties = False


class StreamingAggregator:
    """Sliding/tumbling window aggregation in virtual event time."""

    def __init__(self, config: StreamingConfig, registry=None):
        config.validate()
        self.config = config
        self._window_ns = config.window_ns
        self._slide_ns = (
            config.slide_ns if config.slide_ns is not None else config.window_ns
        )
        self._tumbling = self._slide_ns == self._window_ns
        self._lateness = config.allowed_lateness_ns
        self._sketch_bounds = tuple(config.sketch_bounds)

        chain = tuple(config.chain)
        self._chain = chain
        self._chain_set = frozenset(chain)
        hops = list(zip(chain, chain[1:]))
        if len(chain) > 2:
            hops.append((chain[0], chain[-1]))  # end-to-end
        self._hops = hops
        self._hop_keys = [f"{a}->{b}" for a, b in hops]
        self._e2e_idx = len(hops) - 1

        # Tumbling-path matching state: per-label first-occurrence
        # streams, and per source label the hops it opens (index + the
        # sink side's stream) -- the deferred join consumed at close.
        # Per-hop positional cursors/flags live in parallel lists.
        self._fstate: Dict[str, _LabelState] = {label: _LabelState() for label in chain}
        self._from_routes: Dict[str, List[Tuple[int, _LabelState]]] = {}
        for idx, (a, b) in enumerate(hops):
            self._from_routes.setdefault(a, []).append((idx, self._fstate[b]))
        self._hop_pos = [0] * len(hops)  # next unmatched sink entry
        self._hop_dict = [False] * len(hops)  # True = hash-join fallback

        # Sliding-path matching state: eager per-record two-sided
        # routes over plain first-occurrence dicts (overlapping windows
        # make the deferred columnar join moot).
        self._first: Dict[str, Dict[int, int]] = {label: {} for label in chain}
        self._routes: Dict[str, List[Tuple[int, Dict[int, int], bool]]] = {
            label: [] for label in chain
        }
        for idx, (a, b) in enumerate(hops):
            self._routes[a].append((idx, self._first[b], True))
            self._routes[b].append((idx, self._first[a], False))

        # Open-window state, keyed on the window index.
        self._wtput: Dict[int, Dict[str, list]] = {}  # w -> label -> [n,pay,lo,hi]
        self._wpairs: Dict[int, Dict[int, list]] = {}  # sliding only
        self._open: set = set()
        self._closed_upto = _NEG
        self._watermark: Optional[int] = None
        self._node_max: Dict[str, int] = {}

        # Run-level merged state (tumbling only).  Sketches accumulate
        # as *insertion points* (cumulative counts at each bucket edge)
        # because those merge by plain vector addition -- bucket counts
        # are recovered as differences at summary time.  One throwaway
        # StreamSketch validates the configured bounds up front.
        StreamSketch(self._sketch_bounds)
        self._run_tput: Dict[str, list] = {}  # label -> [n, pay, lo, hi]
        self._hop_stats = [[0, 0, None, None] for _ in hops]  # [n, sum, lo, hi]
        self._hop_pts = [[0] * len(self._sketch_bounds) for _ in hops]
        self._jitter_stats = [[0, 0, None, None] for _ in hops]
        self._jitter_prev: List[Optional[int]] = [None] * len(hops)
        self.topk = TopKSlowest(config.top_k)

        self.frames: List[WindowFrame] = []
        self.snapshots: List[Dict[str, object]] = []
        self.records = 0
        self.late_records = 0
        self.gap_notices = 0
        self.windows_closed = 0
        self.sketch_merges = 0

        self._collector = None
        self._db = None
        self._cursors: Dict[str, int] = {}
        self._fseen: Dict[str, int] = {}
        self._labels: Dict[int, str] = {}
        self._skew_of = lambda node: 0
        self._expected_override: Optional[set] = None
        self._emit_timer = None
        self._emit_engine = None

        self._m_records = self._m_windows = self._m_late = None
        self._m_merges = self._m_evictions = self._m_open = self._m_wm = None
        if registry is not None:
            self._m_records = registry.register_spec(obs_contract.STREAM_RECORDS)
            self._m_windows = registry.register_spec(obs_contract.STREAM_WINDOWS_CLOSED)
            self._m_late = registry.register_spec(obs_contract.STREAM_LATE_OR_GAP)
            self._m_merges = registry.register_spec(obs_contract.STREAM_SKETCH_MERGES)
            self._m_evictions = registry.register_spec(
                obs_contract.STREAM_TOPK_EVICTIONS
            )
            self._m_open = registry.register_spec(obs_contract.STREAM_OPEN_WINDOWS)
            self._m_wm = registry.register_spec(obs_contract.STREAM_WATERMARK)
            self._m_open.set(0)

    # -- wiring ------------------------------------------------------------

    def attach(self, collector) -> "StreamingAggregator":
        """Subscribe to a collector's post-resequencer ingest.  The tap
        is columnar: per-table cursors start at the database's current
        row counts, and each applied batch hands over exactly the
        column slices ``insert_packed`` just appended -- timestamps
        already skew-aligned, labels already resolved."""
        if self._collector is not None and self._collector is not collector:
            raise StreamingError("aggregator is already attached to a collector")
        self._collector = collector
        self._db = collector.db
        self._cursors = {
            label: len(table.timestamp_ns)
            for label, table in collector.db._tables.items()
        }
        self._fseen = {
            label: len(table.first_by_trace)
            for label, table in collector.db._tables.items()
        }
        self._labels = collector._labels
        self._skew_of = collector.db.clock_skew
        collector.set_streaming_tap(self)
        return self

    def expect_nodes(self, names) -> None:
        """Override the watermark's expected-node set (standalone use;
        attached aggregators default to the collector's agents)."""
        self._expected_override = set(names)

    def start_emitter(self, engine, interval_ns: Optional[int] = None) -> None:
        """Schedule deterministic periodic snapshots on the engine (the
        live-emit path; snapshots carry only virtual-time state)."""
        if self._emit_timer is not None:
            return
        interval = interval_ns or self.config.emit_interval_ns or self._window_ns
        self._emit_engine = engine
        self._emit_interval = interval
        self._emit_timer = engine.schedule(interval, self._emit)

    def stop_emitter(self) -> None:
        if self._emit_timer is not None:
            self._emit_timer.cancel()
            self._emit_timer = None

    def _emit(self) -> None:
        self.snapshots.append(
            {
                "t_ns": self._emit_engine.now,
                "watermark_ns": self._watermark,
                "open_windows": len(self._open),
                "windows_closed": self.windows_closed,
                "records": self.records,
                "late_or_gaps": self.late_records + self.gap_notices,
            }
        )
        self._emit_timer = self._emit_engine.schedule(self._emit_interval, self._emit)

    # -- ingest ------------------------------------------------------------

    def observe_ingest(self, node) -> None:
        """Collector tap: fold in whatever the database just appended.
        Diffs the per-table cursors against current row counts, so one
        call per applied batch sees exactly that batch's rows -- as
        aligned, label-resolved column slices.  The table's
        ``first_by_trace`` index (maintained first-wins on the shared
        insert path) doubles as a free freshness oracle: when its
        length grew by exactly the row delta, every ID in the slice is
        truthy, globally new, and in-slice unique -- the fold needs no
        per-element scan at all."""
        cursors = self._cursors
        fseen = self._fseen
        chain_set = self._chain_set
        segments = []
        for label, table in self._db._tables.items():
            column = table.timestamp_ns
            n = len(column)
            seen = cursors.get(label, 0)
            if n > seen:
                cursors[label] = n
                if label in chain_set:
                    nf = len(table.first_by_trace)
                    fresh = nf - fseen.get(label, 0) == n - seen
                    fseen[label] = nf
                    tids = table.trace_id[seen:n]
                else:
                    fresh = False
                    tids = None
                segments.append(
                    (label, tids, column[seen:n], table.packet_len[seen:n], fresh)
                )
        if segments:
            self._observe_segments(node, segments)

    def observe_batch(self, node, records, labels=None, skew_ns=None) -> None:
        """Standalone entry: fold one batch in -- a packed shipment
        blob (bytes) or a list of :class:`~repro.core.records
        .TraceRecord`.  ``labels`` and ``skew_ns`` default to the
        attached collector's state.  (An attached collector feeds the
        aggregator through :meth:`observe_ingest` instead; don't mix
        the two for the same records.)"""
        if labels is None:
            labels = self._labels
        skew = skew_ns if skew_ns is not None else self._skew_of(node)
        if isinstance(records, (bytes, bytearray, memoryview)):
            iterator = RECORD_STRUCT.iter_unpack(records)
        else:
            iterator = (
                (r.trace_id, r.tracepoint_id, r.timestamp_ns, r.packet_len, r.cpu)
                for r in records
            )
        groups: Dict[int, Tuple[list, list, list]] = {}
        for tid, tp, ts, plen, _cpu in iterator:
            group = groups.get(tp)
            if group is None:
                group = groups[tp] = ([], [], [])
            group[0].append(tid)
            group[1].append(ts + skew)
            group[2].append(plen)
        labels_get = labels.get
        segments = [
            (labels_get(tp) or f"tracepoint-{tp}", tids, tss, plens, None)
            for tp, (tids, tss, plens) in groups.items()
        ]
        if segments:
            self._observe_segments(node, segments)

    def observe_packed(self, node, blob, labels, skew_ns=0) -> None:
        """Standalone packed-blob entry (merge paths, no collector)."""
        self.observe_batch(node, blob, labels=labels, skew_ns=skew_ns)

    def observe_gap(self, node, seq) -> None:
        """A ``skip_shipment`` gap notice: that sequence number will
        never arrive (docs/FAULTS.md)."""
        self.gap_notices += 1
        if self._m_late is not None:
            self._m_late.inc(1, ("gap",))

    def _observe_segments(self, node, segments) -> None:
        if self._tumbling:
            count, late = self._ingest_segments(node, segments)
        else:
            count, late = self._ingest_segments_sliding(node, segments)
        self.records += count
        if count and self._m_records is not None:
            self._m_records.inc(count, (node,))
        if late:
            self.late_records += late
            if self._m_late is not None:
                self._m_late.inc(late, ("late",))
        self._advance_watermark()

    def _ingest_segments(self, node, segments):
        """Tumbling ingest over per-label column slices.  Slice-at-a-
        time: ``bisect`` finds window boundaries (per-node slices are
        timestamp-monotone), each window's count/payload/min/max come
        from C-level slice reductions, and first-occurrences fold in
        through :meth:`_fold` (two list extends in the steady state)."""
        slide = self._slide_ns
        bound = (self._closed_upto + 1) * slide  # earlier ts = late
        wtput = self._wtput
        open_set = self._open
        overhead = TRACE_ID_BYTES
        node_max = self._node_max.get(node, _NEG)
        count = 0
        late = 0
        for label, tids, tss, plens, fresh in segments:
            n = len(tss)
            if not n:
                continue
            count += n
            # One strict pass covers both questions: strictly ascending
            # implies monotone with no in-slice timestamp ties; only the
            # tied case pays for the second (non-strict) check.
            strict_ts = _strictly_ascending(tss)
            if not strict_ts and (tss[0] > tss[-1] or not _ascending(tss)):
                late += self._ingest_segment_slow(label, tids, tss, plens)
                peak = max(tss)
                if peak > node_max:
                    node_max = peak
                continue
            if tss[-1] > node_max:
                node_max = tss[-1]
            i = 0
            if tss[0] < bound:
                i = bisect_left(tss, bound)
                late += i
                if i == n:
                    continue
            if label in self._chain_set:
                # A suffix of an all-fresh slice is still all-fresh.
                self._fold(
                    label,
                    tids if i == 0 else tids[i:],
                    tss if i == 0 else tss[i:],
                    strict_ts,
                    fresh,
                )
            while i < n:
                w = tss[i] // slide
                j = bisect_left(tss, (w + 1) * slide, i)
                m = j - i
                seg_pl = plens[i:j]
                if min(seg_pl) > overhead:
                    payload = sum(seg_pl) - overhead * m
                else:
                    payload = sum(p - overhead for p in seg_pl if p > overhead)
                wt = wtput.get(w)
                if wt is None:
                    wt = wtput[w] = {}
                    open_set.add(w)
                acc = wt.get(label)
                if acc is None:
                    wt[label] = [m, payload, tss[i], tss[j - 1]]
                else:
                    acc[0] += m
                    acc[1] += payload
                    if tss[i] < acc[2]:
                        acc[2] = tss[i]
                    if tss[j - 1] > acc[3]:
                        acc[3] = tss[j - 1]
                i = j
        if count:
            self._node_max[node] = node_max
        return count, late

    def _fold(self, label, tids, tss, strict_ts: bool, fresh=None) -> None:
        """Append a slice's first-occurrences to the label's stream.

        Steady state: the slice *is* its own first-occurrence set, so
        the fold is two C-level extends.  An attached tap proves that
        in O(1) (``fresh`` is the ``first_by_trace`` length-delta
        verdict from :meth:`observe_ingest`); a standalone fold
        (``fresh=None``) proves it with a strictly-ascending ID scan.
        Otherwise the label drops to dict mode for good:
        first-arrival-wins via a reversed ``dict(zip(...))`` sweep,
        exactly the eager per-record rule.  ``strict_ts`` is the
        caller's no-timestamp-ties verdict for the slice; anything
        weaker marks the label tied (sorted-tuple order at close)."""
        st = self._fstate[label]
        fdict = st.fdict
        if fdict is None:
            if (
                fresh
                if fresh is not None
                else tids[0] > st.last_tid and _strictly_ascending(tids)
            ):
                f_ts = st.f_ts
                if f_ts:
                    head = tss[0]
                    tail = f_ts[-1]
                    if head < tail:
                        st.dirty = True  # cross-batch timestamp regression
                    elif head == tail:
                        st.ties = True
                if not strict_ts:
                    st.ties = True
                f_ts.extend(tss)
                st.f_tid.extend(tids)
                st.last_tid = tids[-1]
                return
            fdict = st.fdict = dict(zip(st.f_tid, st.f_ts))
        st.ties = True  # dict mode: don't chase tie-freedom, just sort
        fresh = dict(zip(reversed(tids), reversed(tss)))
        if 0 in fresh:
            del fresh[0]  # zero = untraced filler records
        if not fresh:
            return
        stale = fresh.keys() & fdict.keys()
        if stale:
            for tid in stale:
                del fresh[tid]
            if not fresh:
                return
        fdict.update(fresh)
        f_ts = st.f_ts
        tail = f_ts[-1] if f_ts else _NEG
        appended = list(reversed(fresh.values()))
        st.f_tid.extend(reversed(fresh.keys()))
        f_ts.extend(appended)
        # An in-slice duplicate can leave the winning timestamp out of
        # place; flag the label so close re-sorts before slicing.
        if appended[0] < tail or not _ascending(appended):
            st.dirty = True

    def _ingest_segment_slow(self, label, tids, tss, plens) -> int:
        """Per-record fallback for a non-monotone slice (out-of-order
        source).  Preserves arrival-order first-occurrence semantics;
        returns the late-record count."""
        slide = self._slide_ns
        closed = self._closed_upto
        wtput = self._wtput
        overhead = TRACE_ID_BYTES
        st = self._fstate.get(label)
        fdict = None
        if st is not None:
            st.ties = True  # arbitrary order: be conservative at close
            fdict = st.fdict
            if fdict is None:  # dict mode from here on
                fdict = st.fdict = dict(zip(st.f_tid, st.f_ts))
        late = 0
        dirty = False
        for k in range(len(tss)):
            ts = tss[k]
            w = ts // slide
            if w <= closed:
                late += 1
                continue
            wt = wtput.get(w)
            if wt is None:
                wt = wtput[w] = {}
                self._open.add(w)
            plen = plens[k]
            acc = wt.get(label)
            if acc is None:
                wt[label] = [1, plen - overhead if plen > overhead else 0, ts, ts]
            else:
                acc[0] += 1
                if plen > overhead:
                    acc[1] += plen - overhead
                if ts < acc[2]:
                    acc[2] = ts
                elif ts > acc[3]:
                    acc[3] = ts
            if fdict is not None:
                tid = tids[k]
                if tid and tid not in fdict:
                    fdict[tid] = ts
                    st.f_ts.append(ts)
                    st.f_tid.append(tid)
                    dirty = True
        if dirty:
            st.dirty = True
        return late

    def _ingest_segments_sliding(self, node, segments):
        """Sliding windows: each record/pair lands in every covering
        window (frame-only view; the run-level merge refuses sliding).
        Stays per-record -- overlap makes slice segmentation moot."""
        window = self._window_ns
        slide = self._slide_ns
        closed = self._closed_upto
        overhead = TRACE_ID_BYTES
        node_max = self._node_max.get(node, _NEG)
        count = 0
        late = 0
        for label, tids, tss, plens, _fresh in segments:
            n = len(tss)
            if not n:
                continue
            count += n
            peak = max(tss)
            if peak > node_max:
                node_max = peak
            first = self._first.get(label) if label in self._chain_set else None
            routes = self._routes.get(label)
            for k in range(n):
                ts = tss[k]
                plen = plens[k]
                pay = plen - overhead if plen > overhead else 0
                for w in window_indices(ts, window, slide):
                    if w <= closed:
                        late += 1
                        continue
                    wt = self._wtput.get(w)
                    if wt is None:
                        wt = self._wtput[w] = {}
                        self._open.add(w)
                    acc = wt.get(label)
                    if acc is None:
                        wt[label] = [1, pay, ts, ts]
                    else:
                        acc[0] += 1
                        acc[1] += pay
                        if ts < acc[2]:
                            acc[2] = ts
                        elif ts > acc[3]:
                            acc[3] = ts
                if first is None:
                    continue
                tid = tids[k]
                if not tid or tid in first:
                    continue
                first[tid] = ts
                for hop_idx, other, is_from in routes:
                    mate = other.get(tid)
                    if mate is None:
                        continue
                    if is_from:
                        from_ts, lat = ts, mate - ts
                    else:
                        from_ts, lat = mate, ts - mate
                    for pw in window_indices(from_ts, window, slide):
                        if pw <= closed:
                            late += 1
                            continue
                        wp = self._wpairs.setdefault(pw, {})
                        wp.setdefault(hop_idx, []).append((from_ts, lat, tid))
        if count:
            self._node_max[node] = node_max
        return count, late

    # -- watermark / window close ------------------------------------------

    def _expected_nodes(self) -> Optional[set]:
        if self._expected_override is not None:
            return self._expected_override
        if self._collector is not None:
            return set(self._collector.agents)
        return None  # standalone: only close_all() closes windows

    def _advance_watermark(self) -> None:
        expected = self._expected_nodes()
        if not expected:
            return
        node_max = self._node_max
        for name in expected:
            if name not in node_max:
                return  # conservative: wait until every node reported
        wm = min(node_max.values()) - self._lateness
        if self._watermark is not None and wm <= self._watermark:
            return
        self._watermark = wm
        if self._m_wm is not None:
            self._m_wm.set(wm)
        open_set = self._open
        window = self._window_ns
        slide = self._slide_ns
        while open_set:
            w = min(open_set)
            if w * slide + window > wm:
                break
            self._close_window(w)

    def close_all(self) -> None:
        """End of run: close every remaining window, in order."""
        while self._open:
            self._close_window(min(self._open))
        self.stop_emitter()

    def _resort(self, label: str, st: _LabelState) -> None:
        """Re-sort a from-label's unconsumed suffix after a timestamp
        regression.  Reordering the columns invalidates positional
        cursors into them, so every hop *sinking* at this label drops
        to the hash join for good."""
        done = st.done
        order = sorted(zip(st.f_ts[done:], st.f_tid[done:]))
        st.f_ts[done:] = array("q", (entry[0] for entry in order))
        st.f_tid[done:] = array("q", (entry[1] for entry in order))
        st.dirty = False
        for hop_idx, (_a, b) in enumerate(self._hops):
            if b == label:
                self._hop_dict[hop_idx] = True

    def _consume_pairs(self, end: int) -> Dict[int, object]:
        """The deferred hop join for a closing tumbling window: slice
        every pending source first-occurrence below ``end`` (entries
        below the window start cannot exist -- their window would have
        closed first) and match against the sink stream.

        Fast path: the sink's next unmatched positional slice carries
        the *same* ID sequence (one C-level list equality), so mates
        are positional and latencies one ``map(sub)`` pass -- returned
        as a ``(from_ts, lats, tids)`` column triple already in
        canonical order.  Any mismatch flips the hop to the hash join
        against the sink's first-occurrence dict, returned as sorted
        ``(from_ts, lat, tid)`` tuples."""
        wp: Dict[int, object] = {}
        hop_pos = self._hop_pos
        hop_dict = self._hop_dict
        for label, routes in self._from_routes.items():
            st = self._fstate[label]
            if st.dirty:
                self._resort(label, st)
            f_ts = st.f_ts
            done = st.done
            if done == len(f_ts) or f_ts[done] >= end:
                continue
            cut = bisect_left(f_ts, end, done)
            take_ts = f_ts[done:cut]
            take_tid = st.f_tid[done:cut]
            st.done = cut
            m = cut - done
            # Ties in from-timestamps break the "arrival order is
            # canonical order" shortcut; fall back to sorted tuples.
            # (Tracked incrementally at fold time -- O(1) here.)
            aligned_ok = m == 1 or not st.ties
            take_bytes = take_tid.tobytes()  # ID equality at memcmp speed
            for hop_idx, sink in routes:
                if not hop_dict[hop_idx]:
                    pos = hop_pos[hop_idx]
                    mates = sink.f_ts[pos : pos + m]
                    if sink.f_tid[pos : pos + m].tobytes() == take_bytes:
                        hop_pos[hop_idx] = pos + m
                        lats = list(map(int.__sub__, mates, take_ts))
                        if aligned_ok:
                            wp[hop_idx] = (take_ts, lats, take_tid)
                        else:
                            wp[hop_idx] = sorted(zip(take_ts, lats, take_tid))
                        continue
                    hop_dict[hop_idx] = True
                fdict = sink.fdict
                if fdict is None:
                    fdict = sink.fdict = dict(zip(sink.f_tid, sink.f_ts))
                pairs = [
                    (ts, mate - ts, tid)
                    for ts, mate, tid in zip(
                        take_ts, map(fdict.get, take_tid), take_tid
                    )
                    if mate is not None
                ]
                if pairs:
                    pairs.sort()
                    wp[hop_idx] = pairs
        return wp

    def _close_window(self, w: int) -> None:
        wt = self._wtput.pop(w, {})
        self._open.discard(w)
        if w > self._closed_upto:
            self._closed_upto = w
        start = w * self._slide_ns
        end = start + self._window_ns
        tumbling = self._tumbling
        wp = self._consume_pairs(end) if tumbling else self._wpairs.pop(w, {})

        records = 0
        tput_frame: Dict[str, Dict[str, int]] = {}
        for label, acc in wt.items():
            records += acc[0]
            tput_frame[label] = {
                "records": acc[0],
                "payload_bytes": acc[1],
                "min_ts_ns": acc[2],
                "max_ts_ns": acc[3],
            }
            if tumbling:
                run = self._run_tput.get(label)
                if run is None:
                    self._run_tput[label] = [acc[0], acc[1], acc[2], acc[3]]
                else:
                    run[0] += acc[0]
                    run[1] += acc[1]
                    if acc[2] < run[2]:
                        run[2] = acc[2]
                    if acc[3] > run[3]:
                        run[3] = acc[3]

        hops_frame: Dict[str, Dict[str, object]] = {}
        bounds = self._sketch_bounds
        for hop_idx, key in enumerate(self._hop_keys):
            data = wp.get(hop_idx)
            if data is None:
                continue
            if type(data) is tuple:  # columnar, already canonical order
                lats = data[1]
                neg_ids = map(int.__neg__, data[2])
            else:  # (from_ts, lat, tid) tuples: sliding path (unsorted)
                if not tumbling:
                    data.sort()
                lats = [pair[1] for pair in data]
                neg_ids = map(int.__neg__, (pair[2] for pair in data))
            count = len(lats)
            lat_sum = sum(lats)
            ascending = sorted(lats)
            # The window sketch, as one bisect per bucket edge: the
            # insertion points are cumulative counts, bucket counts are
            # their differences (the "<= upper edge" rule of
            # StreamSketch.observe, without a per-value loop).
            pts = [bisect_right(ascending, bound) for bound in bounds]
            counts = [pts[0]]
            counts += map(int.__sub__, pts[1:], pts[:-1])
            counts.append(count - pts[-1])
            hops_frame[key] = {
                "count": count,
                "sum_ns": lat_sum,
                "min_ns": ascending[0],
                "max_ns": ascending[-1],
                "jitter_count": count - 1,
                # Consecutive deltas telescope to last - first.
                "jitter_sum_ns": lats[-1] - lats[0],
                "sketch": counts,
            }
            if not tumbling:
                continue
            stats = self._hop_stats[hop_idx]
            stats[0] += count
            stats[1] += lat_sum
            if stats[2] is None or ascending[0] < stats[2]:
                stats[2] = ascending[0]
            if stats[3] is None or ascending[-1] > stats[3]:
                stats[3] = ascending[-1]
            # Jitter bridges window boundaries: the offline kernel
            # differences one global latency sequence, so the first
            # latency of this window pairs with the last of the
            # previous (windows always close in ascending order).
            prev = self._jitter_prev[hop_idx]
            deltas = list(map(int.__sub__, lats[1:], lats[:-1]))
            if prev is not None:
                deltas.append(lats[0] - prev)  # the cross-window bridge
            if deltas:
                jstats = self._jitter_stats[hop_idx]
                jstats[0] += len(deltas)
                # Consecutive deltas telescope: their sum is just the
                # endpoints (last latency minus the bridge's origin).
                jstats[1] += lats[-1] - (lats[0] if prev is None else prev)
                dlo, dhi = min(deltas), max(deltas)
                if jstats[2] is None or dlo < jstats[2]:
                    jstats[2] = dlo
                if jstats[3] is None or dhi > jstats[3]:
                    jstats[3] = dhi
            self._jitter_prev[hop_idx] = lats[-1]
            # Fold the window sketch into the run-level one: insertion
            # points add (exact; docs/STREAMING.md).
            self._hop_pts[hop_idx] = list(
                map(int.__add__, self._hop_pts[hop_idx], pts)
            )
            self.sketch_merges += 1
            if self._m_merges is not None:
                self._m_merges.inc()
            if hop_idx == self._e2e_idx:
                evicted = self.topk.extend(zip(lats, neg_ids), count)
                if evicted and self._m_evictions is not None:
                    self._m_evictions.inc(evicted)

        self.frames.append(
            WindowFrame(
                index=w,
                start_ns=start,
                end_ns=end,
                records=records,
                throughput=tput_frame,
                hops=hops_frame,
            )
        )
        self.windows_closed += 1
        if self._m_windows is not None:
            self._m_windows.inc()
        if self._m_open is not None:
            self._m_open.set(len(self._open))

    # -- results -----------------------------------------------------------

    @property
    def watermark_ns(self) -> Optional[int]:
        return self._watermark

    def open_windows(self) -> int:
        return len(self._open)

    def frames_as_dicts(self) -> List[Dict[str, object]]:
        return [frame.as_dict() for frame in self.frames]

    def summary(self) -> Dict[str, object]:
        """Run-level merge of every *closed* window -- byte-for-byte
        the offline TraceDB/metric-kernel answers once all windows are
        closed (the differential suite proves it).  Tumbling only."""
        if not self._tumbling:
            raise StreamingError(
                "run-level merge needs tumbling windows; sliding windows "
                "overlap and would double-count (read .frames instead)"
            )
        throughput: Dict[str, Dict[str, object]] = {}
        for label, acc in self._run_tput.items():
            n, payload, lo, hi = acc
            # Exactly throughput_at's rules: <2 packets or a zero-width
            # window cannot define a rate.
            if n < 2:
                entry = {"bits_per_second": 0.0, "packets": n,
                         "payload_bytes": 0, "window_ns": 0}
            else:
                window = hi - lo
                if window <= 0:
                    entry = {"bits_per_second": 0.0, "packets": n,
                             "payload_bytes": payload, "window_ns": 0}
                else:
                    entry = {"bits_per_second": payload * 8 * 1e9 / window,
                             "packets": n, "payload_bytes": payload,
                             "window_ns": window}
            throughput[label] = entry
        hops: Dict[str, Dict[str, object]] = {}
        jitter: Dict[str, Dict[str, object]] = {}
        for idx, key in enumerate(self._hop_keys):
            n, total, lo, hi = self._hop_stats[idx]
            pts = self._hop_pts[idx]
            counts = [pts[0]]
            counts += map(int.__sub__, pts[1:], pts[:-1])
            counts.append(n - pts[-1])
            hops[key] = {
                "count": n,
                "sum_ns": total,
                "min_ns": lo,
                "max_ns": hi,
                "sketch": counts,
                "p50_ns": estimate_quantile(self._sketch_bounds, counts, 0.5),
                "p99_ns": estimate_quantile(self._sketch_bounds, counts, 0.99),
            }
            jn, jtotal, jlo, jhi = self._jitter_stats[idx]
            jitter[key] = {"count": jn, "sum_ns": jtotal, "min_ns": jlo, "max_ns": jhi}
        return {
            "config": {
                "chain": list(self._chain),
                "window_ns": self._window_ns,
                "allowed_lateness_ns": self._lateness,
                "top_k": self.config.top_k,
            },
            "records": self.records,
            "windows_closed": self.windows_closed,
            "late_records": self.late_records,
            "gap_notices": self.gap_notices,
            "throughput": throughput,
            "hops": hops,
            "jitter": jitter,
            "top_k_slowest": [
                {"trace_id": tid, "latency_ns": lat} for tid, lat in self.topk.items()
            ],
        }

    def summary_json(self) -> str:
        return canonical_json(self.summary())

    def __repr__(self) -> str:
        return (
            f"<StreamingAggregator records={self.records} "
            f"open={len(self._open)} closed={self.windows_closed}>"
        )
