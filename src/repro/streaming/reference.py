"""Offline reference answers for the streaming differential suite.

:func:`offline_reference_summary` computes, **from the TraceDB and the
existing metric kernels alone**, exactly the document a
:class:`~repro.streaming.aggregate.StreamingAggregator` produces from
:meth:`~repro.streaming.aggregate.StreamingAggregator.summary` once
every window is closed.  The differential tests byte-compare the two
canonical JSON encodings -- any drift between the incremental and the
batch pipelines (payload accounting, first-occurrence semantics, sort
order, float arithmetic, sketch bucketing) fails loudly.

The reference deliberately reuses the offline kernels
(:func:`~repro.core.metrics.throughput_at`,
:func:`~repro.core.metrics.latency_pairs`,
:func:`~repro.core.metrics.jitter_of`) rather than re-deriving their
math, so it stays an independent oracle: the streaming engine never
calls these functions.
"""

from __future__ import annotations

from typing import Dict

from repro.core.metrics import jitter_of, latency_pairs, throughput_at
from repro.streaming.aggregate import StreamingConfig, canonical_json
from repro.streaming.sketch import StreamSketch
from repro.streaming.windows import TopKSlowest

__all__ = ["offline_reference_summary", "offline_reference_json", "canonical_json"]


def offline_reference_summary(db, config: StreamingConfig) -> Dict[str, object]:
    """The batch-computed answer a fully-drained streaming aggregator
    must match byte-for-byte (tumbling windows, zero late/gap events)."""
    config.validate()
    if config.slide_ns is not None and config.slide_ns != config.window_ns:
        raise ValueError("the offline reference is defined for tumbling windows only")
    chain = tuple(config.chain)
    hops = list(zip(chain, chain[1:]))
    if len(chain) > 2:
        hops.append((chain[0], chain[-1]))

    throughput: Dict[str, Dict[str, object]] = {}
    records = 0
    window_set = set()
    for label in db.tables():
        result = throughput_at(db, label)
        throughput[label] = {
            "bits_per_second": result.bits_per_second,
            "packets": result.packets,
            "payload_bytes": result.payload_bytes,
            "window_ns": result.window_ns,
        }
        columns = db.columns(label)
        records += len(columns.timestamp_ns)
        for ts in columns.timestamp_ns:
            window_set.add(ts // config.window_ns)

    hop_docs: Dict[str, Dict[str, object]] = {}
    jitter_docs: Dict[str, Dict[str, object]] = {}
    topk = TopKSlowest(config.top_k)
    for idx, (a, b) in enumerate(hops):
        pairs = latency_pairs(db, a, b)
        lats = [lat for _, lat in pairs]
        sketch = StreamSketch(config.sketch_bounds)
        for lat in lats:
            sketch.observe(lat)
        hop_docs[f"{a}->{b}"] = {
            "count": len(lats),
            "sum_ns": sum(lats),
            "min_ns": min(lats) if lats else None,
            "max_ns": max(lats) if lats else None,
            "sketch": list(sketch.counts),
            "p50_ns": sketch.quantile(0.5),
            "p99_ns": sketch.quantile(0.99),
        }
        deltas = jitter_of(lats)
        jitter_docs[f"{a}->{b}"] = {
            "count": len(deltas),
            "sum_ns": sum(deltas),
            "min_ns": min(deltas) if deltas else None,
            "max_ns": max(deltas) if deltas else None,
        }
        if idx == len(hops) - 1:  # the end-to-end hop feeds top-K
            first = db.first_ts_at(a)
            second = db.first_ts_at(b)
            for trace_id, ts_a in first.items():
                ts_b = second.get(trace_id)
                if ts_b is not None:
                    topk.push(ts_b - ts_a, trace_id)

    return {
        "config": {
            "chain": list(chain),
            "window_ns": config.window_ns,
            "allowed_lateness_ns": config.allowed_lateness_ns,
            "top_k": config.top_k,
        },
        "records": records,
        "windows_closed": len(window_set),
        "late_records": 0,
        "gap_notices": 0,
        "throughput": throughput,
        "hops": hop_docs,
        "jitter": jitter_docs,
        "top_k_slowest": [
            {"trace_id": tid, "latency_ns": lat} for tid, lat in topk.items()
        ],
    }


def offline_reference_json(db, config: StreamingConfig) -> str:
    return canonical_json(offline_reference_summary(db, config))
