"""Streaming query layer: live sliding-window aggregation over
packed-blob shipments (docs/STREAMING.md)."""

from repro.streaming.aggregate import (
    DEFAULT_TOP_K,
    DEFAULT_WINDOW_NS,
    StreamingAggregator,
    StreamingConfig,
    StreamingError,
    canonical_json,
)
from repro.streaming.reference import offline_reference_json, offline_reference_summary
from repro.streaming.sketch import LATENCY_SKETCH_BUCKETS_NS, StreamSketch
from repro.streaming.windows import TopKSlowest, WindowFrame, window_indices

__all__ = [
    "DEFAULT_TOP_K",
    "DEFAULT_WINDOW_NS",
    "LATENCY_SKETCH_BUCKETS_NS",
    "StreamSketch",
    "StreamingAggregator",
    "StreamingConfig",
    "StreamingError",
    "TopKSlowest",
    "WindowFrame",
    "canonical_json",
    "offline_reference_json",
    "offline_reference_summary",
    "window_indices",
]
