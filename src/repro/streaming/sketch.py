"""Fixed-bucket percentile sketches for the streaming layer.

A :class:`StreamSketch` is the streaming counterpart of the ``obs``
layer's :class:`~repro.obs.registry.Histogram`: the same fixed upper
bounds declared up front (so two runs export bit-identical shapes), the
same +Inf overflow bucket, and the same shared bucket->quantile
estimator (:func:`repro.obs.registry.estimate_quantile`).  Unlike the
registry histogram it is a plain value object -- per-window sketches
are built incrementally and **merged** into run-level sketches at
window close, which is exact for bucket counts (merging histograms is
just adding counts), so the quantile error bound never grows with the
number of merges: it stays one bucket width (docs/STREAMING.md).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Optional, Tuple

from repro.obs.registry import estimate_quantile

# Default latency sketch bounds (upper edges, ns; +Inf implicit): 1 us
# to 300 ms in a 1-3-10 ladder.  Chosen to bracket every scenario this
# repo ships: quickstart hop latencies sit in the 3-100 us buckets, the
# OVS congestion cases reach tens of ms, the fleet's wire latency lands
# just above the 1 ms edge.
LATENCY_SKETCH_BUCKETS_NS: Tuple[int, ...] = (
    1_000, 3_000, 10_000, 30_000, 100_000, 300_000,
    1_000_000, 3_000_000, 10_000_000, 30_000_000, 100_000_000, 300_000_000,
)


class StreamSketch:
    """Fixed-bound bucket counts + count; mergeable, quantile-queryable."""

    __slots__ = ("bounds", "counts", "count")

    def __init__(self, bounds: Iterable[int] = LATENCY_SKETCH_BUCKETS_NS):
        self.bounds: Tuple[int, ...] = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"sketch bounds must strictly increase: {self.bounds!r}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left(bounds, v) is the first bucket with bound >= v --
        # exactly the "<= upper edge" rule -- and lands on len(bounds)
        # (the +Inf bucket) past the last edge.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1

    def observe_sorted(self, ascending: list) -> None:
        """Bulk fill from an ascending list (the window-close hot
        path): one C-speed bisect per *bucket edge* instead of one per
        value, since the counts are just differences of insertion
        points."""
        from bisect import bisect_right

        counts = self.counts
        previous = 0
        for i, bound in enumerate(self.bounds):
            at = bisect_right(ascending, bound)
            counts[i] += at - previous
            previous = at
        counts[-1] += len(ascending) - previous
        self.count += len(ascending)

    def merge(self, other: "StreamSketch") -> None:
        """Fold ``other`` in; exact (bucket counts simply add)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge sketches with different bounds")
        counts = self.counts
        for i, value in enumerate(other.counts):
            counts[i] += value
        self.count += other.count

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``None`` if empty); error is at
        most the width of the bucket the true quantile falls in."""
        return estimate_quantile(self.bounds, self.counts, q)

    def bucket_counts(self) -> Tuple[int, ...]:
        return tuple(self.counts)

    def __repr__(self) -> str:
        return f"<StreamSketch count={self.count} buckets={len(self.bounds) + 1}>"
