"""Flow identity and hashing.

The five-tuple identifies a flow for vNetTracer's filter rules, and the
Toeplitz-style hash drives Receive Packet Steering (``get_rps_cpu``):
packets of one connection hash to one CPU, which is precisely why RPS
cannot spread a single containerized application's softirq load (§IV-E).
"""

from __future__ import annotations

import hashlib
from typing import NamedTuple, Optional

from repro.net.addressing import IPv4Address
from repro.net.packet import IPPROTO_TCP, IPPROTO_UDP, Packet


class FiveTuple(NamedTuple):
    """Canonical (src ip, dst ip, src port, dst port, protocol)."""

    src_ip: IPv4Address
    dst_ip: IPv4Address
    src_port: int
    dst_port: int
    protocol: int

    def reversed(self) -> "FiveTuple":
        """The reply direction of the same conversation."""
        return FiveTuple(self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.protocol)

    def __str__(self) -> str:
        proto = {IPPROTO_TCP: "tcp", IPPROTO_UDP: "udp"}.get(self.protocol, str(self.protocol))
        return f"{proto}:{self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port}"


def packet_five_tuple(packet: Packet) -> Optional[FiveTuple]:
    """Extract the five-tuple of a packet's outermost L3/L4 headers."""
    ip = packet.ip
    if ip is None:
        return None
    if packet.tcp is not None:
        l4 = packet.tcp
        proto = IPPROTO_TCP
    elif packet.udp is not None:
        l4 = packet.udp
        proto = IPPROTO_UDP
    else:
        return None
    return FiveTuple(ip.src, ip.dst, l4.src_port, l4.dst_port, proto)


def flow_hash(flow: FiveTuple) -> int:
    """Deterministic 32-bit flow hash (stand-in for the kernel's Toeplitz
    RSS hash).  Symmetry is NOT required: RPS hashes each direction
    independently, as the real ``__skb_get_hash`` does by default."""
    material = (
        flow.src_ip.to_bytes()
        + flow.dst_ip.to_bytes()
        + flow.src_port.to_bytes(2, "big")
        + flow.dst_port.to_bytes(2, "big")
        + bytes([flow.protocol])
    )
    digest = hashlib.md5(material).digest()
    return int.from_bytes(digest[:4], "big")


def rps_cpu(flow: FiveTuple, num_cpus: int, rps_enabled: bool = True) -> int:
    """Which CPU RPS steers this flow's receive softirq to.

    With RPS off, everything lands on CPU 0 (the hardware IRQ target).
    With RPS on, one flow still always maps to one CPU -- the limitation
    the paper observes for single-connection container workloads.
    """
    if not rps_enabled or num_cpus <= 1:
        return 0
    return flow_hash(flow) % num_cpus
