"""Network devices.

A :class:`NetDevice` belongs to one kernel (a :class:`~repro.net.stack.KernelNode`)
and participates in three flows:

* ``transmit(packet, cpu)`` -- the kernel sends a packet OUT through the
  device.  The ``dev:<name>`` hook fires with direction ``tx`` (this is
  how the paper attaches scripts "to device flannel_i"), the device's
  transmit cost is charged on ``cpu``, then the subclass ``_egress``
  moves the packet to its peer / link / switch.
* ``receive(packet)`` -- a packet arrives INTO the device from outside.
  The device picks a CPU (IRQ affinity or RPS) and raises a NET_RX
  softirq; processing happens later in ``net_rx_action``.
* ``deliver(packet, cpu)`` -- invoked by the softirq: fires the rx hook,
  then hands the packet to the device's master (bridge/OVS) or up the
  local IP stack.

``napi_quota`` bounds how many of this device's backlog entries one
``net_rx_action`` invocation drains -- NICs get the full NAPI budget,
reinjection devices (veth, VXLAN, bridge legs) a smaller per-device
quota, which is why deep container paths execute so many more softirqs
(§IV-E, Fig. 13a).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.flow import packet_five_tuple, rps_cpu
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode


class DeviceStats:
    """tx/rx packet, byte, and drop counters (``ip -s link`` analog)."""

    __slots__ = (
        "tx_packets",
        "tx_bytes",
        "tx_dropped",
        "rx_packets",
        "rx_bytes",
        "rx_dropped",
    )

    def __init__(self) -> None:
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_dropped = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.rx_dropped = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class NetDevice:
    """Base class; subclasses define where transmitted packets go."""

    kind = "generic"

    def __init__(
        self,
        node: "KernelNode",
        name: str,
        mac: Optional[MACAddress] = None,
        ip: Optional[IPv4Address] = None,
        mtu: int = 1500,
        irq_cpu: int = 0,
        rps_enabled: bool = False,
        napi_quota: int = 64,
    ):
        self.node = node
        self.name = name
        self.mac = mac if mac is not None else node.next_mac()
        self.ip = ip
        self.mtu = mtu
        self.irq_cpu = irq_cpu
        self.rps_enabled = rps_enabled
        self.napi_quota = napi_quota
        self.master = None  # bridge / OVS the device is enslaved to
        self.up = True
        self.stats = DeviceStats()
        self.ifindex = node.register_device(self)

    # -- outbound -----------------------------------------------------------

    def transmit(self, packet: Packet, cpu=None) -> None:
        """Send a packet out of this device (called in kernel context)."""
        if not self.up:
            self.stats.tx_dropped += 1
            return
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.total_length
        node = self.node
        packet.log_point(
            node.name, f"dev:{self.name}:tx", node.engine.now, cpu.index if cpu else 0
        )
        hook_cost = node.fire_device_hook(self, packet, cpu, direction="tx")

        def after_hook() -> None:
            self._egress(packet, cpu)

        node.charge(
            cpu, hook_cost + node.noisy(self._tx_cost_ns(packet)), after_hook, front=True
        )

    def _tx_cost_ns(self, packet: Packet) -> int:
        return self.node.costs.nic_xmit_ns

    def _egress(self, packet: Packet, cpu) -> None:
        raise NotImplementedError(f"{type(self).__name__} cannot egress")

    # -- inbound --------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """A packet arrives from outside; raise a NET_RX softirq."""
        if not self.up:
            self.stats.rx_dropped += 1
            return
        self.stats.rx_packets += 1
        self.stats.rx_bytes += packet.total_length
        cpu_index = self.steer_cpu(packet)
        accepted = self.node.softirq.enqueue(self, packet, cpu_index)
        if not accepted:
            self.stats.rx_dropped += 1

    def rx_job_cost_ns(self, packet: Packet) -> int:
        """Base CPU cost of this device's per-packet softirq job."""
        return self.node.costs.ip_rcv_ns

    def steer_cpu(self, packet: Packet) -> int:
        """IRQ affinity or RPS decision; fires the ``get_rps_cpu`` hook."""
        node = self.node
        flow = packet_five_tuple(packet.innermost)
        if self.rps_enabled and flow is not None:
            cpu_index = rps_cpu(flow, len(node.cpus), rps_enabled=True)
        else:
            cpu_index = self.irq_cpu
        node.fire_steering_hook(self, packet, cpu_index)
        return cpu_index

    def deliver(self, packet: Packet, cpu) -> None:
        """Process a received packet in softirq context on ``cpu``."""
        node = self.node
        packet.log_point(node.name, f"dev:{self.name}:rx", node.engine.now, cpu.index)
        hook_cost = node.fire_device_hook(self, packet, cpu, direction="rx")

        def continue_up() -> None:
            if self.master is not None:
                self.master.ingress(self, packet, cpu)
            else:
                node.l3_receive(self, packet, cpu)

        node.charge(cpu, hook_cost, continue_up, front=True)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.node.name}:{self.name} ifindex={self.ifindex}>"


class LoopbackDevice(NetDevice):
    """``lo``: transmit loops straight back into the local stack."""

    kind = "loopback"

    def __init__(self, node: "KernelNode"):
        super().__init__(node, "lo", ip=IPv4Address("127.0.0.1"), mtu=65536)

    def _tx_cost_ns(self, packet: Packet) -> int:
        return 150

    def _egress(self, packet: Packet, cpu) -> None:
        self.receive(packet)


class VethDevice(NetDevice):
    """One end of a veth pair; transmitting delivers to the peer, which
    raises a fresh softirq (``netif_rx``) -- each veth hop is another
    softirq on the container data path."""

    kind = "veth"

    def __init__(self, node: "KernelNode", name: str, napi_quota: int = 16, **kwargs):
        super().__init__(node, name, napi_quota=napi_quota, **kwargs)
        self.peer: Optional["VethDevice"] = None

    @staticmethod
    def create_pair(
        node_a: "KernelNode",
        name_a: str,
        node_b: "KernelNode",
        name_b: str,
        **kwargs,
    ) -> "tuple[VethDevice, VethDevice]":
        """Create two connected veth endpoints (possibly in one kernel)."""
        end_a = VethDevice(node_a, name_a, **kwargs)
        end_b = VethDevice(node_b, name_b, **kwargs)
        end_a.peer = end_b
        end_b.peer = end_a
        return end_a, end_b

    def _tx_cost_ns(self, packet: Packet) -> int:
        return self.node.costs.veth_xmit_ns

    def _egress(self, packet: Packet, cpu) -> None:
        if self.peer is None:
            self.stats.tx_dropped += 1
            return
        self.peer.receive(packet)
