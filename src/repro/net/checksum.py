"""RFC 1071 Internet checksum.

The UDP trace-ID trim path in the paper calls ``pskb_trim_rcsum()``,
which adjusts the receive checksum after removing the appended ID bytes;
our :mod:`repro.core.packet_id` does the same incremental update, so the
arithmetic lives here where tests can hammer it with hypothesis.
"""

from __future__ import annotations


def ones_complement_sum(data: bytes) -> int:
    """16-bit one's-complement sum of ``data`` (odd length zero-padded)."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    # Fold any remaining carry.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """The Internet checksum (complement of the one's-complement sum)."""
    return (~ones_complement_sum(data)) & 0xFFFF


def verify_checksum(data_with_checksum: bytes) -> bool:
    """True when a buffer that embeds its checksum sums to 0xFFFF."""
    return ones_complement_sum(data_with_checksum) == 0xFFFF


def checksum_remove_trailing(checksum: int, removed: bytes) -> int:
    """Incrementally update ``checksum`` after trimming ``removed`` bytes
    from the end of the checksummed region (the ``pskb_trim_rcsum`` analog).

    Works for regions whose length stays even before and after the trim,
    which holds for our 4-byte trace IDs.
    """
    if len(removed) % 2:
        raise ValueError("can only trim an even number of bytes incrementally")
    partial = ones_complement_sum(removed)
    # checksum = ~sum(all); sum(remaining) = sum(all) - sum(removed)
    full_sum = (~checksum) & 0xFFFF
    remaining = (full_sum - partial) & 0xFFFF
    if partial > full_sum:
        remaining = (remaining - 1) & 0xFFFF  # borrow in one's complement
    return (~remaining) & 0xFFFF
