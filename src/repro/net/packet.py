"""Packets and binary header layouts.

Headers serialize to real wire format.  That matters because the eBPF
tracing scripts this repo compiles do not inspect Python objects -- they
load bytes at header offsets out of the serialized packet image, exactly
like a socket-filter program reading ``skb`` data.  A packet therefore
carries both its structured form (cheap for the simulator to route) and,
on demand, its byte image (what programs see).

Encapsulation nests: a VXLAN packet is an outer
Ethernet/IPv4/UDP/VXLAN whose payload is the entire inner packet, as in
the paper's Docker overlay network (§IV-E), where tracing scripts must
"strip the VXLAN header off to read the skb information".
"""

from __future__ import annotations

import itertools
import struct
from typing import List, Optional, Tuple, Union

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.checksum import internet_checksum

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

TCP_FLAG_FIN = 0x01
TCP_FLAG_SYN = 0x02
TCP_FLAG_RST = 0x04
TCP_FLAG_PSH = 0x08
TCP_FLAG_ACK = 0x10

# TCP option kind used for the embedded vNetTracer trace ID (§III-B uses a
# 4-byte space in the TCP options; we follow the experimental-use kind).
TCPOPT_TRACE_ID = 0xFD

_packet_uid_counter = itertools.count(1)


class HeaderError(ValueError):
    """Raised when a header cannot be built or parsed."""


class EthernetHeader:
    """14-byte Ethernet II header."""

    __slots__ = ("dst", "src", "ethertype")

    LENGTH = 14

    def __init__(self, dst: MACAddress, src: MACAddress, ethertype: int = ETHERTYPE_IPV4):
        self.dst = MACAddress(dst)
        self.src = MACAddress(src)
        self.ethertype = ethertype

    def pack(self) -> bytes:
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack("!H", self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError("truncated Ethernet header")
        return cls(
            MACAddress.from_bytes(data[0:6]),
            MACAddress.from_bytes(data[6:12]),
            struct.unpack("!H", data[12:14])[0],
        )

    @property
    def length(self) -> int:
        return self.LENGTH

    def __repr__(self) -> str:
        return f"<Eth {self.src}->{self.dst} type=0x{self.ethertype:04x}>"


class IPv4Header:
    """20-byte IPv4 header (no IP options)."""

    __slots__ = ("src", "dst", "protocol", "ttl", "identification", "total_length", "dscp")

    LENGTH = 20

    def __init__(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        protocol: int,
        ttl: int = 64,
        identification: int = 0,
        total_length: int = 0,
        dscp: int = 0,
    ):
        self.src = IPv4Address(src)
        self.dst = IPv4Address(dst)
        self.protocol = protocol
        self.ttl = ttl
        self.identification = identification & 0xFFFF
        self.total_length = total_length
        self.dscp = dscp

    def pack(self) -> bytes:
        version_ihl = (4 << 4) | 5
        header_wo_csum = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            self.dscp << 2,
            self.total_length,
            self.identification,
            0,  # flags/fragment offset: never fragmented in this substrate
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        csum = internet_checksum(header_wo_csum)
        return header_wo_csum[:10] + struct.pack("!H", csum) + header_wo_csum[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        if len(data) < cls.LENGTH:
            raise HeaderError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            _frag,
            ttl,
            protocol,
            _csum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        if version_ihl >> 4 != 4:
            raise HeaderError(f"not IPv4 (version={version_ihl >> 4})")
        return cls(
            IPv4Address.from_bytes(src),
            IPv4Address.from_bytes(dst),
            protocol,
            ttl=ttl,
            identification=identification,
            total_length=total_length,
            dscp=tos >> 2,
        )

    @property
    def length(self) -> int:
        return self.LENGTH

    def __repr__(self) -> str:
        return f"<IPv4 {self.src}->{self.dst} proto={self.protocol} ttl={self.ttl}>"


class UDPHeader:
    """8-byte UDP header."""

    __slots__ = ("src_port", "dst_port", "udp_length", "checksum")

    LENGTH = 8

    def __init__(self, src_port: int, dst_port: int, udp_length: int = 0, checksum: int = 0):
        self.src_port = src_port
        self.dst_port = dst_port
        self.udp_length = udp_length
        self.checksum = checksum

    def pack(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.udp_length, self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError("truncated UDP header")
        src_port, dst_port, udp_length, checksum = struct.unpack("!HHHH", data[:8])
        return cls(src_port, dst_port, udp_length, checksum)

    @property
    def length(self) -> int:
        return self.LENGTH

    def __repr__(self) -> str:
        return f"<UDP {self.src_port}->{self.dst_port} len={self.udp_length}>"


class TCPHeader:
    """TCP header with an options area (where the trace ID lives)."""

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window", "options")

    BASE_LENGTH = 20

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = TCP_FLAG_ACK,
        window: int = 65535,
        options: bytes = b"",
    ):
        if len(options) % 4 != 0:
            raise HeaderError("TCP options must be padded to 4-byte multiples")
        if len(options) > 40:
            raise HeaderError("TCP options exceed 40 bytes")
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = window
        self.options = bytes(options)

    @property
    def data_offset_words(self) -> int:
        return (self.BASE_LENGTH + len(self.options)) // 4

    @property
    def length(self) -> int:
        return self.BASE_LENGTH + len(self.options)

    def pack(self) -> bytes:
        offset_flags = (self.data_offset_words << 12) | (self.flags & 0x1FF)
        return (
            struct.pack(
                "!HHIIHHHH",
                self.src_port,
                self.dst_port,
                self.seq,
                self.ack,
                offset_flags,
                self.window,
                0,  # checksum: offloaded in this substrate
                0,  # urgent pointer
            )
            + self.options
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TCPHeader":
        if len(data) < cls.BASE_LENGTH:
            raise HeaderError("truncated TCP header")
        (src_port, dst_port, seq, ack, offset_flags, window, _csum, _urg) = struct.unpack(
            "!HHIIHHHH", data[:20]
        )
        data_offset = (offset_flags >> 12) * 4
        if data_offset < cls.BASE_LENGTH or len(data) < data_offset:
            raise HeaderError("bad TCP data offset")
        options = data[cls.BASE_LENGTH : data_offset]
        return cls(
            src_port,
            dst_port,
            seq=seq,
            ack=ack,
            flags=offset_flags & 0x1FF,
            window=window,
            options=options,
        )

    def find_option(self, kind: int) -> Optional[bytes]:
        """Return the value bytes of a TLV option, or None."""
        buf = self.options
        i = 0
        while i < len(buf):
            opt_kind = buf[i]
            if opt_kind == 0:  # end of options
                return None
            if opt_kind == 1:  # NOP
                i += 1
                continue
            if i + 1 >= len(buf):
                return None
            opt_len = buf[i + 1]
            if opt_len < 2 or i + opt_len > len(buf):
                return None
            if opt_kind == kind:
                return buf[i + 2 : i + opt_len]
            i += opt_len
        return None

    def __repr__(self) -> str:
        return f"<TCP {self.src_port}->{self.dst_port} seq={self.seq} flags=0x{self.flags:x}>"


class VXLANHeader:
    """8-byte VXLAN header (RFC 7348)."""

    __slots__ = ("vni",)

    LENGTH = 8

    def __init__(self, vni: int):
        if not 0 <= vni < (1 << 24):
            raise HeaderError(f"VNI out of range: {vni}")
        self.vni = vni

    def pack(self) -> bytes:
        return struct.pack("!BBHI", 0x08, 0, 0, self.vni << 8)

    @classmethod
    def unpack(cls, data: bytes) -> "VXLANHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError("truncated VXLAN header")
        flags, _r1, _r2, vni_field = struct.unpack("!BBHI", data[:8])
        if not flags & 0x08:
            raise HeaderError("VXLAN I flag not set")
        return cls(vni_field >> 8)

    @property
    def length(self) -> int:
        return self.LENGTH

    def __repr__(self) -> str:
        return f"<VXLAN vni={self.vni}>"


Header = Union[EthernetHeader, IPv4Header, UDPHeader, TCPHeader, VXLANHeader]


class PathRecord:
    """Ground-truth record of a packet visiting an instrumentable point.

    The simulator appends these as packets move; tests validate the
    vNetTracer-measured decompositions against them.  (Real systems have
    no such oracle -- that is the paper's point.)
    """

    __slots__ = ("node", "point", "true_time_ns", "cpu")

    def __init__(self, node: str, point: str, true_time_ns: int, cpu: int = 0):
        self.node = node
        self.point = point
        self.true_time_ns = true_time_ns
        self.cpu = cpu

    def __repr__(self) -> str:
        return f"<Path {self.node}:{self.point}@{self.true_time_ns}ns cpu{self.cpu}>"


class Packet:
    """A simulated packet: structured headers + payload (+ wire image on demand).

    ``payload`` is either raw bytes or a nested :class:`Packet`
    (encapsulation).  ``uid`` is a simulator-level identity; the 32-bit
    trace ID that vNetTracer embeds lives *in the header bytes*, not
    here, because tracing must work off what is actually on the wire.
    """

    __slots__ = (
        "headers",
        "payload",
        "uid",
        "path",
        "app",
        "app_seq",
        "created_at_ns",
        "metadata",
    )

    def __init__(
        self,
        headers: List[Header],
        payload: Union[bytes, "Packet"] = b"",
        app: str = "",
        app_seq: int = 0,
        created_at_ns: int = 0,
    ):
        self.headers = list(headers)
        self.payload = payload
        self.uid = next(_packet_uid_counter)
        self.path: List[PathRecord] = []
        self.app = app
        self.app_seq = app_seq
        self.created_at_ns = created_at_ns
        self.metadata: dict = {}

    # -- structured accessors ------------------------------------------------

    def _find(self, header_type) -> Optional[Header]:
        for header in self.headers:
            if isinstance(header, header_type):
                return header
        return None

    @property
    def eth(self) -> Optional[EthernetHeader]:
        return self._find(EthernetHeader)

    @property
    def ip(self) -> Optional[IPv4Header]:
        return self._find(IPv4Header)

    @property
    def udp(self) -> Optional[UDPHeader]:
        return self._find(UDPHeader)

    @property
    def tcp(self) -> Optional[TCPHeader]:
        return self._find(TCPHeader)

    @property
    def vxlan(self) -> Optional[VXLANHeader]:
        return self._find(VXLANHeader)

    @property
    def inner(self) -> Optional["Packet"]:
        """The encapsulated packet, if this is a tunnel packet."""
        return self.payload if isinstance(self.payload, Packet) else None

    @property
    def innermost(self) -> "Packet":
        """Follow encapsulation down to the original packet."""
        packet = self
        while isinstance(packet.payload, Packet):
            packet = packet.payload
        return packet

    # -- sizes ---------------------------------------------------------------

    @property
    def payload_length(self) -> int:
        if isinstance(self.payload, Packet):
            return self.payload.total_length
        return len(self.payload)

    @property
    def header_length(self) -> int:
        return sum(h.length for h in self.headers)

    @property
    def total_length(self) -> int:
        return self.header_length + self.payload_length

    # -- wire image ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to wire format, fixing up length fields."""
        payload_bytes = (
            self.payload.to_bytes() if isinstance(self.payload, Packet) else bytes(self.payload)
        )
        pieces: List[bytes] = []
        # Walk from the innermost layer outward so length fields include
        # everything beneath them.
        trailing = payload_bytes
        for header in reversed(self.headers):
            if isinstance(header, UDPHeader):
                header.udp_length = UDPHeader.LENGTH + len(trailing)
            elif isinstance(header, IPv4Header):
                header.total_length = IPv4Header.LENGTH + len(trailing)
            trailing = header.pack() + trailing
        pieces.append(trailing)
        return b"".join(pieces)

    @classmethod
    def from_bytes(cls, data: bytes, decapsulate_vxlan_port: int = 4789) -> "Packet":
        """Parse a wire image (Ethernet first).  VXLAN payloads on the
        given UDP port are recursively parsed as inner packets."""
        eth = EthernetHeader.unpack(data)
        offset = eth.length
        headers: List[Header] = [eth]
        payload: Union[bytes, Packet] = b""
        if eth.ethertype == ETHERTYPE_IPV4:
            ip = IPv4Header.unpack(data[offset:])
            headers.append(ip)
            offset += ip.length
            if ip.protocol == IPPROTO_UDP:
                udp = UDPHeader.unpack(data[offset:])
                headers.append(udp)
                offset += udp.length
                if udp.dst_port == decapsulate_vxlan_port:
                    vxlan = VXLANHeader.unpack(data[offset:])
                    headers.append(vxlan)
                    offset += vxlan.length
                    payload = cls.from_bytes(data[offset:], decapsulate_vxlan_port)
                else:
                    payload = data[offset:]
            elif ip.protocol == IPPROTO_TCP:
                tcp = TCPHeader.unpack(data[offset:])
                headers.append(tcp)
                offset += tcp.length
                payload = data[offset:]
            else:
                payload = data[offset:]
        else:
            payload = data[offset:]
        return cls(headers, payload)

    def clone(self) -> "Packet":
        """A structural copy with a fresh uid and empty path log (used
        when a bridge floods one frame out several ports)."""
        import copy

        duplicate = Packet(
            copy.deepcopy(self.headers),
            self.payload.clone() if isinstance(self.payload, Packet) else self.payload,
            app=self.app,
            app_seq=self.app_seq,
            created_at_ns=self.created_at_ns,
        )
        duplicate.metadata = dict(self.metadata)
        return duplicate

    # -- ground truth path log -----------------------------------------------

    def log_point(self, node: str, point: str, true_time_ns: int, cpu: int = 0) -> None:
        self.path.append(PathRecord(node, point, true_time_ns, cpu))

    def path_summary(self) -> List[Tuple[str, str]]:
        return [(rec.node, rec.point) for rec in self.path]

    def __repr__(self) -> str:
        layers = "/".join(type(h).__name__.replace("Header", "") for h in self.headers)
        return f"<Packet#{self.uid} {layers} len={self.total_length} app={self.app!r}>"


def make_udp_packet(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    src_port: int,
    dst_port: int,
    payload: bytes,
    app: str = "",
    app_seq: int = 0,
    created_at_ns: int = 0,
) -> Packet:
    """Convenience constructor for a plain UDP datagram."""
    headers: List[Header] = [
        EthernetHeader(dst_mac, src_mac, ETHERTYPE_IPV4),
        IPv4Header(src_ip, dst_ip, IPPROTO_UDP),
        UDPHeader(src_port, dst_port),
    ]
    return Packet(headers, payload, app=app, app_seq=app_seq, created_at_ns=created_at_ns)


def make_tcp_packet(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    src_port: int,
    dst_port: int,
    payload: bytes,
    seq: int = 0,
    ack: int = 0,
    flags: int = TCP_FLAG_ACK,
    options: bytes = b"",
    app: str = "",
    app_seq: int = 0,
    created_at_ns: int = 0,
) -> Packet:
    """Convenience constructor for a TCP segment."""
    headers: List[Header] = [
        EthernetHeader(dst_mac, src_mac, ETHERTYPE_IPV4),
        IPv4Header(src_ip, dst_ip, IPPROTO_TCP),
        TCPHeader(src_port, dst_port, seq=seq, ack=ack, flags=flags, options=options),
    ]
    return Packet(headers, payload, app=app, app_seq=app_seq, created_at_ns=created_at_ns)
