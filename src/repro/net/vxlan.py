"""VXLAN tunnel device (the overlay's ``flannel.1`` / ``vxlan0``).

As a bridge port it encapsulates L2 frames of the overlay network in
outer Ethernet/IP/UDP/VXLAN and routes them through the underlay; on
receive, the node's UDP input path diverts port-4789 datagrams here for
decapsulation.  Two behaviours matter for the paper's Case Study III:

* encapsulation breaks TSO: a 64 KB inner super-segment becomes ~45
  MTU-sized wire packets, each paying per-packet encap/stack costs;
* decapsulated inner packets are *reinjected* through the softirq path
  (the kernel's ``gro_cells``), so every overlay packet executes extra
  ``net_rx_action`` invocations, steered by the **inner** flow hash --
  which is why the softirq distribution shifts off CPU 0 (Fig. 13a) and
  the data path deepens (Fig. 13b).
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.device import NetDevice
from repro.net.flow import flow_hash, packet_five_tuple
from repro.net.gso import GROEngine, segment_packet
from repro.net.packet import (
    ETHERTYPE_IPV4,
    EthernetHeader,
    IPPROTO_UDP,
    IPv4Header,
    Packet,
    UDPHeader,
    VXLANHeader,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode

VXLAN_UDP_PORT = 4789
VXLAN_OVERHEAD = 14 + 20 + 8 + 8  # outer Eth + IP + UDP + VXLAN


class VXLANDevice(NetDevice):
    """One VTEP endpoint."""

    kind = "vxlan"

    def __init__(
        self,
        node: "KernelNode",
        name: str,
        vni: int,
        local_vtep: IPv4Address,
        udp_port: int = VXLAN_UDP_PORT,
        inner_mss: int = 1398,  # 1500 - VXLAN_OVERHEAD - inner Eth/IP/TCP
        gro_batch: int = 16,
        gro_window_ns: int = 30_000,
        napi_quota: int = 16,
        **kwargs,
    ):
        kwargs.setdefault("rps_enabled", True)
        super().__init__(node, name, napi_quota=napi_quota, **kwargs)
        self.vni = vni
        self.local_vtep = local_vtep
        self.udp_port = udp_port
        self.inner_mss = inner_mss
        self.vtep_fdb: Dict[int, IPv4Address] = {}  # inner MAC -> remote VTEP
        self.default_vtep: Optional[IPv4Address] = None
        self.encapsulated = 0
        self.decapsulated = 0
        self.unknown_dst_drops = 0
        self.gro = GROEngine(
            node.engine,
            deliver=self._gro_deliver,
            flush_batch=gro_batch,
            window_ns=gro_window_ns,
            name=f"{node.name}/{name}/gro",
        )
        node.register_vxlan_port(udp_port, self)

    # -- control plane ------------------------------------------------------

    def add_vtep(self, inner_mac: MACAddress, vtep_ip: IPv4Address) -> None:
        """FDB entry (the etcd-fed mapping in a Docker overlay)."""
        self.vtep_fdb[inner_mac.value] = vtep_ip

    def remote_vtep_for(self, packet: Packet) -> Optional[IPv4Address]:
        eth = packet.eth
        if eth is not None:
            vtep = self.vtep_fdb.get(eth.dst.value)
            if vtep is not None:
                return vtep
        return self.default_vtep

    # -- encapsulation (bridge egress through this port) -------------------------

    def _tx_cost_ns(self, packet: Packet) -> int:
        return 0  # encap cost is charged per resulting wire packet below

    def _egress(self, packet: Packet, cpu) -> None:
        node = self.node
        vtep_ip = self.remote_vtep_for(packet)
        if vtep_ip is None:
            self.unknown_dst_drops += 1
            return
        # Software segmentation: the tunnel cannot carry super-segments.
        segments = segment_packet(packet, self.inner_mss)

        def emit(index: int) -> None:
            if index >= len(segments):
                return
            inner = segments[index]
            outer = self._encapsulate(inner, vtep_ip)
            self.encapsulated += 1
            node.send_ip(outer, cpu, dst_ip=vtep_ip)
            node.charge(
                cpu,
                node.noisy(node.costs.vxlan_encap_ns),
                lambda: emit(index + 1),
                front=True,
            )

        node.charge(cpu, node.noisy(node.costs.vxlan_encap_ns), lambda: emit(0), front=True)

    def _encapsulate(self, inner: Packet, vtep_ip: IPv4Address) -> Packet:
        flow = packet_five_tuple(inner)
        src_port = 49152 + (flow_hash(flow) % 16383 if flow else 0)
        outer = Packet(
            [
                EthernetHeader(MACAddress.broadcast(), self.mac, ETHERTYPE_IPV4),
                IPv4Header(self.local_vtep, vtep_ip, IPPROTO_UDP),
                UDPHeader(src_port, self.udp_port),
                VXLANHeader(self.vni),
            ],
            inner,
            app=inner.app,
            app_seq=inner.app_seq,
            created_at_ns=inner.created_at_ns,
        )
        outer.metadata.update(inner.metadata)
        return outer

    # -- decapsulation (UDP input path diverts 4789 here) ----------------------------

    def decap_receive(self, outer: Packet, cpu) -> None:
        """Called in softirq context by the node's UDP input."""
        node = self.node
        inner = outer.inner
        if inner is None or outer.vxlan is None or outer.vxlan.vni != self.vni:
            self.stats.rx_dropped += 1
            return
        self.decapsulated += 1
        inner.path = outer.path  # keep the ground-truth trail continuous
        eth = inner.eth
        if eth is not None and outer.ip is not None:
            self.vtep_fdb.setdefault(eth.src.value, outer.ip.src)  # learn
        inner.log_point(node.name, f"dev:{self.name}:decap", node.engine.now, cpu.index)
        hook_cost = node.fire_device_hook(self, inner, cpu, direction="rx")
        node.charge(
            cpu,
            hook_cost + node.noisy(node.costs.vxlan_decap_ns),
            lambda: self.gro.push(inner, cpu),
            front=True,
        )

    def _gro_deliver(self, inner: Packet, cpu) -> None:
        # gro_cells reinjection: back through the softirq path, steered
        # by the *inner* flow hash (this device has RPS enabled).
        NetDevice.receive(self, inner)

    def deliver(self, packet: Packet, cpu) -> None:
        # The dev hook already fired at decap time; after reinjection the
        # frame goes straight to the overlay bridge (or the local stack).
        if self.master is not None:
            self.master.ingress(self, packet, cpu)
        else:
            self.node.l3_receive(self, packet, cpu)
