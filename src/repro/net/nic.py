"""Physical NICs and point-to-point links.

A :class:`Link` models a full-duplex cable: per-direction FIFO
serialization at the line rate plus propagation delay.  A
:class:`PhysicalNIC` optionally does TSO (segmenting TCP super-segments
into MTU wire packets before serialization) and hardware-assisted GRO
(coalescing back-to-back same-flow TCP arrivals before raising the
receive softirq) -- both matter for the Netperf overhead experiment
(Fig. 7b) where the 1 G and 10 G links produce very different per-event
rates for the tracers to keep up with.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.net.costs import gbps_to_ns_per_byte
from repro.net.device import NetDevice
from repro.net.gso import GROEngine, segment_packet
from repro.net.packet import Packet
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode


class Link:
    """Full-duplex point-to-point link between two NICs."""

    def __init__(
        self,
        engine: Engine,
        rate_gbps: float = 1.0,
        propagation_ns: int = 20_000,
        name: str = "link",
    ):
        self.engine = engine
        self.rate_gbps = rate_gbps
        self.propagation_ns = propagation_ns
        self.name = name
        self.ns_per_byte = gbps_to_ns_per_byte(rate_gbps)
        self._endpoints: list = [None, None]
        self._next_free_ns = [0, 0]  # per direction
        self.packets_carried = 0
        self.bytes_carried = 0

    def attach(self, nic_a: "PhysicalNIC", nic_b: "PhysicalNIC") -> None:
        self._endpoints = [nic_a, nic_b]
        nic_a.link = self
        nic_b.link = self

    def send(self, from_nic: "PhysicalNIC", packet: Packet) -> None:
        if from_nic is self._endpoints[0]:
            direction, peer = 0, self._endpoints[1]
        elif from_nic is self._endpoints[1]:
            direction, peer = 1, self._endpoints[0]
        else:
            raise ValueError(f"{from_nic!r} is not attached to {self.name}")
        if peer is None:
            return
        now = self.engine.now
        start = max(now, self._next_free_ns[direction])
        serialization = int(packet.total_length * self.ns_per_byte)
        self._next_free_ns[direction] = start + serialization
        arrival = start + serialization + self.propagation_ns
        self.packets_carried += 1
        self.bytes_carried += packet.total_length
        self.engine.schedule_at(arrival, peer.link_receive, packet)

    def utilization_deadline(self, direction: int = 0) -> int:
        """When the given direction becomes free (testing aid)."""
        return self._next_free_ns[direction]


class PhysicalNIC(NetDevice):
    """A NIC attached to a :class:`Link`."""

    kind = "nic"

    def __init__(
        self,
        node: "KernelNode",
        name: str,
        tso: bool = True,
        gro_batch: int = 8,
        gro_window_ns: int = 5_000,
        mss: int = 1448,
        **kwargs,
    ):
        super().__init__(node, name, napi_quota=64, **kwargs)
        self.link: Optional[Link] = None
        self.tso = tso
        self.mss = mss
        self.gro: Optional[GROEngine] = None
        if gro_batch > 1:
            self.gro = GROEngine(
                node.engine,
                deliver=self._gro_deliver,
                flush_batch=gro_batch,
                window_ns=gro_window_ns,
                name=f"{node.name}/{name}/gro",
            )

    # -- transmit ------------------------------------------------------------

    def _egress(self, packet: Packet, cpu) -> None:
        if self.link is None:
            self.stats.tx_dropped += 1
            return
        wire_packets = (
            segment_packet(packet, self.mss) if self.tso else [packet]
        )
        for wire_packet in wire_packets:
            self.link.send(self, wire_packet)

    # -- receive ----------------------------------------------------------------

    def link_receive(self, packet: Packet) -> None:
        """Frame arrives off the wire."""
        if self.gro is not None:
            self.gro.push(packet, None)
        else:
            self.receive(packet)

    def _gro_deliver(self, packet: Packet, _cpu) -> None:
        self.receive(packet)


def connect_hosts(
    engine: Engine,
    node_a: "KernelNode",
    name_a: str,
    node_b: "KernelNode",
    name_b: str,
    rate_gbps: float = 1.0,
    propagation_ns: int = 20_000,
    **nic_kwargs,
) -> tuple:
    """Create two NICs joined by a link; returns (nic_a, nic_b, link)."""
    nic_a = PhysicalNIC(node_a, name_a, **nic_kwargs)
    nic_b = PhysicalNIC(node_b, name_b, **nic_kwargs)
    link = Link(
        engine,
        rate_gbps=rate_gbps,
        propagation_ns=propagation_ns,
        name=f"{node_a.name}:{name_a}<->{node_b.name}:{name_b}",
    )
    link.attach(nic_a, nic_b)
    return nic_a, nic_b, link
