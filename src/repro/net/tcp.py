"""A compact but real TCP: handshake, sliding window, slow start/AIMD,
fast retransmit, RTO -- enough dynamics for the paper's workloads
(Netperf/iPerf streams, memcached request/response) to behave credibly
under queueing, policing drops, and scheduling delay.

Segments are real :class:`~repro.net.packet.Packet` objects flowing
through the same device/softirq substrate as UDP, so probes observe
them identically.  The sender emits super-segments of up to
``gso_bytes`` (TSO); receivers see whatever GRO hands up.  The trace-ID
option is written at the ``tcp_options_write`` stage when the node's
trace-ID patch is enabled, matching §III-E.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.net.addressing import IPv4Address
from repro.net.packet import (
    Packet,
    TCP_FLAG_ACK,
    TCP_FLAG_PSH,
    TCP_FLAG_SYN,
    make_tcp_packet,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode

HOOK_TCP_TRANSMIT_SKB = "kprobe:tcp_transmit_skb"
HOOK_TCP_OPTIONS_WRITE = "kprobe:tcp_options_write"
HOOK_TCP_RECVMSG = "kretprobe:tcp_recvmsg"

MSS = 1448
DEFAULT_RTO_NS = 50_000_000  # LAN-tuned minimum RTO
SEQ_MASK = 0xFFFFFFFF


def _seq_lt(a: int, b: int) -> bool:
    return ((a - b) & SEQ_MASK) > 0x7FFFFFFF


def _seq_lte(a: int, b: int) -> bool:
    return a == b or _seq_lt(a, b)


class TCPListener:
    """A passive socket; ``on_connection(conn)`` fires per accepted peer."""

    def __init__(
        self,
        stack: "TCPStack",
        ip: IPv4Address,
        port: int,
        cpu_index: int,
        on_connection: Optional[Callable[["TCPConnection"], None]] = None,
        gso_bytes: int = MSS,
    ):
        self.stack = stack
        self.ip = ip
        self.port = port
        self.cpu_index = cpu_index
        self.on_connection = on_connection
        self.gso_bytes = gso_bytes
        self.accepted = 0


class TCPConnection:
    """One end of an established (or establishing) connection."""

    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"

    def __init__(
        self,
        stack: "TCPStack",
        local_ip: IPv4Address,
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
        cpu_index: int,
        is_client: bool,
        gso_bytes: int = MSS,
        app: str = "tcp",
    ):
        self.stack = stack
        self.node = stack.node
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.cpu_index = cpu_index
        self.is_client = is_client
        self.gso_bytes = max(MSS, gso_bytes)
        self.app = app
        self.state = self.CLOSED

        iss = 1_000 if is_client else 5_000
        self.snd_una = iss
        self.snd_nxt = iss
        self.rcv_nxt = 0
        self.cwnd = 10 * MSS
        # LAN-scale receive window (Linux autotuning keeps buffers near
        # the BDP; an unbounded window just builds standing queues).
        self.rwnd = 1024 * 1024
        # Slow start runs until the first loss event (RFC 5681: initial
        # ssthresh arbitrarily high); drops then set it to cwnd/2.
        self.ssthresh = self.rwnd
        self.dup_acks = 0
        self._unacked: list = []  # [seq, length] in order
        self._ooo: Dict[int, int] = {}  # seq -> length
        self._app_pending = 0
        self._sending = False
        self._rto_event = None
        # RPC causality: when set, every segment's trace-ID option also
        # carries this parent ID (retransmits re-embed it, so duplicate
        # parents on the wire are expected and deduped at reassembly).
        self.trace_parent: Optional[int] = None

        # Callbacks
        self.on_established: Optional[Callable[["TCPConnection"], None]] = None
        self.on_data: Optional[Callable[["TCPConnection", int, Packet], None]] = None

        # Stats
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmits = 0
        self.acks_sent = 0

    # -- identity ------------------------------------------------------------

    @property
    def key(self) -> Tuple[int, int, int, int]:
        return (self.local_ip.value, self.local_port, self.remote_ip.value, self.remote_port)

    @property
    def in_flight(self) -> int:
        return (self.snd_nxt - self.snd_una) & SEQ_MASK

    # -- connection establishment ------------------------------------------------

    def open(self) -> None:
        """Client side: send SYN."""
        self.state = self.SYN_SENT
        self._send_segment(flags=TCP_FLAG_SYN, seq=self.snd_nxt, payload=b"")
        self.snd_nxt = (self.snd_nxt + 1) & SEQ_MASK

    # -- app send path --------------------------------------------------------------

    def send_app_bytes(self, nbytes: int) -> None:
        """Queue application bytes for transmission (netperf-style)."""
        if nbytes <= 0:
            return
        self._app_pending += nbytes
        self._pump()

    def _window_available(self) -> int:
        return min(self.cwnd, self.rwnd) - self.in_flight

    def _next_size(self) -> int:
        if self.state != self.ESTABLISHED or self._app_pending <= 0:
            return 0
        window = self._window_available()
        if window <= 0:
            return 0
        return min(self.gso_bytes, self._app_pending, window)

    def _pump(self) -> None:
        if self._sending:
            return
        size = self._next_size()
        if size <= 0:
            return
        self._sending = True
        self._emit(size)

    def _emit(self, size: int) -> None:
        seq = self.snd_nxt
        self.snd_nxt = (self.snd_nxt + size) & SEQ_MASK
        self._app_pending -= size
        self._unacked.append([seq, size])
        self.bytes_sent += size
        self._arm_rto()

        def after_send() -> None:
            self._sending = False
            self._pump()

        self._send_segment(
            flags=TCP_FLAG_ACK | TCP_FLAG_PSH,
            seq=seq,
            payload=bytes(size),
            then=after_send,
        )

    # -- segment transmission (the instrumented send path) -----------------------------

    def _send_segment(
        self,
        flags: int,
        seq: int,
        payload: bytes,
        ack: Optional[int] = None,
        then: Optional[Callable[[], None]] = None,
    ) -> None:
        node = self.node
        cpu = node.cpus[self.cpu_index]
        costs = node.costs
        route = node.route_lookup(self.remote_ip)
        device = route.device
        packet = make_tcp_packet(
            device.mac,
            node.resolve_mac(route.gateway or self.remote_ip),
            self.local_ip,
            self.remote_ip,
            self.local_port,
            self.remote_port,
            payload,
            seq=seq,
            ack=ack if ack is not None else self.rcv_nxt,
            flags=flags,
            app=self.app,
            created_at_ns=node.engine.now,
        )
        if payload:
            self.segments_sent += 1

        def stage_options_write() -> None:
            hook_cost = node.fire_function_hook(HOOK_TCP_OPTIONS_WRITE, packet, cpu, device)
            embed_cost = node.packet_hooks.on_tcp_options(packet, parent=self.trace_parent)
            node.charge(
                cpu,
                hook_cost + embed_cost + node.noisy(costs.tcp_options_write_ns),
                lambda: node.send_ip(packet, cpu, dst_ip=self.remote_ip),
                front=True,
            )
            if then is not None:
                then()

        def stage_transmit() -> None:
            packet.log_point(node.name, "tcp_transmit_skb", node.engine.now, cpu.index)
            hook_cost = node.fire_function_hook(HOOK_TCP_TRANSMIT_SKB, packet, cpu, device)
            node.charge(cpu, hook_cost, stage_options_write, front=True)

        # Pure ACKs and handshake segments are kernel-generated: no
        # syscall crossing, cheaper transmit work.
        if payload:
            base_cost = costs.syscall_send_ns + costs.tcp_transmit_skb_ns
        else:
            base_cost = costs.tcp_transmit_skb_ns // 2
        node.charge(cpu, node.noisy(base_cost), stage_transmit)

    # -- receive path -----------------------------------------------------------------------

    def on_segment(self, packet: Packet, cpu) -> None:
        tcp = packet.tcp
        node = self.node
        payload_len = packet.payload_length

        # Handshake transitions.
        if self.state == self.SYN_SENT and tcp.flags & TCP_FLAG_SYN and tcp.flags & TCP_FLAG_ACK:
            self.rcv_nxt = (tcp.seq + 1) & SEQ_MASK
            self.snd_una = tcp.ack
            self.state = self.ESTABLISHED
            self._send_ack()
            if self.on_established is not None:
                self.on_established(self)
            self._pump()
            return
        if self.state == self.SYN_RECEIVED and tcp.flags & TCP_FLAG_ACK:
            self.state = self.ESTABLISHED
            self.snd_una = tcp.ack
            if self.on_established is not None:
                self.on_established(self)
            if payload_len == 0:
                return
            # fall through: the ACK carried data

        if self.state != self.ESTABLISHED:
            return

        # ACK processing (sender side).
        if tcp.flags & TCP_FLAG_ACK:
            self._process_ack(tcp.ack)

        # Data processing (receiver side).
        if payload_len > 0:
            self.segments_received += 1
            self._process_data(tcp.seq, payload_len, packet, cpu)

    def _process_ack(self, ack: int) -> None:
        if _seq_lt(self.snd_una, ack) and _seq_lte(ack, self.snd_nxt):
            acked = (ack - self.snd_una) & SEQ_MASK
            self.snd_una = ack
            self.dup_acks = 0
            while self._unacked and _seq_lte(
                (self._unacked[0][0] + self._unacked[0][1]) & SEQ_MASK, ack
            ):
                self._unacked.pop(0)
            # Congestion window growth.
            if self.cwnd < self.ssthresh:
                self.cwnd += min(acked, MSS)  # slow start
            else:
                self.cwnd += max(1, MSS * MSS // self.cwnd)  # congestion avoidance
            self._arm_rto()
            self._pump()
        elif ack == self.snd_una and self._unacked:
            self.dup_acks += 1
            if self.dup_acks == 3:
                self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        self.ssthresh = max(self.cwnd // 2, 2 * MSS)
        self.cwnd = self.ssthresh
        self.retransmits += 1
        seq, size = self._unacked[0]
        self._send_segment(flags=TCP_FLAG_ACK | TCP_FLAG_PSH, seq=seq, payload=bytes(size))

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        if self._unacked:
            self._rto_event = self.node.engine.schedule(DEFAULT_RTO_NS, self._on_rto)
        else:
            self._rto_event = None

    def _on_rto(self) -> None:
        if not self._unacked or self.state != self.ESTABLISHED:
            return
        self.ssthresh = max(self.cwnd // 2, 2 * MSS)
        self.cwnd = 2 * MSS
        self.retransmits += 1
        seq, size = self._unacked[0]
        self._send_segment(flags=TCP_FLAG_ACK | TCP_FLAG_PSH, seq=seq, payload=bytes(size))
        self._arm_rto()

    def _process_data(self, seq: int, length: int, packet: Packet, cpu) -> None:
        node = self.node
        if seq == self.rcv_nxt:
            delivered = length
            self.rcv_nxt = (self.rcv_nxt + length) & SEQ_MASK
            while self.rcv_nxt in self._ooo:  # drain out-of-order queue
                extra = self._ooo.pop(self.rcv_nxt)
                self.rcv_nxt = (self.rcv_nxt + extra) & SEQ_MASK
                delivered += extra
            self._deliver_to_app(delivered, packet, cpu)
        elif _seq_lt(self.rcv_nxt, seq):
            self._ooo[seq] = length
            self._send_ack()  # duplicate ACK signals the gap
        else:
            self._send_ack()  # stale retransmission

    def _deliver_to_app(self, nbytes: int, packet: Packet, cpu) -> None:
        node = self.node
        costs = node.costs

        def app_read() -> None:
            packet.log_point(node.name, "tcp_recvmsg", node.engine.now, cpu.index)
            hook_cost = node.fire_function_hook(HOOK_TCP_RECVMSG, packet, cpu)

            def finish() -> None:
                self.bytes_delivered += nbytes
                self._send_ack()
                if self.on_data is not None:
                    self.on_data(self, nbytes, packet)

            node.charge(cpu, hook_cost, finish, front=True)

        node.charge(
            cpu,
            node.noisy(costs.socket_deliver_ns + costs.socket_wakeup_ns),
            app_read,
            front=True,
        )

    def _send_ack(self) -> None:
        self.acks_sent += 1
        self._send_segment(flags=TCP_FLAG_ACK, seq=self.snd_nxt, payload=b"")

    def __repr__(self) -> str:
        return (
            f"<TCPConnection {self.local_ip}:{self.local_port}->"
            f"{self.remote_ip}:{self.remote_port} {self.state} cwnd={self.cwnd}>"
        )


class TCPStack:
    """Per-node TCP: listeners, connections, and segment dispatch."""

    def __init__(self, node: "KernelNode"):
        self.node = node
        self.listeners: Dict[Tuple[int, int], TCPListener] = {}
        self.connections: Dict[Tuple[int, int, int, int], TCPConnection] = {}
        self._ephemeral = 40_000

    def listen(
        self,
        ip: IPv4Address,
        port: int,
        on_connection: Optional[Callable[[TCPConnection], None]] = None,
        cpu_index: Optional[int] = None,
        gso_bytes: int = MSS,
    ) -> TCPListener:
        key = (ip.value, port)
        if key in self.listeners:
            raise ValueError(f"{self.node.name}: TCP {ip}:{port} already listening")
        if cpu_index is None:
            cpu_index = 1 if len(self.node.cpus) > 1 else 0
        listener = TCPListener(self, ip, port, cpu_index, on_connection, gso_bytes)
        self.listeners[key] = listener
        return listener

    def connect(
        self,
        local_ip: IPv4Address,
        remote_ip: IPv4Address,
        remote_port: int,
        local_port: Optional[int] = None,
        cpu_index: Optional[int] = None,
        gso_bytes: int = MSS,
        app: str = "tcp",
    ) -> TCPConnection:
        if local_port is None:
            self._ephemeral += 1
            local_port = self._ephemeral
        if cpu_index is None:
            cpu_index = 1 if len(self.node.cpus) > 1 else 0
        conn = TCPConnection(
            self,
            local_ip,
            local_port,
            remote_ip,
            remote_port,
            cpu_index,
            is_client=True,
            gso_bytes=gso_bytes,
            app=app,
        )
        self.connections[conn.key] = conn
        conn.open()
        return conn

    def handle_segment(self, packet: Packet, cpu) -> None:
        ip = packet.ip
        tcp = packet.tcp
        if ip is None or tcp is None:
            return
        key = (ip.dst.value, tcp.dst_port, ip.src.value, tcp.src_port)
        conn = self.connections.get(key)
        if conn is not None:
            conn.on_segment(packet, cpu)
            return
        listener = self.listeners.get((ip.dst.value, tcp.dst_port))
        if listener is None:
            listener = self.listeners.get((0, tcp.dst_port))
        if listener is not None and tcp.flags & TCP_FLAG_SYN:
            conn = TCPConnection(
                self,
                ip.dst,
                tcp.dst_port,
                ip.src,
                tcp.src_port,
                listener.cpu_index,
                is_client=False,
                gso_bytes=listener.gso_bytes,
                app="tcp-server",
            )
            conn.state = TCPConnection.SYN_RECEIVED
            conn.rcv_nxt = (tcp.seq + 1) & SEQ_MASK
            self.connections[conn.key] = conn
            listener.accepted += 1
            if listener.on_connection is not None:
                listener.on_connection(conn)
            # SYN|ACK consumes one sequence number.
            syn_ack_seq = conn.snd_nxt
            conn.snd_nxt = (conn.snd_nxt + 1) & SEQ_MASK
            conn._send_segment(
                flags=TCP_FLAG_SYN | TCP_FLAG_ACK, seq=syn_ack_seq, payload=b""
            )
