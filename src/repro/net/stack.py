"""The kernel: devices, routes, sockets, and the protocol stack stages.

A :class:`KernelNode` is one Linux kernel instance -- a physical host,
a Dom0, or a guest.  Its protocol path is organised as the *named kernel
functions* the paper instruments (``udp_send_skb``, ``ip_output``,
``dev_queue_xmit``, ``net_rx_action``, ``udp_rcv``, ``tcp_v4_rcv``,
``tcp_recvmsg`` ...), each firing a hook that attached eBPF programs
run at.  Stage service times come from the node's
:class:`~repro.net.costs.CostModel` and are charged on simulated CPUs,
so probe overhead genuinely delays packets and steals CPU capacity.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, NamedTuple, Optional, TYPE_CHECKING

from repro.ebpf.probes import HookRegistry, ProbeEvent
from repro.net.addressing import IPv4Address, MACAddress
from repro.net.costs import DEFAULT_COSTS, CostModel
from repro.net.device import NetDevice
from repro.net.packet import (
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    Packet,
    make_udp_packet,
)
from repro.net.softirq import SoftirqNet
from repro.sim.clock import NodeClock
from repro.sim.cpu import CPU
from repro.sim.engine import Engine, Signal
from repro.sim.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.tcp import TCPStack

_mac_counter = itertools.count(0x10)

HOOK_UDP_SEND_SKB = "kprobe:udp_send_skb"
HOOK_IP_OUTPUT = "kprobe:ip_output"
HOOK_DEV_QUEUE_XMIT = "kprobe:dev_queue_xmit"
HOOK_IP_RCV = "kprobe:ip_rcv"
HOOK_UDP_RCV = "kprobe:udp_rcv"
HOOK_TCP_V4_RCV = "kprobe:tcp_v4_rcv"
HOOK_TCP_RECVMSG = "kretprobe:tcp_recvmsg"
HOOK_GET_RPS_CPU = "kprobe:get_rps_cpu"
HOOK_SKB_COPY_DATAGRAM = "kprobe:skb_copy_datagram_iovec"


class PacketMetadataHooks:
    """Explicit registry of packet-metadata engines attached to a node.

    Historically the trace-ID patch lived in a magic ``node.traceid``
    attribute that :func:`repro.net.traceid.enable_trace_ids` assigned
    from the outside.  This registry replaces that comment-coupling
    with a declared interface: any engine that rewrites wire bytes at
    the kernel's metadata points (``udp_send_skb``, the pre-copy trim,
    ``tcp_options_write``) registers here, and a node can carry several
    such engines without attribute collisions.

    An engine implements any subset of the hook methods below; each
    returns the CPU cost (ns) its rewrite charges, and the stack sums
    the costs across engines.
    """

    _METHODS = ("on_udp_send", "on_udp_deliver", "on_tcp_options")

    def __init__(self) -> None:
        self.engines: List[object] = []

    def register(self, engine: object) -> object:
        """Add ``engine`` (idempotent); it must implement at least one
        hook method."""
        if not any(hasattr(engine, m) for m in self._METHODS):
            raise StackError(
                f"packet-metadata engine {engine!r} implements none of {self._METHODS}"
            )
        if engine not in self.engines:
            self.engines.append(engine)
        return engine

    def find(self, kind: type) -> Optional[object]:
        """The first registered engine of class ``kind``, or ``None``."""
        for engine in self.engines:
            if isinstance(engine, kind):
                return engine
        return None

    def on_udp_send(self, packet: Packet, mtu: Optional[int] = None, parent=None) -> int:
        """``udp_send_skb`` time: engines may append wire bytes."""
        return sum(
            engine.on_udp_send(packet, mtu=mtu, parent=parent)
            for engine in self.engines
            if hasattr(engine, "on_udp_send")
        )

    def on_udp_deliver(self, packet: Packet) -> int:
        """Pre-copy trim time: engines remove what they appended."""
        return sum(
            engine.on_udp_deliver(packet)
            for engine in self.engines
            if hasattr(engine, "on_udp_deliver")
        )

    def on_tcp_options(self, packet: Packet, parent=None) -> int:
        """``tcp_options_write`` time: engines may add TCP options."""
        return sum(
            engine.on_tcp_options(packet, parent=parent)
            for engine in self.engines
            if hasattr(engine, "on_tcp_options")
        )

    def __len__(self) -> int:
        return len(self.engines)

    def __iter__(self):
        return iter(self.engines)


class Route(NamedTuple):
    network: IPv4Address
    prefix_len: int
    device: NetDevice
    src_ip: Optional[IPv4Address] = None
    gateway: Optional[IPv4Address] = None


class StackError(RuntimeError):
    """Configuration errors (duplicate binds, no route, ...)."""


class UDPSocket:
    """A bound UDP endpoint.

    Receive either by assigning :attr:`on_receive` (callback style) or
    by waiting on :meth:`recv_signal` from a SimProcess.
    """

    def __init__(self, node: "KernelNode", ip: IPv4Address, port: int, cpu_index: int = 0):
        self.node = node
        self.ip = ip
        self.port = port
        self.cpu_index = cpu_index
        self.on_receive: Optional[Callable[[bytes, IPv4Address, int, Packet], None]] = None
        self.recv_queue: List[tuple] = []
        self._waiter: Optional[Signal] = None
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.closed = False

    def sendto(
        self,
        dst_ip: IPv4Address,
        dst_port: int,
        payload: bytes,
        app: str = "",
        app_seq: int = 0,
        parent_id=None,
    ) -> None:
        self.tx_packets += 1
        self.node.udp_send(
            self, dst_ip, dst_port, payload, app=app, app_seq=app_seq, parent_id=parent_id
        )

    def deliver(self, payload: bytes, src_ip: IPv4Address, src_port: int, packet: Packet) -> None:
        if self.closed:
            return
        self.rx_packets += 1
        self.rx_bytes += len(payload)
        if self.on_receive is not None:
            self.on_receive(payload, src_ip, src_port, packet)
            return
        self.recv_queue.append((payload, src_ip, src_port, packet))
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.trigger()

    def recv_signal(self) -> Signal:
        """A signal that fires when a datagram is (or already was) queued."""
        signal = Signal(self.node.engine)
        if self.recv_queue:
            signal.trigger()
        else:
            self._waiter = signal
        return signal

    def close(self) -> None:
        self.closed = True
        self.node.unbind_udp(self)


class KernelNode:
    """One kernel instance with CPUs, devices, hooks, and sockets."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        num_cpus: int = 4,
        costs: Optional[CostModel] = None,
        rng: Optional[SeededRNG] = None,
        clock: Optional[NodeClock] = None,
        cpus: Optional[List[CPU]] = None,
    ):
        self.engine = engine
        self.name = name
        self.costs = costs or DEFAULT_COSTS
        self.rng = rng or SeededRNG(0, f"node/{name}")
        self.clock = clock or NodeClock(engine)
        if cpus is not None:
            self.cpus = cpus
        else:
            self.cpus = [
                CPU(engine, name=f"{name}/cpu{i}", index=i) for i in range(num_cpus)
            ]
        self.hooks = HookRegistry(node_name=name)
        self.softirq = SoftirqNet(self)
        self.devices: Dict[str, NetDevice] = {}
        self._ifindex_counter = itertools.count(1)
        self.routes: List[Route] = []
        self.neighbors: Dict[int, MACAddress] = {}
        self._udp_sockets: Dict[tuple, UDPSocket] = {}
        self._vxlan_ports: Dict[int, object] = {}  # udp port -> VXLANDevice
        self.packet_hooks = PacketMetadataHooks()
        self.icmp = None  # set by repro.net.icmp.ICMPResponder
        self._tcp: Optional["TCPStack"] = None
        self.ip_forward = False

    def register_icmp(self, responder) -> None:
        self.icmp = responder

    @property
    def traceid(self):
        """Back-compat view of the trace-ID engine inside the explicit
        :class:`PacketMetadataHooks` registry (may be ``None``)."""
        from repro.net.traceid import TraceIDEngine

        return self.packet_hooks.find(TraceIDEngine)

    # -- plumbing -----------------------------------------------------------

    def next_mac(self) -> MACAddress:
        return MACAddress.from_index(next(_mac_counter))

    def register_device(self, device: NetDevice) -> int:
        if device.name in self.devices:
            raise StackError(f"{self.name}: duplicate device {device.name!r}")
        self.devices[device.name] = device
        return next(self._ifindex_counter)

    def device(self, name: str) -> NetDevice:
        try:
            return self.devices[name]
        except KeyError:
            raise StackError(f"{self.name}: no device {name!r}") from None

    def noisy(self, base_ns: int) -> int:
        """Service-time jitter: lognormal around the base cost."""
        sigma = self.costs.timer_noise_sigma
        if sigma <= 0 or base_ns <= 0:
            return int(base_ns)
        return self.rng.lognormal_ns(base_ns, sigma)

    def charge(
        self,
        cpu: Optional[CPU],
        cost_ns: int,
        fn: Callable[[], None],
        front: bool = False,
        noise: bool = False,
    ) -> None:
        """Charge ``cost_ns`` (on ``cpu`` if given) then run ``fn``."""
        cost = self.noisy(cost_ns) if noise else int(cost_ns)
        if cpu is None:
            self.engine.schedule(cost, fn)
        elif cost <= 0:
            fn()
        elif front:
            cpu.submit_front(cost, fn)
        else:
            cpu.submit(cost, fn)

    # -- hooks ------------------------------------------------------------------

    def fire_device_hook(self, device: NetDevice, packet: Packet, cpu, direction: str) -> int:
        event = ProbeEvent(
            hook=f"dev:{device.name}",
            node=self.name,
            packet=packet,
            ifindex=device.ifindex,
            devname=device.name,
            cpu=cpu.index if cpu is not None else 0,
            direction=direction,
        )
        return self.hooks.fire(event)

    def fire_function_hook(
        self,
        hook: str,
        packet: Optional[Packet],
        cpu,
        device: Optional[NetDevice] = None,
        extra: Optional[dict] = None,
    ) -> int:
        event = ProbeEvent(
            hook=hook,
            node=self.name,
            packet=packet,
            ifindex=device.ifindex if device else 0,
            devname=device.name if device else "",
            cpu=cpu.index if cpu is not None else 0,
            extra=extra,
        )
        return self.hooks.fire(event)

    def fire_steering_hook(self, device: NetDevice, packet: Packet, cpu_index: int) -> int:
        event = ProbeEvent(
            hook=HOOK_GET_RPS_CPU,
            node=self.name,
            packet=packet,
            ifindex=device.ifindex,
            devname=device.name,
            cpu=cpu_index,
            extra={"steered_cpu": cpu_index},
        )
        return self.hooks.fire(event)

    # -- routing ---------------------------------------------------------------------

    def add_route(
        self,
        network: IPv4Address,
        prefix_len: int,
        device: NetDevice,
        src_ip: Optional[IPv4Address] = None,
        gateway: Optional[IPv4Address] = None,
    ) -> None:
        self.routes.append(Route(network, prefix_len, device, src_ip, gateway))
        self.routes.sort(key=lambda r: -r.prefix_len)

    def route_lookup(self, dst_ip: IPv4Address) -> Route:
        for route in self.routes:
            if dst_ip.in_subnet(route.network, route.prefix_len):
                return route
        raise StackError(f"{self.name}: no route to {dst_ip}")

    def add_neighbor(self, ip: IPv4Address, mac: MACAddress) -> None:
        self.neighbors[ip.value] = mac

    def resolve_mac(self, ip: IPv4Address) -> MACAddress:
        return self.neighbors.get(ip.value, MACAddress.broadcast())

    # -- UDP sockets ------------------------------------------------------------------

    def bind_udp(self, ip: IPv4Address, port: int, cpu_index: Optional[int] = None) -> UDPSocket:
        key = (ip.value, port)
        if key in self._udp_sockets:
            raise StackError(f"{self.name}: UDP {ip}:{port} already bound")
        if cpu_index is None:
            cpu_index = 1 if len(self.cpus) > 1 else 0
        socket = UDPSocket(self, ip, port, cpu_index=cpu_index)
        self._udp_sockets[key] = socket
        return socket

    def unbind_udp(self, socket: UDPSocket) -> None:
        self._udp_sockets.pop((socket.ip.value, socket.port), None)

    def lookup_udp(self, ip: IPv4Address, port: int) -> Optional[UDPSocket]:
        socket = self._udp_sockets.get((ip.value, port))
        if socket is None:
            socket = self._udp_sockets.get((0, port))  # INADDR_ANY
        return socket

    def register_vxlan_port(self, udp_port: int, vxlan_device) -> None:
        self._vxlan_ports[udp_port] = vxlan_device

    # -- TCP --------------------------------------------------------------------------------

    @property
    def tcp(self) -> "TCPStack":
        if self._tcp is None:
            from repro.net.tcp import TCPStack

            self._tcp = TCPStack(self)
        return self._tcp

    # -- UDP send path -----------------------------------------------------------------------

    def udp_send(
        self,
        socket: UDPSocket,
        dst_ip: IPv4Address,
        dst_port: int,
        payload: bytes,
        app: str = "",
        app_seq: int = 0,
        parent_id=None,
    ) -> None:
        route = self.route_lookup(dst_ip)
        device = route.device
        src_ip = socket.ip if socket.ip.value != 0 else (route.src_ip or socket.ip)
        packet = make_udp_packet(
            device.mac,
            self.resolve_mac(route.gateway or dst_ip),
            src_ip,
            dst_ip,
            socket.port,
            dst_port,
            payload,
            app=app,
            app_seq=app_seq,
            created_at_ns=self.engine.now,
        )
        cpu = self.cpus[socket.cpu_index]
        costs = self.costs

        def stage_udp_send_skb() -> None:
            packet.log_point(self.name, "udp_send_skb", self.engine.now, cpu.index)
            # Metadata engines write first (the paper's kernel patch
            # runs inside udp_send_skb), so a probe here already sees
            # the trace ID on the wire bytes.
            embed_cost = self.packet_hooks.on_udp_send(
                packet, mtu=device.mtu, parent=parent_id
            )
            hook_cost = self.fire_function_hook(HOOK_UDP_SEND_SKB, packet, cpu, device)
            self.charge(cpu, hook_cost + embed_cost, stage_ip_output, front=True)

        def stage_ip_output() -> None:
            packet.log_point(self.name, "ip_output", self.engine.now, cpu.index)
            hook_cost = self.fire_function_hook(HOOK_IP_OUTPUT, packet, cpu, device)
            self.charge(
                cpu,
                hook_cost + self.noisy(costs.ip_output_ns),
                stage_dev_queue_xmit,
                front=True,
            )

        def stage_dev_queue_xmit() -> None:
            hook_cost = self.fire_function_hook(HOOK_DEV_QUEUE_XMIT, packet, cpu, device)
            self.charge(
                cpu,
                hook_cost + self.noisy(costs.dev_queue_xmit_ns),
                lambda: device.transmit(packet, cpu),
                front=True,
            )

        self.charge(
            cpu,
            self.noisy(costs.syscall_send_ns + costs.udp_send_skb_ns),
            stage_udp_send_skb,
        )

    def send_ip(self, packet: Packet, cpu, dst_ip: Optional[IPv4Address] = None) -> None:
        """Route and transmit a fully-built packet (VXLAN encap, TCP)."""
        target = dst_ip if dst_ip is not None else packet.ip.dst
        route = self.route_lookup(target)
        device = route.device
        if packet.eth is not None:
            packet.eth.src = device.mac
            packet.eth.dst = self.resolve_mac(route.gateway or target)

        def stage_xmit() -> None:
            hook_cost = self.fire_function_hook(HOOK_DEV_QUEUE_XMIT, packet, cpu, device)
            self.charge(
                cpu,
                hook_cost + self.noisy(self.costs.dev_queue_xmit_ns),
                lambda: device.transmit(packet, cpu),
                front=True,
            )

        hook_cost = self.fire_function_hook(HOOK_IP_OUTPUT, packet, cpu, device)
        packet.log_point(self.name, "ip_output", self.engine.now, cpu.index if cpu else 0)
        self.charge(cpu, hook_cost + self.noisy(self.costs.ip_output_ns), stage_xmit, front=True)

    # -- receive path --------------------------------------------------------------------------

    def owns_ip(self, ip: IPv4Address) -> bool:
        return any(dev.ip == ip for dev in self.devices.values() if dev.ip is not None)

    def l3_receive(self, device: NetDevice, packet: Packet, cpu) -> None:
        """IP input: runs in softirq context after the device rx hook.

        Delivery semantics: a packet addressed to the receiving
        device's own IP is delivered locally.  A packet addressed to an
        IP owned by *another* device of this kernel (a container's veth
        inside the VM) is forwarded along the route -- through
        ``docker0`` and the veth pair -- when ``ip_forward`` is on; with
        forwarding off Linux's weak-host model applies and the packet
        is delivered directly.
        """
        ip = packet.ip
        if ip is None:
            return  # non-IP frames (ARP etc.) are not modeled
        packet.log_point(self.name, "ip_rcv", self.engine.now, cpu.index)
        hook_cost = self.fire_function_hook(HOOK_IP_RCV, packet, cpu, device)

        if device.ip == ip.dst:
            local = True
        elif self.ip_forward and (self.owns_ip(ip.dst) or self._has_forward_route(ip.dst)):
            local = False
        else:
            local = True  # Linux weak-host model: deliver to the socket

        def dispatch() -> None:
            if not local:
                # ip_forward: back out through the routing table.
                self.charge(
                    cpu,
                    self.noisy(self.costs.ip_forward_ns),
                    lambda: self.send_ip(packet, cpu),
                    front=True,
                )
                return
            if ip.protocol == IPPROTO_UDP:
                self._udp_receive(device, packet, cpu)
            elif ip.protocol == IPPROTO_TCP:
                self._tcp_receive(device, packet, cpu)
            elif ip.protocol == IPPROTO_ICMP and self.icmp is not None:
                self.icmp.receive(packet, cpu)
            # other protocols: counted but dropped

        self.charge(cpu, hook_cost, dispatch, front=True)

    def _has_forward_route(self, dst: IPv4Address) -> bool:
        try:
            self.route_lookup(dst)
            return True
        except StackError:
            return False

    def _udp_receive(self, device: NetDevice, packet: Packet, cpu) -> None:
        udp = packet.udp
        costs = self.costs
        vxlan_device = self._vxlan_ports.get(udp.dst_port)
        if vxlan_device is not None:
            self.charge(
                cpu,
                self.noisy(costs.udp_rcv_ns),
                lambda: vxlan_device.decap_receive(packet, cpu),
                front=True,
            )
            return

        hook_cost = self.fire_function_hook(HOOK_UDP_RCV, packet, cpu, device)
        packet.log_point(self.name, "udp_rcv", self.engine.now, cpu.index)

        def deliver_to_socket() -> None:
            socket = self.lookup_udp(packet.ip.dst, udp.dst_port)
            if socket is None:
                return  # ICMP port-unreachable in real life
            # Probe point at the entry of the app-buffer copy: the
            # trace ID is still on the skb here; pskb_trim_rcsum()
            # removes it just before the bytes reach the application.
            copy_hook_cost = self.fire_function_hook(
                HOOK_SKB_COPY_DATAGRAM, packet, cpu, device
            )
            strip_cost = self.packet_hooks.on_udp_deliver(packet)
            payload = packet.payload if isinstance(packet.payload, bytes) else b""

            def finish() -> None:
                packet.log_point(self.name, "socket_deliver", self.engine.now, cpu.index)
                self.charge(
                    cpu,
                    copy_hook_cost,
                    lambda: socket.deliver(payload, packet.ip.src, udp.src_port, packet),
                    front=True,
                )

            self.charge(
                cpu,
                strip_cost
                + self.noisy(costs.socket_deliver_ns + costs.socket_wakeup_ns),
                finish,
                front=True,
            )

        self.charge(cpu, hook_cost + self.noisy(costs.udp_rcv_ns), deliver_to_socket, front=True)

    def _tcp_receive(self, device: NetDevice, packet: Packet, cpu) -> None:
        hook_cost = self.fire_function_hook(HOOK_TCP_V4_RCV, packet, cpu, device)
        packet.log_point(self.name, "tcp_v4_rcv", self.engine.now, cpu.index)
        self.charge(
            cpu,
            hook_cost + self.noisy(self.costs.tcp_v4_rcv_ns),
            lambda: self.tcp.handle_segment(packet, cpu),
            front=True,
        )

    def __repr__(self) -> str:
        return f"<KernelNode {self.name} devices={list(self.devices)}>"
