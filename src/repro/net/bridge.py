"""A learning Ethernet bridge (``xenbr0``, ``docker0``, overlay bridges).

The bridge is itself a :class:`~repro.net.device.NetDevice`, so tracing
scripts attach to it by name exactly as the paper binds probes at
``xenbr0`` (Case Study II) and observes ``docker0`` bottlenecks (Case
Study III).  Enslaved ports set ``device.master`` to the bridge; their
softirq delivery calls :meth:`ingress`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.net.device import NetDevice
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode


class BridgeDevice(NetDevice):
    """Learning bridge with a forwarding database (fdb)."""

    kind = "bridge"

    def __init__(self, node: "KernelNode", name: str, **kwargs):
        super().__init__(node, name, **kwargs)
        self.ports: List[NetDevice] = []
        self.fdb: Dict[int, NetDevice] = {}  # MAC value -> port
        self.forwarded = 0
        self.flooded = 0

    def add_port(self, device: NetDevice) -> None:
        if device.master is not None:
            raise ValueError(f"{device.name} is already enslaved")
        device.master = self
        self.ports.append(device)

    def ingress(self, from_port: NetDevice, packet: Packet, cpu) -> None:
        """A frame entered the bridge through ``from_port`` (softirq ctx)."""
        node = self.node
        eth = packet.eth
        if eth is not None:
            self.fdb[eth.src.value] = from_port  # learn

        packet.log_point(node.name, f"dev:{self.name}:fwd", node.engine.now, cpu.index)
        hook_cost = node.fire_device_hook(self, packet, cpu, direction="forward")

        def forward() -> None:
            if eth is None:
                return
            if eth.dst == self.mac or (
                self.ip is not None
                and packet.ip is not None
                and packet.ip.dst == self.ip
            ):
                # Addressed to the bridge itself: up the local stack.
                node.l3_receive(self, packet, cpu)
                return
            out_port = self.fdb.get(eth.dst.value)
            if out_port is not None and out_port is not from_port:
                self.forwarded += 1
                out_port.transmit(packet, cpu)
                return
            if out_port is from_port:
                return  # hairpin: drop
            self._flood(from_port, packet, cpu)

        node.charge(
            cpu,
            hook_cost + node.noisy(node.costs.bridge_forward_ns),
            forward,
            front=True,
        )

    def _flood(self, from_port: NetDevice, packet: Packet, cpu) -> None:
        self.flooded += 1
        targets = [port for port in self.ports if port is not from_port and port.up]
        for index, port in enumerate(targets):
            copy = packet if index == len(targets) - 1 else packet.clone()
            port.transmit(copy, cpu)

    def _egress(self, packet: Packet, cpu) -> None:
        """Transmit *from the host stack* out of the bridge device: the
        bridge forwards by MAC like any ingress frame."""
        eth = packet.eth
        out_port: Optional[NetDevice] = None
        if eth is not None:
            out_port = self.fdb.get(eth.dst.value)
        if out_port is not None:
            self.forwarded += 1
            out_port.transmit(packet, cpu)
        else:
            self._flood(self, packet, cpu)

    def _tx_cost_ns(self, packet: Packet) -> int:
        return self.node.costs.bridge_forward_ns
