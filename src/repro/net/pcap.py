"""Packet capture to the classic libpcap format.

The original BPF's flagship application is tcpdump (§II); this module
provides the equivalent for the simulated substrate: a
:class:`PacketCapture` attaches to any device hook and serializes the
frames it sees -- trace IDs and all -- into a standard ``.pcap`` file
that real Wireshark/tcpdump can open.  A matching :class:`PcapReader`
round-trips captures for tests and offline analysis.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterator, List, Optional, Tuple, Union

from repro.ebpf.probes import Attachment, ProbeEvent
from repro.net.packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
GLOBAL_HEADER = struct.Struct("<IHHiIII")
RECORD_HEADER = struct.Struct("<IIII")

# tcpdump-style per-packet capture cost (copy into the capture buffer).
CAPTURE_COST_NS = 650


class PcapError(ValueError):
    """Malformed capture file."""


class PcapWriter:
    """Stream packets into a pcap file (or any binary file-like)."""

    def __init__(
        self,
        target: Union[str, BinaryIO],
        snaplen: int = 65535,
    ):
        if isinstance(target, str):
            self._file: BinaryIO = open(target, "wb")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.snaplen = snaplen
        self.packets_written = 0
        self._file.write(
            GLOBAL_HEADER.pack(
                PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1],
                0, 0, snaplen, LINKTYPE_ETHERNET,
            )
        )

    def write_packet(self, wire_bytes: bytes, timestamp_ns: int) -> None:
        captured = wire_bytes[: self.snaplen]
        seconds, remainder_ns = divmod(timestamp_ns, 1_000_000_000)
        self._file.write(
            RECORD_HEADER.pack(seconds, remainder_ns // 1000, len(captured), len(wire_bytes))
        )
        self._file.write(captured)
        self.packets_written += 1

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PcapReader:
    """Iterate (timestamp_ns, wire_bytes) records of a pcap file."""

    def __init__(self, target: Union[str, BinaryIO]):
        if isinstance(target, str):
            self._file: BinaryIO = open(target, "rb")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        header = self._file.read(GLOBAL_HEADER.size)
        if len(header) < GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        (magic, major, minor, _tz, _sig, self.snaplen, self.linktype) = (
            GLOBAL_HEADER.unpack(header)
        )
        if magic != PCAP_MAGIC:
            raise PcapError(f"bad pcap magic {magic:#x}")
        if (major, minor) != PCAP_VERSION:
            raise PcapError(f"unsupported pcap version {major}.{minor}")

    def __iter__(self) -> Iterator[Tuple[int, bytes]]:
        while True:
            header = self._file.read(RECORD_HEADER.size)
            if not header:
                return
            if len(header) < RECORD_HEADER.size:
                raise PcapError("truncated pcap record header")
            seconds, micros, incl_len, _orig_len = RECORD_HEADER.unpack(header)
            data = self._file.read(incl_len)
            if len(data) < incl_len:
                raise PcapError("truncated pcap record body")
            yield seconds * 1_000_000_000 + micros * 1000, data

    def close(self) -> None:
        if self._owns_file:
            self._file.close()


class PacketCapture(Attachment):
    """A hook attachment that captures frames pcap-style.

    Attach to any device hook:

        capture = PacketCapture(node)
        node.hooks.attach("dev:eth0", capture)
        ...
        capture.save("eth0.pcap")

    Timestamps come from the node's CLOCK_MONOTONIC (like tcpdump's
    adapter timestamps); ``rule`` optionally filters like a capture
    expression; ``snaplen`` truncates stored bytes.
    """

    def __init__(
        self,
        node,
        snaplen: int = 65535,
        max_packets: Optional[int] = None,
        rule=None,
        name: str = "pcap",
    ):
        super().__init__(name)
        self.node = node
        self.snaplen = snaplen
        self.max_packets = max_packets
        self.rule = rule
        self.records: List[Tuple[int, bytes]] = []
        self.dropped = 0

    def handle(self, event: ProbeEvent) -> int:
        if event.packet is None:
            return 0
        if self.rule is not None and not _rule_matches(self.rule, event.packet):
            return 0
        if self.max_packets is not None and len(self.records) >= self.max_packets:
            self.dropped += 1
            return 0
        wire = event.packet.to_bytes()[: self.snaplen]
        self.records.append((self.node.clock.monotonic_ns(), wire))
        return CAPTURE_COST_NS

    def save(self, target: Union[str, BinaryIO]) -> int:
        """Write the capture; returns the number of packets written."""
        with PcapWriter(target, snaplen=self.snaplen) as writer:
            for timestamp_ns, wire in self.records:
                writer.write_packet(wire, timestamp_ns)
            return writer.packets_written

    def packets(self) -> List[Packet]:
        """Parse captured frames back into structured packets."""
        return [Packet.from_bytes(wire) for _ts, wire in self.records]


def _rule_matches(rule, packet: Packet) -> bool:
    """Capture-filter evaluation in user space (mirrors the compiled
    filter semantics; used because a capture runs without the VM)."""
    inner = packet.innermost
    ip = inner.ip
    if ip is None:
        return rule.matches_everything()
    l4 = inner.tcp or inner.udp
    if rule.protocol is not None and ip.protocol != rule.protocol:
        return False
    if rule.src_ip is not None and not ip.src.in_subnet(rule.src_ip, rule.src_prefix_len):
        return False
    if rule.dst_ip is not None and not ip.dst.in_subnet(rule.dst_ip, rule.dst_prefix_len):
        return False
    if rule.src_port is not None and (l4 is None or l4.src_port != rule.src_port):
        return False
    if rule.dst_port is not None and (l4 is None or l4.dst_port != rule.dst_port):
        return False
    return True
