"""NET_RX softirq machinery: per-CPU backlogs, ``net_rx_action``, ksoftirqd.

Receive processing is deferred: devices enqueue ``(device, packet)``
entries on a per-CPU backlog, and a ``net_rx_action`` invocation -- one
CPU job with its own overhead -- drains up to a budget of entries.  The
invocation count per second is directly observable by attaching a probe
at ``kprobe:net_rx_action``, which is exactly the paper's Fig. 13(a)
measurement; the per-packet steering decision fires
``kprobe:get_rps_cpu`` (their CPU-distribution measurement).

Waking an idle ksoftirqd costs extra (``ksoftirqd_wake_ns``): the
sleep/wakeup churn the paper cites via Iron [39] as a container-network
tax.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Tuple

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.device import NetDevice
    from repro.net.stack import KernelNode

HOOK_NET_RX_ACTION = "kprobe:net_rx_action"


class SoftirqNet:
    """Per-kernel NET_RX subsystem."""

    def __init__(self, node: "KernelNode"):
        self.node = node
        num_cpus = len(node.cpus)
        self._backlogs: List[Deque[Tuple["NetDevice", Packet]]] = [
            deque() for _ in range(num_cpus)
        ]
        self._invocation_pending = [False] * num_cpus
        self.invocations = [0] * num_cpus
        self.packets_processed = [0] * num_cpus
        self.backlog_drops = 0

    # -- enqueue ---------------------------------------------------------

    def enqueue(self, device: "NetDevice", packet: Packet, cpu_index: int) -> bool:
        """Queue a received packet for softirq processing on ``cpu_index``."""
        node = self.node
        backlog = self._backlogs[cpu_index]
        if len(backlog) >= node.costs.rx_backlog_packets:
            self.backlog_drops += 1
            return False
        backlog.append((device, packet))
        self._kick(cpu_index)
        return True

    def _kick(self, cpu_index: int) -> None:
        if self._invocation_pending[cpu_index]:
            return
        self._invocation_pending[cpu_index] = True
        node = self.node
        cpu = node.cpus[cpu_index]
        cost = node.noisy(node.costs.net_rx_action_invocation_ns)
        if not cpu.busy and cpu.queue_depth == 0:
            # ksoftirqd (or the softirq exit path) has gone idle; waking
            # it costs real time.
            cost += node.costs.ksoftirqd_wake_ns
        cpu.submit(cost, lambda: self._run(cpu_index), tag="net_rx_action")

    # -- the invocation ---------------------------------------------------

    def _run(self, cpu_index: int) -> None:
        node = self.node
        cpu = node.cpus[cpu_index]
        self._invocation_pending[cpu_index] = False
        self.invocations[cpu_index] += 1
        hook_cost = node.fire_function_hook(
            HOOK_NET_RX_ACTION, None, cpu, extra={"cpu": cpu_index}
        )

        backlog = self._backlogs[cpu_index]
        if not backlog:
            return

        # Snapshot a batch bounded by the NAPI budget and by each
        # device's own quota within the run.
        budget = node.costs.napi_budget
        quota_used: dict = {}
        batch: List[Tuple["NetDevice", Packet]] = []
        deferred: List[Tuple["NetDevice", Packet]] = []
        while backlog and len(batch) < budget:
            device, packet = backlog.popleft()
            used = quota_used.get(device.ifindex, 0)
            if used >= device.napi_quota:
                deferred.append((device, packet))
                continue
            quota_used[device.ifindex] = used + 1
            batch.append((device, packet))
        for item in reversed(deferred):
            backlog.appendleft(item)

        # Per-packet delivery jobs run ahead of other queued work on this
        # CPU (softirq runs to completion before process context).
        for device, packet in reversed(batch):
            self.packets_processed[cpu_index] += 1
            cpu.submit_front(
                node.noisy(device.rx_job_cost_ns(packet)),
                self._make_deliver(device, packet, cpu),
                tag="rx_packet",
            )
        if hook_cost > 0:
            # Probe overhead delays the whole batch (runs first).
            cpu.submit_front(hook_cost, None, tag="probe")

        if backlog:
            # Budget exhausted: NAPI requeues; another invocation follows.
            self._kick(cpu_index)

    @staticmethod
    def _make_deliver(device: "NetDevice", packet: Packet, cpu):
        def deliver() -> None:
            device.deliver(packet, cpu)

        return deliver

    # -- introspection ---------------------------------------------------------

    def total_invocations(self) -> int:
        return sum(self.invocations)

    def invocation_distribution(self) -> List[float]:
        """Fraction of invocations per CPU (Fig. 13a style)."""
        total = self.total_invocations()
        if total == 0:
            return [0.0] * len(self.invocations)
        return [count / total for count in self.invocations]

    def __repr__(self) -> str:
        return (
            f"<SoftirqNet {self.node.name} invocations={self.invocations} "
            f"drops={self.backlog_drops}>"
        )
