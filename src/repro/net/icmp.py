"""ICMP echo (ping): the classic connectivity and RTT diagnostic.

vNetTracer's operators reach for ping constantly (is the overlay even
connected? what is the raw RTT before blaming the application?), so the
substrate carries a minimal ICMP implementation: echo request/reply
with identifier/sequence/payload, a per-node responder wired into the
IP input path, and a :class:`Ping` driver that reports per-sequence
RTTs.  Packets use the real ICMP header layout, so captures of them
open in Wireshark.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.net.addressing import IPv4Address
from repro.net.checksum import internet_checksum
from repro.net.packet import (
    ETHERTYPE_IPV4,
    EthernetHeader,
    IPPROTO_ICMP,
    IPv4Header,
    Packet,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode

ICMP_ECHO_REQUEST = 8
ICMP_ECHO_REPLY = 0
ICMP_HEADER = struct.Struct("!BBHHH")  # type, code, checksum, id, seq

HOOK_ICMP_RCV = "kprobe:icmp_rcv"
ICMP_PROCESS_COST_NS = 450


def build_echo(
    icmp_type: int, identifier: int, sequence: int, payload: bytes
) -> bytes:
    """Serialize an ICMP echo message with a correct checksum."""
    without_csum = ICMP_HEADER.pack(icmp_type, 0, 0, identifier, sequence) + payload
    checksum = internet_checksum(without_csum)
    return ICMP_HEADER.pack(icmp_type, 0, checksum, identifier, sequence) + payload


def parse_echo(data: bytes):
    """(type, identifier, sequence, payload) of an echo message."""
    if len(data) < ICMP_HEADER.size:
        raise ValueError("truncated ICMP message")
    icmp_type, code, _checksum, identifier, sequence = ICMP_HEADER.unpack(
        data[: ICMP_HEADER.size]
    )
    return icmp_type, identifier, sequence, data[ICMP_HEADER.size:]


class ICMPResponder:
    """Per-node echo responder (the kernel's icmp_rcv + icmp_reply)."""

    def __init__(self, node: "KernelNode"):
        self.node = node
        self.requests_answered = 0
        self._listeners: Dict[int, Callable[[int, int, bytes, Packet], None]] = {}
        node.register_icmp(self)

    def register_listener(
        self, identifier: int, callback: Callable[[int, int, bytes, Packet], None]
    ) -> None:
        """Route echo *replies* with this identifier to a ping client."""
        self._listeners[identifier] = callback

    def unregister_listener(self, identifier: int) -> None:
        self._listeners.pop(identifier, None)

    def receive(self, packet: Packet, cpu) -> None:
        """Called by the node's IP input for protocol 1."""
        node = self.node
        payload = packet.payload if isinstance(packet.payload, bytes) else b""
        try:
            icmp_type, identifier, sequence, body = parse_echo(payload)
        except ValueError:
            return
        hook_cost = node.fire_function_hook(HOOK_ICMP_RCV, packet, cpu)

        def act() -> None:
            if icmp_type == ICMP_ECHO_REQUEST:
                self.requests_answered += 1
                self._reply(packet, identifier, sequence, body, cpu)
            elif icmp_type == ICMP_ECHO_REPLY:
                listener = self._listeners.get(identifier)
                if listener is not None:
                    listener(identifier, sequence, body, packet)

        node.charge(cpu, hook_cost + node.noisy(ICMP_PROCESS_COST_NS), act, front=True)

    def _reply(self, request: Packet, identifier: int, sequence: int,
               body: bytes, cpu) -> None:
        node = self.node
        reply = Packet(
            [
                EthernetHeader(request.eth.src, request.eth.dst, ETHERTYPE_IPV4),
                IPv4Header(request.ip.dst, request.ip.src, IPPROTO_ICMP),
            ],
            build_echo(ICMP_ECHO_REPLY, identifier, sequence, body),
            app="ping-reply",
            app_seq=sequence,
            created_at_ns=node.engine.now,
        )
        node.send_ip(reply, cpu, dst_ip=request.ip.src)


class Ping:
    """A ping client: fixed-interval echo requests, per-sequence RTTs."""

    _next_identifier = [0x1000]

    def __init__(
        self,
        node: "KernelNode",
        src_ip: IPv4Address,
        dst_ip: IPv4Address,
        payload_bytes: int = 56,
        interval_ns: int = 1_000_000,
        cpu_index: Optional[int] = None,
    ):
        self.node = node
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.payload_bytes = payload_bytes
        self.interval_ns = interval_ns
        self.cpu_index = cpu_index if cpu_index is not None else (
            1 if len(node.cpus) > 1 else 0
        )
        Ping._next_identifier[0] += 1
        self.identifier = Ping._next_identifier[0]
        self.responder = node.icmp if node.icmp is not None else ICMPResponder(node)
        self.responder.register_listener(self.identifier, self._on_reply)
        self._send_times: Dict[int, int] = {}
        self.rtts_ns: List[int] = []
        self.sent = 0
        self.received = 0
        self._remaining = 0

    def start(self, count: int) -> None:
        self._remaining = count
        self._tick()

    def _tick(self) -> None:
        if self._remaining <= 0:
            return
        self._remaining -= 1
        sequence = self.sent
        self.sent += 1
        self._send_times[sequence] = self.node.engine.now
        self._send_request(sequence)
        self.node.engine.schedule(self.interval_ns, self._tick)

    def _send_request(self, sequence: int) -> None:
        node = self.node
        route = node.route_lookup(self.dst_ip)
        request = Packet(
            [
                EthernetHeader(node.resolve_mac(route.gateway or self.dst_ip),
                               route.device.mac, ETHERTYPE_IPV4),
                IPv4Header(self.src_ip, self.dst_ip, IPPROTO_ICMP),
            ],
            build_echo(ICMP_ECHO_REQUEST, self.identifier, sequence,
                       bytes(self.payload_bytes)),
            app="ping",
            app_seq=sequence,
            created_at_ns=node.engine.now,
        )
        cpu = node.cpus[self.cpu_index]
        node.charge(cpu, node.noisy(node.costs.syscall_send_ns),
                    lambda: node.send_ip(request, cpu, dst_ip=self.dst_ip))

    def _on_reply(self, identifier: int, sequence: int, _body: bytes, _packet) -> None:
        sent_at = self._send_times.pop(sequence, None)
        if sent_at is None:
            return
        self.received += 1
        self.rtts_ns.append(self.node.engine.now - sent_at)

    @property
    def loss_count(self) -> int:
        return self.sent - self.received
