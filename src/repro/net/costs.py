"""The substrate's cost model: nanoseconds per kernel stage.

All timing constants live here so experiments and ablations tune one
object.  Values are calibrated to commodity Xeon-era hardware (the
paper's testbed: dual E5-2640 v4, Linux 4.10) at the order-of-magnitude
level; EXPERIMENTS.md records how measured shapes compare to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class CostModel:
    """Per-stage service times (ns) and structural parameters."""

    # -- socket / L4 send path ------------------------------------------------
    syscall_send_ns: int = 900  # user->kernel crossing + copy
    udp_send_skb_ns: int = 600
    tcp_transmit_skb_ns: int = 850
    tcp_options_write_ns: int = 120
    ip_output_ns: int = 350
    dev_queue_xmit_ns: int = 300

    # -- receive path -----------------------------------------------------------
    net_rx_action_invocation_ns: int = 1800  # softirq entry/exit + NAPI poll setup
    ksoftirqd_wake_ns: int = 2600  # sleep->wake when the backlog was empty
    ip_rcv_ns: int = 450
    ip_forward_ns: int = 520
    udp_rcv_ns: int = 420
    tcp_v4_rcv_ns: int = 650
    socket_deliver_ns: int = 500
    socket_wakeup_ns: int = 1800  # waking a blocked reader
    napi_budget: int = 64  # packets drained per net_rx_action run

    # -- devices -----------------------------------------------------------------
    veth_xmit_ns: int = 260
    bridge_forward_ns: int = 420
    vxlan_encap_ns: int = 1400
    vxlan_decap_ns: int = 2000
    nic_xmit_ns: int = 500  # DMA setup / doorbell

    # -- virtualization ------------------------------------------------------------
    virtio_tx_ns: int = 2300  # guest->host: kick + vhost copy
    virtio_rx_ns: int = 2500  # host->guest: copy + interrupt injection
    xen_netback_ns: int = 2900  # Dom0 vif -> shared ring
    xen_netfront_ns: int = 1600  # guest picks the packet out of the ring
    vm_exit_ns: int = 1200

    # -- OVS ------------------------------------------------------------------------
    ovs_port_rx_ns: int = 380  # ingress port processing before the queue
    ovs_switch_ns: int = 1150  # flow lookup + actions, per packet
    ovs_switch_per_busy_port_ns: int = 450  # extra per additional busy ingress port
    ovs_ingress_queue_packets: int = 512  # per-port ingress queue capacity
    ovs_port_tx_ns: int = 320

    # -- links -------------------------------------------------------------------------
    propagation_inter_host_ns: int = 20_000  # cable + ToR switch
    propagation_local_ns: int = 0

    # -- misc ----------------------------------------------------------------------------
    rx_backlog_packets: int = 1000  # per-CPU input_pkt_queue limit
    timer_noise_sigma: float = 0.06  # lognormal sigma applied to stage times

    extras: dict = field(default_factory=dict)

    def with_overrides(self, **overrides) -> "CostModel":
        """A copy with some constants replaced (ablation helper)."""
        return replace(self, **overrides)


DEFAULT_COSTS = CostModel()


def gbps_to_ns_per_byte(gbps: float) -> float:
    """Serialization time per byte on a link of the given rate."""
    bits_per_ns = gbps  # 1 Gbps == 1 bit/ns
    return 8.0 / bits_per_ns
