"""Simulated Linux network substrate.

This package models the pieces of the kernel data path that vNetTracer
instruments: packets with real binary header layouts, network devices
(NICs, veth pairs, learning bridges, VXLAN tunnels), the socket/UDP/TCP/IP
stack organised as *named kernel functions* that probes attach to, and
the softirq machinery (``net_rx_action``, ``ksoftirqd``, RPS steering).

Everything here is intentionally faithful at the level the paper's
experiments observe: header bytes parse correctly (eBPF filter programs
read them), stage costs accrue on simulated CPUs, and device hops raise
softirqs whose distribution across cores can be measured.
"""

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.icmp import ICMPResponder, Ping
from repro.net.pcap import PacketCapture, PcapReader, PcapWriter
from repro.net.flow import FiveTuple, flow_hash
from repro.net.packet import (
    EthernetHeader,
    IPv4Header,
    Packet,
    TCPHeader,
    UDPHeader,
    VXLANHeader,
)

__all__ = [
    "IPv4Address",
    "MACAddress",
    "FiveTuple",
    "flow_hash",
    "Packet",
    "EthernetHeader",
    "IPv4Header",
    "TCPHeader",
    "UDPHeader",
    "VXLANHeader",
    "Ping",
    "ICMPResponder",
    "PacketCapture",
    "PcapReader",
    "PcapWriter",
]
