"""IPv4 and MAC address value types.

Small immutable wrappers over integers with the parsing/formatting the
rest of the substrate needs.  Using value types (rather than raw strings)
keeps flow keys hashable and lets eBPF filter compilation emit the
numeric comparisons directly.
"""

from __future__ import annotations

import re
from typing import Union

_IPV4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")
_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")


class AddressError(ValueError):
    """Raised for malformed address literals."""


class IPv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("value",)

    def __init__(self, address: Union[str, int, "IPv4Address"]):
        if isinstance(address, IPv4Address):
            self.value = address.value
        elif isinstance(address, int):
            if not 0 <= address <= 0xFFFFFFFF:
                raise AddressError(f"IPv4 int out of range: {address}")
            self.value = address
        elif isinstance(address, str):
            match = _IPV4_RE.match(address)
            if not match:
                raise AddressError(f"malformed IPv4 literal: {address!r}")
            octets = [int(part) for part in match.groups()]
            if any(octet > 255 for octet in octets):
                raise AddressError(f"IPv4 octet out of range: {address!r}")
            self.value = (
                (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
            )
        else:
            raise AddressError(f"cannot build IPv4Address from {address!r}")

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        if len(data) != 4:
            raise AddressError(f"need 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def in_subnet(self, network: "IPv4Address", prefix_len: int) -> bool:
        """True if this address falls inside network/prefix_len."""
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"bad prefix length {prefix_len}")
        if prefix_len == 0:
            return True
        mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
        return (self.value & mask) == (network.value & mask)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4Address) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("ipv4", self.value))

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"


class MACAddress:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("value",)

    BROADCAST_VALUE = 0xFFFFFFFFFFFF

    def __init__(self, address: Union[str, int, "MACAddress"]):
        if isinstance(address, MACAddress):
            self.value = address.value
        elif isinstance(address, int):
            if not 0 <= address <= 0xFFFFFFFFFFFF:
                raise AddressError(f"MAC int out of range: {address}")
            self.value = address
        elif isinstance(address, str):
            if not _MAC_RE.match(address):
                raise AddressError(f"malformed MAC literal: {address!r}")
            cleaned = address.replace("-", ":")
            self.value = int(cleaned.replace(":", ""), 16)
        else:
            raise AddressError(f"cannot build MACAddress from {address!r}")

    @classmethod
    def broadcast(cls) -> "MACAddress":
        return cls(cls.BROADCAST_VALUE)

    @classmethod
    def from_index(cls, index: int) -> "MACAddress":
        """Deterministic locally-administered MAC for the nth simulated port."""
        if not 0 <= index <= 0xFFFFFFFF:
            raise AddressError(f"MAC index out of range: {index}")
        return cls(0x02_00_00_00_00_00 | index)

    def is_broadcast(self) -> bool:
        return self.value == self.BROADCAST_VALUE

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "MACAddress":
        if len(data) != 6:
            raise AddressError(f"need 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MACAddress) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("mac", self.value))

    def __str__(self) -> str:
        raw = f"{self.value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MACAddress({str(self)!r})"
