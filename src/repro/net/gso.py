"""Segmentation offload (TSO/GSO) and receive coalescing (GRO/LRO).

These are the mechanisms that make Case Study III's numbers what they
are: VM-to-VM TCP rides 64 KB super-segments through virtio (one stack
traversal amortized over ~45 MSS), while a VXLAN overlay must put
MTU-sized packets on the wire and re-aggregate after decapsulation --
each wire packet paying per-packet costs and raising softirqs.

* :func:`segment_packet` -- split a TCP super-segment into MSS-sized
  wire segments (what a TSO NIC or the GSO software path does).
* :class:`GROEngine` -- flow-aware coalescing of in-order TCP segments
  back into super-segments, flushed by batch size or a short timer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.net.flow import FiveTuple, packet_five_tuple
from repro.net.packet import Packet
from repro.sim.engine import Engine

META_GSO_SEGS = "gso_segs"


def gso_segs(packet: Packet) -> int:
    """How many logical MSS segments a (possibly super-) packet carries."""
    return int(packet.metadata.get(META_GSO_SEGS, 1))


def segment_packet(packet: Packet, mss: int) -> List[Packet]:
    """Split a large packet into wire-sized pieces.

    TCP super-segments split at ``mss`` with advancing sequence numbers
    (TSO/GSO).  Large UDP datagrams split the same way, modeling IP
    fragmentation when UFO cannot carry them further (e.g. into a VXLAN
    tunnel).  Small and non-L4 packets pass through."""
    payload = packet.payload
    if not isinstance(payload, bytes) or len(payload) <= mss:
        return [packet]
    tcp = packet.tcp
    if tcp is None and packet.udp is None:
        return [packet]
    segments: List[Packet] = []
    offset = 0
    while offset < len(payload):
        chunk = payload[offset : offset + mss]
        clone = packet.clone()
        clone.payload = chunk
        if tcp is not None:
            clone.tcp.seq = (tcp.seq + offset) & 0xFFFFFFFF
        clone.metadata[META_GSO_SEGS] = 1
        clone.app_seq = packet.app_seq
        segments.append(clone)
        offset += len(chunk)
    return segments


class GROEngine:
    """Coalesce in-order TCP segments of one flow into super-segments.

    ``deliver(packet, cpu)`` is called with either a pass-through packet
    or a merged super-segment.  Flush triggers: ``flush_batch`` segments
    accumulated, a sequence gap / non-mergeable packet, or the
    ``window_ns`` timer (packets must not sit forever -- GRO trades a
    few microseconds of latency for amortization)."""

    def __init__(
        self,
        engine: Engine,
        deliver: Callable[[Packet, object], None],
        flush_batch: int = 8,
        window_ns: int = 30_000,
        name: str = "gro",
    ):
        self.engine = engine
        self.deliver = deliver
        self.flush_batch = flush_batch
        self.window_ns = window_ns
        self.name = name
        # flow -> (segments, expected_next_seq, cpu, timer_event)
        self._buffers: Dict[FiveTuple, Tuple[List[Packet], int, object, object]] = {}
        self.merged_out = 0
        self.passthrough = 0

    def push(self, packet: Packet, cpu) -> None:
        tcp = packet.tcp
        flow = packet_five_tuple(packet)
        mergeable = (
            tcp is not None
            and flow is not None
            and isinstance(packet.payload, bytes)
            and len(packet.payload) > 0
        )
        if not mergeable:
            # Flush any buffer of the same flow first to preserve order.
            if flow is not None and flow in self._buffers:
                self.flush(flow)
            self.passthrough += 1
            self.deliver(packet, cpu)
            return

        buffer = self._buffers.get(flow)
        if buffer is not None:
            segments, expected_seq, _cpu, timer = buffer
            if tcp.seq == expected_seq:
                segments.append(packet)
                new_expected = (expected_seq + len(packet.payload)) & 0xFFFFFFFF
                self._buffers[flow] = (segments, new_expected, cpu, timer)
                if len(segments) >= self.flush_batch:
                    self.flush(flow)
                return
            self.flush(flow)  # gap or retransmit: drain, then start fresh

        timer = self.engine.schedule(self.window_ns, self._timer_flush, flow)
        expected = (tcp.seq + len(packet.payload)) & 0xFFFFFFFF
        self._buffers[flow] = ([packet], expected, cpu, timer)

    def _timer_flush(self, flow: FiveTuple) -> None:
        if flow in self._buffers:
            self.flush(flow)

    def flush(self, flow: FiveTuple) -> None:
        segments, _expected, cpu, timer = self._buffers.pop(flow)
        if timer is not None:
            timer.cancel()
        if len(segments) == 1:
            self.passthrough += 1
            self.deliver(segments[0], cpu)
            return
        merged = segments[0]
        merged.payload = b"".join(
            seg.payload for seg in segments if isinstance(seg.payload, bytes)
        )
        merged.metadata[META_GSO_SEGS] = sum(gso_segs(seg) for seg in segments)
        self.merged_out += 1
        self.deliver(merged, cpu)

    def flush_all(self) -> None:
        for flow in list(self._buffers):
            self.flush(flow)

    def __repr__(self) -> str:
        return f"<GROEngine {self.name} buffered_flows={len(self._buffers)}>"
