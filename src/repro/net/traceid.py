"""Per-packet trace IDs carried across domain boundaries (§III-B).

The paper modifies the kernel ("tens of lines") so every packet of a
traced application carries a unique 32-bit random ID:

* TCP -- a 4-byte value in the TCP options (written in
  ``tcp_options_write``; we use an experimental option kind with two
  leading NOPs for alignment, 8 option bytes total);
* UDP -- 4 bytes appended to the payload in ``udp_send_skb`` via
  ``__skb_put()`` and trimmed at the receiver with
  ``pskb_trim_rcsum()`` before the copy to the application buffer, so
  applications never see it.

The ID lives in the *wire bytes*, which is what lets eBPF programs in
any later protection domain (host, Dom0, another machine) read it back
and lets the collector correlate records end-to-end.

Embedding costs "tens of nanoseconds" (§III-B); the model charges
:data:`EMBED_COST_NS` / :data:`STRIP_COST_NS`.
"""

from __future__ import annotations

import struct
from typing import Optional, TYPE_CHECKING

from repro.net.packet import Packet, TCPOPT_TRACE_ID
from repro.sim.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode

EMBED_COST_NS = 38
STRIP_COST_NS = 30

# NOP, NOP, kind, len=6, 4 value bytes -> 8 bytes, 4-byte aligned.
_TCP_OPTION_LEN = 8

META_TRACE_ID = "trace_id"
META_UDP_ID_EMBEDDED = "udp_trace_id_embedded"


class TraceIDEngine:
    """The per-node kernel patch that writes and trims trace IDs."""

    def __init__(self, rng: SeededRNG):
        self.rng = rng
        self.ids_embedded = 0
        self.ids_stripped = 0

    # -- UDP ----------------------------------------------------------------

    def embed_udp(self, packet: Packet) -> int:
        """Append the 4-byte ID to the UDP payload (``__skb_put``)."""
        if not isinstance(packet.payload, bytes):
            return 0
        trace_id = self.rng.random_u32()
        packet.payload = packet.payload + struct.pack("!I", trace_id)
        packet.metadata[META_TRACE_ID] = trace_id
        packet.metadata[META_UDP_ID_EMBEDDED] = True
        self.ids_embedded += 1
        return EMBED_COST_NS

    def strip_udp(self, packet: Packet) -> int:
        """Trim the ID before app delivery (``pskb_trim_rcsum``)."""
        if not packet.metadata.get(META_UDP_ID_EMBEDDED):
            return 0
        if isinstance(packet.payload, bytes) and len(packet.payload) >= 4:
            packet.payload = packet.payload[:-4]
        packet.metadata[META_UDP_ID_EMBEDDED] = False
        self.ids_stripped += 1
        return STRIP_COST_NS

    # -- TCP --------------------------------------------------------------------

    def tcp_option_bytes(self) -> tuple[bytes, int]:
        """Build the option bytes for one segment; returns (bytes, id)."""
        trace_id = self.rng.random_u32()
        option = b"\x01\x01" + bytes([TCPOPT_TRACE_ID, 6]) + struct.pack("!I", trace_id)
        assert len(option) == _TCP_OPTION_LEN
        self.ids_embedded += 1
        return option, trace_id

    def embed_tcp(self, packet: Packet) -> int:
        """Add the trace-ID option to a built TCP segment
        (``tcp_options_write`` time)."""
        tcp = packet.tcp
        if tcp is None or len(tcp.options) + _TCP_OPTION_LEN > 40:
            return 0
        option, trace_id = self.tcp_option_bytes()
        tcp.options = tcp.options + option
        packet.metadata[META_TRACE_ID] = trace_id
        return EMBED_COST_NS


def enable_trace_ids(node: "KernelNode", rng: Optional[SeededRNG] = None) -> TraceIDEngine:
    """Install the trace-ID kernel patch on a node (idempotent)."""
    if node.traceid is None:
        node.traceid = TraceIDEngine(rng or node.rng.fork("traceid"))
    return node.traceid


def extract_trace_id(packet: Packet) -> Optional[int]:
    """Read the trace ID back out of a packet's *wire format* -- the
    user-space analog of what compiled eBPF programs do in-kernel."""
    inner = packet.innermost
    tcp = inner.tcp
    if tcp is not None:
        value = tcp.find_option(TCPOPT_TRACE_ID)
        if value is not None and len(value) == 4:
            return struct.unpack("!I", value)[0]
        return None
    if inner.udp is not None and inner.metadata.get(META_UDP_ID_EMBEDDED):
        payload = inner.payload
        if isinstance(payload, bytes) and len(payload) >= 4:
            return struct.unpack("!I", payload[-4:])[0]
    return None
