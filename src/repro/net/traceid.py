"""Per-packet trace IDs carried across domain boundaries (§III-B).

The paper modifies the kernel ("tens of lines") so every packet of a
traced application carries a unique 32-bit random ID:

* TCP -- a 4-byte value in the TCP options (written in
  ``tcp_options_write``; we use an experimental option kind with two
  leading NOPs for alignment, 8 option bytes total);
* UDP -- 4 bytes appended to the payload in ``udp_send_skb`` via
  ``__skb_put()`` and trimmed at the receiver with
  ``pskb_trim_rcsum()`` before the copy to the application buffer, so
  applications never see it.

The ID lives in the *wire bytes*, which is what lets eBPF programs in
any later protection domain (host, Dom0, another machine) read it back
and lets the collector correlate records end-to-end.

RPC causality (docs/SERVICES.md) rides in the same embed: a sender may
declare *parent* trace IDs, and the engine carries them next to the
fresh per-packet ID so the collector can link child RPCs back to the
request that caused them.

* UDP wire layout: ``payload ++ parent0 .. parentN-1 ++ trace_id``
  (each 4 bytes, network order; the fresh ID stays last so readers of
  the original format are unchanged).
* TCP: the option value grows from 4 to 8 bytes when one parent is
  present (two leading NOPs, kind, len, trace_id, parent) -- 12 option
  bytes total, still 4-byte aligned.

The embed is all-or-nothing: if appending the trailer would push a UDP
packet past the egress device MTU, nothing is embedded and the packet
goes out untraced (mirroring the kernel patch, which must not cause
fragmentation).

Embedding costs "tens of nanoseconds" (§III-B); the model charges
:data:`EMBED_COST_NS` / :data:`STRIP_COST_NS`.

The engine attaches to a node through the
:class:`repro.net.stack.PacketMetadataHooks` registry::

    engine = TraceIDEngine.attach(node, mode="udp_payload")

``enable_trace_ids`` remains as a thin compatibility shim.
"""

from __future__ import annotations

import struct
from typing import Iterable, Optional, Sequence, Tuple, Union, TYPE_CHECKING

from repro.net.packet import Packet, TCPOPT_TRACE_ID
from repro.sim.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import KernelNode

EMBED_COST_NS = 38
STRIP_COST_NS = 30

# NOP, NOP, kind, len=6, 4 value bytes -> 8 bytes, 4-byte aligned.
_TCP_OPTION_LEN = 8
# With one parent ID: NOP, NOP, kind, len=10, 8 value bytes -> 12 bytes.
_TCP_OPTION_PARENT_LEN = 12

META_TRACE_ID = "trace_id"
META_PARENT_IDS = "trace_parent_ids"
META_UDP_ID_EMBEDDED = "udp_trace_id_embedded"
META_UDP_PARENT_COUNT = "udp_trace_parent_count"

# Attachment modes: which wire formats the engine participates in.
MODE_TCP_OPTION = "tcp_option"
MODE_UDP_PAYLOAD = "udp_payload"
ALL_MODES = (MODE_TCP_OPTION, MODE_UDP_PAYLOAD)

ParentSpec = Union[None, int, Sequence[int]]


def _as_parents(parent: ParentSpec) -> Tuple[int, ...]:
    """Normalize a parent declaration to a tuple of 32-bit IDs."""
    if parent is None:
        return ()
    if isinstance(parent, int):
        return (parent,)
    return tuple(int(p) for p in parent)


class TraceIDEngine:
    """The per-node kernel patch that writes and trims trace IDs."""

    def __init__(self, rng: SeededRNG, modes: Iterable[str] = ALL_MODES):
        self.rng = rng
        self.modes = self._normalize_modes(modes)
        self.ids_embedded = 0
        self.ids_stripped = 0
        self.embeds_refused_mtu = 0

    @staticmethod
    def _normalize_modes(modes: Union[str, Iterable[str]]) -> Tuple[str, ...]:
        if isinstance(modes, str):
            modes = (modes,)
        normalized = tuple(modes)
        for mode in normalized:
            if mode not in ALL_MODES:
                raise ValueError(f"unknown trace-ID mode {mode!r}; expected one of {ALL_MODES}")
        return normalized

    @classmethod
    def attach(
        cls,
        node: "KernelNode",
        *,
        mode: Union[str, Iterable[str], None] = None,
        rng: Optional[SeededRNG] = None,
    ) -> "TraceIDEngine":
        """Install the trace-ID kernel patch on ``node`` (idempotent).

        ``mode`` selects the wire formats -- ``"tcp_option"``,
        ``"udp_payload"``, or an iterable of both (the default).
        Attaching again widens the mode set of the existing engine
        rather than installing a second one.
        """
        modes = cls._normalize_modes(mode if mode is not None else ALL_MODES)
        existing = node.packet_hooks.find(cls)
        if existing is not None:
            existing.modes = tuple(
                m for m in ALL_MODES if m in existing.modes or m in modes
            )
            return existing
        engine = cls(rng or node.rng.fork("traceid"), modes)
        node.packet_hooks.register(engine)
        return engine

    # -- PacketMetadataHooks protocol ---------------------------------------

    def on_udp_send(
        self, packet: Packet, mtu: Optional[int] = None, parent: ParentSpec = None
    ) -> int:
        if MODE_UDP_PAYLOAD not in self.modes:
            return 0
        return self.embed_udp(packet, mtu=mtu, parents=parent)

    def on_udp_deliver(self, packet: Packet) -> int:
        # Stripping is guarded by the embed flag, not the mode: a
        # packet embedded elsewhere must still be trimmed before the
        # application copy.
        return self.strip_udp(packet)

    def on_tcp_options(self, packet: Packet, parent: ParentSpec = None) -> int:
        if MODE_TCP_OPTION not in self.modes:
            return 0
        return self.embed_tcp(packet, parent=parent)

    # -- UDP ----------------------------------------------------------------

    def embed_udp(
        self, packet: Packet, mtu: Optional[int] = None, parents: ParentSpec = None
    ) -> int:
        """Append parent IDs + the fresh 4-byte ID to the UDP payload
        (``__skb_put``); all-or-nothing under the egress MTU."""
        if not isinstance(packet.payload, bytes):
            return 0
        parent_ids = _as_parents(parents)
        extra = 4 * (1 + len(parent_ids))
        if mtu is not None and packet.total_length + extra > mtu:
            self.embeds_refused_mtu += 1
            return 0
        trace_id = self.rng.random_u32()
        trailer = b"".join(struct.pack("!I", p) for p in parent_ids)
        packet.payload = packet.payload + trailer + struct.pack("!I", trace_id)
        packet.metadata[META_TRACE_ID] = trace_id
        packet.metadata[META_PARENT_IDS] = parent_ids
        packet.metadata[META_UDP_ID_EMBEDDED] = True
        packet.metadata[META_UDP_PARENT_COUNT] = len(parent_ids)
        self.ids_embedded += 1
        return EMBED_COST_NS

    def strip_udp(self, packet: Packet) -> int:
        """Trim the trailer before app delivery (``pskb_trim_rcsum``)."""
        if not packet.metadata.get(META_UDP_ID_EMBEDDED):
            return 0
        trim = 4 * (1 + packet.metadata.get(META_UDP_PARENT_COUNT, 0))
        if isinstance(packet.payload, bytes) and len(packet.payload) >= trim:
            packet.payload = packet.payload[:-trim]
        packet.metadata[META_UDP_ID_EMBEDDED] = False
        self.ids_stripped += 1
        return STRIP_COST_NS

    # -- TCP ----------------------------------------------------------------

    def tcp_option_bytes(self, parent: ParentSpec = None) -> "tuple[bytes, int]":
        """Build the option bytes for one segment; returns (bytes, id)."""
        trace_id = self.rng.random_u32()
        parent_ids = _as_parents(parent)
        if parent_ids:
            value = struct.pack("!II", trace_id, parent_ids[0])
        else:
            value = struct.pack("!I", trace_id)
        option = b"\x01\x01" + bytes([TCPOPT_TRACE_ID, 2 + len(value)]) + value
        assert len(option) in (_TCP_OPTION_LEN, _TCP_OPTION_PARENT_LEN)
        self.ids_embedded += 1
        return option, trace_id

    def embed_tcp(self, packet: Packet, parent: ParentSpec = None) -> int:
        """Add the trace-ID option to a built TCP segment
        (``tcp_options_write`` time)."""
        tcp = packet.tcp
        parent_ids = _as_parents(parent)
        option_len = _TCP_OPTION_PARENT_LEN if parent_ids else _TCP_OPTION_LEN
        if tcp is None or len(tcp.options) + option_len > 40:
            return 0
        option, trace_id = self.tcp_option_bytes(parent_ids)
        tcp.options = tcp.options + option
        packet.metadata[META_TRACE_ID] = trace_id
        packet.metadata[META_PARENT_IDS] = parent_ids[:1]
        return EMBED_COST_NS


def enable_trace_ids(node: "KernelNode", rng: Optional[SeededRNG] = None) -> TraceIDEngine:
    """Deprecated shim for :meth:`TraceIDEngine.attach` (kept for the
    pre-redesign API; installs both wire formats)."""
    return TraceIDEngine.attach(node, rng=rng)


def wire_record_id(trace_id: int) -> int:
    """Map an embedded ID to the value compiled probes record.

    In-kernel programs load the ID little-endian over the big-endian
    wire bytes (see ``core/compiler._emit_trace_id``), so collector-side
    rows carry this fixed permutation of the embedded value.  Anything
    that joins app-level IDs (packet metadata) against TraceDB rows --
    e.g. the RPC causality links -- converts through here first.
    """
    return struct.unpack("<I", struct.pack("!I", trace_id))[0]


def extract_trace_id(packet: Packet) -> Optional[int]:
    """Read the trace ID back out of a packet's *wire format* -- the
    user-space analog of what compiled eBPF programs do in-kernel."""
    inner = packet.innermost
    tcp = inner.tcp
    if tcp is not None:
        value = tcp.find_option(TCPOPT_TRACE_ID)
        if value is not None and len(value) in (4, 8):
            return struct.unpack("!I", value[:4])[0]
        return None
    if inner.udp is not None and inner.metadata.get(META_UDP_ID_EMBEDDED):
        payload = inner.payload
        if isinstance(payload, bytes) and len(payload) >= 4:
            return struct.unpack("!I", payload[-4:])[0]
    return None


def extract_parent_ids(packet: Packet) -> Tuple[int, ...]:
    """Read the parent trace IDs out of a packet's wire format (the
    RPC-causality half of the embed; empty for root packets)."""
    inner = packet.innermost
    tcp = inner.tcp
    if tcp is not None:
        value = tcp.find_option(TCPOPT_TRACE_ID)
        if value is not None and len(value) == 8:
            return (struct.unpack("!I", value[4:8])[0],)
        return ()
    if inner.udp is not None and inner.metadata.get(META_UDP_ID_EMBEDDED):
        count = inner.metadata.get(META_UDP_PARENT_COUNT, 0)
        payload = inner.payload
        need = 4 * (1 + count)
        if count and isinstance(payload, bytes) and len(payload) >= need:
            words = struct.unpack(f"!{count}I", payload[-need:-4])
            return tuple(words)
    return ()
