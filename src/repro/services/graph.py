"""Declarative multi-tier service topologies (docs/SERVICES.md).

A :class:`ServiceGraph` names the tiers of a microservice deployment
(client, load balancer, mesh, backend, cache ...) and the RPC edges
between them, then *compiles* to real engine wiring: one
:class:`~repro.net.stack.KernelNode` per replica, one rate-limited
point-to-point link per (caller replica, callee replica) pair, and a
:class:`~repro.services.runtime.Service` event loop on every node.

The builder is order-sensitive in one deliberate way: ``.calls(...)``
applies to the most recently declared tier, so a topology reads
top-down::

    graph = (
        ServiceGraph()
        .tier("client", replicas=1)
        .calls("lb", fanout=1)
        .tier("lb", replicas=2)
        .calls("backend", fanout=3)
        .tier("backend", replicas=3)
        .calls("cache", fanout=1)
        .tier("cache", replicas=2)
    )
    deployment = graph.compile(engine, seed=21)

Tiers may be declared after the edges that reference them (as above);
:meth:`validate` checks the whole graph at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

# Every service binds this UDP port on all its link addresses, so one
# dst-port filter rule traces every request *and* response in a run.
RPC_PORT = 7000

# Defaults for the ServiceGraph config keys (docs/SERVICES.md pins the
# documented table to this mapping).
TIER_DEFAULTS = {
    "replicas": 1,
    "work_ns": 20_000,
    "port": RPC_PORT,
    "cpus": 2,
}
CALL_DEFAULTS = {
    "fanout": 1,
    "payload_bytes": 64,
}
SERVICEGRAPH_DEFAULTS = {**TIER_DEFAULTS, **CALL_DEFAULTS}


class ServiceGraphError(ValueError):
    """Invalid topology declarations (unknown targets, cycles, ...)."""


@dataclass(frozen=True)
class TierSpec:
    """One named tier: ``replicas`` identical service nodes."""

    name: str
    replicas: int = TIER_DEFAULTS["replicas"]
    work_ns: int = TIER_DEFAULTS["work_ns"]
    port: int = TIER_DEFAULTS["port"]
    cpus: int = TIER_DEFAULTS["cpus"]


@dataclass(frozen=True)
class CallSpec:
    """One RPC edge: every request handled by ``caller`` issues
    ``fanout`` child requests into the ``target`` tier."""

    caller: str
    target: str
    fanout: int = CALL_DEFAULTS["fanout"]
    payload_bytes: int = CALL_DEFAULTS["payload_bytes"]


class ServiceGraph:
    """Fluent builder for a tiered RPC topology."""

    def __init__(self) -> None:
        self._tiers: Dict[str, TierSpec] = {}
        self._calls: List[CallSpec] = []
        self._current: Optional[str] = None

    # -- declaration --------------------------------------------------------

    def tier(
        self,
        name: str,
        *,
        replicas: int = TIER_DEFAULTS["replicas"],
        work_ns: int = TIER_DEFAULTS["work_ns"],
        port: int = TIER_DEFAULTS["port"],
        cpus: int = TIER_DEFAULTS["cpus"],
    ) -> "ServiceGraph":
        """Declare a tier; subsequent :meth:`calls` attach to it."""
        if not name or not name.isidentifier():
            raise ServiceGraphError(f"tier name must be an identifier, got {name!r}")
        if name in self._tiers:
            raise ServiceGraphError(f"duplicate tier {name!r}")
        if replicas < 1:
            raise ServiceGraphError(f"tier {name!r}: replicas must be >= 1")
        if work_ns < 0:
            raise ServiceGraphError(f"tier {name!r}: work_ns must be >= 0")
        self._tiers[name] = TierSpec(
            name=name, replicas=replicas, work_ns=work_ns, port=port, cpus=cpus
        )
        self._current = name
        return self

    def calls(
        self,
        target: str,
        *,
        fanout: int = CALL_DEFAULTS["fanout"],
        payload_bytes: int = CALL_DEFAULTS["payload_bytes"],
    ) -> "ServiceGraph":
        """Declare an RPC edge from the most recent tier to ``target``."""
        if self._current is None:
            raise ServiceGraphError(".calls() must follow a .tier() declaration")
        if fanout < 1:
            raise ServiceGraphError(f"call {self._current!r}->{target!r}: fanout must be >= 1")
        self._calls.append(
            CallSpec(
                caller=self._current,
                target=target,
                fanout=fanout,
                payload_bytes=payload_bytes,
            )
        )
        return self

    # -- inspection ---------------------------------------------------------

    @property
    def tiers(self) -> Tuple[TierSpec, ...]:
        return tuple(self._tiers.values())

    @property
    def call_specs(self) -> Tuple[CallSpec, ...]:
        return tuple(self._calls)

    def tier_spec(self, name: str) -> TierSpec:
        return self._tiers[name]

    def calls_from(self, tier_name: str) -> Tuple[CallSpec, ...]:
        return tuple(call for call in self._calls if call.caller == tier_name)

    def root_tiers(self) -> Tuple[TierSpec, ...]:
        """Tiers that originate requests: callers nobody calls into."""
        targets = {call.target for call in self._calls}
        return tuple(
            spec
            for spec in self._tiers.values()
            if spec.name not in targets and self.calls_from(spec.name)
        )

    def validate(self) -> None:
        """Whole-graph checks, raised as :class:`ServiceGraphError`."""
        if not self._tiers:
            raise ServiceGraphError("service graph has no tiers")
        for call in self._calls:
            if call.target not in self._tiers:
                raise ServiceGraphError(
                    f"call {call.caller!r}->{call.target!r} targets an undeclared tier"
                )
        if self._calls and not self.root_tiers():
            raise ServiceGraphError("no root tier: every tier is called by another")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._tiers}

        def visit(name: str, path: Tuple[str, ...]) -> None:
            color[name] = GRAY
            for call in self.calls_from(name):
                if color.get(call.target) == GRAY:
                    cycle = " -> ".join(path + (name, call.target))
                    raise ServiceGraphError(f"service graph has a cycle: {cycle}")
                if color.get(call.target) == WHITE:
                    visit(call.target, path + (name,))
            color[name] = BLACK

        for name in self._tiers:
            if color[name] == WHITE:
                visit(name, ())

    # -- compilation --------------------------------------------------------

    def compile(
        self,
        engine,
        *,
        registry=None,
        seed: int = 0,
        link_gbps: float = 1.0,
        propagation_ns: int = 20_000,
    ):
        """Compile to engine wiring; returns a
        :class:`~repro.services.runtime.ServiceDeployment`."""
        from repro.services.runtime import ServiceDeployment

        self.validate()
        return ServiceDeployment(
            engine,
            self,
            registry=registry,
            seed=seed,
            link_gbps=link_gbps,
            propagation_ns=propagation_ns,
        )
