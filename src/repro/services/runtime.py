"""The compiled service layer: nodes, links, and the RPC event loop.

:class:`ServiceDeployment` turns a validated
:class:`~repro.services.graph.ServiceGraph` into engine wiring:

* one :class:`~repro.net.stack.KernelNode` per tier replica, its RNG
  forked from the deployment seed so runs are deterministic;
* one rate-limited point-to-point link (``connect_hosts``) per
  (caller replica, callee replica) pair, each on its own /30 subnet,
  so congestion is per-edge and real;
* a :class:`Service` on every node: one UDP socket bound to
  ``INADDR_ANY`` on the tier port, handling requests (charge
  ``work_ns``, fan out child calls), responses (fan-in, reply
  upstream), and client-origin load.

Causality travels *in the wire bytes*: every request carries its
parent's trace ID in the embed trailer
(:mod:`repro.net.traceid`), and every receiver records the
(child, parents) link it reads back, building the
``deployment.links`` map that
:func:`repro.tracing.reconstruct.build_rpc_forest` turns into
cross-service span forests.  The RPC message itself
(:data:`RPC_STRUCT`) stays causality-free -- kind, depth, and a
caller-local sequence tag only -- exactly like a production app whose
framing knows nothing about tracing.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.net.addressing import IPv4Address
from repro.net.nic import connect_hosts
from repro.net.stack import KernelNode, UDPSocket
from repro.net.traceid import (
    META_PARENT_IDS,
    META_TRACE_ID,
    TraceIDEngine,
    wire_record_id,
)
from repro.services.graph import CallSpec, ServiceGraph, TierSpec
from repro.sim.rng import SeededRNG

# On-wire RPC framing (docs/SERVICES.md): kind u8, depth u8, seq u32.
RPC_STRUCT = struct.Struct("!BBI")
RPC_KIND_REQUEST = 1
RPC_KIND_RESPONSE = 2
# Responses are fixed-size control messages; request sizes come from
# the per-edge ``payload_bytes`` config key.
RESPONSE_PAYLOAD_BYTES = 32

# The doc contract table (tests/test_docs_services.py) pins this.
RPC_MESSAGE_FIELDS: Tuple[Tuple[str, str, str], ...] = (
    ("kind", "u8", "1 = request, 2 = response"),
    ("depth", "u8", "tiers below the originating root tier"),
    ("seq", "u32", "caller-local fan-in tag, echoed by the response"),
)

# Per-edge /30 subnets are carved from this block in declaration order.
_SUBNET_BASE = IPv4Address("10.90.0.0").value


def _pack_rpc(kind: int, depth: int, seq: int, payload_bytes: int) -> bytes:
    body = RPC_STRUCT.pack(kind, depth & 0xFF, seq & 0xFFFFFFFF)
    return body.ljust(max(payload_bytes, RPC_STRUCT.size), b"\x00")


def unpack_rpc(payload: bytes) -> Tuple[int, int, int]:
    """(kind, depth, seq) from an RPC payload (post-trim)."""
    return RPC_STRUCT.unpack_from(payload)


class ServiceEdge(NamedTuple):
    """One compiled (caller replica, callee replica) link."""

    caller: str
    callee: str
    caller_ip: IPv4Address
    callee_ip: IPv4Address
    caller_device: str
    callee_device: str
    link: object


@dataclass
class _Pending:
    """One request awaiting fan-in on a service node."""

    upstream: Optional[Tuple[IPv4Address, int]]
    request_id: Optional[int]
    seq_echo: int
    depth: int
    outstanding: int
    started_ns: int


class Service:
    """The per-replica RPC event loop."""

    def __init__(self, deployment: "ServiceDeployment", tier: TierSpec, node: KernelNode):
        self.deployment = deployment
        self.tier = tier
        self.node = node
        self.name = node.name
        self.socket: UDPSocket = node.bind_udp(IPv4Address(0), tier.port)
        self.socket.on_receive = self._on_datagram
        # Deterministic replica selection, forked per node.
        self.rng: SeededRNG = node.rng.fork("rpc")
        self._pending: Dict[int, _Pending] = {}
        self._tags = itertools.count(1)
        self.requests_handled = 0
        self.responses_sent = 0
        self.calls_issued = 0
        self.completed: List[int] = []  # root-request latencies, ns

    # -- ingress ------------------------------------------------------------

    def _on_datagram(
        self, payload: bytes, src_ip: IPv4Address, src_port: int, packet
    ) -> None:
        rid = packet.metadata.get(META_TRACE_ID)
        parents = tuple(packet.metadata.get(META_PARENT_IDS, ()))
        self.deployment.record_link(rid, parents)
        if len(payload) < RPC_STRUCT.size:
            return
        kind, depth, seq = unpack_rpc(payload)
        if kind == RPC_KIND_REQUEST:
            self._handle_request(src_ip, src_port, rid, depth, seq)
        elif kind == RPC_KIND_RESPONSE:
            self._handle_response(seq)

    # -- requests -----------------------------------------------------------

    def issue_request(self) -> None:
        """Client-origin load: handle a virtual request with no upstream."""
        self._start_request(upstream=None, request_id=None, seq_echo=0, depth=0)

    def _handle_request(
        self,
        src_ip: IPv4Address,
        src_port: int,
        request_id: Optional[int],
        depth: int,
        seq: int,
    ) -> None:
        self._start_request(
            upstream=(src_ip, src_port),
            request_id=request_id,
            seq_echo=seq,
            depth=depth,
        )

    def _start_request(
        self,
        upstream: Optional[Tuple[IPv4Address, int]],
        request_id: Optional[int],
        seq_echo: int,
        depth: int,
    ) -> None:
        self.requests_handled += 1
        self.deployment.count_request(self.tier.name)
        started_ns = self.node.engine.now
        cpu = self.node.cpus[self.socket.cpu_index]

        def after_work() -> None:
            calls = self.deployment.graph.calls_from(self.tier.name)
            total = sum(call.fanout for call in calls)
            if total == 0:
                self._respond(upstream, request_id, seq_echo, depth)
                return
            tag = next(self._tags)
            self._pending[tag] = _Pending(
                upstream=upstream,
                request_id=request_id,
                seq_echo=seq_echo,
                depth=depth,
                outstanding=total,
                started_ns=started_ns,
            )
            self.deployment.set_inflight(self.name, len(self._pending))
            for call in calls:
                self._fan_out(call, tag, depth, request_id)

        self.node.charge(cpu, self.tier.work_ns, after_work, front=True)

    def _fan_out(
        self, call: CallSpec, tag: int, depth: int, parent_id: Optional[int]
    ) -> None:
        replicas = self.deployment.services[call.target]
        offset = self.rng.random_u32() % len(replicas)
        for k in range(call.fanout):
            callee = replicas[(offset + k) % len(replicas)]
            dst_ip = self.deployment.edge_ip(self.name, callee.name)
            self.calls_issued += 1
            self.deployment.count_call(self.tier.name, call.target)
            self.socket.sendto(
                dst_ip,
                callee.tier.port,
                _pack_rpc(RPC_KIND_REQUEST, depth + 1, tag, call.payload_bytes),
                app=f"rpc:{self.tier.name}->{call.target}",
                app_seq=tag,
                parent_id=parent_id,
            )

    # -- responses ----------------------------------------------------------

    def _handle_response(self, seq: int) -> None:
        pending = self._pending.get(seq)
        if pending is None:
            return
        pending.outstanding -= 1
        if pending.outstanding > 0:
            return
        del self._pending[seq]
        self.deployment.set_inflight(self.name, len(self._pending))
        if pending.upstream is None:
            latency = self.node.engine.now - pending.started_ns
            self.completed.append(latency)
            self.deployment.count_completion(self.tier.name, latency)
            return
        self._respond(
            pending.upstream, pending.request_id, pending.seq_echo, pending.depth
        )

    def _respond(
        self,
        upstream: Optional[Tuple[IPv4Address, int]],
        request_id: Optional[int],
        seq_echo: int,
        depth: int,
    ) -> None:
        if upstream is None:  # a root tier with no downstream calls
            self.completed.append(0)
            return
        dst_ip, dst_port = upstream
        self.responses_sent += 1
        self.deployment.count_response(self.tier.name)
        self.socket.sendto(
            dst_ip,
            dst_port,
            _pack_rpc(RPC_KIND_RESPONSE, depth, seq_echo, RESPONSE_PAYLOAD_BYTES),
            app=f"rpc:{self.tier.name}",
            app_seq=seq_echo,
            parent_id=request_id,
        )


class ServiceDeployment:
    """A compiled service graph bound to one engine."""

    def __init__(
        self,
        engine,
        graph: ServiceGraph,
        *,
        registry=None,
        seed: int = 0,
        link_gbps: float = 1.0,
        propagation_ns: int = 20_000,
    ):
        self.engine = engine
        self.graph = graph
        self.seed = seed
        self.services: Dict[str, List[Service]] = {}
        self.nodes: List[KernelNode] = []
        self.edges: List[ServiceEdge] = []
        self._edge_ip: Dict[Tuple[str, str], IPv4Address] = {}
        # child trace ID -> parent trace IDs, read back from the wire.
        self.links: Dict[int, Tuple[int, ...]] = {}
        self._metrics = None
        self._link_count = itertools.count(0)

        for tier in graph.tiers:
            replicas: List[Service] = []
            for index in range(tier.replicas):
                name = f"{tier.name}{index}"
                node = KernelNode(
                    engine,
                    name,
                    num_cpus=tier.cpus,
                    rng=SeededRNG(seed, f"services/{name}"),
                )
                TraceIDEngine.attach(node, mode="udp_payload")
                replicas.append(Service(self, tier, node))
                self.nodes.append(node)
            self.services[tier.name] = replicas

        for call in graph.call_specs:
            for caller in self.services[call.caller]:
                for callee in self.services[call.target]:
                    self._wire_edge(caller, callee, link_gbps, propagation_ns)

        if registry is not None:
            self.attach_metrics(registry)

    # -- wiring -------------------------------------------------------------

    def _wire_edge(
        self, caller: Service, callee: Service, link_gbps: float, propagation_ns: int
    ) -> None:
        index = next(self._link_count)
        network = IPv4Address(_SUBNET_BASE + 4 * index)
        caller_ip = IPv4Address(network.value + 1)
        callee_ip = IPv4Address(network.value + 2)
        dev_a = f"eth{len(caller.node.devices)}"
        dev_b = f"eth{len(callee.node.devices)}"
        nic_a, nic_b, link = connect_hosts(
            self.engine,
            caller.node,
            dev_a,
            callee.node,
            dev_b,
            rate_gbps=link_gbps,
            propagation_ns=propagation_ns,
        )
        nic_a.ip, nic_b.ip = caller_ip, callee_ip
        caller.node.add_route(network, 30, nic_a, src_ip=caller_ip)
        callee.node.add_route(network, 30, nic_b, src_ip=callee_ip)
        caller.node.add_neighbor(callee_ip, nic_b.mac)
        callee.node.add_neighbor(caller_ip, nic_a.mac)
        self._edge_ip[(caller.name, callee.name)] = callee_ip
        self.edges.append(
            ServiceEdge(
                caller=caller.name,
                callee=callee.name,
                caller_ip=caller_ip,
                callee_ip=callee_ip,
                caller_device=dev_a,
                callee_device=dev_b,
                link=link,
            )
        )

    def edge_ip(self, caller_name: str, callee_name: str) -> IPv4Address:
        return self._edge_ip[(caller_name, callee_name)]

    def edge(self, caller_name: str, callee_name: str) -> ServiceEdge:
        for edge in self.edges:
            if edge.caller == caller_name and edge.callee == callee_name:
                return edge
        raise KeyError(f"no edge {caller_name!r} -> {callee_name!r}")

    def service(self, tier_name: str, replica: int = 0) -> Service:
        return self.services[tier_name][replica]

    # -- load ---------------------------------------------------------------

    def start_load(
        self, requests: int, interval_ns: int, start_ns: int = 0
    ) -> None:
        """Schedule ``requests`` root requests, round-robin across the
        replicas of the root tiers."""
        roots = [svc for tier in self.graph.root_tiers() for svc in self.services[tier.name]]
        if not roots:
            raise ValueError("service graph has no root tier to originate load")
        for i in range(requests):
            svc = roots[i % len(roots)]
            self.engine.schedule(start_ns + i * interval_ns, svc.issue_request)

    @property
    def completed_requests(self) -> int:
        return sum(
            len(svc.completed)
            for tier in self.graph.root_tiers()
            for svc in self.services[tier.name]
        )

    @property
    def client_latencies(self) -> List[int]:
        return [
            latency
            for tier in self.graph.root_tiers()
            for svc in self.services[tier.name]
            for latency in svc.completed
        ]

    # -- causality ----------------------------------------------------------

    def record_link(self, child_id: Optional[int], parents: Tuple[int, ...]) -> None:
        """Record a (child, parents) causality link, keyed in the
        collector's ID space (see :func:`wire_record_id`) so the links
        join directly against TraceDB rows."""
        if child_id is None or not parents:
            return
        child = wire_record_id(child_id)
        if child not in self.links:
            self.links[child] = tuple(wire_record_id(p) for p in parents)
            if self._metrics is not None:
                self._metrics["links"].inc()

    # -- metrics ------------------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """Register the ``vnt_rpc_*`` contract specs (idempotent)."""
        from repro.obs import contract

        self._metrics = {
            "requests": registry.register_spec(contract.RPC_REQUESTS),
            "responses": registry.register_spec(contract.RPC_RESPONSES),
            "calls": registry.register_spec(contract.RPC_CALLS),
            "links": registry.register_spec(contract.RPC_LINKS_RECORDED),
            "inflight": registry.register_spec(contract.RPC_INFLIGHT),
            "latency": registry.register_spec(contract.RPC_REQUEST_LATENCY),
        }

    def count_request(self, tier_name: str) -> None:
        if self._metrics is not None:
            self._metrics["requests"].inc(labels=(tier_name,))

    def count_response(self, tier_name: str) -> None:
        if self._metrics is not None:
            self._metrics["responses"].inc(labels=(tier_name,))

    def count_call(self, caller: str, callee: str) -> None:
        if self._metrics is not None:
            self._metrics["calls"].inc(labels=(caller, callee))

    def count_completion(self, tier_name: str, latency_ns: int) -> None:
        if self._metrics is not None:
            self._metrics["latency"].observe(latency_ns, labels=(tier_name,))

    def set_inflight(self, node_name: str, value: int) -> None:
        if self._metrics is not None:
            self._metrics["inflight"].set(value, labels=(node_name,))
