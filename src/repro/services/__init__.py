"""Multi-tier RPC services over the simulated stack (docs/SERVICES.md).

``graph`` holds the declarative :class:`ServiceGraph` builder;
``runtime`` holds the compiled deployment and the per-replica
:class:`Service` event loop.
"""

from repro.services.graph import (
    CALL_DEFAULTS,
    RPC_PORT,
    SERVICEGRAPH_DEFAULTS,
    TIER_DEFAULTS,
    CallSpec,
    ServiceGraph,
    ServiceGraphError,
    TierSpec,
)
from repro.services.runtime import (
    RESPONSE_PAYLOAD_BYTES,
    RPC_KIND_REQUEST,
    RPC_KIND_RESPONSE,
    RPC_MESSAGE_FIELDS,
    RPC_STRUCT,
    Service,
    ServiceDeployment,
    ServiceEdge,
    unpack_rpc,
)

__all__ = [
    "CALL_DEFAULTS",
    "RESPONSE_PAYLOAD_BYTES",
    "RPC_KIND_REQUEST",
    "RPC_KIND_RESPONSE",
    "RPC_MESSAGE_FIELDS",
    "RPC_PORT",
    "RPC_STRUCT",
    "SERVICEGRAPH_DEFAULTS",
    "TIER_DEFAULTS",
    "CallSpec",
    "Service",
    "ServiceDeployment",
    "ServiceEdge",
    "ServiceGraph",
    "ServiceGraphError",
    "TierSpec",
    "unpack_rpc",
]
