"""Sharded drop-in engine: per-shard event heaps behind the Engine API.

This is the *compatibility tier* of the sharded simulation substrate
(docs/SHARDING.md).  A :class:`ShardedEngine` partitions its event
population across per-shard binary heaps and advances them in
lookahead-bounded rounds, but executes events in exact global
``(time, seq)`` order by merging shard heads inside each round -- so any
scenario written against :class:`~repro.sim.engine.Engine` produces
byte-identical results on a ShardedEngine, shared object graph and all.
That property is what the differential suite
(``tests/test_shard_differential.py``) proves on the quickstart, OVS,
and fault scenarios.

The *fleet tier* (:mod:`repro.sim.coordinator`) drops the shared-state
assumption: fully independent per-shard engines coupled only through
boundary queues, which is what permits ``multiprocessing`` workers.

Shard placement is *affinity* based: every scheduled event lands on the
shard of the event currently executing (causal inheritance), or on the
shard pinned with :meth:`ShardedEngine.pinned`.  An event scheduled onto
a shard other than the one executing is a *boundary event* -- the
compat-tier analogue of a cross-shard packet -- and is counted in the
``vnt_shard_*`` metrics (docs/OBSERVABILITY.md, ``shard`` stage).
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional

from repro.sim.engine import Engine, Event, SimulationError

# The default conservative-lookahead window, in virtual nanoseconds.
# The fleet tier requires every cross-shard boundary latency to be at
# least this large (wire/VXLAN latency gives the natural window); the
# compat tier only uses it to bound round granularity.
DEFAULT_LOOKAHEAD_NS = 1_000_000


class _ShardEvent(Event):
    """An Event that remembers which shard heap holds it."""

    __slots__ = ("shard",)


class ShardedEngine(Engine):
    """Engine-compatible event loop over ``shards`` per-shard heaps.

    Execution order is exactly the base engine's global ``(time, seq)``
    order, reconstructed by merging shard heads within each
    lookahead-bounded round; determinism therefore holds *by
    construction*, not by scenario discipline.
    """

    def __init__(self, shards: int = 4, lookahead_ns: int = DEFAULT_LOOKAHEAD_NS):
        super().__init__()
        if shards < 1:
            raise SimulationError(f"need at least one shard, got {shards}")
        if lookahead_ns <= 0:
            raise SimulationError(f"lookahead must be positive, got {lookahead_ns}")
        self.num_shards = int(shards)
        self.lookahead_ns = int(lookahead_ns)
        self._shard_heaps: List[List[_ShardEvent]] = [[] for _ in range(self.num_shards)]
        self._affinity = 0  # shard receiving newly scheduled events
        self._exec_shard: Optional[int] = None  # shard of the running event
        # Counters behind the vnt_shard_* metrics.
        self.rounds = 0
        self.last_horizon_ns = 0
        self.events_by_shard = [0] * self.num_shards
        self.boundary_events_by_shard = [0] * self.num_shards

    # -- scheduling --------------------------------------------------------

    def _push(self, time_ns: int, fn: Callable[..., Any], args: tuple) -> _ShardEvent:
        shard = self._affinity
        event = _ShardEvent(time_ns, self._seq, fn, args, self)
        event.shard = shard
        self._seq += 1
        self._live += 1
        heapq.heappush(self._shard_heaps[shard], event)
        if self._exec_shard is not None and shard != self._exec_shard:
            self.boundary_events_by_shard[shard] += 1
        return event

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        if delay_ns:
            if delay_ns < 0:
                raise SimulationError(f"negative delay {delay_ns}")
            time_ns = self._now + int(delay_ns)
        else:
            time_ns = self._now
        return self._push(time_ns, fn, args)

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} before now={self._now}"
            )
        return self._push(int(time_ns), fn, args)

    @contextmanager
    def pinned(self, shard: int) -> Iterator[None]:
        """Route events scheduled inside the block onto ``shard``.

        Used to place causally independent domains (workloads, clock
        sync, samplers) on their own shards; events they schedule in
        turn inherit the placement.
        """
        if not 0 <= shard < self.num_shards:
            raise SimulationError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        previous, self._affinity = self._affinity, shard
        try:
            yield
        finally:
            self._affinity = previous

    def shard_of(self, event: Event) -> int:
        """Which shard heap holds ``event`` (0 for plain-Engine events)."""
        return getattr(event, "shard", 0)

    # -- execution ---------------------------------------------------------

    def _min_head(self) -> Optional[_ShardEvent]:
        """The globally earliest live event, popping cancelled heads."""
        pop = heapq.heappop
        best = None
        for heap in self._shard_heaps:
            while heap and heap[0].cancelled:
                pop(heap)
            if heap:
                head = heap[0]
                if (
                    best is None
                    or head.time < best.time
                    or (head.time == best.time and head.seq < best.seq)
                ):
                    best = head
        return best

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        executed = 0
        heaps = self._shard_heaps
        pop = heapq.heappop
        events_by_shard = self.events_by_shard
        try:
            while max_events is None or executed < max_events:
                head = self._min_head()
                if head is None:
                    break
                if until is not None and head.time > until:
                    break
                horizon = head.time + self.lookahead_ns
                if until is not None and horizon > until:
                    horizon = until
                self.rounds += 1
                self.last_horizon_ns = horizon
                # One round: execute everything up to the horizon in
                # exact global (time, seq) order.  New events landing
                # inside the horizon join the round as their heap heads
                # surface in the merge.
                while True:
                    event = self._min_head()
                    if event is None or event.time > horizon:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    shard = event.shard
                    pop(heaps[shard])
                    event.cancelled = True  # fired; late cancel() is a no-op
                    self._live -= 1
                    self._now = event.time
                    self._exec_shard = self._affinity = shard
                    event.fn(*event.args)
                    executed += 1
                    events_by_shard[shard] += 1
                self._exec_shard = None
        finally:
            self._running = False
            self._exec_shard = None
        if until is not None and self._now < until:
            head = self._min_head()
            if head is None or head.time > until:
                self._now = until
        self.events_executed += executed
        Engine._events_executed_global += executed
        return executed

    # -- observability -----------------------------------------------------

    @property
    def boundary_events(self) -> int:
        """Total events routed onto a shard other than their scheduler's."""
        return sum(self.boundary_events_by_shard)

    def attach_metrics(self, registry) -> None:
        """Register the ``shard`` stage of the metrics contract as pull
        callbacks over this engine's counters (no per-event cost)."""
        from repro.obs import contract as obs_contract

        registry.register_spec(obs_contract.SHARD_ROUNDS).add_callback(
            lambda: float(self.rounds)
        )
        registry.register_spec(obs_contract.SHARD_EVENTS).add_callback(
            lambda: {
                (str(shard),): float(count)
                for shard, count in enumerate(self.events_by_shard)
            }
        )
        registry.register_spec(obs_contract.SHARD_BOUNDARY).add_callback(
            lambda: {
                (str(shard),): float(count)
                for shard, count in enumerate(self.boundary_events_by_shard)
            }
        )
        registry.register_spec(obs_contract.SHARD_HORIZON).add_callback(
            lambda: float(self.last_horizon_ns)
        )
        registry.register_spec(obs_contract.SHARD_WORKERS).add_callback(
            lambda: 0.0  # the compat tier is always in-process
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedEngine now={self._now}ns shards={self.num_shards} "
            f"pending={self.pending()} rounds={self.rounds}>"
        )
