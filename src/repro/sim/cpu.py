"""A CPU as a serialized work queue.

Softirq processing, protocol stages, and probe overhead all consume CPU
time; a CPU runs one job at a time, so when per-packet demand exceeds
capacity a queue builds and (with a bounded queue) packets drop.  This
is the mechanism behind both overhead experiments (tracing cost eats the
packet budget) and the container case study (softirqs concentrated on
one core saturate it).

:class:`GatedCPU` extends this with a run/pause gate driven by a
hypervisor scheduler: a Xen vCPU only executes its queued work while the
scheduler has it on a physical CPU -- the source of Case Study II's
scheduling latency.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.sim.engine import Engine


class CPU:
    """One hardware thread: FIFO job queue, run-to-completion jobs."""

    def __init__(
        self,
        engine: Engine,
        name: str = "cpu0",
        index: int = 0,
        queue_limit: Optional[int] = None,
    ):
        self.engine = engine
        self.name = name
        self.index = index
        self.queue_limit = queue_limit
        self._queue: Deque[Tuple[int, Optional[Callable[[], Any]], str]] = deque()
        self._busy = False
        self.busy_ns = 0
        self.jobs_completed = 0
        self.jobs_dropped = 0
        self._created_at = engine.now
        # Fired when the CPU transitions to fully idle (used by the
        # hypervisor scheduler to detect a vCPU going to sleep).
        self.on_idle: Optional[Callable[[], None]] = None

    def submit(
        self,
        cost_ns: int,
        callback: Optional[Callable[[], Any]] = None,
        tag: str = "",
    ) -> bool:
        """Queue a job; ``callback`` runs when its service completes.

        Returns False (and drops the job) if the queue is full -- the
        receive-ring-overflow analog.
        """
        if self.queue_limit is not None and len(self._queue) >= self.queue_limit:
            self.jobs_dropped += 1
            return False
        self._queue.append((int(cost_ns), callback, tag))
        self._maybe_start()
        return True

    def submit_front(
        self,
        cost_ns: int,
        callback: Optional[Callable[[], Any]] = None,
        tag: str = "",
    ) -> bool:
        """Queue a job ahead of everything waiting (run-to-completion
        continuations within one softirq context use this)."""
        if self.queue_limit is not None and len(self._queue) >= self.queue_limit:
            self.jobs_dropped += 1
            return False
        self._queue.appendleft((int(cost_ns), callback, tag))
        self._maybe_start()
        return True

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._busy

    def _can_run(self) -> bool:
        return True

    def _maybe_start(self) -> None:
        if self._busy or not self._queue or not self._can_run():
            return
        self._busy = True
        cost_ns, callback, _tag = self._queue.popleft()
        self.engine.schedule(cost_ns, self._complete, cost_ns, callback)

    def _complete(self, cost_ns: int, callback: Optional[Callable[[], Any]]) -> None:
        self._busy = False
        self.busy_ns += cost_ns
        self.jobs_completed += 1
        if callback is not None:
            callback()
        self._maybe_start()
        if not self._busy and not self._queue and self.on_idle is not None:
            self.on_idle()

    def utilization(self) -> float:
        """Fraction of wall time spent executing since creation."""
        elapsed = self.engine.now - self._created_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed)

    def __repr__(self) -> str:
        return f"<CPU {self.name} busy={self._busy} depth={len(self._queue)}>"


class GatedCPU(CPU):
    """A vCPU whose execution is gated by a hypervisor scheduler.

    While ``paused`` the queue holds; :meth:`resume` drains it.  A job
    in flight when :meth:`pause` is called runs to completion (the
    hypervisor deschedules at the next safe point), which is a faithful
    enough model for the microsecond-scale jobs here.
    """

    def __init__(
        self,
        engine: Engine,
        name: str = "vcpu0",
        index: int = 0,
        queue_limit: Optional[int] = None,
        start_paused: bool = False,
    ):
        super().__init__(engine, name, index, queue_limit)
        self._paused = start_paused
        self.on_work_queued: Optional[Callable[[], None]] = None

    @property
    def paused(self) -> bool:
        return self._paused

    def _can_run(self) -> bool:
        return not self._paused

    def submit(
        self,
        cost_ns: int,
        callback: Optional[Callable[[], Any]] = None,
        tag: str = "",
    ) -> bool:
        accepted = super().submit(cost_ns, callback, tag)
        # Tell the hypervisor there is pending work (event-channel kick),
        # even while paused -- that is what wakes a blocked vCPU.
        if accepted and self.on_work_queued is not None:
            self.on_work_queued()
        return accepted

    def submit_front(
        self,
        cost_ns: int,
        callback: Optional[Callable[[], Any]] = None,
        tag: str = "",
    ) -> bool:
        accepted = super().submit_front(cost_ns, callback, tag)
        if accepted and self.on_work_queued is not None:
            self.on_work_queued()
        return accepted

    def pause(self) -> None:
        self._paused = True

    def resume(self) -> None:
        if self._paused:
            self._paused = False
            self._maybe_start()

    def has_pending_work(self) -> bool:
        return self._busy or bool(self._queue)
